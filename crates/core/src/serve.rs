//! The explanation-serving engine (DESIGN.md §10): explanations as
//! *queries* rather than library calls.
//!
//! The paper's data-management thesis is that an explanation request is
//! declarative data — a method name, a model handle, an instance and an
//! execution plan — that an engine admits, plans, caches and executes,
//! exactly like a database query. This module is that engine, in-process
//! and dependency-free:
//!
//! - [`ServeRequest`] is the wire form: it round-trips through
//!   [`Json`] (`from_json`/`to_json`) with **typed** parse errors
//!   ([`XaiError::Parse`] / [`XaiError::NonFiniteInput`]), and its
//!   canonical serialization is hashed into the cache key.
//! - [`ExplanationService`] owns a registered model set (each model
//!   fingerprinted by hashing its persisted bytes), the runnable
//!   [`Registry`], a fixed pool of worker threads, a **bounded**
//!   submission queue with admission control ([`XaiError::QueueFull`]),
//!   and an LRU result cache keyed on
//!   `(model fingerprint, canonical request hash)`.
//! - [`ServeStats`] is a point-in-time snapshot of the engine's
//!   counters: submissions, rejections, completions, failures, cache
//!   hits/misses/evictions.
//!
//! # Determinism under concurrency
//!
//! Every runnable method is a pure function of
//! `(model, data, request-with-plan)`: stochastic draws come from
//! `StdRng::seed_from_u64(plan.seed)` streams and parallel paths use the
//! deterministic fixed-chunk `xai-rand` executor selected by
//! `plan.workers`. The serving pool adds an *outer* layer of concurrency
//! — which requests run when, and on which worker — that cannot perturb
//! results: pool size, queue order and thread interleaving are invisible
//! to the explainers. Cached payloads are the canonical JSON bytes of
//! the explanation, so a cache hit is byte-equal to the cold miss that
//! populated it.
//!
//! # Budgets and degradation
//!
//! The plan's [`SampleBudget`] travels with the request; budgeted
//! methods stop drawing at the cap and return a best-effort partial
//! estimate (the PR 4 fault layer), so a deadline on a serving request
//! degrades gracefully instead of timing out the worker.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use xai_data::Dataset;

use crate::error::{SampleBudget, XaiError, XaiResult};
use crate::explainer::{
    CurveExplanation, DegradationPolicy, ExplainRequest, Explanation, ModelOracle, RunConfig,
};
use crate::explanation::{
    Condition, Counterfactual, DataAttribution, FeatureAttribution, Op, RuleExplanation,
};
use crate::json_parse::parse_json;
use crate::report::Json;
use crate::taxonomy::Registry;

// ---------------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------------

/// 64-bit FNV-1a hash of a byte string.
///
/// Used for both halves of the result-cache key: the model fingerprint
/// (over the model's persisted bytes, see `xai_models::persist`) and the
/// request hash (over [`ServeRequest::to_json_string`]). FNV-1a is not
/// cryptographic — it pins *identity*, not integrity.
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// JSON helpers (typed Parse errors)
// ---------------------------------------------------------------------------

fn perr(context: impl Into<String>) -> XaiError {
    XaiError::Parse { context: context.into() }
}

fn str_field(json: &Json, key: &str, what: &str) -> XaiResult<String> {
    match json.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(_) => Err(perr(format!("{what}: '{key}' must be a string"))),
        None => Err(perr(format!("{what}: missing required field '{key}'"))),
    }
}

fn num_field(json: &Json, key: &str, what: &str) -> XaiResult<f64> {
    json.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| perr(format!("{what}: '{key}' must be a number")))
}

fn nums_field(json: &Json, key: &str, what: &str) -> XaiResult<Vec<f64>> {
    let arr = json
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| perr(format!("{what}: '{key}' must be an array of numbers")))?;
    arr.iter()
        .enumerate()
        .map(|(i, v)| {
            v.as_num().ok_or_else(|| perr(format!("{what}: {key}[{i}] is not a number")))
        })
        .collect()
}

fn strs_field(json: &Json, key: &str, what: &str) -> XaiResult<Vec<String>> {
    let arr = json
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| perr(format!("{what}: '{key}' must be an array of strings")))?;
    arr.iter()
        .enumerate()
        .map(|(i, v)| match v {
            Json::Str(s) => Ok(s.clone()),
            _ => Err(perr(format!("{what}: {key}[{i}] is not a string"))),
        })
        .collect()
}

/// JSON numbers standing for counts/indices/seeds must be non-negative
/// integers representable exactly in an `f64` (≤ 2^53).
fn integer_field(v: f64, what: &str) -> XaiResult<u64> {
    const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    if !v.is_finite() || v < 0.0 || v.fract() != 0.0 || v > MAX_EXACT {
        return Err(perr(format!("{what} must be a non-negative integer, got {v}")));
    }
    Ok(v as u64)
}

// ---------------------------------------------------------------------------
// ServeRequest: the wire form
// ---------------------------------------------------------------------------

/// A declarative explanation request: what [`ExplanationService::submit`]
/// accepts and what travels as JSON.
///
/// The request *is* data — method name, registered-model name, optional
/// instance and feature index, and the full [`RunConfig`] execution plan.
/// [`ServeRequest::to_json`] emits a **canonical** form (fixed field
/// order, every field present) whose bytes feed
/// [`ServeRequest::canonical_hash`]; semantically equal requests hash
/// equally regardless of how sparse their inbound JSON was.
///
/// Wire format (canonical):
///
/// ```json
/// {"method": "Kernel SHAP", "model": "credit", "instance": [..] | null,
///  "feature": 1 | null,
///  "plan": {"seed": 7, "workers": 1, "batched": false,
///           "max_evals": 500 | null, "max_duration_ms": 50 | null,
///           "degradation": "best_effort" | "strict"}}
/// ```
///
/// Seeds are carried as JSON numbers, so wire seeds are limited to the
/// exactly-representable range `0..=2^53`; [`ServeRequest::from_json`]
/// rejects anything else with a typed [`XaiError::Parse`].
#[derive(Clone, Debug, PartialEq)]
pub struct ServeRequest {
    /// Taxonomy card name of the method to run (e.g. `"Kernel SHAP"`).
    pub method: String,
    /// Name the model was registered under.
    pub model: String,
    /// The instance to explain, for local methods.
    pub instance: Option<Vec<f64>>,
    /// Feature column index, for curve methods (PDP/ICE).
    pub feature: Option<usize>,
    /// The execution plan: seed, workers, batching, budget, degradation.
    pub plan: RunConfig,
}

impl ServeRequest {
    /// A request for `method` against registered model `model`, with the
    /// default plan and no instance/feature.
    pub fn new(method: impl Into<String>, model: impl Into<String>) -> Self {
        Self {
            method: method.into(),
            model: model.into(),
            instance: None,
            feature: None,
            plan: RunConfig::default(),
        }
    }

    /// Sets the instance to explain.
    pub fn with_instance(mut self, x: &[f64]) -> Self {
        self.instance = Some(x.to_vec());
        self
    }

    /// Sets the swept feature index (curve methods).
    pub fn with_feature(mut self, j: usize) -> Self {
        self.feature = Some(j);
        self
    }

    /// Sets the execution plan.
    pub fn with_plan(mut self, plan: RunConfig) -> Self {
        self.plan = plan;
        self
    }

    /// Canonical JSON form: fixed field order, every field present.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("method", Json::str(&*self.method)),
            ("model", Json::str(&*self.model)),
            (
                "instance",
                match &self.instance {
                    Some(xs) => Json::nums(xs),
                    None => Json::Null,
                },
            ),
            (
                "feature",
                match self.feature {
                    Some(j) => Json::Num(j as f64),
                    None => Json::Null,
                },
            ),
            ("plan", plan_to_json(&self.plan)),
        ])
    }

    /// Canonical compact JSON text — the bytes behind
    /// [`ServeRequest::canonical_hash`].
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json()
    }

    /// FNV-1a hash of the canonical serialization; the request half of
    /// the result-cache key.
    pub fn canonical_hash(&self) -> u64 {
        fingerprint_bytes(self.to_json_string().as_bytes())
    }

    /// Parses a request from a [`Json`] tree.
    ///
    /// Strict: unknown fields, wrong types, fractional/negative counts
    /// and workers `< 1` are [`XaiError::Parse`]; non-finite instance
    /// coordinates (e.g. the literal `1e999`, which parses to `+Inf`)
    /// are [`XaiError::NonFiniteInput`]. Absent `instance`, `feature`
    /// and `plan` (or explicit `null`s) fall back to the defaults.
    pub fn from_json(json: &Json) -> XaiResult<ServeRequest> {
        let Json::Obj(fields) = json else {
            return Err(perr("ServeRequest: expected a JSON object"));
        };
        for (key, _) in fields {
            if !matches!(key.as_str(), "method" | "model" | "instance" | "feature" | "plan") {
                return Err(perr(format!("ServeRequest: unknown field '{key}'")));
            }
        }
        let method = str_field(json, "method", "ServeRequest")?;
        let model = str_field(json, "model", "ServeRequest")?;
        let instance = match json.get("instance") {
            None | Some(Json::Null) => None,
            Some(Json::Arr(items)) => {
                let mut xs = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    match item.as_num() {
                        Some(v) if v.is_finite() => xs.push(v),
                        Some(v) => {
                            return Err(XaiError::NonFiniteInput {
                                context: format!("ServeRequest: instance[{i}] is {v}"),
                            })
                        }
                        None => {
                            return Err(perr(format!(
                                "ServeRequest: instance[{i}] is not a number"
                            )))
                        }
                    }
                }
                Some(xs)
            }
            Some(_) => {
                return Err(perr("ServeRequest: 'instance' must be an array of numbers or null"))
            }
        };
        let feature = match json.get("feature") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let n = v
                    .as_num()
                    .ok_or_else(|| perr("ServeRequest: 'feature' must be a number or null"))?;
                Some(integer_field(n, "ServeRequest feature")? as usize)
            }
        };
        let plan = match json.get("plan") {
            None | Some(Json::Null) => RunConfig::default(),
            Some(p) => parse_plan(p)?,
        };
        Ok(ServeRequest { method, model, instance, feature, plan })
    }

    /// Parses a request from JSON text.
    pub fn from_json_str(text: &str) -> XaiResult<ServeRequest> {
        Self::from_json(&parse_json(text)?)
    }
}

/// Canonical JSON form of an execution plan: fixed field order, every
/// field present. Shared by [`ServeRequest`] and the shard descriptors.
pub(crate) fn plan_to_json(p: &RunConfig) -> Json {
    Json::obj(vec![
        ("seed", Json::Num(p.seed as f64)),
        ("workers", Json::Num(p.workers as f64)),
        ("batched", Json::Bool(p.batched)),
        (
            "max_evals",
            match p.budget.max_evals {
                Some(n) => Json::Num(n as f64),
                None => Json::Null,
            },
        ),
        (
            "max_duration_ms",
            match p.budget.max_duration {
                Some(d) => Json::Num(d.as_millis() as f64),
                None => Json::Null,
            },
        ),
        (
            "degradation",
            Json::str(match p.degradation {
                DegradationPolicy::BestEffort => "best_effort",
                DegradationPolicy::Strict => "strict",
            }),
        ),
        ("backend", p.backend.to_json()),
    ])
}

pub(crate) fn parse_plan(json: &Json) -> XaiResult<RunConfig> {
    let Json::Obj(fields) = json else {
        return Err(perr("ServeRequest: 'plan' must be an object or null"));
    };
    for (key, _) in fields {
        if !matches!(
            key.as_str(),
            "seed"
                | "workers"
                | "batched"
                | "max_evals"
                | "max_duration_ms"
                | "degradation"
                | "backend"
        ) {
            return Err(perr(format!("ServeRequest plan: unknown field '{key}'")));
        }
    }
    let mut plan = RunConfig::default();
    if let Some(v) = json.get("seed") {
        let n = v.as_num().ok_or_else(|| perr("ServeRequest plan: 'seed' must be a number"))?;
        plan.seed = integer_field(n, "ServeRequest plan seed")?;
    }
    if let Some(v) = json.get("workers") {
        let n = v.as_num().ok_or_else(|| perr("ServeRequest plan: 'workers' must be a number"))?;
        let w = integer_field(n, "ServeRequest plan workers")? as usize;
        if w == 0 {
            return Err(perr("ServeRequest plan: workers must be >= 1"));
        }
        plan.workers = w;
    }
    if let Some(v) = json.get("batched") {
        plan.batched = match v {
            Json::Bool(b) => *b,
            _ => return Err(perr("ServeRequest plan: 'batched' must be a boolean")),
        };
    }
    let mut budget = SampleBudget::unlimited();
    match json.get("max_evals") {
        None | Some(Json::Null) => {}
        Some(v) => {
            let n =
                v.as_num().ok_or_else(|| perr("ServeRequest plan: 'max_evals' must be a number"))?;
            budget.max_evals = Some(integer_field(n, "ServeRequest plan max_evals")? as usize);
        }
    }
    match json.get("max_duration_ms") {
        None | Some(Json::Null) => {}
        Some(v) => {
            let n = v
                .as_num()
                .ok_or_else(|| perr("ServeRequest plan: 'max_duration_ms' must be a number"))?;
            let ms = integer_field(n, "ServeRequest plan max_duration_ms")?;
            budget.max_duration = Some(Duration::from_millis(ms));
        }
    }
    plan.budget = budget;
    if let Some(v) = json.get("degradation") {
        plan.degradation = match v {
            Json::Str(s) if s == "best_effort" => DegradationPolicy::BestEffort,
            Json::Str(s) if s == "strict" => DegradationPolicy::Strict,
            _ => {
                return Err(perr(
                    "ServeRequest plan: 'degradation' must be \"best_effort\" or \"strict\"",
                ))
            }
        };
    }
    // Absent or null means the in-process default, so pre-backend wire
    // forms keep parsing (and hashing) exactly as before.
    match json.get("backend") {
        None | Some(Json::Null) => {}
        Some(v) => plan.backend = crate::backend::BackendChoice::from_json(v)?,
    }
    Ok(plan)
}

// ---------------------------------------------------------------------------
// Explanation wire serde
// ---------------------------------------------------------------------------

fn op_name(op: Op) -> &'static str {
    match op {
        Op::Le => "le",
        Op::Gt => "gt",
        Op::Eq => "eq",
    }
}

fn op_from_name(s: &str) -> XaiResult<Op> {
    match s {
        "le" => Ok(Op::Le),
        "gt" => Ok(Op::Gt),
        "eq" => Ok(Op::Eq),
        other => Err(perr(format!("rule condition: unknown op '{other}'"))),
    }
}

fn condition_to_json(c: &Condition) -> Json {
    Json::obj(vec![
        ("feature", Json::Num(c.feature as f64)),
        ("name", Json::str(&*c.feature_name)),
        ("op", Json::str(op_name(c.op))),
        ("value", Json::Num(c.value)),
    ])
}

fn condition_from_json(json: &Json) -> XaiResult<Condition> {
    let feature = integer_field(num_field(json, "feature", "rule condition")?, "condition feature")?
        as usize;
    let feature_name = str_field(json, "name", "rule condition")?;
    let op = op_from_name(&str_field(json, "op", "rule condition")?)?;
    let value = num_field(json, "value", "rule condition")?;
    Ok(Condition { feature, feature_name, op, value })
}

fn rule_to_json(r: &RuleExplanation) -> Json {
    Json::obj(vec![
        ("conditions", Json::Arr(r.conditions.iter().map(condition_to_json).collect())),
        ("prediction", Json::Num(r.prediction)),
        ("precision", Json::Num(r.precision)),
        ("coverage", Json::Num(r.coverage)),
    ])
}

fn rule_from_json(json: &Json) -> XaiResult<RuleExplanation> {
    let conditions = json
        .get("conditions")
        .and_then(Json::as_arr)
        .ok_or_else(|| perr("rule: 'conditions' must be an array"))?
        .iter()
        .map(condition_from_json)
        .collect::<XaiResult<Vec<_>>>()?;
    Ok(RuleExplanation {
        conditions,
        prediction: num_field(json, "prediction", "rule")?,
        precision: num_field(json, "precision", "rule")?,
        coverage: num_field(json, "coverage", "rule")?,
    })
}

fn counterfactual_to_json(c: &Counterfactual) -> Json {
    Json::obj(vec![
        ("original", Json::nums(&c.original)),
        ("counterfactual", Json::nums(&c.counterfactual)),
        ("original_output", Json::Num(c.original_output)),
        ("counterfactual_output", Json::Num(c.counterfactual_output)),
        (
            "changed_features",
            Json::Arr(c.changed_features.iter().map(|&j| Json::Num(j as f64)).collect()),
        ),
        ("distance", Json::Num(c.distance)),
    ])
}

fn counterfactual_from_json(json: &Json) -> XaiResult<Counterfactual> {
    let changed = nums_field(json, "changed_features", "counterfactual")?
        .into_iter()
        .map(|v| integer_field(v, "counterfactual changed feature").map(|n| n as usize))
        .collect::<XaiResult<Vec<_>>>()?;
    Ok(Counterfactual {
        original: nums_field(json, "original", "counterfactual")?,
        counterfactual: nums_field(json, "counterfactual", "counterfactual")?,
        original_output: num_field(json, "original_output", "counterfactual")?,
        counterfactual_output: num_field(json, "counterfactual_output", "counterfactual")?,
        changed_features: changed,
        distance: num_field(json, "distance", "counterfactual")?,
    })
}

impl Explanation {
    /// Structured, loss-free wire form of the explanation, tagged by
    /// `"kind"`. Unlike [`crate::report::ToReport`] (a human-facing
    /// report where rule conditions are display strings), every field
    /// here parses back: [`Explanation::from_json`] restores a value
    /// that compares equal, and serializing *that* reproduces the bytes
    /// (Rust's shortest-round-trip float formatting).
    pub fn to_json(&self) -> Json {
        match self {
            Explanation::Attribution(a) => Json::obj(vec![
                ("kind", Json::str("feature_attribution")),
                ("features", Json::strs(&a.feature_names)),
                ("values", Json::nums(&a.values)),
                ("baseline", Json::Num(a.baseline)),
                ("prediction", Json::Num(a.prediction)),
            ]),
            Explanation::Rules(rules) => Json::obj(vec![
                ("kind", Json::str("rules")),
                ("rules", Json::Arr(rules.iter().map(rule_to_json).collect())),
            ]),
            Explanation::Counterfactuals(cfs) => Json::obj(vec![
                ("kind", Json::str("counterfactuals")),
                (
                    "counterfactuals",
                    Json::Arr(cfs.iter().map(counterfactual_to_json).collect()),
                ),
            ]),
            Explanation::DataValuation(v) => Json::obj(vec![
                ("kind", Json::str("data_valuation")),
                ("measure", Json::str(&*v.measure)),
                ("values", Json::nums(&v.values)),
            ]),
            Explanation::Curve(c) => Json::obj(vec![
                ("kind", Json::str("curve")),
                ("feature", Json::Num(c.feature as f64)),
                ("grid", Json::nums(&c.grid)),
                ("values", Json::nums(&c.values)),
                (
                    "ice",
                    match &c.ice {
                        Some(rows) => Json::Arr(rows.iter().map(|r| Json::nums(r)).collect()),
                        None => Json::Null,
                    },
                ),
            ]),
        }
    }

    /// Compact JSON text of [`Explanation::to_json`] — the cached
    /// payload bytes.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json()
    }

    /// Parses an explanation from its wire form, dispatching on `"kind"`
    /// with typed [`XaiError::Parse`] errors.
    pub fn from_json(json: &Json) -> XaiResult<Explanation> {
        match str_field(json, "kind", "Explanation")?.as_str() {
            "feature_attribution" => {
                let names = strs_field(json, "features", "feature_attribution")?;
                let values = nums_field(json, "values", "feature_attribution")?;
                if names.len() != values.len() {
                    return Err(perr(format!(
                        "feature_attribution: {} names vs {} values",
                        names.len(),
                        values.len()
                    )));
                }
                Ok(Explanation::Attribution(FeatureAttribution {
                    feature_names: names,
                    values,
                    baseline: num_field(json, "baseline", "feature_attribution")?,
                    prediction: num_field(json, "prediction", "feature_attribution")?,
                }))
            }
            "rules" => {
                let rules = json
                    .get("rules")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| perr("rules: 'rules' must be an array"))?
                    .iter()
                    .map(rule_from_json)
                    .collect::<XaiResult<Vec<_>>>()?;
                Ok(Explanation::Rules(rules))
            }
            "counterfactuals" => {
                let cfs = json
                    .get("counterfactuals")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| perr("counterfactuals: 'counterfactuals' must be an array"))?
                    .iter()
                    .map(counterfactual_from_json)
                    .collect::<XaiResult<Vec<_>>>()?;
                Ok(Explanation::Counterfactuals(cfs))
            }
            "data_valuation" => Ok(Explanation::DataValuation(DataAttribution {
                values: nums_field(json, "values", "data_valuation")?,
                measure: str_field(json, "measure", "data_valuation")?,
            })),
            "curve" => {
                let ice = match json.get("ice") {
                    None | Some(Json::Null) => None,
                    Some(Json::Arr(rows)) => Some(
                        rows.iter()
                            .enumerate()
                            .map(|(i, row)| {
                                row.as_arr()
                                    .ok_or_else(|| perr(format!("curve: ice[{i}] is not an array")))?
                                    .iter()
                                    .map(|v| {
                                        v.as_num().ok_or_else(|| {
                                            perr(format!("curve: ice[{i}] holds a non-number"))
                                        })
                                    })
                                    .collect::<XaiResult<Vec<f64>>>()
                            })
                            .collect::<XaiResult<Vec<_>>>()?,
                    ),
                    Some(_) => return Err(perr("curve: 'ice' must be an array of arrays or null")),
                };
                Ok(Explanation::Curve(CurveExplanation {
                    feature: integer_field(num_field(json, "feature", "curve")?, "curve feature")?
                        as usize,
                    grid: nums_field(json, "grid", "curve")?,
                    values: nums_field(json, "values", "curve")?,
                    ice,
                }))
            }
            other => Err(perr(format!("Explanation: unknown kind '{other}'"))),
        }
    }

    /// Parses an explanation from JSON text.
    pub fn from_json_str(text: &str) -> XaiResult<Explanation> {
        Self::from_json(&parse_json(text)?)
    }
}

// ---------------------------------------------------------------------------
// Service configuration, stats, response
// ---------------------------------------------------------------------------

/// Sizing knobs of an [`ExplanationService`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads executing requests (≥ 1).
    pub workers: usize,
    /// Bounded submission-queue capacity; a submit finding the queue at
    /// capacity is rejected with [`XaiError::QueueFull`].
    pub queue_capacity: usize,
    /// LRU result-cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Shared [`CoalitionMemo`](crate::memo::CoalitionMemo) capacity in
    /// coalition values; `0` disables cross-request memoization. Unlike
    /// the result cache (whole responses, exact request match), the memo
    /// caches per-coalition model evaluations keyed on (model fingerprint,
    /// background, instance, mask), so it accelerates *different* requests
    /// that revisit the same coalitions — e.g. Kernel SHAP and permutation
    /// sampling against the same row, or re-explains at a new seed.
    pub memo_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self { workers: 2, queue_capacity: 64, cache_capacity: 128, memo_capacity: 65_536 }
    }
}

/// Point-in-time snapshot of the engine's counters.
///
/// Invariants once the engine is idle: `completed + failed` equals the
/// number of admitted submissions, and `cache_hits + cache_misses` also
/// equals it — the cache is consulted exactly once per executed request.
/// `rejected` counts [`XaiError::QueueFull`] admissions failures, which
/// never reach the queue or the cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests rejected by admission control (`QueueFull`).
    pub rejected: u64,
    /// Requests that produced an explanation (cached or computed).
    pub completed: u64,
    /// Requests whose execution returned an error.
    pub failed: u64,
    /// Results served from the cache.
    pub cache_hits: u64,
    /// Results computed because the cache had no entry.
    pub cache_misses: u64,
    /// Cache entries displaced by capacity pressure.
    pub cache_evictions: u64,
    /// Coalition values served from the shared cross-request memo instead
    /// of the model (zero when `memo_capacity` is 0 or no coalition method
    /// ran batched).
    pub memo_hits: u64,
    /// Coalition memo lookups that missed and were evaluated live.
    pub memo_misses: u64,
    /// Coalition memo entries dropped by capacity eviction.
    pub memo_evictions: u64,
    /// Requests executed to completion on the in-process [`LocalBackend`]
    /// path (the default when a request carries no `backend` field).
    ///
    /// [`LocalBackend`]: crate::backend::LocalBackend
    pub local_completed: u64,
    /// Requests that failed while executing locally.
    pub local_failed: u64,
    /// Requests executed to completion on a registered process-pool backend.
    pub pool_completed: u64,
    /// Requests that failed on the process-pool backend.
    pub pool_failed: u64,
    /// Requests executed to completion on a registered cluster backend
    /// (including degraded in-process fallbacks, which still complete).
    pub cluster_completed: u64,
    /// Requests that failed on the cluster backend.
    pub cluster_failed: u64,
    /// Requests whose cluster execution fell back in-process under
    /// [`FallbackPolicy::InProcess`](crate::transport::FallbackPolicy).
    pub degraded: u64,
    /// Shard results answered from a backend's shard-level result cache.
    pub shard_cache_hits: u64,
    /// Shard results computed because the shard cache had no entry.
    pub shard_cache_misses: u64,
}

impl ServeStats {
    /// The snapshot as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("submitted", Json::Num(self.submitted as f64)),
            ("rejected", Json::Num(self.rejected as f64)),
            ("completed", Json::Num(self.completed as f64)),
            ("failed", Json::Num(self.failed as f64)),
            ("cache_hits", Json::Num(self.cache_hits as f64)),
            ("cache_misses", Json::Num(self.cache_misses as f64)),
            ("cache_evictions", Json::Num(self.cache_evictions as f64)),
            ("memo_hits", Json::Num(self.memo_hits as f64)),
            ("memo_misses", Json::Num(self.memo_misses as f64)),
            ("memo_evictions", Json::Num(self.memo_evictions as f64)),
            ("local_completed", Json::Num(self.local_completed as f64)),
            ("local_failed", Json::Num(self.local_failed as f64)),
            ("pool_completed", Json::Num(self.pool_completed as f64)),
            ("pool_failed", Json::Num(self.pool_failed as f64)),
            ("cluster_completed", Json::Num(self.cluster_completed as f64)),
            ("cluster_failed", Json::Num(self.cluster_failed as f64)),
            ("degraded", Json::Num(self.degraded as f64)),
            ("shard_cache_hits", Json::Num(self.shard_cache_hits as f64)),
            ("shard_cache_misses", Json::Num(self.shard_cache_misses as f64)),
        ])
    }
}

/// A served explanation: the canonical payload bytes plus provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeResponse {
    /// Method that produced the explanation.
    pub method: String,
    /// Registered model name it ran against.
    pub model: String,
    /// Fingerprint of the model's persisted bytes at execution time.
    pub fingerprint: u64,
    /// True when the payload came from the result cache.
    pub cached: bool,
    /// True when a cluster-backed execution fell back in-process under
    /// [`FallbackPolicy::InProcess`](crate::transport::FallbackPolicy).
    /// The payload is still byte-identical to the non-degraded result;
    /// this marker only records the substrate change.
    pub degraded: bool,
    /// Canonical JSON of the explanation ([`Explanation::to_json_string`]).
    /// Cache hits return the exact bytes the cold miss stored.
    pub payload: String,
}

impl ServeResponse {
    /// Parses the payload back into a typed [`Explanation`].
    pub fn explanation(&self) -> XaiResult<Explanation> {
        Explanation::from_json_str(&self.payload)
    }

    /// The full response envelope as JSON (fingerprint in hex so the
    /// 64-bit value survives the f64 number representation).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("method", Json::str(&*self.method)),
            ("model", Json::str(&*self.model)),
            ("fingerprint", Json::str(format!("{:016x}", self.fingerprint))),
            ("cached", Json::Bool(self.cached)),
            ("degraded", Json::Bool(self.degraded)),
            (
                "explanation",
                parse_json(&self.payload).expect("payload is service-serialized JSON"),
            ),
        ])
    }

    /// Compact JSON text of [`ServeResponse::to_json`].
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json()
    }
}

// ---------------------------------------------------------------------------
// LRU result cache
// ---------------------------------------------------------------------------

struct LruCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<(u64, u64), (u64, String)>,
}

impl LruCache {
    fn new(capacity: usize) -> Self {
        Self { capacity, tick: 0, entries: HashMap::new() }
    }

    fn get(&mut self, key: &(u64, u64)) -> Option<String> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|e| {
            e.0 = tick;
            e.1.clone()
        })
    }

    /// Inserts, returning how many entries were evicted (0 or 1).
    fn insert(&mut self, key: (u64, u64), payload: String) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        self.tick += 1;
        let mut evicted = 0;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(oldest) = self.entries.iter().min_by_key(|(_, (t, _))| *t).map(|(k, _)| *k)
            {
                self.entries.remove(&oldest);
                evicted = 1;
            }
        }
        self.entries.insert(key, (self.tick, payload));
        evicted
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

struct RegisteredModel {
    oracle: Arc<dyn ModelOracle + Send + Sync>,
    data: Dataset,
    fingerprint: u64,
    /// The persisted bytes parsed as JSON, when they are JSON — required
    /// for non-local backends, which ship the model to workers by value.
    /// Serializing this object reproduces the registered bytes exactly,
    /// so worker-side fingerprint verification stays sound.
    model_json: Option<Json>,
}

struct Slot {
    result: Mutex<Option<XaiResult<ServeResponse>>>,
    ready: Condvar,
}

struct Job {
    request: ServeRequest,
    slot: Arc<Slot>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

#[derive(Default)]
struct StatCells {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    local_completed: AtomicU64,
    local_failed: AtomicU64,
    pool_completed: AtomicU64,
    pool_failed: AtomicU64,
    cluster_completed: AtomicU64,
    cluster_failed: AtomicU64,
    degraded: AtomicU64,
    shard_cache_hits: AtomicU64,
    shard_cache_misses: AtomicU64,
}

struct Inner {
    registry: Registry,
    config: ServiceConfig,
    models: Mutex<HashMap<String, Arc<RegisteredModel>>>,
    queue: Mutex<QueueState>,
    queue_cond: Condvar,
    cache: Mutex<LruCache>,
    memo: crate::memo::CoalitionMemo,
    stats: StatCells,
    /// Execution backends registered via [`ExplanationService::set_backend`],
    /// keyed by kind. Requests whose plan selects an unregistered kind are
    /// rejected at validation with a typed `Unsupported` error.
    backends: Mutex<HashMap<crate::backend::BackendKind, Arc<dyn crate::backend::ExecutionBackend>>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn panic_text(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_string()
    }
}

/// The in-process explanation-serving engine; see the module docs for
/// the architecture and `DESIGN.md` §10 for the full semantics.
///
/// Construction spawns the worker pool; [`Drop`] signals shutdown,
/// drains the queue and joins every worker, so pending submissions are
/// answered before the service disappears.
pub struct ExplanationService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl ExplanationService {
    /// Builds a service over `registry` and spawns `config.workers`
    /// worker threads. Panics if `config.workers == 0`.
    pub fn new(registry: Registry, config: ServiceConfig) -> Self {
        assert!(config.workers >= 1, "ExplanationService needs at least one worker");
        let inner = Arc::new(Inner {
            registry,
            config,
            models: Mutex::new(HashMap::new()),
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
            queue_cond: Condvar::new(),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            memo: crate::memo::CoalitionMemo::new(config.memo_capacity),
            stats: StatCells::default(),
            backends: Mutex::new(HashMap::new()),
        });
        let workers = (0..config.workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("xai-serve-{w}"))
                    .spawn(move || worker_loop(&inner, w))
                    .expect("spawn serving worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// Registers (or replaces) a model under `name`.
    ///
    /// `persisted` are the model's canonical persisted bytes (e.g.
    /// `xai_models::persist::persisted_bytes`); their FNV-1a hash
    /// becomes the model's fingerprint and is returned. Replacing a
    /// model changes the fingerprint, which silently invalidates all
    /// cached results for the old version — stale entries can never be
    /// served because cache keys embed the fingerprint.
    pub fn register_model(
        &self,
        name: impl Into<String>,
        oracle: Arc<dyn ModelOracle + Send + Sync>,
        data: Dataset,
        persisted: &[u8],
    ) -> u64 {
        let fingerprint = fingerprint_bytes(persisted);
        // Keep the parsed persisted form when it is JSON: non-local
        // backends need it to build shard descriptors whose serialized
        // model bytes reproduce `persisted` (and thus this fingerprint).
        let model_json = std::str::from_utf8(persisted)
            .ok()
            .and_then(|s| parse_json(s).ok())
            .filter(|j| matches!(j, Json::Obj(_)));
        lock(&self.inner.models)
            .insert(name.into(), Arc::new(RegisteredModel { oracle, data, fingerprint, model_json }));
        fingerprint
    }

    /// Registers (or replaces) an execution backend for its
    /// [`kind`](crate::backend::ExecutionBackend::kind). Requests whose
    /// plan selects that kind are routed through it; the in-process
    /// local path needs no registration.
    pub fn set_backend(&self, backend: Arc<dyn crate::backend::ExecutionBackend>) {
        lock(&self.inner.backends).insert(backend.kind(), backend);
    }

    /// Kinds with a registered backend, sorted.
    pub fn backend_kinds(&self) -> Vec<crate::backend::BackendKind> {
        let mut kinds: Vec<_> = lock(&self.inner.backends).keys().copied().collect();
        kinds.sort();
        kinds
    }

    /// Fingerprint of the model registered under `name`, if any.
    pub fn model_fingerprint(&self, name: &str) -> Option<u64> {
        lock(&self.inner.models).get(name).map(|m| m.fingerprint)
    }

    /// Registered model names, sorted.
    pub fn model_names(&self) -> Vec<String> {
        let mut names: Vec<String> = lock(&self.inner.models).keys().cloned().collect();
        names.sort();
        names
    }

    /// The taxonomy registry the service resolves methods from.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The sizing configuration the service was built with.
    pub fn config(&self) -> ServiceConfig {
        self.inner.config
    }

    /// Current number of cached results.
    pub fn cache_len(&self) -> usize {
        lock(&self.inner.cache).len()
    }

    /// Snapshot of the engine counters.
    pub fn stats(&self) -> ServeStats {
        let s = &self.inner.stats;
        let memo = self.inner.memo.stats();
        ServeStats {
            submitted: s.submitted.load(Ordering::SeqCst),
            rejected: s.rejected.load(Ordering::SeqCst),
            completed: s.completed.load(Ordering::SeqCst),
            failed: s.failed.load(Ordering::SeqCst),
            cache_hits: s.cache_hits.load(Ordering::SeqCst),
            cache_misses: s.cache_misses.load(Ordering::SeqCst),
            cache_evictions: s.cache_evictions.load(Ordering::SeqCst),
            memo_hits: memo.hits,
            memo_misses: memo.misses,
            memo_evictions: memo.evictions,
            local_completed: s.local_completed.load(Ordering::SeqCst),
            local_failed: s.local_failed.load(Ordering::SeqCst),
            pool_completed: s.pool_completed.load(Ordering::SeqCst),
            pool_failed: s.pool_failed.load(Ordering::SeqCst),
            cluster_completed: s.cluster_completed.load(Ordering::SeqCst),
            cluster_failed: s.cluster_failed.load(Ordering::SeqCst),
            degraded: s.degraded.load(Ordering::SeqCst),
            shard_cache_hits: s.shard_cache_hits.load(Ordering::SeqCst),
            shard_cache_misses: s.shard_cache_misses.load(Ordering::SeqCst),
        }
    }

    /// Coalition values currently resident in the cross-request memo.
    pub fn memo_len(&self) -> usize {
        self.inner.memo.stats().entries as usize
    }

    /// Pre-admission validation: typed errors for requests that could
    /// never execute, charged before any queue capacity is consumed.
    fn validate(&self, request: &ServeRequest) -> XaiResult<()> {
        if self.inner.registry.get(&request.method).is_none() {
            return Err(perr(format!("unknown method '{}'", request.method)));
        }
        if !self.inner.registry.is_runnable(&request.method) {
            return Err(XaiError::Unsupported {
                context: format!(
                    "method '{}' is catalogued but has no runnable explainer attached",
                    request.method
                ),
            });
        }
        let entry = lock(&self.inner.models)
            .get(&request.model)
            .cloned()
            .ok_or_else(|| perr(format!("unknown model '{}'", request.model)))?;
        if let Some(instance) = &request.instance {
            if let Some(i) = instance.iter().position(|v| !v.is_finite()) {
                return Err(XaiError::NonFiniteInput {
                    context: format!("ServeRequest: instance[{i}] is {}", instance[i]),
                });
            }
            let arity = entry.oracle.n_features();
            if instance.len() != arity {
                return Err(perr(format!(
                    "instance arity {} does not match model '{}' arity {arity}",
                    instance.len(),
                    request.model
                )));
            }
        }
        if let Some(j) = request.feature {
            let d = entry.data.n_features();
            if j >= d {
                return Err(perr(format!(
                    "feature index {j} out of range for model '{}' with {d} features",
                    request.model
                )));
            }
        }
        if !request.plan.backend.is_local() {
            let kind = request.plan.backend.kind();
            let explainer = self
                .inner
                .registry
                .get_explainer(&request.method)
                .expect("is_runnable checked above");
            if explainer.as_shardable().is_none() {
                return Err(XaiError::Unsupported {
                    context: format!(
                        "method '{}' is not shardable and cannot run on the {} backend",
                        request.method,
                        kind.as_str()
                    ),
                });
            }
            if entry.model_json.is_none() {
                return Err(XaiError::Unsupported {
                    context: format!(
                        "model '{}' was registered without JSON persisted bytes, which the \
                         {} backend needs to ship it to workers",
                        request.model,
                        kind.as_str()
                    ),
                });
            }
            if !lock(&self.inner.backends).contains_key(&kind) {
                return Err(XaiError::Unsupported {
                    context: format!(
                        "no {} backend is registered with this service (ExplanationService::set_backend)",
                        kind.as_str()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Submits a request and blocks until a worker answers it.
    ///
    /// Failure modes, all typed: [`XaiError::Parse`] for unknown
    /// method/model, arity or range mismatches; [`XaiError::NonFiniteInput`]
    /// for NaN/±Inf instances; [`XaiError::QueueFull`] when admission
    /// control rejects; plus whatever the explainer itself returns
    /// (`BudgetExceeded`, `Unsupported`, …).
    pub fn submit(&self, request: &ServeRequest) -> XaiResult<ServeResponse> {
        self.validate(request)?;
        let slot = Arc::new(Slot { result: Mutex::new(None), ready: Condvar::new() });
        {
            let mut q = lock(&self.inner.queue);
            if q.shutdown {
                return Err(XaiError::Unsupported {
                    context: "ExplanationService is shutting down".into(),
                });
            }
            if q.jobs.len() >= self.inner.config.queue_capacity {
                self.inner.stats.rejected.fetch_add(1, Ordering::SeqCst);
                return Err(XaiError::QueueFull { capacity: self.inner.config.queue_capacity });
            }
            q.jobs.push_back(Job { request: request.clone(), slot: Arc::clone(&slot) });
            self.inner.stats.submitted.fetch_add(1, Ordering::SeqCst);
            self.inner.queue_cond.notify_one();
        }
        let mut result = lock(&slot.result);
        while result.is_none() {
            result = slot.ready.wait(result).unwrap_or_else(PoisonError::into_inner);
        }
        result.take().expect("slot filled")
    }

    /// JSON-in/JSON-out submission: parses `text` as a [`ServeRequest`],
    /// submits it, and returns the response envelope as compact JSON.
    pub fn submit_json(&self, text: &str) -> XaiResult<String> {
        let request = ServeRequest::from_json_str(text)?;
        Ok(self.submit(&request)?.to_json_string())
    }
}

impl Drop for ExplanationService {
    fn drop(&mut self) {
        {
            let mut q = lock(&self.inner.queue);
            q.shutdown = true;
        }
        self.inner.queue_cond.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Inner, worker_index: usize) {
    loop {
        let job = {
            let mut q = lock(&inner.queue);
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.shutdown {
                    break None;
                }
                q = inner.queue_cond.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(job) = job else { return };
        let result = catch_unwind(AssertUnwindSafe(|| execute(inner, &job.request)))
            .unwrap_or_else(|payload| {
                Err(XaiError::WorkerPanic { task: worker_index, message: panic_text(payload) })
            });
        match &result {
            Ok(_) => inner.stats.completed.fetch_add(1, Ordering::SeqCst),
            Err(_) => inner.stats.failed.fetch_add(1, Ordering::SeqCst),
        };
        *lock(&job.slot.result) = Some(result);
        job.slot.ready.notify_all();
    }
}

/// Executes one admitted request on a worker: cache lookup, then the
/// actual `Explainer::explain` call on a miss. The cache is consulted
/// exactly once per executed request, so `hits + misses` equals the
/// number of admitted submissions.
fn execute(inner: &Inner, request: &ServeRequest) -> XaiResult<ServeResponse> {
    let entry = lock(&inner.models)
        .get(&request.model)
        .cloned()
        .ok_or_else(|| perr(format!("model '{}' was unregistered mid-flight", request.model)))?;
    let explainer = inner
        .registry
        .get_explainer(&request.method)
        .ok_or_else(|| perr(format!("unknown method '{}'", request.method)))?;
    let key = (entry.fingerprint, request.canonical_hash());

    if let Some(payload) = lock(&inner.cache).get(&key) {
        inner.stats.cache_hits.fetch_add(1, Ordering::SeqCst);
        return Ok(ServeResponse {
            method: request.method.clone(),
            model: request.model.clone(),
            fingerprint: entry.fingerprint,
            cached: true,
            degraded: false,
            payload,
        });
    }
    inner.stats.cache_misses.fetch_add(1, Ordering::SeqCst);

    let mut req = ExplainRequest::new(&entry.data).plan(request.plan);
    if let Some(x) = &request.instance {
        req = req.instance(x);
    }
    if let Some(j) = request.feature {
        req = req.feature(j);
    }

    let choice = request.plan.backend;
    let (explanation, degraded) = if choice.is_local() {
        if inner.memo.capacity() > 0 {
            // Shared cross-request coalition memo (DESIGN.md §12): batched
            // coalition methods consult it before calling the model. Keyed
            // under the model fingerprint, so replacing a model invalidates
            // its memoized coalition values exactly like the result cache.
            req = req.memo(crate::memo::MemoHandle {
                memo: &inner.memo,
                model_fingerprint: entry.fingerprint,
            });
        }
        let result = explainer.explain(&*entry.oracle, &req);
        record_backend(&inner.stats, choice.kind(), result.is_ok());
        (result?, false)
    } else {
        let backend = lock(&inner.backends).get(&choice.kind()).cloned().ok_or_else(|| {
            XaiError::Unsupported {
                context: format!(
                    "no {} backend is registered with this service",
                    choice.kind().as_str()
                ),
            }
        })?;
        let shardable = explainer.as_shardable().ok_or_else(|| XaiError::Unsupported {
            context: format!("method '{}' is not shardable", request.method),
        })?;
        let model_json = entry.model_json.clone().ok_or_else(|| XaiError::Unsupported {
            context: format!(
                "model '{}' has no JSON persisted bytes for backend execution",
                request.model
            ),
        })?;
        let job = crate::backend::BackendJob::new(
            shardable,
            &*entry.oracle,
            &req,
            choice.shards().unwrap_or(1),
        )
        .with_model_json(model_json);
        let result = backend.execute(&job);
        record_backend(&inner.stats, choice.kind(), result.is_ok());
        let outcome = result?;
        if outcome.degraded {
            inner.stats.degraded.fetch_add(1, Ordering::SeqCst);
        }
        inner.stats.shard_cache_hits.fetch_add(outcome.shard_cache_hits, Ordering::SeqCst);
        inner.stats.shard_cache_misses.fetch_add(outcome.shard_cache_misses, Ordering::SeqCst);
        (outcome.explanation, outcome.degraded)
    };

    let payload = explanation.to_json_string();
    let evicted = lock(&inner.cache).insert(key, payload.clone());
    if evicted > 0 {
        inner.stats.cache_evictions.fetch_add(evicted, Ordering::SeqCst);
    }
    Ok(ServeResponse {
        method: request.method.clone(),
        model: request.model.clone(),
        fingerprint: entry.fingerprint,
        cached: false,
        degraded,
        payload,
    })
}

/// Bumps the per-backend completed/failed counter for one executed request.
fn record_backend(stats: &StatCells, kind: crate::backend::BackendKind, ok: bool) {
    use crate::backend::BackendKind;
    let cell = match (kind, ok) {
        (BackendKind::Local, true) => &stats.local_completed,
        (BackendKind::Local, false) => &stats.local_failed,
        (BackendKind::ProcessPool, true) => &stats.pool_completed,
        (BackendKind::ProcessPool, false) => &stats.pool_failed,
        (BackendKind::Cluster, true) => &stats.cluster_completed,
        (BackendKind::Cluster, false) => &stats.cluster_failed,
    };
    cell.fetch_add(1, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explainer::{Explainer, FnOracle};
    use crate::taxonomy::{method_card, workspace_registry, MethodCard};
    use xai_data::{Schema, Task};
    use xai_linalg::Matrix;

    fn tiny_dataset() -> Dataset {
        let schema = Schema::new(
            vec![
                xai_data::Feature::numeric("a", 0.0, 10.0),
                xai_data::Feature::numeric("b", 0.0, 10.0),
                xai_data::Feature::numeric("c", 0.0, 10.0),
            ],
            "y",
        );
        let x = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
            vec![2.0, 4.0, 8.0],
        ]);
        Dataset::new(schema, x, vec![0.0, 1.0, 1.0, 0.0], Task::BinaryClassification)
    }

    /// A deterministic stand-in explainer attached to the "Kernel SHAP"
    /// card: values are the instance scaled by `seed + 1`, so distinct
    /// seeds give distinct results and equal requests give equal bytes.
    struct StubMethod;

    impl Explainer for StubMethod {
        fn card(&self) -> MethodCard {
            method_card("Kernel SHAP")
        }

        fn explain(
            &self,
            model: &dyn ModelOracle,
            req: &ExplainRequest<'_>,
        ) -> XaiResult<Explanation> {
            let x = req.need_instance("stub")?;
            let scale = (req.plan.seed + 1) as f64;
            Ok(Explanation::Attribution(FeatureAttribution {
                feature_names: req.feature_names(),
                values: x.iter().map(|v| v * scale).collect(),
                baseline: 0.0,
                prediction: model.predict(x),
            }))
        }
    }

    /// A stub on the "LIME" card that always panics, to exercise the
    /// worker-pool panic fence.
    struct PanickingMethod;

    impl Explainer for PanickingMethod {
        fn card(&self) -> MethodCard {
            method_card("LIME")
        }

        fn explain(
            &self,
            _model: &dyn ModelOracle,
            _req: &ExplainRequest<'_>,
        ) -> XaiResult<Explanation> {
            panic!("stub explainer exploded")
        }
    }

    fn stub_registry() -> Registry {
        let mut registry = workspace_registry();
        registry.register_explainer(Arc::new(StubMethod)).unwrap();
        registry.register_explainer(Arc::new(PanickingMethod)).unwrap();
        registry
    }

    fn stub_service(config: ServiceConfig) -> ExplanationService {
        let service = ExplanationService::new(stub_registry(), config);
        let oracle = Arc::new(FnOracle::new(3, |x: &[f64]| x.iter().sum()));
        service.register_model("toy", oracle, tiny_dataset(), b"toy-model-v1");
        service
    }

    #[test]
    fn fnv1a_known_vectors() {
        assert_eq!(fingerprint_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fingerprint_bytes(b"model-a"), fingerprint_bytes(b"model-b"));
    }

    #[test]
    fn request_round_trips_canonically() {
        let request = ServeRequest::new("Kernel SHAP", "credit")
            .with_instance(&[1.0, -2.5, 0.0])
            .with_feature(1)
            .with_plan(
                RunConfig::seeded(7)
                    .with_workers(2)
                    .with_batched(true)
                    .with_budget(SampleBudget::with_max_evals(500))
                    .strict(),
            );
        let text = request.to_json_string();
        let back = ServeRequest::from_json_str(&text).unwrap();
        assert_eq!(back, request);
        assert_eq!(back.to_json_string(), text);
        assert_eq!(back.canonical_hash(), request.canonical_hash());
    }

    #[test]
    fn sparse_request_hashes_like_its_canonical_form() {
        let sparse = ServeRequest::from_json_str(r#"{"method":"LIME","model":"m"}"#).unwrap();
        let explicit = ServeRequest::new("LIME", "m");
        assert_eq!(sparse, explicit);
        assert_eq!(sparse.canonical_hash(), explicit.canonical_hash());
        assert_eq!(sparse.plan, RunConfig::default());
    }

    #[test]
    fn malformed_requests_are_typed_parse_errors() {
        let cases = [
            r#"[1, 2]"#,
            r#"{"model":"m"}"#,
            r#"{"method":"LIME"}"#,
            r#"{"method":"LIME","model":"m","bogus":1}"#,
            r#"{"method":"LIME","model":"m","instance":"nope"}"#,
            r#"{"method":"LIME","model":"m","instance":[1,"x"]}"#,
            r#"{"method":"LIME","model":"m","feature":1.5}"#,
            r#"{"method":"LIME","model":"m","plan":{"workers":0}}"#,
            r#"{"method":"LIME","model":"m","plan":{"seed":-1}}"#,
            r#"{"method":"LIME","model":"m","plan":{"turbo":true}}"#,
            r#"{"method":"LIME","model":"m","plan":{"degradation":"yolo"}}"#,
        ];
        for text in cases {
            let err = ServeRequest::from_json_str(text).unwrap_err();
            assert!(matches!(err, XaiError::Parse { .. }), "{text} gave {err:?}");
        }
    }

    #[test]
    fn non_finite_instance_is_a_typed_error() {
        let err =
            ServeRequest::from_json_str(r#"{"method":"LIME","model":"m","instance":[1,1e999]}"#)
                .unwrap_err();
        assert!(matches!(err, XaiError::NonFiniteInput { .. }), "{err:?}");
    }

    #[test]
    fn explanations_round_trip_bit_exactly() {
        let samples = vec![
            Explanation::Attribution(FeatureAttribution {
                feature_names: vec!["a".into(), "b".into()],
                values: vec![0.1 + 0.2, -1.5e-13],
                baseline: 0.25,
                prediction: -0.75,
            }),
            Explanation::Rules(vec![RuleExplanation {
                conditions: vec![
                    Condition { feature: 0, feature_name: "a".into(), op: Op::Le, value: 3.5 },
                    Condition { feature: 2, feature_name: "c".into(), op: Op::Eq, value: 1.0 },
                ],
                prediction: 1.0,
                precision: 0.95,
                coverage: 0.4,
            }]),
            Explanation::Counterfactuals(vec![Counterfactual {
                original: vec![1.0, 2.0],
                counterfactual: vec![1.0, 3.25],
                original_output: 0.2,
                counterfactual_output: 0.8,
                changed_features: vec![1],
                distance: 1.25,
            }]),
            Explanation::DataValuation(DataAttribution {
                values: vec![0.5, -0.125, 0.0],
                measure: "data shapley (accuracy)".into(),
            }),
            Explanation::Curve(CurveExplanation {
                feature: 1,
                grid: vec![0.0, 0.5, 1.0],
                values: vec![0.1, 0.2, 0.3],
                ice: Some(vec![vec![0.0, 0.1, 0.2], vec![0.2, 0.3, 0.4]]),
            }),
        ];
        for explanation in samples {
            let text = explanation.to_json_string();
            let back = Explanation::from_json_str(&text).unwrap();
            assert_eq!(back.to_json_string(), text);
        }
    }

    #[test]
    fn malformed_explanations_are_typed_parse_errors() {
        let cases = [
            r#"{"features":["a"],"values":[1]}"#,
            r#"{"kind":"hologram"}"#,
            r#"{"kind":"feature_attribution","features":["a","b"],"values":[1],"baseline":0,"prediction":0}"#,
            r#"{"kind":"rules","rules":[{"conditions":[{"feature":0,"name":"a","op":"xor","value":1}],"prediction":1,"precision":1,"coverage":1}]}"#,
            r#"{"kind":"curve","feature":0,"grid":[0],"values":[0],"ice":"none"}"#,
        ];
        for text in cases {
            let err = Explanation::from_json_str(text).unwrap_err();
            assert!(matches!(err, XaiError::Parse { .. }), "{text} gave {err:?}");
        }
    }

    #[test]
    fn lru_cache_evicts_least_recently_used() {
        let mut cache = LruCache::new(2);
        assert_eq!(cache.insert((0, 1), "one".into()), 0);
        assert_eq!(cache.insert((0, 2), "two".into()), 0);
        assert!(cache.get(&(0, 1)).is_some()); // refresh (0,1)
        assert_eq!(cache.insert((0, 3), "three".into()), 1); // displaces (0,2)
        assert!(cache.get(&(0, 2)).is_none());
        assert!(cache.get(&(0, 1)).is_some());
        assert!(cache.get(&(0, 3)).is_some());
        // Replacing an existing key is not an eviction.
        assert_eq!(cache.insert((0, 3), "three'".into()), 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn service_serves_computes_and_caches() {
        let service = stub_service(ServiceConfig::default());
        let request = ServeRequest::new("Kernel SHAP", "toy")
            .with_instance(&[1.0, 2.0, 3.0])
            .with_plan(RunConfig::seeded(4));
        let cold = service.submit(&request).unwrap();
        assert!(!cold.cached);
        let explanation = cold.explanation().unwrap();
        let attribution = explanation.as_attribution().unwrap();
        assert_eq!(attribution.values, vec![5.0, 10.0, 15.0]);
        assert_eq!(attribution.prediction, 6.0);

        let warm = service.submit(&request).unwrap();
        assert!(warm.cached);
        assert_eq!(warm.payload, cold.payload);
        assert_eq!(warm.fingerprint, cold.fingerprint);

        // A different seed is a different canonical request: cache miss.
        let other = service
            .submit(&request.clone().with_plan(RunConfig::seeded(5)))
            .unwrap();
        assert!(!other.cached);
        assert_ne!(other.payload, cold.payload);

        let stats = service.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 2);
    }

    #[test]
    fn submit_json_round_trips_the_envelope() {
        let service = stub_service(ServiceConfig::default());
        let request =
            ServeRequest::new("Kernel SHAP", "toy").with_instance(&[1.0, 2.0, 3.0]);
        let envelope = service.submit_json(&request.to_json_string()).unwrap();
        let parsed = parse_json(&envelope).unwrap();
        assert_eq!(parsed.get("method").and_then(Json::as_str), Some("Kernel SHAP"));
        assert_eq!(parsed.get("cached"), Some(&Json::Bool(false)));
        let explanation = Explanation::from_json(parsed.get("explanation").unwrap()).unwrap();
        assert!(explanation.as_attribution().is_some());
    }

    #[test]
    fn validation_failures_are_typed_and_not_admitted() {
        let service = stub_service(ServiceConfig::default());
        let instance = [1.0, 2.0, 3.0];

        let unknown_method =
            ServeRequest::new("Gradient hologram", "toy").with_instance(&instance);
        assert!(matches!(service.submit(&unknown_method), Err(XaiError::Parse { .. })));

        // Catalogued card with no runnable explainer attached.
        let not_runnable = ServeRequest::new("TreeSHAP", "toy").with_instance(&instance);
        assert!(matches!(service.submit(&not_runnable), Err(XaiError::Unsupported { .. })));

        let unknown_model = ServeRequest::new("Kernel SHAP", "nope").with_instance(&instance);
        assert!(matches!(service.submit(&unknown_model), Err(XaiError::Parse { .. })));

        let bad_arity = ServeRequest::new("Kernel SHAP", "toy").with_instance(&[1.0]);
        assert!(matches!(service.submit(&bad_arity), Err(XaiError::Parse { .. })));

        let bad_feature =
            ServeRequest::new("Kernel SHAP", "toy").with_instance(&instance).with_feature(9);
        assert!(matches!(service.submit(&bad_feature), Err(XaiError::Parse { .. })));

        let nan_instance =
            ServeRequest::new("Kernel SHAP", "toy").with_instance(&[1.0, f64::NAN, 3.0]);
        assert!(matches!(service.submit(&nan_instance), Err(XaiError::NonFiniteInput { .. })));

        let stats = service.stats();
        assert_eq!(stats.submitted, 0);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
    }

    #[test]
    fn explainer_panics_become_worker_panic_errors() {
        let service = stub_service(ServiceConfig::default());
        let request = ServeRequest::new("LIME", "toy").with_instance(&[1.0, 2.0, 3.0]);
        match service.submit(&request) {
            Err(XaiError::WorkerPanic { message, .. }) => {
                assert!(message.contains("stub explainer exploded"));
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        let stats = service.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 0);
        // The worker survives its job's panic and keeps serving.
        let ok = service
            .submit(&ServeRequest::new("Kernel SHAP", "toy").with_instance(&[1.0, 2.0, 3.0]));
        assert!(ok.is_ok());
    }

    #[test]
    fn queue_full_is_admission_control() {
        // One worker, capacity-1 queue. A gate inside the model blocks
        // the worker; a second submission fills the queue; a third is
        // rejected with QueueFull before touching any compute.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let entered = Arc::new((Mutex::new(0usize), Condvar::new()));
        let service = Arc::new({
            let service = ExplanationService::new(
                stub_registry(),
                ServiceConfig { workers: 1, queue_capacity: 1, cache_capacity: 8, memo_capacity: 0 },
            );
            let (gate, entered) = (Arc::clone(&gate), Arc::clone(&entered));
            let oracle = FnOracle::new(3, move |x: &[f64]| {
                {
                    let (count, signal) = &*entered;
                    *lock(count) += 1;
                    signal.notify_all();
                }
                let (open, opened) = &*gate;
                let mut open = lock(open);
                while !*open {
                    open = opened.wait(open).unwrap_or_else(PoisonError::into_inner);
                }
                x.iter().sum()
            });
            service.register_model("toy", Arc::new(oracle), tiny_dataset(), b"gated-model");
            service
        });

        let request = |seed: u64| {
            ServeRequest::new("Kernel SHAP", "toy")
                .with_instance(&[1.0, 2.0, 3.0])
                .with_plan(RunConfig::seeded(seed))
        };
        let worker_bound = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || service.submit(&request(1)))
        };
        // Wait until the worker is provably inside the gated model.
        {
            let (count, signal) = &*entered;
            let mut count = lock(count);
            while *count == 0 {
                count = signal.wait(count).unwrap_or_else(PoisonError::into_inner);
            }
        }
        let queued = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || service.submit(&request(2)))
        };
        // Wait until the second submission occupies the queue slot.
        while service.stats().submitted < 2 {
            std::thread::yield_now();
        }
        let rejected = service.submit(&request(3));
        assert!(
            matches!(rejected, Err(XaiError::QueueFull { capacity: 1 })),
            "{rejected:?}"
        );
        assert_eq!(service.stats().rejected, 1);

        // Open the gate; both admitted requests complete.
        {
            let (open, opened) = &*gate;
            *lock(open) = true;
            opened.notify_all();
        }
        assert!(worker_bound.join().unwrap().is_ok());
        assert!(queued.join().unwrap().is_ok());
        let stats = service.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.cache_hits + stats.cache_misses, stats.submitted);
    }

    #[test]
    fn cache_capacity_bounds_entries_and_counts_evictions() {
        let service = stub_service(ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            cache_capacity: 2,
            memo_capacity: 0,
        });
        for seed in 0..4 {
            let request = ServeRequest::new("Kernel SHAP", "toy")
                .with_instance(&[1.0, 2.0, 3.0])
                .with_plan(RunConfig::seeded(seed));
            service.submit(&request).unwrap();
        }
        assert_eq!(service.cache_len(), 2);
        let stats = service.stats();
        assert_eq!(stats.cache_misses, 4);
        assert_eq!(stats.cache_evictions, 2);
    }

    #[test]
    fn drop_answers_pending_work_and_joins_workers() {
        let service = stub_service(ServiceConfig { workers: 2, ..ServiceConfig::default() });
        let request = ServeRequest::new("Kernel SHAP", "toy").with_instance(&[1.0, 2.0, 3.0]);
        service.submit(&request).unwrap();
        drop(service); // must not hang
    }

    #[test]
    fn model_replacement_changes_fingerprint_and_cache_keys() {
        let service = stub_service(ServiceConfig::default());
        let request = ServeRequest::new("Kernel SHAP", "toy").with_instance(&[1.0, 2.0, 3.0]);
        let before = service.submit(&request).unwrap();

        let oracle = Arc::new(FnOracle::new(3, |x: &[f64]| 2.0 * x.iter().sum::<f64>()));
        let fp = service.register_model("toy", oracle, tiny_dataset(), b"toy-model-v2");
        assert_ne!(fp, before.fingerprint);
        assert_eq!(service.model_fingerprint("toy"), Some(fp));

        // Same request, new model version: the old cache entry is
        // unreachable (key embeds the fingerprint), so this is a miss.
        let after = service.submit(&request).unwrap();
        assert!(!after.cached);
        assert_eq!(after.fingerprint, fp);
        assert_ne!(after.payload, before.payload);
    }
}
