//! The tutorial's taxonomy (§1), made executable.
//!
//! Every explanation method in the workspace carries a [`MethodCard`]
//! describing where it sits along the three dimensions the tutorial uses to
//! organize the field:
//!
//! - **(a)** explainability *by design* ([`Stage::Intrinsic`]) vs *post
//!   factum* analysis ([`Stage::PostHoc`]);
//! - **(b)** requires *system internals* ([`Access::ModelSpecific`]) vs
//!   applicable to any black box ([`Access::ModelAgnostic`]);
//! - **(c)** explains *one prediction* ([`Scope::Local`]), the *whole
//!   model* ([`Scope::Global`]), or training *data* responsibility
//!   ([`Scope::TrainingData`] — the tutorial's §2.3 axis).
//!
//! The [`Registry`] answers the kinds of questions the tutorial poses
//! ("which model-agnostic local methods exist?") programmatically — and,
//! since the unified explainer layer (DESIGN.md §9), it can also *run* the
//! methods it catalogues: [`Registry::register_explainer`] attaches a live
//! [`Explainer`](crate::explainer::Explainer) to a card, and
//! [`Registry::resolve`] hands runnable trait objects back by taxonomy
//! position.

use std::fmt;
use std::sync::Arc;

use crate::explainer::Explainer;

/// How runnable explainers are shared out of the [`Registry`].
pub type SharedExplainer = Arc<dyn Explainer>;

/// When explainability is achieved (tutorial dimension (a)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Interpretable by construction (linear models, decision sets, …).
    Intrinsic,
    /// Computed after training by analyzing the fitted system.
    PostHoc,
}

/// What access the method assumes (tutorial dimension (b)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Access {
    /// Only needs a prediction oracle.
    ModelAgnostic,
    /// Needs model internals (tree structure, gradients, Hessians, …).
    ModelSpecific,
}

/// What the explanation is about (tutorial dimension (c), extended with the
/// §2.3 training-data axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scope {
    /// A single prediction.
    Local,
    /// Overall model behaviour.
    Global,
    /// Responsibility of training data points.
    TrainingData,
}

/// The form the explanation takes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExplanationForm {
    /// A real-valued score per feature.
    FeatureAttribution,
    /// If-then rules / anchors / sufficient reasons.
    Rules,
    /// Contrastive examples and recourse actions.
    Counterfactual,
    /// Scores over training examples.
    DataValuation,
    /// Provenance polynomials / lineage over database tuples.
    Provenance,
}

/// Metadata describing one explanation method.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodCard {
    /// Canonical method name ("Kernel SHAP", "Anchors", …).
    pub name: &'static str,
    /// Tutorial section that surveys it ("2.1.2").
    pub section: &'static str,
    /// Dimension (a).
    pub stage: Stage,
    /// Dimension (b).
    pub access: Access,
    /// Dimension (c).
    pub scope: Scope,
    /// Output form.
    pub form: ExplanationForm,
    /// Primary citation as it appears in the tutorial's bibliography.
    pub citation: &'static str,
}

impl fmt::Display for MethodCard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (§{}; {:?}/{:?}/{:?}; {})",
            self.name, self.section, self.stage, self.access, self.scope, self.citation
        )
    }
}

/// A queryable catalogue of method cards, optionally paired with live,
/// runnable [`Explainer`](crate::explainer::Explainer) implementations.
///
/// Metadata-only entries (surveyed methods without a workspace
/// implementation) and runnable entries share one catalogue; `runners`
/// stays parallel to `cards` by index.
#[derive(Clone, Default)]
pub struct Registry {
    cards: Vec<MethodCard>,
    runners: Vec<Option<SharedExplainer>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("cards", &self.cards)
            .field("runnable", &self.runnable_names())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a metadata-only card (duplicate names are rejected).
    pub fn register(&mut self, card: MethodCard) -> Result<(), String> {
        if self.cards.iter().any(|c| c.name == card.name) {
            return Err(format!("method '{}' already registered", card.name));
        }
        self.cards.push(card);
        self.runners.push(None);
        Ok(())
    }

    /// Registers a runnable explainer under its own card. If a
    /// metadata-only card with the same name is already catalogued, the
    /// explainer is attached to it; attaching twice is rejected.
    pub fn register_explainer(&mut self, explainer: SharedExplainer) -> Result<(), String> {
        let card = explainer.card();
        if let Some(i) = self.cards.iter().position(|c| c.name == card.name) {
            if self.runners[i].is_some() {
                return Err(format!("explainer '{}' already registered", card.name));
            }
            if self.cards[i] != card {
                return Err(format!(
                    "explainer '{}' disagrees with its catalogued card",
                    card.name
                ));
            }
            self.runners[i] = Some(explainer);
        } else {
            self.cards.push(card);
            self.runners.push(Some(explainer));
        }
        Ok(())
    }

    /// All cards in registration order.
    pub fn cards(&self) -> &[MethodCard] {
        &self.cards
    }

    /// Looks a method up by name.
    pub fn get(&self, name: &str) -> Option<&MethodCard> {
        self.cards.iter().find(|c| c.name == name)
    }

    /// Cards matching the given (optional) dimension filters.
    pub fn query(
        &self,
        stage: Option<Stage>,
        access: Option<Access>,
        scope: Option<Scope>,
    ) -> Vec<&MethodCard> {
        self.cards
            .iter()
            .filter(|c| stage.is_none_or(|s| c.stage == s))
            .filter(|c| access.is_none_or(|a| c.access == a))
            .filter(|c| scope.is_none_or(|s| c.scope == s))
            .collect()
    }

    /// Cards surveyed in a given tutorial section prefix ("2.1" matches
    /// "2.1.2").
    pub fn by_section(&self, prefix: &str) -> Vec<&MethodCard> {
        self.cards.iter().filter(|c| c.section.starts_with(prefix)).collect()
    }

    /// The runnable explainer registered under `name`, if any.
    pub fn get_explainer(&self, name: &str) -> Option<SharedExplainer> {
        let i = self.cards.iter().position(|c| c.name == name)?;
        self.runners[i].clone()
    }

    /// True when `name` is catalogued *and* runnable.
    pub fn is_runnable(&self, name: &str) -> bool {
        self.get_explainer(name).is_some()
    }

    /// Live explainers at the given taxonomy position, in registration
    /// order — the tutorial's "which model-agnostic local methods exist?"
    /// answered with runnable code instead of metadata.
    pub fn resolve(&self, scope: Scope, access: Access) -> Vec<SharedExplainer> {
        self.cards
            .iter()
            .zip(&self.runners)
            .filter(|(c, _)| c.scope == scope && c.access == access)
            .filter_map(|(_, r)| r.clone())
            .collect()
    }

    /// All runnable explainers, in registration order.
    pub fn runnable(&self) -> Vec<SharedExplainer> {
        self.runners.iter().flatten().cloned().collect()
    }

    /// Names of the runnable entries, in registration order.
    pub fn runnable_names(&self) -> Vec<&'static str> {
        self.cards
            .iter()
            .zip(&self.runners)
            .filter(|(_, r)| r.is_some())
            .map(|(c, _)| c.name)
            .collect()
    }
}

/// The static catalogue behind [`workspace_registry`]: every method
/// implemented in this workspace, in tutorial order. Method crates fetch
/// their own card from here via [`method_card`], so the metadata lives in
/// exactly one place and an `Explainer` impl can never drift from the
/// catalogue.
pub const WORKSPACE_CARDS: &[MethodCard] = &[
        MethodCard {
            name: "LIME",
            section: "2.1.1",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Local,
            form: ExplanationForm::FeatureAttribution,
            citation: "Ribeiro et al., KDD 2016 [53]",
        },
        MethodCard {
            name: "Global surrogate",
            section: "2.1.1",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Global,
            form: ExplanationForm::FeatureAttribution,
            citation: "Molnar 2020 [50]",
        },
        MethodCard {
            name: "Linear model tree",
            section: "2.1.1",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Global,
            form: ExplanationForm::FeatureAttribution,
            citation: "Lahiri & Edakunni 2020 [42]",
        },
        MethodCard {
            name: "Exact Shapley",
            section: "2.1.2",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Local,
            form: ExplanationForm::FeatureAttribution,
            citation: "Shapley 1953 [63]",
        },
        MethodCard {
            name: "Permutation sampling Shapley",
            section: "2.1.2",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Local,
            form: ExplanationForm::FeatureAttribution,
            citation: "Datta et al., S&P 2016 [14]",
        },
        MethodCard {
            name: "Kernel SHAP",
            section: "2.1.2",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Local,
            form: ExplanationForm::FeatureAttribution,
            citation: "Lundberg & Lee, NeurIPS 2017 [47]",
        },
        MethodCard {
            name: "TreeSHAP",
            section: "2.1.2",
            stage: Stage::PostHoc,
            access: Access::ModelSpecific,
            scope: Scope::Local,
            form: ExplanationForm::FeatureAttribution,
            citation: "Lundberg et al., Nat. Mach. Intell. 2020 [46]",
        },
        MethodCard {
            name: "QII",
            section: "2.1.2",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Local,
            form: ExplanationForm::FeatureAttribution,
            citation: "Datta et al., S&P 2016 [14]",
        },
        MethodCard {
            name: "Global SHAP",
            section: "2.1.2",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Global,
            form: ExplanationForm::FeatureAttribution,
            citation: "Lundberg et al. 2020 [46]",
        },
        MethodCard {
            name: "Asymmetric Shapley values",
            section: "2.1.3",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Local,
            form: ExplanationForm::FeatureAttribution,
            citation: "Frye et al. 2019 [18]",
        },
        MethodCard {
            name: "Causal Shapley values",
            section: "2.1.3",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Local,
            form: ExplanationForm::FeatureAttribution,
            citation: "Heskes et al. 2020 [30]",
        },
        MethodCard {
            name: "Shapley flow",
            section: "2.1.3",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Local,
            form: ExplanationForm::FeatureAttribution,
            citation: "Wang et al., AISTATS 2021 [74]",
        },
        MethodCard {
            name: "DiCE",
            section: "2.1.4",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Local,
            form: ExplanationForm::Counterfactual,
            citation: "Mothilal et al., FAT* 2020 [51]",
        },
        MethodCard {
            name: "GeCo",
            section: "2.1.4",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Local,
            form: ExplanationForm::Counterfactual,
            citation: "Schleich et al., VLDB 2021 [60]",
        },
        MethodCard {
            name: "Actionable recourse",
            section: "2.1.4",
            stage: Stage::PostHoc,
            access: Access::ModelSpecific,
            scope: Scope::Local,
            form: ExplanationForm::Counterfactual,
            citation: "Ustun et al., FAT* 2019 [69]",
        },
        MethodCard {
            name: "LEWIS",
            section: "2.1.4",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Local,
            form: ExplanationForm::Counterfactual,
            citation: "Galhotra et al., SIGMOD 2021 [20]",
        },
        MethodCard {
            name: "Anchors",
            section: "2.2",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Local,
            form: ExplanationForm::Rules,
            citation: "Ribeiro et al., AAAI 2018 [54]",
        },
        MethodCard {
            name: "Interpretable decision sets",
            section: "2.2",
            stage: Stage::Intrinsic,
            access: Access::ModelAgnostic,
            scope: Scope::Global,
            form: ExplanationForm::Rules,
            citation: "Lakkaraju et al., KDD 2016 [43]",
        },
        MethodCard {
            name: "Rule list (sequential covering)",
            section: "2.2",
            stage: Stage::Intrinsic,
            access: Access::ModelAgnostic,
            scope: Scope::Global,
            form: ExplanationForm::Rules,
            citation: "Clark & Niblett 1989 (CN2); cf. decision sets [43]",
        },
        MethodCard {
            name: "Association rule mining",
            section: "2.2.1",
            stage: Stage::Intrinsic,
            access: Access::ModelAgnostic,
            scope: Scope::Global,
            form: ExplanationForm::Rules,
            citation: "Agrawal et al., SIGMOD 1993 [3]",
        },
        MethodCard {
            name: "Sufficient reasons",
            section: "2.2.2",
            stage: Stage::PostHoc,
            access: Access::ModelSpecific,
            scope: Scope::Local,
            form: ExplanationForm::Rules,
            citation: "Shih et al. 2018 [65]; Darwiche & Hirth 2020 [12]",
        },
        MethodCard {
            name: "Leave-one-out",
            section: "2.3.1",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::TrainingData,
            form: ExplanationForm::DataValuation,
            citation: "Cook 1977; the §2.3 valuation baseline",
        },
        MethodCard {
            name: "Data Shapley (TMC)",
            section: "2.3.1",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::TrainingData,
            form: ExplanationForm::DataValuation,
            citation: "Ghorbani & Zou, ICML 2019 [24]",
        },
        MethodCard {
            name: "KNN-Shapley",
            section: "2.3.1",
            stage: Stage::PostHoc,
            access: Access::ModelSpecific,
            scope: Scope::TrainingData,
            form: ExplanationForm::DataValuation,
            citation: "Jia et al., AISTATS 2019 [34]",
        },
        MethodCard {
            name: "Distributional Shapley",
            section: "2.3.1",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::TrainingData,
            form: ExplanationForm::DataValuation,
            citation: "Ghorbani et al., ICML 2020 [23]; Kwon et al. 2021 [41]",
        },
        MethodCard {
            name: "Influence functions",
            section: "2.3.2",
            stage: Stage::PostHoc,
            access: Access::ModelSpecific,
            scope: Scope::TrainingData,
            form: ExplanationForm::DataValuation,
            citation: "Koh & Liang, ICML 2017 [39]",
        },
        MethodCard {
            name: "Second-order group influence",
            section: "2.3.2",
            stage: Stage::PostHoc,
            access: Access::ModelSpecific,
            scope: Scope::TrainingData,
            form: ExplanationForm::DataValuation,
            citation: "Basu et al., ICML 2020 [8]",
        },
        MethodCard {
            name: "LeafInfluence",
            section: "2.3.2",
            stage: Stage::PostHoc,
            access: Access::ModelSpecific,
            scope: Scope::TrainingData,
            form: ExplanationForm::DataValuation,
            citation: "Sharchilev et al., ICML 2018 [64]",
        },
        MethodCard {
            name: "Tuple Shapley",
            section: "3",
            stage: Stage::PostHoc,
            access: Access::ModelSpecific,
            scope: Scope::TrainingData,
            form: ExplanationForm::Provenance,
            citation: "Sebag et al., LMCS 2021 [62]",
        },
        MethodCard {
            name: "PrIU incremental updates",
            section: "3",
            stage: Stage::PostHoc,
            access: Access::ModelSpecific,
            scope: Scope::TrainingData,
            form: ExplanationForm::DataValuation,
            citation: "Wu et al., SIGMOD 2020 [77]",
        },
        MethodCard {
            name: "Complaint-driven debugging",
            section: "3",
            stage: Stage::PostHoc,
            access: Access::ModelSpecific,
            scope: Scope::TrainingData,
            form: ExplanationForm::DataValuation,
            citation: "Wu et al., SIGMOD 2020 [76]",
        },
        MethodCard {
            name: "Pipeline provenance",
            section: "3",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::TrainingData,
            form: ExplanationForm::Provenance,
            citation: "Herschel et al., VLDBJ 2017 [29]",
        },
        MethodCard {
            name: "Partial dependence / ICE",
            section: "2",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Global,
            form: ExplanationForm::FeatureAttribution,
            citation: "Friedman 2001; Molnar 2020 [50]",
        },
        MethodCard {
            name: "Permutation importance",
            section: "2",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Global,
            form: ExplanationForm::FeatureAttribution,
            citation: "Breiman 2001; Molnar 2020 [50]",
        },
        MethodCard {
            name: "Integrated gradients",
            section: "2.4",
            stage: Stage::PostHoc,
            access: Access::ModelSpecific,
            scope: Scope::Local,
            form: ExplanationForm::FeatureAttribution,
            citation: "Sundararajan et al. 2017; cf. saliency critiques [2, 22]",
        },
        MethodCard {
            name: "SmoothGrad",
            section: "2.4",
            stage: Stage::PostHoc,
            access: Access::ModelSpecific,
            scope: Scope::Local,
            form: ExplanationForm::FeatureAttribution,
            citation: "Smilkov et al. 2017; cf. fragility critique [22]",
        },
        MethodCard {
            name: "CXPlain",
            section: "2.1.3",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Local,
            form: ExplanationForm::FeatureAttribution,
            citation: "Schwab & Karlen 2019 [61]",
        },
        MethodCard {
            name: "Shapley interaction index",
            section: "2.1.2",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Local,
            form: ExplanationForm::FeatureAttribution,
            citation: "Lundberg et al. 2020 [46]; Kumar et al. 2020 [40]",
        },
        MethodCard {
            name: "Data Banzhaf",
            section: "2.3.1",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::TrainingData,
            form: ExplanationForm::DataValuation,
            citation: "Wang & Jia 2023; cf. stability discussion [34]",
        },
        MethodCard {
            name: "Logistic unlearning",
            section: "3",
            stage: Stage::PostHoc,
            access: Access::ModelSpecific,
            scope: Scope::TrainingData,
            form: ExplanationForm::DataValuation,
            citation: "Schelter et al., SIGMOD 2021 [59]",
        },
        MethodCard {
            name: "Wachter counterfactuals",
            section: "2.1.4",
            stage: Stage::PostHoc,
            access: Access::ModelSpecific,
            scope: Scope::Local,
            form: ExplanationForm::Counterfactual,
            citation: "Wachter et al. 2017; grounding via Lewis [45]",
        },
        MethodCard {
            name: "SP-LIME",
            section: "2.1.1",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Global,
            form: ExplanationForm::FeatureAttribution,
            citation: "Ribeiro et al., KDD 2016 [53]",
        },
        MethodCard {
            name: "Conditional SHAP",
            section: "2.1.2",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Local,
            form: ExplanationForm::FeatureAttribution,
            citation: "Aas et al. 2021; critique context [40]",
        },
        MethodCard {
            name: "Owen values",
            section: "2.1.2",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Local,
            form: ExplanationForm::FeatureAttribution,
            citation: "Owen 1977; grouped attribution for one-hot blocks",
        },
        MethodCard {
            name: "Shapley for database repairs",
            section: "3",
            stage: Stage::PostHoc,
            access: Access::ModelSpecific,
            scope: Scope::TrainingData,
            form: ExplanationForm::Provenance,
            citation: "Deutch et al., CIKM 2021 [17]",
        },
        MethodCard {
            name: "Why-not provenance",
            section: "3",
            stage: Stage::PostHoc,
            access: Access::ModelSpecific,
            scope: Scope::TrainingData,
            form: ExplanationForm::Provenance,
            citation: "Meliou et al., MUD 2010 [49]",
        },
];

/// The catalogued card for `name`.
///
/// # Panics
/// Panics when `name` is not in [`WORKSPACE_CARDS`] — `Explainer` impls
/// call this with literal names, so a miss is a wiring bug, caught by the
/// registry-completeness suite.
pub fn method_card(name: &str) -> MethodCard {
    WORKSPACE_CARDS
        .iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("method '{name}' is not in WORKSPACE_CARDS"))
        .clone()
}

/// Builds the registry pre-populated with every method implemented in this
/// workspace, in tutorial order (metadata only; the top-level `xai` crate
/// attaches the runnable explainers).
pub fn workspace_registry() -> Registry {
    let mut r = Registry::new();
    for card in WORKSPACE_CARDS {
        r.register(card.clone()).expect("workspace registry has unique names");
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_rejects_duplicates() {
        let mut r = Registry::new();
        let card = MethodCard {
            name: "X",
            section: "2.1",
            stage: Stage::PostHoc,
            access: Access::ModelAgnostic,
            scope: Scope::Local,
            form: ExplanationForm::FeatureAttribution,
            citation: "-",
        };
        r.register(card.clone()).unwrap();
        assert!(r.register(card).is_err());
    }

    #[test]
    fn workspace_registry_is_complete_and_consistent() {
        let r = workspace_registry();
        assert!(r.cards().len() >= 25, "expected a rich catalogue, got {}", r.cards().len());
        // Every §2 family is represented.
        for prefix in ["2.1.1", "2.1.2", "2.1.3", "2.1.4", "2.2", "2.3.1", "2.3.2", "3"] {
            assert!(!r.by_section(prefix).is_empty(), "no methods for §{prefix}");
        }
    }

    #[test]
    fn taxonomy_queries() {
        let r = workspace_registry();
        let agnostic_local = r.query(None, Some(Access::ModelAgnostic), Some(Scope::Local));
        assert!(agnostic_local.iter().any(|c| c.name == "LIME"));
        assert!(agnostic_local.iter().any(|c| c.name == "Kernel SHAP"));
        assert!(!agnostic_local.iter().any(|c| c.name == "TreeSHAP"));
        let data_methods = r.query(None, None, Some(Scope::TrainingData));
        assert!(data_methods.iter().any(|c| c.name == "Data Shapley (TMC)"));
        assert!(data_methods.iter().any(|c| c.name == "Influence functions"));
        let intrinsic = r.query(Some(Stage::Intrinsic), None, None);
        assert!(intrinsic.iter().any(|c| c.name == "Interpretable decision sets"));
    }

    #[test]
    fn display_is_informative() {
        let r = workspace_registry();
        let s = r.get("LIME").unwrap().to_string();
        assert!(s.contains("LIME") && s.contains("2.1.1") && s.contains("Ribeiro"));
    }

    #[test]
    fn method_card_looks_up_the_catalogue() {
        assert_eq!(method_card("Kernel SHAP").section, "2.1.2");
        assert_eq!(method_card("Leave-one-out").scope, Scope::TrainingData);
    }

    #[test]
    #[should_panic(expected = "not in WORKSPACE_CARDS")]
    fn method_card_rejects_unknown_names() {
        let _ = method_card("not a method");
    }

    #[test]
    fn registry_attaches_and_resolves_runnable_explainers() {
        use crate::explainer::{ExplainRequest, Explanation, ModelOracle};
        use std::sync::Arc;

        struct Dummy;
        impl Explainer for Dummy {
            fn card(&self) -> MethodCard {
                method_card("LIME")
            }
            fn explain(
                &self,
                _model: &dyn ModelOracle,
                _req: &ExplainRequest<'_>,
            ) -> crate::XaiResult<Explanation> {
                Ok(Explanation::Rules(vec![]))
            }
        }

        let mut r = workspace_registry();
        assert!(!r.is_runnable("LIME"));
        assert!(r.resolve(Scope::Local, Access::ModelAgnostic).is_empty());

        r.register_explainer(Arc::new(Dummy)).unwrap();
        assert!(r.is_runnable("LIME"));
        // Attaching to an existing card must not duplicate it.
        assert_eq!(r.cards().len(), WORKSPACE_CARDS.len());
        // Double registration is rejected.
        assert!(r.register_explainer(Arc::new(Dummy)).is_err());

        let live = r.resolve(Scope::Local, Access::ModelAgnostic);
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].card().name, "LIME");
        assert_eq!(r.runnable_names(), vec!["LIME"]);
        assert!(r.get_explainer("LIME").is_some());
        assert!(r.get_explainer("TreeSHAP").is_none());
        // Debug output lists the runnable subset without requiring
        // `dyn Explainer: Debug`.
        assert!(format!("{r:?}").contains("LIME"));
    }
}
