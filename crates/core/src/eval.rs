//! Explanation-evaluation protocols (§3 "User study and evaluation").
//!
//! User studies proper need humans; what *can* be automated — and what the
//! literature the tutorial cites uses as proxies — are faithfulness and
//! stability measurements:
//!
//! - **deletion/insertion curves**: replace features with a baseline in
//!   attribution order and watch the prediction move. A faithful
//!   attribution makes the prediction collapse quickly under deletion and
//!   recover quickly under insertion.
//! - **fidelity**: agreement between a surrogate and the model it claims
//!   to mimic.
//! - **stability**: agreement of repeated stochastic explanations of the
//!   same instance (the §2.1.1 "unreliable sampling" critique, generic
//!   form; LIME-specific VSI/CSI indices live in `xai-surrogate`).

use crate::explanation::FeatureAttribution;
use xai_linalg::stats::{mean, top_k_agreement};

/// One deletion or insertion trajectory.
#[derive(Clone, Debug)]
pub struct FaithfulnessCurve {
    /// Prediction after perturbing the `i` most important features
    /// (`points\[0\]` is the unperturbed / fully-baseline prediction).
    pub points: Vec<f64>,
    /// Normalized area under the curve (trapezoid rule over the unit x-range).
    pub auc: f64,
}

fn auc_of(points: &[f64]) -> f64 {
    if points.len() < 2 {
        return points.first().copied().unwrap_or(0.0);
    }
    let n = (points.len() - 1) as f64;
    points.windows(2).map(|w| 0.5 * (w[0] + w[1])).sum::<f64>() / n
}

/// Deletion curve: starting from `instance`, replaces features with
/// `baseline` values in decreasing-importance order.
///
/// For a faithful explanation of a positive prediction the curve drops
/// fast, giving a *low* AUC.
pub fn deletion_curve(
    model: &dyn Fn(&[f64]) -> f64,
    instance: &[f64],
    baseline: &[f64],
    attribution: &FeatureAttribution,
) -> FaithfulnessCurve {
    assert_eq!(instance.len(), baseline.len());
    assert_eq!(instance.len(), attribution.len());
    let order = attribution.ranking();
    let mut x = instance.to_vec();
    let mut points = Vec::with_capacity(order.len() + 1);
    points.push(model(&x));
    for &j in &order {
        x[j] = baseline[j];
        points.push(model(&x));
    }
    let auc = auc_of(&points);
    FaithfulnessCurve { points, auc }
}

/// Insertion curve: starting from `baseline`, restores the instance's
/// features in decreasing-importance order. Faithful ⇒ fast recovery ⇒
/// *high* AUC.
pub fn insertion_curve(
    model: &dyn Fn(&[f64]) -> f64,
    instance: &[f64],
    baseline: &[f64],
    attribution: &FeatureAttribution,
) -> FaithfulnessCurve {
    assert_eq!(instance.len(), baseline.len());
    assert_eq!(instance.len(), attribution.len());
    let order = attribution.ranking();
    let mut x = baseline.to_vec();
    let mut points = Vec::with_capacity(order.len() + 1);
    points.push(model(&x));
    for &j in &order {
        x[j] = instance[j];
        points.push(model(&x));
    }
    let auc = auc_of(&points);
    FaithfulnessCurve { points, auc }
}

/// Fidelity of a surrogate to the model over a set of probe rows:
/// R² of surrogate predictions against model predictions.
pub fn fidelity(
    model: &dyn Fn(&[f64]) -> f64,
    surrogate: &dyn Fn(&[f64]) -> f64,
    probes: &[Vec<f64>],
) -> f64 {
    let m: Vec<f64> = probes.iter().map(|p| model(p)).collect();
    let s: Vec<f64> = probes.iter().map(|p| surrogate(p)).collect();
    xai_linalg::r_squared(&m, &s)
}

/// Stability report for a stochastic explainer re-run on one instance.
#[derive(Clone, Debug)]
pub struct StabilityReport {
    /// Mean pairwise top-k agreement of feature rankings across reruns
    /// (1.0 = the same k features always matter).
    pub mean_topk_agreement: f64,
    /// Per-feature standard deviation of the attribution values.
    pub value_stds: Vec<f64>,
    /// Number of reruns measured.
    pub runs: usize,
}

/// Measures ranking and value stability across repeated explanations.
///
/// `explain` is called `runs` times (it should use fresh randomness each
/// call — that is precisely what is being measured).
pub fn stability(explain: &mut dyn FnMut() -> FeatureAttribution, runs: usize, k: usize) -> StabilityReport {
    assert!(runs >= 2, "need at least two runs to measure stability");
    let attributions: Vec<FeatureAttribution> = (0..runs).map(|_| explain()).collect();
    let d = attributions[0].len();
    for a in &attributions {
        assert_eq!(a.len(), d, "explanations changed arity between runs");
    }
    let mut agreements = Vec::new();
    for i in 0..runs {
        for j in i + 1..runs {
            agreements.push(top_k_agreement(
                &attributions[i].values.iter().map(|v| v.abs()).collect::<Vec<_>>(),
                &attributions[j].values.iter().map(|v| v.abs()).collect::<Vec<_>>(),
                k,
            ));
        }
    }
    let value_stds = (0..d)
        .map(|f| {
            let vals: Vec<f64> = attributions.iter().map(|a| a.values[f]).collect();
            xai_linalg::stats::std_dev(&vals)
        })
        .collect();
    StabilityReport {
        mean_topk_agreement: mean(&agreements),
        value_stds,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_model() -> impl Fn(&[f64]) -> f64 {
        |x: &[f64]| 2.0 * x[0] - 1.0 * x[1] + 0.0 * x[2]
    }

    fn good_attr() -> FeatureAttribution {
        FeatureAttribution::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec![2.0, -1.0, 0.0],
            0.0,
            1.0,
        )
    }

    fn bad_attr() -> FeatureAttribution {
        // Claims the irrelevant feature is the most important one.
        FeatureAttribution::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec![0.01, 0.02, 5.0],
            0.0,
            1.0,
        )
    }

    #[test]
    fn deletion_prefers_faithful_attributions() {
        let model = linear_model();
        let instance = [1.0, -1.0, 1.0]; // prediction = 3
        let baseline = [0.0, 0.0, 0.0];
        let good = deletion_curve(&model, &instance, &baseline, &good_attr());
        let bad = deletion_curve(&model, &instance, &baseline, &bad_attr());
        assert_eq!(good.points[0], 3.0);
        assert_eq!(*good.points.last().unwrap(), 0.0);
        assert!(
            good.auc < bad.auc,
            "faithful deletion AUC {} must be below unfaithful {}",
            good.auc,
            bad.auc
        );
    }

    #[test]
    fn insertion_prefers_faithful_attributions() {
        let model = linear_model();
        let instance = [1.0, -1.0, 1.0];
        let baseline = [0.0, 0.0, 0.0];
        let good = insertion_curve(&model, &instance, &baseline, &good_attr());
        let bad = insertion_curve(&model, &instance, &baseline, &bad_attr());
        assert!(good.auc > bad.auc);
        assert_eq!(*good.points.last().unwrap(), 3.0);
    }

    #[test]
    fn fidelity_of_identical_functions_is_one() {
        let model = linear_model();
        let probes: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64 * 0.3 - 3.0, (i % 5) as f64, 1.0])
            .collect();
        assert!((fidelity(&model, &linear_model(), &probes) - 1.0).abs() < 1e-12);
        let wrong = |x: &[f64]| -2.0 * x[0];
        assert!(fidelity(&model, &wrong, &probes) < 0.5);
    }

    #[test]
    fn stability_detects_deterministic_vs_noisy() {
        let mut calls = 0usize;
        let mut deterministic = || {
            FeatureAttribution::new(
                vec!["a".into(), "b".into()],
                vec![1.0, 0.5],
                0.0,
                1.5,
            )
        };
        let det = stability(&mut deterministic, 5, 1);
        assert!((det.mean_topk_agreement - 1.0).abs() < 1e-12);
        assert!(det.value_stds.iter().all(|s| *s < 1e-12));

        let mut noisy = || {
            calls += 1;
            // Alternates which feature dominates.
            let v = if calls % 2 == 0 { vec![1.0, 0.0] } else { vec![0.0, 1.0] };
            FeatureAttribution::new(vec!["a".into(), "b".into()], v, 0.0, 1.0)
        };
        let noise = stability(&mut noisy, 6, 1);
        assert!(noise.mean_topk_agreement < 0.6);
        assert!(noise.value_stds[0] > 0.3);
    }
}
