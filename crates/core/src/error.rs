//! The workspace-wide error layer: one taxonomy for every way an
//! explanation pipeline can fail.
//!
//! Explainers are fragile by construction — they probe models with
//! perturbed inputs, fit local regressions on sampled neighbourhoods, and
//! retrain models on data subsets. Each of those steps can hit degenerate
//! data (NaN features, constant backgrounds), singular linear systems,
//! non-convergent optimizers, misbehaving models, or a worker panic. The
//! `try_*` twins of every entry point report those failures as
//! [`XaiError`] values instead of panicking or leaking NaN; the original
//! panicking APIs remain as thin wrappers for callers that prefer to
//! crash.
//!
//! Mapping rules (see `DESIGN.md` §8 for the full taxonomy):
//! - NaN/±Inf found in caller-supplied data → [`XaiError::NonFiniteInput`];
//! - NaN/±Inf produced by the *model under explanation* →
//!   [`XaiError::ModelFault`];
//! - a linear system that stays singular after ridge escalation →
//!   [`XaiError::SingularSystem`];
//! - an iterative fitter exhausting its iteration budget without meeting
//!   its tolerance → [`XaiError::ConvergenceFailure`];
//! - a [`SampleBudget`] expiring before *any* sample completed →
//!   [`XaiError::BudgetExceeded`] (partial progress is returned as a
//!   best-effort estimate instead, flagged on the result);
//! - a panic inside a parallel task → [`XaiError::WorkerPanic`].

use xai_data::csv::CsvError;
use xai_linalg::LinalgError;
use xai_rand::parallel::TaskPanic;

/// `Result` alias used by every fallible (`try_*`) API in the workspace.
pub type XaiResult<T> = Result<T, XaiError>;

/// Stable cause discriminator for [`XaiError::Io`]. Transport supervision
/// (retry, hedging, circuit breaking) branches on *why* an I/O operation
/// failed — a refused connection means the endpoint is down, a timeout
/// means it may be merely slow — so the cause must be matchable, not
/// buried in the context string.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// The peer actively refused the connection (nothing listening).
    Refused,
    /// The connection was established and then torn down mid-stream
    /// (reset, aborted, broken pipe).
    Reset,
    /// The operation hit an OS-level timeout (connect or socket
    /// read/write deadline).
    Timeout,
    /// The stream ended before a complete unit (frame, file) arrived.
    ShortRead,
    /// The named file or executable does not exist.
    NotFound,
    /// Any other OS error (permissions, disk full, …).
    Other,
}

impl IoKind {
    /// The canonical lower-snake name, used on the wire and in `Display`.
    pub fn as_str(self) -> &'static str {
        match self {
            IoKind::Refused => "refused",
            IoKind::Reset => "reset",
            IoKind::Timeout => "timeout",
            IoKind::ShortRead => "short_read",
            IoKind::NotFound => "not_found",
            IoKind::Other => "other",
        }
    }

    /// Parses the canonical name back; `None` for unknown strings.
    pub fn parse(name: &str) -> Option<IoKind> {
        Some(match name {
            "refused" => IoKind::Refused,
            "reset" => IoKind::Reset,
            "timeout" => IoKind::Timeout,
            "short_read" => IoKind::ShortRead,
            "not_found" => IoKind::NotFound,
            "other" => IoKind::Other,
            _ => return None,
        })
    }

    /// Classifies a [`std::io::Error`] by its OS error kind. `WouldBlock`
    /// maps to [`IoKind::Timeout`] because the workspace only uses
    /// blocking sockets with read/write deadlines, where the OS reports
    /// an expired deadline as `WouldBlock` on Unix.
    pub fn classify(e: &std::io::Error) -> IoKind {
        use std::io::ErrorKind as K;
        match e.kind() {
            K::ConnectionRefused => IoKind::Refused,
            K::ConnectionReset | K::ConnectionAborted | K::BrokenPipe => IoKind::Reset,
            K::TimedOut | K::WouldBlock => IoKind::Timeout,
            K::UnexpectedEof => IoKind::ShortRead,
            K::NotFound => IoKind::NotFound,
            _ => IoKind::Other,
        }
    }
}

impl std::fmt::Display for IoKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Unified error type for the explanation pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum XaiError {
    /// Caller-supplied data (instance, background, training set, labels)
    /// contained NaN or ±Inf, or was degenerate in a way that makes the
    /// method meaningless (e.g. a background identical to the instance).
    NonFiniteInput {
        /// Which input failed validation, and how.
        context: String,
    },
    /// A linear system at the heart of the method was singular and could
    /// not be recovered by ridge escalation.
    SingularSystem {
        /// Which solve failed.
        context: String,
    },
    /// An iterative fitter ran out of iterations without meeting its
    /// tolerance; the would-be result is withheld rather than returned as
    /// garbage.
    ConvergenceFailure {
        /// Which fit failed to converge.
        context: String,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// The model under explanation returned NaN/±Inf from a prediction.
    ModelFault {
        /// Which evaluation produced the fault.
        context: String,
    },
    /// A [`SampleBudget`] expired before a single sample completed, so not
    /// even a partial estimate exists.
    BudgetExceeded {
        /// Which estimator ran out of budget.
        context: String,
        /// Samples completed before exhaustion — 0 for estimators that
        /// fail on the first sample, nonzero when a minimum sample count
        /// exists (LIME needs a non-trivial neighbourhood) and the budget
        /// expired between the first sample and that minimum.
        completed: usize,
    },
    /// A parallel worker task panicked; the lowest-indexed panicking task
    /// is reported, independent of worker count and thread timing.
    WorkerPanic {
        /// Index of the panicking task.
        task: usize,
        /// The captured panic message.
        message: String,
    },
    /// An I/O operation (model/dataset file access, a socket to a shard
    /// worker) failed. The [`IoKind`] discriminator is stable: retry and
    /// supervision logic matches on it instead of grepping the context.
    Io {
        /// What failed, mechanically — refused, reset, timed out, short
        /// read, not found, or other.
        kind: IoKind,
        /// Path/endpoint and OS error.
        context: String,
    },
    /// Persisted or textual input (CSV, JSON model files) failed to parse.
    Parse {
        /// What failed to parse, and where.
        context: String,
    },
    /// The request cannot be served as posed: a required request field is
    /// missing (no instance for a local method, no utility for a
    /// valuation), the model lacks a capability the method needs
    /// (gradients, tree internals), or the `RunConfig` combines switches
    /// the method does not support (e.g. a budget on a parallel path).
    Unsupported {
        /// What was asked for and why it cannot be done.
        context: String,
    },
    /// The serving engine's bounded submission queue was full, so
    /// admission control rejected the request before it consumed any
    /// compute. Retry later or raise the queue capacity.
    QueueFull {
        /// The queue's capacity at the moment of rejection.
        capacity: usize,
    },
}

impl std::fmt::Display for XaiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XaiError::NonFiniteInput { context } => write!(f, "non-finite input: {context}"),
            XaiError::SingularSystem { context } => write!(f, "singular system: {context}"),
            XaiError::ConvergenceFailure { context, iterations } => {
                write!(f, "failed to converge after {iterations} iterations: {context}")
            }
            XaiError::ModelFault { context } => write!(f, "model fault: {context}"),
            XaiError::BudgetExceeded { context, completed } => {
                write!(f, "sample budget exhausted after {completed} samples: {context}")
            }
            XaiError::WorkerPanic { task, message } => {
                write!(f, "worker task {task} panicked: {message}")
            }
            XaiError::Io { kind, context } => write!(f, "io error ({kind}): {context}"),
            XaiError::Parse { context } => write!(f, "parse error: {context}"),
            XaiError::Unsupported { context } => write!(f, "unsupported request: {context}"),
            XaiError::QueueFull { capacity } => {
                write!(f, "submission rejected: serving queue full (capacity {capacity})")
            }
        }
    }
}

impl XaiError {
    /// Builds an [`XaiError::Io`] with an explicit kind.
    pub fn io(kind: IoKind, context: impl Into<String>) -> XaiError {
        XaiError::Io { kind, context: context.into() }
    }

    /// Builds an [`XaiError::Io`] from a [`std::io::Error`], classifying
    /// the kind via [`IoKind::classify`] and appending the OS message.
    pub fn from_io(e: &std::io::Error, context: impl std::fmt::Display) -> XaiError {
        XaiError::Io { kind: IoKind::classify(e), context: format!("{context}: {e}") }
    }
}

impl std::error::Error for XaiError {}

impl From<LinalgError> for XaiError {
    fn from(e: LinalgError) -> Self {
        match e {
            LinalgError::NonFinite { .. } => {
                XaiError::NonFiniteInput { context: e.to_string() }
            }
            LinalgError::NotSquare { .. }
            | LinalgError::NotPositiveDefinite { .. }
            | LinalgError::Singular { .. } => XaiError::SingularSystem { context: e.to_string() },
        }
    }
}

impl From<TaskPanic> for XaiError {
    fn from(e: TaskPanic) -> Self {
        XaiError::WorkerPanic { task: e.task, message: e.message }
    }
}

impl From<CsvError> for XaiError {
    fn from(e: CsvError) -> Self {
        match e {
            CsvError::Io { .. } => XaiError::Io { kind: IoKind::Other, context: e.to_string() },
            _ => XaiError::Parse { context: format!("csv: {e}") },
        }
    }
}

impl From<crate::json_parse::ParseError> for XaiError {
    fn from(e: crate::json_parse::ParseError) -> Self {
        XaiError::Parse { context: format!("json: {e}") }
    }
}

/// Runs a model/game/utility evaluation with panic isolation: a panic
/// inside `f` (a misbehaving model, an assert in user code) becomes
/// [`XaiError::ModelFault`] instead of unwinding through the explainer.
/// This is the sequential sibling of `try_par_map_seeded`'s per-task
/// `catch_unwind`.
pub fn catch_model<T>(context: &str, f: impl FnOnce() -> T) -> XaiResult<T> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|payload| {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        XaiError::ModelFault { context: format!("{context}: panicked: {message}") }
    })
}

/// Resource budget for Monte-Carlo estimators: a cap on model/utility
/// evaluations, a wall-clock deadline, or both.
///
/// Budgeted estimators stop drawing new samples once the budget is
/// exhausted and return a **best-effort partial estimate** built from the
/// samples that did complete, tagging the result with how many samples it
/// rests on. Only when the budget expires before the *first* sample does
/// the estimator fail with [`XaiError::BudgetExceeded`].
///
/// The eval cap is deterministic (same cap ⇒ same samples ⇒ bit-identical
/// result); the wall-clock deadline is inherently machine-dependent and
/// trades reproducibility for latency control.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SampleBudget {
    /// Maximum number of model/utility evaluations (`None` = unlimited).
    pub max_evals: Option<usize>,
    /// Wall-clock deadline measured from the estimator's start
    /// (`None` = unlimited).
    pub max_duration: Option<std::time::Duration>,
}

impl SampleBudget {
    /// A budget that never expires (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps model/utility evaluations.
    pub fn with_max_evals(n: usize) -> Self {
        Self { max_evals: Some(n), max_duration: None }
    }

    /// Caps wall-clock time.
    pub fn with_deadline(d: std::time::Duration) -> Self {
        Self { max_evals: None, max_duration: Some(d) }
    }

    /// True when neither cap is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_evals.is_none() && self.max_duration.is_none()
    }

    /// Starts metering against this budget.
    pub fn start(&self) -> BudgetMeter {
        BudgetMeter { budget: *self, started: std::time::Instant::now(), evals: 0 }
    }
}

/// Running meter for one estimator invocation; see [`SampleBudget`].
#[derive(Clone, Debug)]
pub struct BudgetMeter {
    budget: SampleBudget,
    started: std::time::Instant,
    evals: usize,
}

impl BudgetMeter {
    /// Records `n` completed evaluations.
    pub fn record(&mut self, n: usize) {
        self.evals += n;
    }

    /// Evaluations recorded so far.
    pub fn evals(&self) -> usize {
        self.evals
    }

    /// True once either cap is hit; estimators check this between samples.
    pub fn exhausted(&self) -> bool {
        if let Some(cap) = self.budget.max_evals {
            if self.evals >= cap {
                return true;
            }
        }
        if let Some(deadline) = self.budget.max_duration {
            if self.started.elapsed() >= deadline {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linalg_errors_map_onto_the_taxonomy() {
        let e: XaiError = LinalgError::NonFinite { row: 1, col: 2 }.into();
        assert!(matches!(e, XaiError::NonFiniteInput { .. }));
        let e: XaiError = LinalgError::Singular { pivot: 0 }.into();
        assert!(matches!(e, XaiError::SingularSystem { .. }));
        let e: XaiError = LinalgError::NotPositiveDefinite { pivot: 1, value: -0.5 }.into();
        assert!(matches!(e, XaiError::SingularSystem { .. }));
    }

    #[test]
    fn task_panics_map_to_worker_panic() {
        let e: XaiError = TaskPanic { task: 3, message: "boom".into() }.into();
        assert_eq!(e, XaiError::WorkerPanic { task: 3, message: "boom".into() });
        assert!(e.to_string().contains("task 3"));
    }

    #[test]
    fn eval_budget_meters_deterministically() {
        let budget = SampleBudget::with_max_evals(10);
        assert!(!budget.is_unlimited());
        let mut meter = budget.start();
        assert!(!meter.exhausted());
        meter.record(9);
        assert!(!meter.exhausted());
        meter.record(1);
        assert!(meter.exhausted());
        assert_eq!(meter.evals(), 10);
    }

    #[test]
    fn deadline_budget_expires() {
        let budget = SampleBudget::with_deadline(std::time::Duration::ZERO);
        let meter = budget.start();
        assert!(meter.exhausted());
        assert!(SampleBudget::unlimited().start().exhausted() == false);
    }

    #[test]
    fn display_is_informative() {
        let e = XaiError::ConvergenceFailure { context: "logistic fit".into(), iterations: 50 };
        assert_eq!(e.to_string(), "failed to converge after 50 iterations: logistic fit");
    }
}
