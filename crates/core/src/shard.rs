//! Deterministic shard plans over an estimator's random draws
//! (DESIGN.md §11).
//!
//! The fixed-chunk `xai-rand` executor already makes every Monte-Carlo
//! estimator a pure function of `(seed, chunk grid)`: chunk `c` draws
//! from the stream `child_seed(seed, c)` and partials are reduced in
//! chunk order. This module scales that invariant past one process. A
//! *shard* is a contiguous range of global chunk indices; because every
//! chunk's stream and position are fixed by the grid — never by the
//! worker count, the shard count, or which process ran it — the
//! concatenation of per-chunk partials across shards is byte-identical
//! to the single-process parallel run, at any shard count.
//!
//! The pieces:
//!
//! - [`ShardableExplainer`] — the contract a method opts into: expose
//!   the draw grid ([`DrawGrid`]), compute a serializable partial for a
//!   chunk range (`explain_chunks`), and run the merge epilogue over the
//!   ordered per-chunk partials (`merge_chunks`). Partials carry
//!   **per-chunk** payloads, not pre-reduced shard sums: floating-point
//!   addition is non-associative, so the merge must fold chunks in
//!   exactly the order the single-process path does.
//! - [`shard_chunk_ranges`] — the deterministic partitioner: balanced
//!   contiguous chunk ranges, disjoint and covering.
//! - [`ShardDescriptor`] / [`ShardResult`] — the canonical JSON wire
//!   forms (fixed field order, strict typed parsing like
//!   [`crate::serve::ServeRequest`]) that let a shard run in another OS
//!   process — or, later, on another machine — and ship its partial
//!   back.
//! - [`explain_sharded`] — the in-process runner: shards execute as
//!   tasks on the existing fork-join executor and merge locally.
//! - [`execute_descriptor`] — the worker side of a process pool:
//!   rebuild the request from a descriptor, run the chunk range, return
//!   the result. The process-pool runner itself lives in
//!   [`crate::backend`] ([`crate::backend::ProcessPoolBackend`]); the
//!   facade (`xai::shard`) supplies the model/method factories.

use std::ops::Range;

use xai_data::{Dataset, Feature, FeatureKind, Mutability, Schema, Task};
use xai_linalg::Matrix;

use crate::error::{XaiError, XaiResult};
use crate::explainer::{ExplainRequest, Explainer, Explanation, ModelOracle};
use crate::report::Json;
use crate::serve::{fingerprint_bytes, parse_plan, plan_to_json};

// ---------------------------------------------------------------------------
// Wire helpers (typed Parse errors), shared with the method crates
// ---------------------------------------------------------------------------

/// Builds the typed [`XaiError::Parse`] every wire helper reports.
pub fn wire_error(context: impl Into<String>) -> XaiError {
    XaiError::Parse { context: context.into() }
}

/// Required string field.
pub fn str_field(json: &Json, key: &str, what: &str) -> XaiResult<String> {
    match json.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(_) => Err(wire_error(format!("{what}: '{key}' must be a string"))),
        None => Err(wire_error(format!("{what}: missing required field '{key}'"))),
    }
}

/// Required numeric field.
pub fn num_field(json: &Json, key: &str, what: &str) -> XaiResult<f64> {
    json.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| wire_error(format!("{what}: '{key}' must be a number")))
}

/// Required array-of-numbers field.
pub fn nums_field(json: &Json, key: &str, what: &str) -> XaiResult<Vec<f64>> {
    let arr = json
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| wire_error(format!("{what}: '{key}' must be an array of numbers")))?;
    arr.iter()
        .enumerate()
        .map(|(i, v)| {
            v.as_num().ok_or_else(|| wire_error(format!("{what}: {key}[{i}] is not a number")))
        })
        .collect()
}

/// Required array-of-strings field.
pub fn strs_field(json: &Json, key: &str, what: &str) -> XaiResult<Vec<String>> {
    let arr = json
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| wire_error(format!("{what}: '{key}' must be an array of strings")))?;
    arr.iter()
        .enumerate()
        .map(|(i, v)| match v {
            Json::Str(s) => Ok(s.clone()),
            _ => Err(wire_error(format!("{what}: {key}[{i}] is not a string"))),
        })
        .collect()
}

/// Required array field (any element type).
pub fn arr_field<'a>(json: &'a Json, key: &str, what: &str) -> XaiResult<&'a [Json]> {
    json.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| wire_error(format!("{what}: '{key}' must be an array")))
}

/// Required non-negative integer field (exactly representable in `f64`).
pub fn index_field(json: &Json, key: &str, what: &str) -> XaiResult<usize> {
    const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    let v = num_field(json, key, what)?;
    if !v.is_finite() || v < 0.0 || v.fract() != 0.0 || v > MAX_EXACT {
        return Err(wire_error(format!(
            "{what}: '{key}' must be a non-negative integer, got {v}"
        )));
    }
    Ok(v as usize)
}

/// Standard partial payload: a `{"chunks": [...]}` object wrapping the
/// per-chunk payloads of one shard, in global chunk order.
pub fn chunks_json(chunks: Vec<Json>) -> Json {
    Json::obj(vec![("chunks", Json::Arr(chunks))])
}

/// Flattens ordered shard partials back into the global per-chunk
/// payload sequence. The inverse of [`chunks_json`] across shards.
pub fn flatten_chunks<'a>(partials: &'a [Json], what: &str) -> XaiResult<Vec<&'a Json>> {
    let mut out = Vec::new();
    for (s, p) in partials.iter().enumerate() {
        let chunks = p
            .get("chunks")
            .and_then(Json::as_arr)
            .ok_or_else(|| wire_error(format!("{what}: shard {s} partial lacks 'chunks'")))?;
        out.extend(chunks.iter());
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// The draw grid and the partitioner
// ---------------------------------------------------------------------------

/// A method's fixed chunk grid: how many random draws (coalitions,
/// permutations, probes, candidates, row visits) the run makes, and how
/// many draws each executor chunk covers. Both are pure functions of the
/// method config and the request — never of worker or shard counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrawGrid {
    /// Total random draws in the run.
    pub total_draws: usize,
    /// Draws per chunk (the last chunk may be ragged).
    pub chunk_size: usize,
}

impl DrawGrid {
    /// Number of chunks in the grid.
    pub fn n_chunks(&self) -> usize {
        self.total_draws.div_ceil(self.chunk_size)
    }

    /// The draw range covered by global chunk `c`.
    pub fn chunk_range(&self, c: usize) -> Range<usize> {
        let start = c * self.chunk_size;
        start..((start + self.chunk_size).min(self.total_draws))
    }
}

/// Partitions `n_chunks` global chunk indices into `n_shards` balanced
/// contiguous ranges `[(start, end); n_shards]`. Shards are disjoint,
/// ordered, and cover `0..n_chunks`; when `n_shards > n_chunks` the
/// trailing shards are empty.
pub fn shard_chunk_ranges(n_chunks: usize, n_shards: usize) -> Vec<(usize, usize)> {
    assert!(n_shards >= 1, "need at least one shard");
    (0..n_shards)
        .map(|s| ((s * n_chunks) / n_shards, ((s + 1) * n_chunks) / n_shards))
        .collect()
}

// ---------------------------------------------------------------------------
// The shardable contract
// ---------------------------------------------------------------------------

/// A method whose random draws partition into deterministic shards.
///
/// The contract: for any shard count `m`, splitting the grid with
/// [`shard_chunk_ranges`], running `explain_chunks` per shard (in any
/// process), ordering the partials by shard index and folding them
/// through `merge_chunks` is **bit-identical** to the single-process
/// `Explainer::explain` at the same request (on the `workers > 1`
/// parallel path, which shares the chunk grid).
pub trait ShardableExplainer: Explainer {
    /// The draw grid for this request, with any eval budget already
    /// resolved into `total_draws`. Errors mirror `explain`:
    /// `Unsupported` for request shapes the shard layer cannot cover.
    fn draw_grid(&self, req: &ExplainRequest<'_>) -> XaiResult<DrawGrid>;

    /// Computes the serializable partial for global chunks
    /// `chunks.start..chunks.end`, as a `{"chunks": [...]}` payload in
    /// chunk order. Chunk `c` must draw from `child_seed(plan.seed, c)`
    /// exactly as the in-process parallel path does.
    fn explain_chunks(
        &self,
        model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        chunks: Range<usize>,
    ) -> XaiResult<Json>;

    /// Runs the merge epilogue over the shard partials, ordered by shard
    /// index, reproducing the unsharded explanation bit-for-bit.
    fn merge_chunks(
        &self,
        model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        partials: Vec<Json>,
    ) -> XaiResult<Explanation>;

    /// The method configuration as canonical JSON, so a descriptor can
    /// reconstruct this explainer in another process.
    fn config_json(&self) -> Json;
}

// ---------------------------------------------------------------------------
// In-process runner
// ---------------------------------------------------------------------------

/// Runs a shard plan in-process: shards become tasks on the fork-join
/// executor (`plan.workers` threads), partials are merged in shard
/// order. Bit-identical to `explainer.explain(model, req)` on the
/// parallel path, at any `n_shards`.
pub fn explain_sharded(
    explainer: &dyn ShardableExplainer,
    model: &dyn ModelOracle,
    req: &ExplainRequest<'_>,
    n_shards: usize,
) -> XaiResult<Explanation> {
    // Thin constructor over the shared dispatch core (DESIGN.md §14).
    crate::backend::dispatch_local(explainer, model, req, n_shards)
}

// ---------------------------------------------------------------------------
// Dataset wire serde (descriptors must be self-contained)
// ---------------------------------------------------------------------------

fn mutability_name(m: Mutability) -> &'static str {
    match m {
        Mutability::Free => "free",
        Mutability::IncreaseOnly => "increase_only",
        Mutability::DecreaseOnly => "decrease_only",
        Mutability::Immutable => "immutable",
    }
}

fn mutability_from(name: &str) -> XaiResult<Mutability> {
    Ok(match name {
        "free" => Mutability::Free,
        "increase_only" => Mutability::IncreaseOnly,
        "decrease_only" => Mutability::DecreaseOnly,
        "immutable" => Mutability::Immutable,
        other => return Err(wire_error(format!("dataset: unknown mutability '{other}'"))),
    })
}

/// Canonical JSON form of a dataset: schema, rows and targets.
pub fn dataset_to_json(data: &Dataset) -> Json {
    let features = data
        .schema()
        .features()
        .iter()
        .map(|f| {
            let mut fields = vec![("name", Json::str(&*f.name))];
            match &f.kind {
                FeatureKind::Numeric { min, max } => {
                    fields.push(("kind", Json::str("numeric")));
                    fields.push(("min", Json::Num(*min)));
                    fields.push(("max", Json::Num(*max)));
                }
                FeatureKind::Categorical { categories } => {
                    fields.push(("kind", Json::str("categorical")));
                    fields.push(("categories", Json::strs(categories)));
                }
            }
            fields.push(("mutability", Json::str(mutability_name(f.mutability))));
            fields.push(("protected", Json::Bool(f.protected)));
            Json::obj(fields)
        })
        .collect();
    let rows = (0..data.n_rows()).map(|i| Json::nums(data.row(i))).collect();
    Json::obj(vec![
        ("target", Json::str(data.schema().target())),
        (
            "task",
            Json::str(match data.task() {
                Task::Regression => "regression",
                Task::BinaryClassification => "binary_classification",
            }),
        ),
        ("features", Json::Arr(features)),
        ("x", Json::Arr(rows)),
        ("y", Json::nums(data.y())),
    ])
}

/// Rebuilds a dataset from its canonical JSON form.
pub fn dataset_from_json(json: &Json) -> XaiResult<Dataset> {
    const WHAT: &str = "shard dataset";
    let target = str_field(json, "target", WHAT)?;
    let task = match str_field(json, "task", WHAT)?.as_str() {
        "regression" => Task::Regression,
        "binary_classification" => Task::BinaryClassification,
        other => return Err(wire_error(format!("{WHAT}: unknown task '{other}'"))),
    };
    let mut features = Vec::new();
    for (i, fj) in arr_field(json, "features", WHAT)?.iter().enumerate() {
        let what = format!("{WHAT} feature[{i}]");
        let name = str_field(fj, "name", &what)?;
        let kind = match str_field(fj, "kind", &what)?.as_str() {
            "numeric" => FeatureKind::Numeric {
                min: num_field(fj, "min", &what)?,
                max: num_field(fj, "max", &what)?,
            },
            "categorical" => FeatureKind::Categorical {
                categories: strs_field(fj, "categories", &what)?,
            },
            other => return Err(wire_error(format!("{what}: unknown kind '{other}'"))),
        };
        let mutability = mutability_from(&str_field(fj, "mutability", &what)?)?;
        let protected = match fj.get("protected") {
            Some(Json::Bool(b)) => *b,
            _ => return Err(wire_error(format!("{what}: 'protected' must be a boolean"))),
        };
        features.push(Feature { name, kind, mutability, protected });
    }
    let n_features = features.len();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (i, rj) in arr_field(json, "x", WHAT)?.iter().enumerate() {
        let row = rj
            .as_arr()
            .ok_or_else(|| wire_error(format!("{WHAT}: x[{i}] is not an array")))?
            .iter()
            .map(|v| v.as_num().ok_or_else(|| wire_error(format!("{WHAT}: x[{i}] has a non-number"))))
            .collect::<XaiResult<Vec<f64>>>()?;
        if row.len() != n_features {
            return Err(wire_error(format!(
                "{WHAT}: x[{i}] has {} values for {n_features} features",
                row.len()
            )));
        }
        rows.push(row);
    }
    let y = nums_field(json, "y", WHAT)?;
    if y.len() != rows.len() {
        return Err(wire_error(format!(
            "{WHAT}: {} targets for {} rows",
            y.len(),
            rows.len()
        )));
    }
    if rows.is_empty() {
        return Err(wire_error(format!("{WHAT}: dataset has no rows")));
    }
    let x = Matrix::from_rows(&rows);
    Ok(Dataset::new(Schema::new(features, &target), x, y, task))
}

// ---------------------------------------------------------------------------
// ShardDescriptor / ShardResult: the wire forms
// ---------------------------------------------------------------------------

/// A self-contained, serializable unit of shard work: which method (and
/// config), which model (persisted form + fingerprint), which request
/// (dataset, instance, feature, plan), and which contiguous range of the
/// draw grid's chunks this shard covers. The seed-stream coordinates are
/// `(plan.seed, chunk_start..chunk_end)`: chunk `c` always draws from
/// `child_seed(plan.seed, c)`, wherever it runs.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardDescriptor {
    /// Taxonomy card name of the method.
    pub method: String,
    /// Method configuration (method-specific canonical JSON).
    pub config: Json,
    /// Hex FNV-1a fingerprint of the model's persisted bytes.
    pub fingerprint: String,
    /// Shard index in `0..n_shards`.
    pub shard: usize,
    /// Total shard count of the plan.
    pub n_shards: usize,
    /// First global chunk index covered (inclusive).
    pub chunk_start: usize,
    /// One past the last global chunk index covered.
    pub chunk_end: usize,
    /// Total draws in the run's grid.
    pub total_draws: usize,
    /// Draws per chunk of the grid.
    pub chunk_size: usize,
    /// The model's persisted JSON form.
    pub model: Json,
    /// The dataset in canonical JSON form ([`dataset_to_json`]).
    pub dataset: Json,
    /// The instance to explain, for local methods.
    pub instance: Option<Vec<f64>>,
    /// Feature column index, for curve methods.
    pub feature: Option<usize>,
    /// The execution plan (seed, workers, batched, budget, degradation).
    pub plan: crate::explainer::RunConfig,
}

impl ShardDescriptor {
    /// The draw grid this descriptor was cut from.
    pub fn grid(&self) -> DrawGrid {
        DrawGrid { total_draws: self.total_draws, chunk_size: self.chunk_size }
    }

    /// Canonical JSON form: fixed field order, every field present.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::str("shard_descriptor")),
            ("method", Json::str(&*self.method)),
            ("config", self.config.clone()),
            ("fingerprint", Json::str(&*self.fingerprint)),
            ("shard", Json::Num(self.shard as f64)),
            ("n_shards", Json::Num(self.n_shards as f64)),
            ("chunk_start", Json::Num(self.chunk_start as f64)),
            ("chunk_end", Json::Num(self.chunk_end as f64)),
            ("total_draws", Json::Num(self.total_draws as f64)),
            ("chunk_size", Json::Num(self.chunk_size as f64)),
            ("model", self.model.clone()),
            ("dataset", self.dataset.clone()),
            (
                "instance",
                match &self.instance {
                    Some(xs) => Json::nums(xs),
                    None => Json::Null,
                },
            ),
            (
                "feature",
                match self.feature {
                    Some(j) => Json::Num(j as f64),
                    None => Json::Null,
                },
            ),
            ("plan", plan_to_json(&self.plan)),
        ])
    }

    /// Canonical compact JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json()
    }

    /// Strict parse from a [`Json`] tree: unknown fields, wrong types and
    /// inconsistent ranges are typed [`XaiError::Parse`] errors;
    /// non-finite instance coordinates are [`XaiError::NonFiniteInput`].
    pub fn from_json(json: &Json) -> XaiResult<ShardDescriptor> {
        const WHAT: &str = "ShardDescriptor";
        let Json::Obj(fields) = json else {
            return Err(wire_error(format!("{WHAT}: expected a JSON object")));
        };
        for (key, _) in fields {
            if !matches!(
                key.as_str(),
                "kind"
                    | "method"
                    | "config"
                    | "fingerprint"
                    | "shard"
                    | "n_shards"
                    | "chunk_start"
                    | "chunk_end"
                    | "total_draws"
                    | "chunk_size"
                    | "model"
                    | "dataset"
                    | "instance"
                    | "feature"
                    | "plan"
            ) {
                return Err(wire_error(format!("{WHAT}: unknown field '{key}'")));
            }
        }
        let kind = str_field(json, "kind", WHAT)?;
        if kind != "shard_descriptor" {
            return Err(wire_error(format!("{WHAT}: kind must be 'shard_descriptor', got '{kind}'")));
        }
        let method = str_field(json, "method", WHAT)?;
        let config = match json.get("config") {
            Some(c @ Json::Obj(_)) => c.clone(),
            _ => return Err(wire_error(format!("{WHAT}: 'config' must be an object"))),
        };
        let fingerprint = str_field(json, "fingerprint", WHAT)?;
        if fingerprint.len() != 16 || !fingerprint.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(wire_error(format!(
                "{WHAT}: 'fingerprint' must be 16 hex characters, got '{fingerprint}'"
            )));
        }
        let shard = index_field(json, "shard", WHAT)?;
        let n_shards = index_field(json, "n_shards", WHAT)?;
        if n_shards == 0 || shard >= n_shards {
            return Err(wire_error(format!(
                "{WHAT}: shard {shard} out of range for {n_shards} shards"
            )));
        }
        let chunk_start = index_field(json, "chunk_start", WHAT)?;
        let chunk_end = index_field(json, "chunk_end", WHAT)?;
        let total_draws = index_field(json, "total_draws", WHAT)?;
        let chunk_size = index_field(json, "chunk_size", WHAT)?;
        if chunk_size == 0 {
            return Err(wire_error(format!("{WHAT}: chunk_size must be >= 1")));
        }
        let n_chunks = total_draws.div_ceil(chunk_size);
        if chunk_start > chunk_end || chunk_end > n_chunks {
            return Err(wire_error(format!(
                "{WHAT}: chunk range {chunk_start}..{chunk_end} invalid for {n_chunks} chunks"
            )));
        }
        let model = match json.get("model") {
            Some(m @ Json::Obj(_)) => m.clone(),
            _ => return Err(wire_error(format!("{WHAT}: 'model' must be an object"))),
        };
        let dataset = match json.get("dataset") {
            Some(d @ Json::Obj(_)) => d.clone(),
            _ => return Err(wire_error(format!("{WHAT}: 'dataset' must be an object"))),
        };
        let instance = match json.get("instance") {
            None | Some(Json::Null) => None,
            Some(Json::Arr(items)) => {
                let mut xs = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    match item.as_num() {
                        Some(v) if v.is_finite() => xs.push(v),
                        Some(v) => {
                            return Err(XaiError::NonFiniteInput {
                                context: format!("{WHAT}: instance[{i}] is {v}"),
                            })
                        }
                        None => {
                            return Err(wire_error(format!("{WHAT}: instance[{i}] is not a number")))
                        }
                    }
                }
                Some(xs)
            }
            Some(_) => {
                return Err(wire_error(format!(
                    "{WHAT}: 'instance' must be an array of numbers or null"
                )))
            }
        };
        let feature = match json.get("feature") {
            None | Some(Json::Null) => None,
            Some(_) => Some(index_field(json, "feature", WHAT)?),
        };
        let plan = match json.get("plan") {
            Some(p) => parse_plan(p)?,
            None => return Err(wire_error(format!("{WHAT}: missing required field 'plan'"))),
        };
        Ok(ShardDescriptor {
            method,
            config,
            fingerprint,
            shard,
            n_shards,
            chunk_start,
            chunk_end,
            total_draws,
            chunk_size,
            model,
            dataset,
            instance,
            feature,
            plan,
        })
    }

    /// Parses a descriptor from JSON text.
    pub fn from_json_str(text: &str) -> XaiResult<ShardDescriptor> {
        Self::from_json(&crate::json_parse::parse_json(text)?)
    }
}

/// One shard's serialized partial, as shipped back by a worker.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardResult {
    /// Taxonomy card name of the method.
    pub method: String,
    /// Hex model fingerprint, echoed from the descriptor.
    pub fingerprint: String,
    /// Shard index.
    pub shard: usize,
    /// Total shard count of the plan.
    pub n_shards: usize,
    /// The `{"chunks": [...]}` partial payload.
    pub partial: Json,
}

impl ShardResult {
    /// Canonical JSON form: fixed field order.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::str("shard_result")),
            ("method", Json::str(&*self.method)),
            ("fingerprint", Json::str(&*self.fingerprint)),
            ("shard", Json::Num(self.shard as f64)),
            ("n_shards", Json::Num(self.n_shards as f64)),
            ("partial", self.partial.clone()),
        ])
    }

    /// Canonical compact JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json()
    }

    /// Strict parse with typed [`XaiError::Parse`] errors.
    pub fn from_json(json: &Json) -> XaiResult<ShardResult> {
        const WHAT: &str = "ShardResult";
        let Json::Obj(fields) = json else {
            return Err(wire_error(format!("{WHAT}: expected a JSON object")));
        };
        for (key, _) in fields {
            if !matches!(key.as_str(), "kind" | "method" | "fingerprint" | "shard" | "n_shards" | "partial")
            {
                return Err(wire_error(format!("{WHAT}: unknown field '{key}'")));
            }
        }
        let kind = str_field(json, "kind", WHAT)?;
        if kind != "shard_result" {
            return Err(wire_error(format!("{WHAT}: kind must be 'shard_result', got '{kind}'")));
        }
        let method = str_field(json, "method", WHAT)?;
        let fingerprint = str_field(json, "fingerprint", WHAT)?;
        let shard = index_field(json, "shard", WHAT)?;
        let n_shards = index_field(json, "n_shards", WHAT)?;
        if n_shards == 0 || shard >= n_shards {
            return Err(wire_error(format!(
                "{WHAT}: shard {shard} out of range for {n_shards} shards"
            )));
        }
        let partial = match json.get("partial") {
            Some(p @ Json::Obj(_)) => p.clone(),
            _ => return Err(wire_error(format!("{WHAT}: 'partial' must be an object"))),
        };
        Ok(ShardResult { method, fingerprint, shard, n_shards, partial })
    }

    /// Parses a result from JSON text.
    pub fn from_json_str(text: &str) -> XaiResult<ShardResult> {
        Self::from_json(&crate::json_parse::parse_json(text)?)
    }
}

// ---------------------------------------------------------------------------
// Building, executing and merging descriptors
// ---------------------------------------------------------------------------

/// Hex rendering of a model fingerprint, as carried in descriptors.
pub fn fingerprint_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fingerprint_bytes(bytes))
}

/// Cuts a request into `n_shards` self-contained descriptors.
///
/// `model_json` is the model's persisted JSON form (the fingerprint is
/// hashed from its canonical bytes). Requests carrying borrowed state
/// that cannot travel — an explicit background matrix, a test set, a
/// caller-supplied utility — are rejected as [`XaiError::Unsupported`];
/// such runs can still shard in-process via [`explain_sharded`].
pub fn build_descriptors(
    explainer: &dyn ShardableExplainer,
    req: &ExplainRequest<'_>,
    model_json: Json,
    n_shards: usize,
) -> XaiResult<Vec<ShardDescriptor>> {
    assert!(n_shards >= 1, "need at least one shard");
    if req.background.is_some() || req.test.is_some() || req.utility.is_some() {
        return Err(XaiError::Unsupported {
            context: "process-pool sharding needs a self-contained request; \
                      explicit background/test/utility references cannot travel in a descriptor \
                      (use explain_sharded for in-process sharding)"
                .into(),
        });
    }
    let grid = explainer.draw_grid(req)?;
    let bounds = shard_chunk_ranges(grid.n_chunks(), n_shards);
    let fingerprint = fingerprint_hex(model_json.to_json().as_bytes());
    let dataset = dataset_to_json(req.data);
    let method = explainer.card().name.to_string();
    let config = explainer.config_json();
    Ok(bounds
        .iter()
        .enumerate()
        .map(|(s, &(start, end))| ShardDescriptor {
            method: method.clone(),
            config: config.clone(),
            fingerprint: fingerprint.clone(),
            shard: s,
            n_shards,
            chunk_start: start,
            chunk_end: end,
            total_draws: grid.total_draws,
            chunk_size: grid.chunk_size,
            model: model_json.clone(),
            dataset: dataset.clone(),
            instance: req.instance.map(<[f64]>::to_vec),
            feature: req.feature,
            plan: req.plan,
        })
        .collect())
}

/// Worker-side execution: rebuilds the request from a descriptor, checks
/// the descriptor's grid against the method's own, runs the chunk range
/// and wraps the partial as a [`ShardResult`].
pub fn execute_descriptor(
    desc: &ShardDescriptor,
    explainer: &dyn ShardableExplainer,
    model: &dyn ModelOracle,
) -> XaiResult<ShardResult> {
    let data = dataset_from_json(&desc.dataset)?;
    let mut req = ExplainRequest::new(&data).plan(desc.plan);
    if let Some(instance) = &desc.instance {
        req = req.instance(instance);
    }
    if let Some(j) = desc.feature {
        req = req.feature(j);
    }
    let grid = explainer.draw_grid(&req)?;
    if grid != desc.grid() {
        return Err(wire_error(format!(
            "ShardDescriptor: grid mismatch — descriptor says {} draws × chunk {}, \
             method computes {} × {}",
            desc.total_draws, desc.chunk_size, grid.total_draws, grid.chunk_size
        )));
    }
    let partial = explainer.explain_chunks(model, &req, desc.chunk_start..desc.chunk_end)?;
    Ok(ShardResult {
        method: desc.method.clone(),
        fingerprint: desc.fingerprint.clone(),
        shard: desc.shard,
        n_shards: desc.n_shards,
        partial,
    })
}

/// Validates a complete result set and returns the partials ordered by
/// shard index — the merge can then run regardless of arrival order.
/// Incomplete, duplicated or mixed result sets are typed
/// [`XaiError::Parse`] errors.
pub fn order_partials(results: Vec<ShardResult>) -> XaiResult<Vec<Json>> {
    const WHAT: &str = "shard merge";
    let Some(first) = results.first() else {
        return Err(wire_error(format!("{WHAT}: no shard results")));
    };
    let n_shards = first.n_shards;
    let (method, fingerprint) = (first.method.clone(), first.fingerprint.clone());
    if results.len() != n_shards {
        return Err(wire_error(format!(
            "{WHAT}: got {} results for {n_shards} shards",
            results.len()
        )));
    }
    let mut slots: Vec<Option<Json>> = vec![None; n_shards];
    for r in results {
        if r.method != method || r.fingerprint != fingerprint || r.n_shards != n_shards {
            return Err(wire_error(format!(
                "{WHAT}: mixed result sets (method '{}' fp {} n_shards {} vs '{method}' fp {fingerprint} n_shards {n_shards})",
                r.method, r.fingerprint, r.n_shards
            )));
        }
        if slots[r.shard].is_some() {
            return Err(wire_error(format!("{WHAT}: duplicate result for shard {}", r.shard)));
        }
        slots[r.shard] = Some(r.partial);
    }
    Ok(slots.into_iter().map(|s| s.expect("all slots filled by count + dedup check")).collect())
}

/// Orders a result set and runs the merge epilogue. The counterpart of
/// [`explain_sharded`] for partials gathered from worker processes.
pub fn merge_shard_results(
    explainer: &dyn ShardableExplainer,
    model: &dyn ModelOracle,
    req: &ExplainRequest<'_>,
    results: Vec<ShardResult>,
) -> XaiResult<Explanation> {
    let partials = order_partials(results)?;
    explainer.merge_chunks(model, req, partials)
}

// ---------------------------------------------------------------------------
// Error envelope: how a worker ships a typed failure over stdout
// ---------------------------------------------------------------------------

/// Serializes an [`XaiError`] as a canonical error envelope
/// (`{"kind":"shard_error","class":...,"context":...,"detail":...}`), so
/// worker processes can report typed failures on stdout and still exit
/// cleanly.
pub fn error_to_json(e: &XaiError) -> Json {
    let (class, context, detail, io_kind) = match e {
        XaiError::NonFiniteInput { context } => ("non_finite_input", context.clone(), None, None),
        XaiError::SingularSystem { context } => ("singular_system", context.clone(), None, None),
        XaiError::ConvergenceFailure { context, iterations } => {
            ("convergence_failure", context.clone(), Some(*iterations as f64), None)
        }
        XaiError::ModelFault { context } => ("model_fault", context.clone(), None, None),
        XaiError::BudgetExceeded { context, completed } => {
            ("budget_exceeded", context.clone(), Some(*completed as f64), None)
        }
        XaiError::WorkerPanic { task, message } => {
            ("worker_panic", message.clone(), Some(*task as f64), None)
        }
        XaiError::Io { kind, context } => ("io", context.clone(), None, Some(*kind)),
        XaiError::Parse { context } => ("parse", context.clone(), None, None),
        XaiError::Unsupported { context } => ("unsupported", context.clone(), None, None),
        XaiError::QueueFull { capacity } => {
            ("queue_full", String::new(), Some(*capacity as f64), None)
        }
    };
    Json::obj(vec![
        ("kind", Json::str("shard_error")),
        ("class", Json::str(class)),
        ("io_kind", io_kind.map_or(Json::Null, |k| Json::str(k.as_str()))),
        ("context", Json::str(context)),
        ("detail", detail.map_or(Json::Null, Json::Num)),
    ])
}

/// True when `json` is a shard error envelope.
pub fn is_error_envelope(json: &Json) -> bool {
    json.get("kind").and_then(Json::as_str) == Some("shard_error")
}

/// Parses an error envelope back into the typed [`XaiError`].
pub fn error_from_json(json: &Json) -> XaiResult<XaiError> {
    const WHAT: &str = "shard error envelope";
    if !is_error_envelope(json) {
        return Err(wire_error(format!("{WHAT}: kind must be 'shard_error'")));
    }
    let class = str_field(json, "class", WHAT)?;
    let context = str_field(json, "context", WHAT)?;
    let detail = match json.get("detail") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_num()
                .ok_or_else(|| wire_error(format!("{WHAT}: 'detail' must be a number or null")))?,
        ),
    };
    let need_detail = |what: &str| {
        detail
            .map(|d| d as usize)
            .ok_or_else(|| wire_error(format!("{WHAT}: class '{what}' needs a 'detail' field")))
    };
    Ok(match class.as_str() {
        "non_finite_input" => XaiError::NonFiniteInput { context },
        "singular_system" => XaiError::SingularSystem { context },
        "convergence_failure" => XaiError::ConvergenceFailure {
            context,
            iterations: need_detail("convergence_failure")?,
        },
        "model_fault" => XaiError::ModelFault { context },
        "budget_exceeded" => XaiError::BudgetExceeded {
            context,
            completed: need_detail("budget_exceeded")?,
        },
        "worker_panic" => XaiError::WorkerPanic {
            task: need_detail("worker_panic")?,
            message: context,
        },
        "io" => {
            let name = str_field(json, "io_kind", WHAT)?;
            let kind = crate::error::IoKind::parse(&name)
                .ok_or_else(|| wire_error(format!("{WHAT}: unknown io_kind '{name}'")))?;
            XaiError::Io { kind, context }
        }
        "parse" => XaiError::Parse { context },
        "unsupported" => XaiError::Unsupported { context },
        "queue_full" => XaiError::QueueFull { capacity: need_detail("queue_full")? },
        other => return Err(wire_error(format!("{WHAT}: unknown class '{other}'"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_are_disjoint_and_covering() {
        for n_chunks in 0..40 {
            for n_shards in 1..10 {
                let bounds = shard_chunk_ranges(n_chunks, n_shards);
                assert_eq!(bounds.len(), n_shards);
                assert_eq!(bounds[0].0, 0);
                assert_eq!(bounds[n_shards - 1].1, n_chunks);
                for w in bounds.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "ranges must tile");
                }
                let sizes: Vec<usize> = bounds.iter().map(|(a, b)| b - a).collect();
                let (min, max) =
                    (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "balanced partition: {sizes:?}");
            }
        }
    }

    #[test]
    fn grid_chunks_tile_the_draw_range() {
        let grid = DrawGrid { total_draws: 21, chunk_size: 4 };
        assert_eq!(grid.n_chunks(), 6);
        let mut covered = 0;
        for c in 0..grid.n_chunks() {
            let r = grid.chunk_range(c);
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, 21);
    }

    #[test]
    fn error_envelope_roundtrips_every_class() {
        let errors = vec![
            XaiError::NonFiniteInput { context: "x".into() },
            XaiError::SingularSystem { context: "s".into() },
            XaiError::ConvergenceFailure { context: "c".into(), iterations: 7 },
            XaiError::ModelFault { context: "m".into() },
            XaiError::BudgetExceeded { context: "b".into(), completed: 3 },
            XaiError::WorkerPanic { task: 2, message: "boom".into() },
            XaiError::Io { kind: crate::error::IoKind::Refused, context: "i".into() },
            XaiError::Io { kind: crate::error::IoKind::Reset, context: "i".into() },
            XaiError::Io { kind: crate::error::IoKind::Timeout, context: "i".into() },
            XaiError::Io { kind: crate::error::IoKind::ShortRead, context: "i".into() },
            XaiError::Io { kind: crate::error::IoKind::NotFound, context: "i".into() },
            XaiError::Io { kind: crate::error::IoKind::Other, context: "i".into() },
            XaiError::Parse { context: "p".into() },
            XaiError::Unsupported { context: "u".into() },
            XaiError::QueueFull { capacity: 8 },
        ];
        for e in errors {
            let j = error_to_json(&e);
            assert!(is_error_envelope(&j));
            let back = error_from_json(&j).unwrap();
            assert_eq!(back, e);
            // And through text.
            let re = crate::json_parse::parse_json(&j.to_json()).unwrap();
            assert_eq!(error_from_json(&re).unwrap(), e);
        }
    }

    #[test]
    fn flatten_preserves_chunk_order() {
        let p0 = chunks_json(vec![Json::Num(0.0), Json::Num(1.0)]);
        let p1 = chunks_json(vec![Json::Num(2.0)]);
        let partials = [p0, p1];
        let flat = flatten_chunks(&partials, "test").unwrap();
        let vals: Vec<f64> = flat.iter().map(|j| j.as_num().unwrap()).collect();
        assert_eq!(vals, vec![0.0, 1.0, 2.0]);
        assert!(flatten_chunks(&[Json::obj(vec![])], "test").is_err());
    }
}
