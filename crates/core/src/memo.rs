//! Shared cross-request coalition memo (DESIGN.md §12).
//!
//! The per-call `CachedGame` in `xai-shapley` deduplicates coalition
//! evaluations *within* one explanation. This module generalizes that memo
//! across requests: a [`CoalitionMemo`] is a bounded, thread-safe map from
//! `(model fingerprint, background fingerprint, instance fingerprint,
//! coalition mask)` to the coalition's value `v(S)`. Because every
//! estimator in the workspace is deterministic and a coalition value is a
//! pure function of that key, a hit can be substituted for an oracle call
//! without changing a single bit of the result — which is exactly the
//! paper's "treat explanation workloads like database workloads" thesis:
//! repeated serve traffic against the same model shares work instead of
//! recomputing it.
//!
//! Keys never dangle: retraining a model changes its persisted bytes and
//! therefore its fingerprint, so stale values are unreachable rather than
//! invalidated in place. Capacity pressure is handled by evicting the
//! oldest half of the entries (by last-touch tick) in one O(n) pass,
//! amortizing eviction cost over many inserts.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// FNV-1a offset basis (matches `serve::fingerprint_bytes`).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (matches `serve::fingerprint_bytes`).
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a over the little-endian bytes of a slice of `f64`s. Used to
/// derive the background/instance components of a [`GameKey`]; bit-level
/// so that any value change (even a sign of zero) produces a new key.
pub fn fingerprint_f64s(values: &[f64]) -> u64 {
    let mut h = FNV_OFFSET;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Identifies one cooperative game: which model, scored against which
/// background, explaining which instance. Coalition masks are keyed
/// *under* a `GameKey`, so two requests share memo entries exactly when
/// they would compute identical coalition values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GameKey {
    /// Fingerprint of the model's persisted bytes.
    pub model: u64,
    /// Fingerprint of the background matrix contents.
    pub background: u64,
    /// Fingerprint of the instance under explanation.
    pub instance: u64,
}

impl GameKey {
    /// Derives the key for `model_fingerprint` scored against `background`
    /// rows to explain `instance`.
    pub fn derive(model_fingerprint: u64, background: &xai_linalg::Matrix, instance: &[f64]) -> Self {
        Self {
            model: model_fingerprint,
            background: fingerprint_f64s(background.as_slice()),
            instance: fingerprint_f64s(instance),
        }
    }
}

/// A borrowed capability to use a [`CoalitionMemo`]: the memo plus the
/// model fingerprint of the request it rides on. `Copy` so it can travel
/// inside `ExplainRequest` without breaking that type's `Copy`.
#[derive(Clone, Copy)]
pub struct MemoHandle<'a> {
    /// The shared memo.
    pub memo: &'a CoalitionMemo,
    /// Fingerprint of the model this request explains.
    pub model_fingerprint: u64,
}

/// Counter snapshot from [`CoalitionMemo::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Coalition values served from the memo instead of the oracle.
    pub hits: u64,
    /// Coalition lookups that missed and were evaluated live.
    pub misses: u64,
    /// Entries dropped by capacity eviction.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

struct Entry {
    value: f64,
    tick: u64,
}

struct MemoState {
    map: HashMap<(GameKey, u64), Entry>,
    tick: u64,
}

/// Bounded, thread-safe cross-request coalition-value memo.
///
/// A `capacity` of `0` disables the memo: every lookup misses and inserts
/// are dropped, so callers can plumb one code path for both modes.
pub struct CoalitionMemo {
    capacity: usize,
    state: Mutex<MemoState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CoalitionMemo {
    /// A memo holding at most `capacity` coalition values.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            state: Mutex::new(MemoState { map: HashMap::new(), tick: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Maximum resident entries (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `masks` under `key`, writing each found value into the
    /// matching `out` slot (missing slots are set to `None`). Returns the
    /// number of hits. Hit entries are touched for eviction recency.
    pub fn get_many(&self, key: &GameKey, masks: &[u64], out: &mut [Option<f64>]) -> usize {
        assert_eq!(masks.len(), out.len(), "memo lookup arity mismatch");
        if self.capacity == 0 {
            out.fill(None);
            self.misses.fetch_add(masks.len() as u64, Ordering::Relaxed);
            return 0;
        }
        let mut state = lock(&self.state);
        let mut hits = 0usize;
        for (&mask, slot) in masks.iter().zip(out.iter_mut()) {
            state.tick += 1;
            let tick = state.tick;
            *slot = match state.map.get_mut(&(*key, mask)) {
                Some(entry) => {
                    entry.tick = tick;
                    hits += 1;
                    Some(entry.value)
                }
                None => None,
            };
        }
        drop(state);
        self.hits.fetch_add(hits as u64, Ordering::Relaxed);
        self.misses.fetch_add((masks.len() - hits) as u64, Ordering::Relaxed);
        hits
    }

    /// Publishes freshly evaluated coalition values. Values are pure
    /// functions of `(key, mask)`, so racing inserts of the same key are
    /// harmless — last write wins with identical bits. Triggers a half-
    /// eviction pass when the map would exceed capacity.
    pub fn insert_many<I: IntoIterator<Item = (u64, f64)>>(&self, key: &GameKey, values: I) {
        if self.capacity == 0 {
            return;
        }
        let mut state = lock(&self.state);
        for (mask, value) in values {
            state.tick += 1;
            let tick = state.tick;
            state.map.insert((*key, mask), Entry { value, tick });
        }
        if state.map.len() > self.capacity {
            let evicted = evict_oldest_half(&mut state.map);
            self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: lock(&self.state).map.len() as u64,
        }
    }
}

/// Drops the oldest half of the entries by last-touch tick. One O(n)
/// selection plus one retain pass; returns how many entries were dropped.
/// Ticks are unique per touch, so exactly `len / 2` entries fall below the
/// median and the map always shrinks.
fn evict_oldest_half(map: &mut HashMap<(GameKey, u64), Entry>) -> usize {
    let before = map.len();
    let mut ticks: Vec<u64> = map.values().map(|e| e.tick).collect();
    let mid = ticks.len() / 2;
    let (_, &mut cutoff, _) = ticks.select_nth_unstable(mid);
    let cutoff = cutoff;
    map.retain(|_, e| e.tick >= cutoff);
    before - map.len()
}

fn lock<'a>(m: &'a Mutex<MemoState>) -> MutexGuard<'a, MemoState> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> GameKey {
        GameKey { model: n, background: n.wrapping_mul(31), instance: n.wrapping_mul(97) }
    }

    #[test]
    fn fingerprint_is_bit_sensitive() {
        assert_ne!(fingerprint_f64s(&[1.0, 2.0]), fingerprint_f64s(&[2.0, 1.0]));
        assert_ne!(fingerprint_f64s(&[0.0]), fingerprint_f64s(&[-0.0]));
        assert_eq!(fingerprint_f64s(&[1.5, -3.25]), fingerprint_f64s(&[1.5, -3.25]));
    }

    #[test]
    fn derive_distinguishes_every_component() {
        let bg = xai_linalg::Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let base = GameKey::derive(7, &bg, &[0.5, 0.5]);
        assert_ne!(base, GameKey::derive(8, &bg, &[0.5, 0.5]));
        assert_ne!(base, GameKey::derive(7, &bg, &[0.5, 0.6]));
        let bg2 = xai_linalg::Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.5]]);
        assert_ne!(base, GameKey::derive(7, &bg2, &[0.5, 0.5]));
        assert_eq!(base, GameKey::derive(7, &bg, &[0.5, 0.5]));
    }

    #[test]
    fn get_insert_round_trip_and_counters() {
        let memo = CoalitionMemo::new(64);
        let k = key(1);
        let mut out = vec![None; 3];
        assert_eq!(memo.get_many(&k, &[0b01, 0b10, 0b11], &mut out), 0);
        assert_eq!(out, vec![None, None, None]);
        memo.insert_many(&k, [(0b01, 1.5), (0b11, -2.25)]);
        assert_eq!(memo.get_many(&k, &[0b01, 0b10, 0b11], &mut out), 2);
        assert_eq!(out, vec![Some(1.5), None, Some(-2.25)]);
        let stats = memo.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 4, 2));

        // A different game key shares nothing.
        assert_eq!(memo.get_many(&key(2), &[0b01], &mut out[..1]), 0);
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let memo = CoalitionMemo::new(0);
        let k = key(1);
        memo.insert_many(&k, [(1, 9.0)]);
        let mut out = [Some(1.0)];
        assert_eq!(memo.get_many(&k, &[1], &mut out), 0);
        assert_eq!(out, [None]);
        let stats = memo.stats();
        assert_eq!((stats.misses, stats.entries), (1, 0));
    }

    #[test]
    fn eviction_drops_oldest_and_keeps_newest() {
        let memo = CoalitionMemo::new(8);
        let k = key(1);
        for mask in 0..8u64 {
            memo.insert_many(&k, [(mask, mask as f64)]);
        }
        // Touch the four newest so recency is unambiguous, then overflow.
        let mut out = vec![None; 4];
        memo.get_many(&k, &[4, 5, 6, 7], &mut out);
        memo.insert_many(&k, [(8, 8.0)]);
        let stats = memo.stats();
        assert!(stats.evictions > 0, "overflow must evict");
        assert!(stats.entries <= 8);
        // The most recently touched survivors are still present.
        let mut fresh = vec![None; 5];
        let hits = memo.get_many(&k, &[4, 5, 6, 7, 8], &mut fresh);
        assert_eq!(hits, 5, "recently touched entries must survive eviction: {fresh:?}");
    }

    #[test]
    fn concurrent_use_is_safe_and_deterministic() {
        let memo = std::sync::Arc::new(CoalitionMemo::new(1024));
        let k = key(3);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let memo = std::sync::Arc::clone(&memo);
                std::thread::spawn(move || {
                    for round in 0..50u64 {
                        let mask = (t * 50 + round) % 32;
                        memo.insert_many(&k, [(mask, mask as f64 * 0.5)]);
                        let mut out = [None];
                        if memo.get_many(&k, &[mask], &mut out) == 1 {
                            // Values are pure functions of the key: any hit
                            // must carry exactly the inserted bits.
                            assert_eq!(out[0], Some(mask as f64 * 0.5));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("memo soak thread panicked");
        }
        let stats = memo.stats();
        assert_eq!(stats.entries, 32);
        assert_eq!(stats.evictions, 0);
    }
}
