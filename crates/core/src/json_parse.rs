//! A JSON parser completing the round trip with [`crate::report::Json`].
//!
//! Reports written by the workspace (and configuration snippets fed to
//! it) can be read back without external dependencies. The parser is a
//! straightforward recursive-descent implementation over the JSON
//! grammar: objects, arrays, strings (with escapes and `\uXXXX`),
//! numbers, booleans, null.

use crate::report::Json;

/// A parse error with byte position and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &str) -> Result<T, ParseError> {
        Err(ParseError { position: self.pos, message: message.to_string() })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Json::Bool(true)),
            Some(b'f') => self.parse_lit("false", Json::Bool(false)),
            Some(b'n') => self.parse_lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => self.err(&format!("unexpected character '{}'", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(&format!("expected literal '{lit}'"))
        }
    }

    fn parse_number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ParseError { position: start, message: "invalid utf8 in number".into() })?;
        match text.parse::<f64>() {
            Ok(n) => Ok(Json::Num(n)),
            Err(_) => self.err(&format!("invalid number '{text}'")),
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return self.err("truncated \\u escape");
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| ParseError {
                                position: self.pos,
                                message: "invalid utf8 in \\u escape".into(),
                            })?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| ParseError {
                                position: self.pos,
                                message: format!("invalid \\u escape '{hex}'"),
                            })?;
                        self.pos += 4;
                        // Surrogate pairs (rare in our reports) fall back to
                        // the replacement character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return self.err("invalid escape"),
                },
                Some(c) if c < 0x80 => out.push(c as char),
                Some(c) => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return self.err("invalid utf8 byte"),
                    };
                    let start = self.pos - 1;
                    if start + len > self.bytes.len() {
                        return self.err("truncated utf8 sequence");
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| ParseError {
                            position: start,
                            message: "invalid utf8 sequence".into(),
                        })?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(fields)),
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses a JSON document.
pub fn parse_json(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after document");
    }
    Ok(value)
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "-12", "3.25", "1e3", "-2.5e-2"] {
            let v = parse_json(text).unwrap();
            let re = parse_json(&v.to_json()).unwrap();
            assert_eq!(v, re, "{text}");
        }
    }

    #[test]
    fn strings_with_escapes() {
        let v = parse_json(r#""line\nbreak \"quoted\" tab\t uA""#).unwrap();
        assert_eq!(v, Json::Str("line\nbreak \"quoted\" tab\t uA".into()));
        let unicode = parse_json("\"héllo ✓\"").unwrap();
        assert_eq!(unicode, Json::Str("héllo ✓".into()));
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"a": [1, 2, {"b": null}], "c": {"d": true}, "e": "x"}"#;
        let v = parse_json(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
        // Round trip.
        assert_eq!(parse_json(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn reports_roundtrip() {
        use crate::explanation::FeatureAttribution;
        use crate::report::ToReport;
        let fa = FeatureAttribution::new(
            vec!["age".into(), "income".into()],
            vec![0.5, -0.25],
            0.1,
            0.35,
        );
        let text = fa.to_report().to_json();
        let parsed = parse_json(&text).unwrap();
        assert_eq!(parsed.get("kind").unwrap().as_str(), Some("feature_attribution"));
        let values = parsed.get("values").unwrap().as_arr().unwrap();
        assert_eq!(values[0].as_num(), Some(0.5));
        assert_eq!(values[1].as_num(), Some(-0.25));
    }

    #[test]
    fn errors_carry_positions() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("truex").is_err());
        assert!(parse_json(r#"{"a" 1}"#).is_err());
        let e = parse_json("[1, 2, oops]").unwrap_err();
        assert!(e.position >= 7, "position {}", e.position);
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse_json("  {\n\t\"a\" :\r [ 1 , 2 ]\n}  ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }
}
