//! A minimal JSON document model and writer.
//!
//! Explanations need to leave the process (dashboards, regulators, audit
//! trails — the GDPR/CCPA motivation of §1). `serde_json` is not on this
//! workspace's dependency allowlist, so this module implements the small
//! subset we need: a JSON value tree and a correct serializer (string
//! escaping, stable key order, finite-number handling).

use crate::explanation::{Counterfactual, DataAttribution, FeatureAttribution, RuleExplanation};
use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience object constructor.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// An array of numbers.
    pub fn nums(xs: &[f64]) -> Json {
        Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect())
    }

    /// An array of strings.
    pub fn strs<S: AsRef<str>>(xs: &[S]) -> Json {
        Json::Arr(xs.iter().map(|s| Json::str(s.as_ref())).collect())
    }

    /// Serializes to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integral values print without a trailing ".0".
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can render themselves as a JSON report.
pub trait ToReport {
    /// Builds the JSON value for this explanation.
    fn to_report(&self) -> Json;
}

impl ToReport for FeatureAttribution {
    fn to_report(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::str("feature_attribution")),
            ("features", Json::strs(&self.feature_names)),
            ("values", Json::nums(&self.values)),
            ("baseline", Json::Num(self.baseline)),
            ("prediction", Json::Num(self.prediction)),
            ("efficiency_gap", Json::Num(self.efficiency_gap())),
        ])
    }
}

impl ToReport for RuleExplanation {
    fn to_report(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::str("rule")),
            (
                "conditions",
                Json::Arr(self.conditions.iter().map(|c| Json::str(c.to_string())).collect()),
            ),
            ("prediction", Json::Num(self.prediction)),
            ("precision", Json::Num(self.precision)),
            ("coverage", Json::Num(self.coverage)),
        ])
    }
}

impl ToReport for Counterfactual {
    fn to_report(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::str("counterfactual")),
            ("original", Json::nums(&self.original)),
            ("counterfactual", Json::nums(&self.counterfactual)),
            ("original_output", Json::Num(self.original_output)),
            ("counterfactual_output", Json::Num(self.counterfactual_output)),
            (
                "changed_features",
                Json::Arr(self.changed_features.iter().map(|&i| Json::Num(i as f64)).collect()),
            ),
            ("distance", Json::Num(self.distance)),
            ("valid", Json::Bool(self.is_valid())),
        ])
    }
}

impl ToReport for DataAttribution {
    fn to_report(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::str("data_attribution")),
            ("measure", Json::str(self.measure.clone())),
            ("values", Json::nums(&self.values)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.to_json(), "null");
        assert_eq!(Json::Bool(true).to_json(), "true");
        assert_eq!(Json::Num(3.0).to_json(), "3");
        assert_eq!(Json::Num(3.25).to_json(), "3.25");
        assert_eq!(Json::Num(f64::NAN).to_json(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(Json::str("a\"b").to_json(), r#""a\"b""#);
        assert_eq!(Json::str("line\nbreak").to_json(), r#""line\nbreak""#);
        assert_eq!(Json::str("tab\there").to_json(), r#""tab\there""#);
        assert_eq!(Json::str("back\\slash").to_json(), r#""back\\slash""#);
        assert_eq!(Json::str("\u{1}").to_json(), "\"\\u0001\"");
        assert_eq!(Json::str("unicode ✓").to_json(), "\"unicode ✓\"");
    }

    #[test]
    fn arrays_and_objects() {
        let j = Json::obj(vec![
            ("xs", Json::nums(&[1.0, 2.5])),
            ("name", Json::str("test")),
            ("nested", Json::obj(vec![("flag", Json::Bool(false))])),
        ]);
        assert_eq!(
            j.to_json(),
            r#"{"xs":[1,2.5],"name":"test","nested":{"flag":false}}"#
        );
        assert_eq!(Json::Arr(vec![]).to_json(), "[]");
        assert_eq!(Json::Obj(vec![]).to_json(), "{}");
    }

    #[test]
    fn attribution_report() {
        let fa = FeatureAttribution::new(vec!["age".into()], vec![0.5], 0.25, 0.75);
        let s = fa.to_report().to_json();
        assert!(s.contains(r#""kind":"feature_attribution""#));
        assert!(s.contains(r#""features":["age"]"#));
        assert!(s.contains(r#""efficiency_gap":0"#));
    }

    #[test]
    fn counterfactual_report_contains_validity() {
        let cf = Counterfactual::new(vec![1.0], vec![2.0], 0.2, 0.8, 1.0);
        let s = cf.to_report().to_json();
        assert!(s.contains(r#""valid":true"#));
        assert!(s.contains(r#""changed_features":[0]"#));
    }
}
