//! Up-front input validation shared by every `try_*` entry point.
//!
//! Perturbation-based explainers amplify bad inputs: one NaN feature
//! poisons every coalition evaluation, and a background identical to the
//! instance makes the induced game constant (so the kernel regression is
//! singular by construction). These checks reject such inputs at the API
//! boundary with a precise [`XaiError::NonFiniteInput`] instead of letting
//! them surface later as a mystery NaN attribution or a solver panic.

use crate::error::{XaiError, XaiResult};
use xai_linalg::Matrix;

/// Rejects NaN/±Inf scalars.
pub fn finite_scalar(context: &str, v: f64) -> XaiResult<()> {
    if v.is_finite() {
        Ok(())
    } else {
        Err(XaiError::NonFiniteInput { context: format!("{context}: value is {v}") })
    }
}

/// Rejects slices containing NaN/±Inf, naming the offending index.
pub fn finite_slice(context: &str, v: &[f64]) -> XaiResult<()> {
    if let Some(i) = v.iter().position(|x| !x.is_finite()) {
        return Err(XaiError::NonFiniteInput {
            context: format!("{context}: entry {i} is {}", v[i]),
        });
    }
    Ok(())
}

/// Rejects matrices containing NaN/±Inf, naming the offending cell.
pub fn finite_matrix(context: &str, m: &Matrix) -> XaiResult<()> {
    for i in 0..m.rows() {
        if let Some(j) = m.row(i).iter().position(|x| !x.is_finite()) {
            return Err(XaiError::NonFiniteInput {
                context: format!("{context}: entry ({i}, {j}) is {}", m.row(i)[j]),
            });
        }
    }
    Ok(())
}

/// Validates a background dataset against the instance being explained:
/// matching arity, finite entries, at least one row, and not *degenerate*
/// (every background row identical to the instance — masking features
/// would then change nothing, the induced game is constant, and the
/// kernel regression singular by construction).
pub fn background(context: &str, instance: &[f64], background: &Matrix) -> XaiResult<()> {
    finite_slice(&format!("{context}: instance"), instance)?;
    if background.rows() == 0 {
        return Err(XaiError::NonFiniteInput {
            context: format!("{context}: background has no rows"),
        });
    }
    if background.cols() != instance.len() {
        return Err(XaiError::NonFiniteInput {
            context: format!(
                "{context}: background has {} features, instance has {}",
                background.cols(),
                instance.len()
            ),
        });
    }
    finite_matrix(&format!("{context}: background"), background)?;
    let degenerate = (0..background.rows()).all(|i| background.row(i) == instance);
    if degenerate {
        return Err(XaiError::NonFiniteInput {
            context: format!(
                "{context}: degenerate background (every row equals the instance)"
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_checks_accept_clean_and_name_the_culprit() {
        assert!(finite_scalar("x", 1.5).is_ok());
        assert!(finite_slice("v", &[0.0, -3.0]).is_ok());
        let err = finite_slice("v", &[0.0, f64::NAN]).unwrap_err();
        assert!(err.to_string().contains("entry 1"), "{err}");
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, f64::INFINITY]]);
        let err = finite_matrix("m", &m).unwrap_err();
        assert!(err.to_string().contains("(1, 1)"), "{err}");
    }

    #[test]
    fn background_rejects_arity_mismatch_and_degeneracy() {
        let bg = Matrix::from_rows(&[vec![1.0, 2.0], vec![1.0, 2.0]]);
        assert!(background("shap", &[1.0, 2.0, 3.0], &bg).is_err());
        // All rows equal to the instance: the game is constant.
        assert!(background("shap", &[1.0, 2.0], &bg).is_err());
        // One differing row is enough structure to explain against.
        let ok = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 2.0]]);
        assert!(background("shap", &[1.0, 2.0], &ok).is_ok());
        assert!(background("shap", &[], &Matrix::zeros(0, 0)).is_err());
    }
}
