//! Property-based tests: provenance polynomials must satisfy the semiring
//! laws, and semiring evaluation must commute with the polynomial algebra.

use proptest::prelude::*;
use xai_provenance::Polynomial;

/// Strategy: a random provenance polynomial over up to 6 variables,
/// built from vars by random plus/times combinations.
fn polynomial() -> impl Strategy<Value = Polynomial> {
    let leaf = (0usize..6).prop_map(Polynomial::var);
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.plus(&b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.times(&b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plus_is_commutative_and_associative(a in polynomial(), b in polynomial(), c in polynomial()) {
        prop_assert_eq!(a.plus(&b), b.plus(&a));
        prop_assert_eq!(a.plus(&b).plus(&c), a.plus(&b.plus(&c)));
    }

    #[test]
    fn times_is_commutative_and_associative(a in polynomial(), b in polynomial(), c in polynomial()) {
        prop_assert_eq!(a.times(&b), b.times(&a));
        prop_assert_eq!(a.times(&b).times(&c), a.times(&b.times(&c)));
    }

    #[test]
    fn distributivity(a in polynomial(), b in polynomial(), c in polynomial()) {
        prop_assert_eq!(a.times(&b.plus(&c)), a.times(&b).plus(&a.times(&c)));
    }

    #[test]
    fn identities(a in polynomial()) {
        prop_assert_eq!(a.plus(&Polynomial::zero()), a.clone());
        prop_assert_eq!(a.times(&Polynomial::one()), a.clone());
        prop_assert!(a.times(&Polynomial::zero()).is_zero());
    }

    #[test]
    fn counting_evaluation_is_a_homomorphism(
        a in polynomial(),
        b in polynomial(),
        mults in prop::collection::vec(0u64..4, 6),
    ) {
        let assign = |v: usize| mults[v];
        let sum = a.plus(&b).count(&assign);
        prop_assert_eq!(sum, a.count(&assign) + b.count(&assign));
        let prod = a.times(&b).count(&assign);
        prop_assert_eq!(prod, a.count(&assign) * b.count(&assign));
    }

    #[test]
    fn boolean_presence_matches_counting_positivity(
        a in polynomial(),
        avail in prop::collection::vec(prop::bool::ANY, 6),
    ) {
        let present = a.present(&|v| avail[v]);
        let count = a.count(&|v| u64::from(avail[v]));
        prop_assert_eq!(present, count > 0);
    }

    #[test]
    fn lineage_bounds_presence(a in polynomial()) {
        // With every lineage variable present, the tuple exists; with all
        // absent, it does not (unless the polynomial is constant).
        let lineage = a.lineage();
        if !lineage.is_empty() {
            prop_assert!(a.present(&|v| lineage.contains(&v)));
            prop_assert!(!a.present(&|_| false));
        }
    }

    #[test]
    fn tropical_cost_is_monotone_in_tuple_costs(
        a in polynomial(),
        costs in prop::collection::vec(0.0..5.0f64, 6),
    ) {
        let base = a.min_cost(&|v| costs[v]);
        let bumped = a.min_cost(&|v| costs[v] + 1.0);
        prop_assert!(bumped >= base, "raising all costs cannot lower the min derivation");
    }
}
