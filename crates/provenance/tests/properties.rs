//! Property-based tests: provenance polynomials must satisfy the semiring
//! laws, and semiring evaluation must commute with the polynomial algebra.
//! Run as deterministic seeded loops over `xai_rand`.

use xai_provenance::Polynomial;
use xai_rand::property::cases;
use xai_rand::rngs::StdRng;
use xai_rand::Rng;

/// A random provenance polynomial over up to 6 variables, built from vars
/// by random plus/times combinations up to the given depth.
fn polynomial(rng: &mut StdRng, depth: usize) -> Polynomial {
    if depth == 0 || rng.gen_range(0..4) == 0 {
        return Polynomial::var(rng.gen_range(0usize..6));
    }
    let a = polynomial(rng, depth - 1);
    let b = polynomial(rng, depth - 1);
    if rng.gen::<bool>() {
        a.plus(&b)
    } else {
        a.times(&b)
    }
}

#[test]
fn plus_is_commutative_and_associative() {
    cases(64, 501, |rng| {
        let (a, b, c) = (polynomial(rng, 3), polynomial(rng, 3), polynomial(rng, 3));
        assert_eq!(a.plus(&b), b.plus(&a));
        assert_eq!(a.plus(&b).plus(&c), a.plus(&b.plus(&c)));
    });
}

#[test]
fn times_is_commutative_and_associative() {
    cases(64, 502, |rng| {
        let (a, b, c) = (polynomial(rng, 3), polynomial(rng, 3), polynomial(rng, 3));
        assert_eq!(a.times(&b), b.times(&a));
        assert_eq!(a.times(&b).times(&c), a.times(&b.times(&c)));
    });
}

#[test]
fn distributivity() {
    cases(64, 503, |rng| {
        let (a, b, c) = (polynomial(rng, 3), polynomial(rng, 3), polynomial(rng, 3));
        assert_eq!(a.times(&b.plus(&c)), a.times(&b).plus(&a.times(&c)));
    });
}

#[test]
fn identities() {
    cases(64, 504, |rng| {
        let a = polynomial(rng, 3);
        assert_eq!(a.plus(&Polynomial::zero()), a.clone());
        assert_eq!(a.times(&Polynomial::one()), a.clone());
        assert!(a.times(&Polynomial::zero()).is_zero());
    });
}

#[test]
fn counting_evaluation_is_a_homomorphism() {
    cases(64, 505, |rng| {
        let (a, b) = (polynomial(rng, 3), polynomial(rng, 3));
        let mults: Vec<u64> = (0..6).map(|_| rng.gen_range(0u64..4)).collect();
        let assign = |v: usize| mults[v];
        let sum = a.plus(&b).count(&assign);
        assert_eq!(sum, a.count(&assign) + b.count(&assign));
        let prod = a.times(&b).count(&assign);
        assert_eq!(prod, a.count(&assign) * b.count(&assign));
    });
}

#[test]
fn boolean_presence_matches_counting_positivity() {
    cases(64, 506, |rng| {
        let a = polynomial(rng, 3);
        let avail: Vec<bool> = (0..6).map(|_| rng.gen::<bool>()).collect();
        let present = a.present(&|v| avail[v]);
        let count = a.count(&|v| u64::from(avail[v]));
        assert_eq!(present, count > 0);
    });
}

#[test]
fn lineage_bounds_presence() {
    cases(64, 507, |rng| {
        // With every lineage variable present, the tuple exists; with all
        // absent, it does not (unless the polynomial is constant).
        let a = polynomial(rng, 3);
        let lineage = a.lineage();
        if !lineage.is_empty() {
            assert!(a.present(&|v| lineage.contains(&v)));
            assert!(!a.present(&|_| false));
        }
    });
}

#[test]
fn tropical_cost_is_monotone_in_tuple_costs() {
    cases(64, 508, |rng| {
        let a = polynomial(rng, 3);
        let costs: Vec<f64> = (0..6).map(|_| rng.gen_range(0.0..5.0)).collect();
        let base = a.min_cost(&|v| costs[v]);
        let bumped = a.min_cost(&|v| costs[v] + 1.0);
        assert!(bumped >= base, "raising all costs cannot lower the min derivation");
    });
}
