//! Why-not provenance: explaining *missing* query answers
//! (Meliou et al., "WHY SO? or WHY NO?", §3 \[49\]).
//!
//! Why-provenance explains why a tuple IS in the answer; **why-not**
//! explains why an expected tuple ISN'T. For select–project queries we
//! implement the instance-based account: for every base tuple that
//! *could* have produced the missing answer (it projects onto it), list
//! the selection predicates it fails, and produce the minimal
//! attribute-level repair that would let it through — a counterfactual
//! over the database rather than the model, closing the loop between the
//! §2.1.4 and §3 worlds.

use crate::relation::{Relation, Value};
use xai_core::{Condition, Op};

/// Why a candidate base tuple fails to produce the missing answer.
#[derive(Clone, Debug)]
pub struct WhyNotWitness {
    /// Index of the base tuple in the relation.
    pub tuple_index: usize,
    /// The selection conditions this tuple violates.
    pub failed_conditions: Vec<Condition>,
    /// Minimal repair: `(column index, current value, required value)`
    /// per failed numeric/categorical condition.
    pub repairs: Vec<(usize, f64, f64)>,
}

/// The full why-not explanation for a missing projected answer.
#[derive(Clone, Debug)]
pub struct WhyNotExplanation {
    /// Candidate tuples that project onto the missing answer, with their
    /// failure accounts, ordered by fewest failed conditions.
    pub witnesses: Vec<WhyNotWitness>,
    /// True when *no* base tuple projects onto the answer at all (the
    /// answer is unsupported — it would need an insertion, not a repair).
    pub unsupported: bool,
}

/// Explains why `missing` (values of `projection` columns) is absent from
/// `σ_conditions(R)` projected onto `projection`.
pub fn why_not(
    relation: &Relation,
    conditions: &[Condition],
    projection: &[&str],
    missing: &[Value],
) -> WhyNotExplanation {
    assert_eq!(projection.len(), missing.len(), "projection/missing arity mismatch");
    let proj_idx: Vec<usize> = projection.iter().map(|c| relation.col(c)).collect();

    let mut witnesses = Vec::new();
    for (t_idx, tuple) in relation.tuples.iter().enumerate() {
        // Does this tuple project onto the missing answer?
        let projects = proj_idx
            .iter()
            .zip(missing)
            .all(|(&c, m)| tuple.values[c] == *m);
        if !projects {
            continue;
        }
        let row: Vec<f64> = tuple
            .values
            .iter()
            .map(|v| match v {
                Value::Str(_) => f64::NAN, // string columns handled via Eq only
                other => other.as_f64(),
            })
            .collect();
        let failed: Vec<Condition> = conditions
            .iter()
            .filter(|c| !condition_holds(c, &row, &tuple.values))
            .cloned()
            .collect();
        let repairs = failed
            .iter()
            .map(|c| {
                let current = if row[c.feature].is_nan() { f64::NAN } else { row[c.feature] };
                let required = match c.op {
                    Op::Le => c.value,
                    Op::Gt => c.value + 1e-9,
                    Op::Eq => c.value,
                };
                (c.feature, current, required)
            })
            .collect();
        witnesses.push(WhyNotWitness { tuple_index: t_idx, failed_conditions: failed, repairs });
    }
    witnesses.sort_by_key(|w| w.failed_conditions.len());
    let unsupported = witnesses.is_empty();
    WhyNotExplanation { witnesses, unsupported }
}

fn condition_holds(c: &Condition, row: &[f64], values: &[Value]) -> bool {
    match (&values[c.feature], c.op) {
        (Value::Str(s), Op::Eq) => {
            // String equality encoded as category code is not supported in
            // this simplified path; compare rendered value.
            s == &c.value.to_string()
        }
        _ => {
            let v = row[c.feature];
            match c.op {
                Op::Le => v <= c.value,
                Op::Gt => v > c.value,
                Op::Eq => (v - c.value).abs() < 1e-9,
            }
        }
    }
}

/// Applies a witness's repairs to its tuple and checks the answer now
/// appears — the verification step of the explanation.
pub fn verify_repair(
    relation: &Relation,
    conditions: &[Condition],
    witness: &WhyNotWitness,
) -> bool {
    let tuple = &relation.tuples[witness.tuple_index];
    let mut row: Vec<f64> = tuple
        .values
        .iter()
        .map(|v| match v {
            Value::Str(_) => f64::NAN,
            other => other.as_f64(),
        })
        .collect();
    for &(col, _, required) in &witness.repairs {
        row[col] = required;
    }
    conditions.iter().all(|c| {
        if row[c.feature].is_nan() {
            condition_holds(c, &row, &tuple.values)
        } else {
            let v = row[c.feature];
            match c.op {
                Op::Le => v <= c.value,
                Op::Gt => v > c.value,
                Op::Eq => (v - c.value).abs() < 1e-9,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn employees() -> Relation {
        let (r, _) = Relation::base(
            "employees",
            &["name", "dept", "salary", "years"],
            vec![
                vec![Value::Str("ann".into()), Value::Int(1), Value::Float(90.0), Value::Int(6)],
                vec![Value::Str("bob".into()), Value::Int(1), Value::Float(45.0), Value::Int(2)],
                vec![Value::Str("cat".into()), Value::Int(2), Value::Float(80.0), Value::Int(9)],
                vec![Value::Str("bob".into()), Value::Int(2), Value::Float(70.0), Value::Int(1)],
            ],
            0,
        );
        r
    }

    fn senior_high_earners() -> Vec<Condition> {
        vec![
            Condition { feature: 2, feature_name: "salary".into(), op: Op::Gt, value: 60.0 },
            Condition { feature: 3, feature_name: "years".into(), op: Op::Gt, value: 5.0 },
        ]
    }

    #[test]
    fn explains_why_bob_is_missing() {
        // Q: names of employees with salary > 60 and years > 5.
        // "Why is bob not an answer?"
        let r = employees();
        let exp = why_not(&r, &senior_high_earners(), &["name"], &[Value::Str("bob".into())]);
        assert!(!exp.unsupported);
        assert_eq!(exp.witnesses.len(), 2, "both bob tuples are candidates");
        // The closest witness (tuple 3: salary 70 > 60 ok, years 1 ≤ 5
        // fails one condition) comes first.
        let best = &exp.witnesses[0];
        assert_eq!(best.tuple_index, 3);
        assert_eq!(best.failed_conditions.len(), 1);
        assert_eq!(best.failed_conditions[0].feature_name, "years");
        // The other bob fails both conditions.
        assert_eq!(exp.witnesses[1].failed_conditions.len(), 2);
    }

    #[test]
    fn repairs_verify() {
        let r = employees();
        let conditions = senior_high_earners();
        let exp = why_not(&r, &conditions, &["name"], &[Value::Str("bob".into())]);
        for w in &exp.witnesses {
            assert!(verify_repair(&r, &conditions, w), "repair for tuple {} must work", w.tuple_index);
        }
    }

    #[test]
    fn present_answers_have_zero_failure_witnesses() {
        let r = employees();
        let conditions = senior_high_earners();
        // ann IS an answer: her witness fails nothing.
        let exp = why_not(&r, &conditions, &["name"], &[Value::Str("ann".into())]);
        assert_eq!(exp.witnesses[0].failed_conditions.len(), 0);
    }

    #[test]
    fn unsupported_answers_are_flagged() {
        let r = employees();
        let exp = why_not(&r, &senior_high_earners(), &["name"], &[Value::Str("zoe".into())]);
        assert!(exp.unsupported);
        assert!(exp.witnesses.is_empty());
    }
}
