//! PrIU-style incremental model updates
//! (Wu, Tannen & Davidson, §3 \[77\]; HedgeCut-style low-latency deletion
//! \[59\] motivates the latency target).
//!
//! Deleting training tuples should not require retraining from scratch:
//! for ridge regression the sufficient statistics are `XᵀX + λI` and
//! `Xᵀy`, and a deletion is a rank-one *downdate*. The statistics are kept
//! as a **Cholesky factor** maintained through the shared
//! [`xai_linalg::cholupdate`]/[`xai_linalg::choldowndate`] kernels — the
//! same `O(d²)` engine the incremental data-valuation utilities ride — so
//! each deletion costs `O(d²)` instead of a full `O(n·d²)` refit, and the
//! factored form is numerically stabler than the Sherman–Morrison inverse
//! it replaced. Experiment E18 measures the speedup and checks the
//! parameters match the retrained model to machine precision.

use xai_linalg::{Cholesky, Matrix};

/// Ridge regression with incrementally-maintained sufficient statistics.
#[derive(Clone, Debug)]
pub struct IncrementalRidge {
    /// Cholesky factor of `XᵀX + λI`, maintained by rank-one
    /// updates/downdates.
    factor: Cholesky,
    /// `Xᵀy`.
    xty: Vec<f64>,
    /// Number of rows currently incorporated.
    n_rows: usize,
    /// The ridge λ.
    lambda: f64,
}

impl IncrementalRidge {
    /// Fits from scratch on a design matrix (callers add the intercept
    /// column themselves if wanted).
    pub fn fit(x: &Matrix, y: &[f64], lambda: f64) -> Self {
        assert_eq!(x.rows(), y.len());
        assert!(lambda > 0.0, "λ > 0 keeps the statistics invertible under deletions");
        let mut gram = x.gram();
        gram.add_diag_mut(lambda);
        let factor = Cholesky::factor(&gram).expect("ridge Gram is SPD for λ > 0");
        Self { factor, xty: x.t_matvec(y), n_rows: x.rows(), lambda }
    }

    /// Statistics of the empty design: `λI` and a zero moment vector.
    /// Absorbing rows one by one from here costs the same `O(n·d²)` as
    /// [`IncrementalRidge::fit`] but never materializes the Gram matrix.
    pub fn empty(d: usize, lambda: f64) -> Self {
        assert!(lambda > 0.0, "λ > 0 keeps the statistics invertible under deletions");
        Self { factor: Cholesky::scaled_identity(d, lambda), xty: vec![0.0; d], n_rows: 0, lambda }
    }

    /// Current coefficient vector `(XᵀX + λI)⁻¹ Xᵀy`.
    pub fn coef(&self) -> Vec<f64> {
        self.factor.solve(&self.xty)
    }

    /// The maintained factor of `XᵀX + λI`.
    pub fn factor(&self) -> &Cholesky {
        &self.factor
    }

    /// Rows currently incorporated.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The ridge parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Incorporates one row (rank-one Cholesky *update*): `O(d²)`.
    pub fn add_row(&mut self, x: &[f64], y: f64) {
        self.factor.rank_one_update(x);
        for (a, &xi) in self.xty.iter_mut().zip(x) {
            *a += y * xi;
        }
        self.n_rows += 1;
    }

    /// Removes one previously-incorporated row (rank-one Cholesky
    /// *downdate*): `O(d²)`.
    ///
    /// # Panics
    /// Panics when the downdate would make the statistics singular (e.g.
    /// removing a row that was never added). [`IncrementalRidge::try_remove_row`]
    /// is the non-panicking form.
    pub fn remove_row(&mut self, x: &[f64], y: f64) {
        self.try_remove_row(x, y).expect("rank-one downdate would make the statistics singular");
    }

    /// Removes one row, reporting failure instead of panicking; on failure
    /// the statistics are left unchanged so the caller can refit.
    pub fn try_remove_row(&mut self, x: &[f64], y: f64) -> Result<(), xai_linalg::LinalgError> {
        assert!(self.n_rows > 0, "no rows left to remove");
        self.factor.rank_one_downdate(x)?;
        for (a, &xi) in self.xty.iter_mut().zip(x) {
            *a -= y * xi;
        }
        self.n_rows -= 1;
        Ok(())
    }
}

/// Full-retrain reference for validation and benchmarking.
pub fn retrain_ridge(x: &Matrix, y: &[f64], lambda: f64) -> Vec<f64> {
    IncrementalRidge::fit(x, y, lambda).coef()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_rand::rngs::StdRng;
    use xai_rand::{Rng, SeedableRng};
    use xai_linalg::distr::normal;
    use xai_linalg::dot;

    fn random_data(n: usize, d: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Matrix::from_fn(n, d, |_, _| normal(&mut rng, 0.0, 1.0));
        let w: Vec<f64> = (0..d).map(|j| j as f64 - 1.0).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| dot(x.row(i), &w) + normal(&mut rng, 0.0, 0.1))
            .collect();
        (x, y)
    }

    #[test]
    fn incremental_deletion_matches_full_retrain() {
        let (x, y) = random_data(200, 5, 3);
        let mut inc = IncrementalRidge::fit(&x, &y, 1e-3);
        // Delete rows 10, 50, 120 incrementally.
        let delete = [10usize, 50, 120];
        for &i in &delete {
            inc.remove_row(x.row(i), y[i]);
        }
        // Full retrain on the survivors.
        let keep: Vec<usize> = (0..200).filter(|i| !delete.contains(i)).collect();
        let xk = x.select_rows(&keep);
        let yk: Vec<f64> = keep.iter().map(|&i| y[i]).collect();
        let truth = retrain_ridge(&xk, &yk, 1e-3);
        for (a, b) in inc.coef().iter().zip(&truth) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
        assert_eq!(inc.n_rows(), 197);
    }

    #[test]
    fn incremental_insertion_matches_full_retrain() {
        let (x, y) = random_data(100, 4, 7);
        let half: Vec<usize> = (0..50).collect();
        let xh = x.select_rows(&half);
        let yh: Vec<f64> = half.iter().map(|&i| y[i]).collect();
        let mut inc = IncrementalRidge::fit(&xh, &yh, 1e-2);
        for i in 50..100 {
            inc.add_row(x.row(i), y[i]);
        }
        let truth = retrain_ridge(&x, &y, 1e-2);
        for (a, b) in inc.coef().iter().zip(&truth) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn add_then_remove_is_identity() {
        let (x, y) = random_data(80, 3, 11);
        let mut inc = IncrementalRidge::fit(&x, &y, 1e-2);
        let before = inc.coef();
        let probe = [0.5, -1.0, 2.0];
        inc.add_row(&probe, 3.0);
        inc.remove_row(&probe, 3.0);
        for (a, b) in inc.coef().iter().zip(&before) {
            assert!((a - b).abs() < 1e-9);
        }
        assert_eq!(inc.n_rows(), 80);
    }

    #[test]
    fn many_random_deletions_stay_accurate() {
        let (x, y) = random_data(300, 6, 13);
        let mut inc = IncrementalRidge::fit(&x, &y, 1e-3);
        let mut rng = StdRng::seed_from_u64(5);
        let mut removed: Vec<usize> = (0..300).collect();
        // Remove 100 random rows.
        for _ in 0..100 {
            let pos = rng.gen_range(0..removed.len());
            let i = removed.swap_remove(pos);
            inc.remove_row(x.row(i), y[i]);
        }
        let xk = x.select_rows(&removed);
        let yk: Vec<f64> = removed.iter().map(|&i| y[i]).collect();
        let truth = retrain_ridge(&xk, &yk, 1e-3);
        for (a, b) in inc.coef().iter().zip(&truth) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }
}
