//! Complaint-driven training-data debugging ("Rain"-style;
//! Wu, Flokas, Wu & Wang, §3 \[76\]).
//!
//! Query 2.0 setting: an aggregate SQL query runs over *model predictions*
//! (e.g. `SELECT count(*) FROM applicants WHERE M(x) = 1`). A user files a
//! **complaint** — "this count is too high/low" — and the system must find
//! the training tuples responsible. Rain's move: relax the query to a
//! differentiable surrogate (counts become sums of predicted
//! probabilities), then rank training points by the influence of removing
//! them on the relaxed query result, reusing the influence-function
//! machinery.

use xai_core::DataAttribution;
use xai_data::Dataset;
use xai_linalg::Cholesky;
use xai_models::LogisticRegression;

/// Direction of a complaint about an aggregate result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Complaint {
    /// "The aggregate is too high" — find tuples pushing it up.
    TooHigh,
    /// "The aggregate is too low."
    TooLow,
}

/// A relaxed aggregate query over model predictions: the (optionally
/// filtered) sum of predicted probabilities — the differentiable surrogate
/// of `COUNT(*) WHERE M(x) = 1`.
pub struct PredicateCountQuery<'a> {
    /// Rows the query ranges over.
    pub data: &'a Dataset,
    /// Which rows pass the query's WHERE clause on *attributes* (the model
    /// predicate is applied on top of this mask).
    pub mask: Vec<bool>,
}

impl<'a> PredicateCountQuery<'a> {
    /// Builds a query over all rows satisfying `filter`.
    pub fn new(data: &'a Dataset, filter: impl Fn(&[f64]) -> bool) -> Self {
        let mask = (0..data.n_rows()).map(|i| filter(data.row(i))).collect();
        Self { data, mask }
    }

    /// The relaxed query value: Σ over masked rows of `P(M(x) = 1)`.
    pub fn relaxed_value(&self, model: &LogisticRegression) -> f64 {
        use xai_models::Classifier;
        (0..self.data.n_rows())
            .filter(|&i| self.mask[i])
            .map(|i| model.proba_one(self.data.row(i)))
            .sum()
    }

    /// The hard query value: actual count of positive predictions.
    pub fn hard_value(&self, model: &LogisticRegression) -> f64 {
        use xai_models::Classifier;
        (0..self.data.n_rows())
            .filter(|&i| self.mask[i])
            .map(|i| f64::from(model.proba_one(self.data.row(i)) >= 0.5))
            .sum()
    }

    /// Gradient of the relaxed value w.r.t. the model parameters.
    fn gradient(&self, model: &LogisticRegression) -> Vec<f64> {
        use xai_models::Classifier;
        let d = model.weights().len();
        let mut g = vec![0.0; d];
        for i in 0..self.data.n_rows() {
            if !self.mask[i] {
                continue;
            }
            let x = self.data.row(i);
            let p = model.proba_one(x);
            let scale = p * (1.0 - p);
            g[0] += scale;
            for (gj, &xj) in g[1..].iter_mut().zip(x) {
                *gj += scale * xj;
            }
        }
        g
    }
}

/// Ranks training tuples by how much their *removal* would move the
/// relaxed query toward resolving the complaint. The returned attribution
/// is oriented so that **high scores = prime suspects**.
pub fn complaint_influence(
    model: &LogisticRegression,
    train: &Dataset,
    query: &PredicateCountQuery<'_>,
    complaint: Complaint,
) -> DataAttribution {
    let g_query = query.gradient(model);
    let h = model.hessian(train.x(), train.y());
    let s = Cholesky::factor(&h).expect("PD Hessian").solve(&g_query);
    let n = train.n_rows() as f64;
    let values: Vec<f64> = (0..train.n_rows())
        .map(|i| {
            let gi = model.example_grad(train.row(i), train.y()[i]);
            // Predicted change of the query value if tuple i is removed:
            // Δq ≈ g_queryᵀ · Δw = g_queryᵀ H⁻¹ ∇ℓ_i / n.
            let delta_q = xai_linalg::dot(&s, &gi) / n;
            match complaint {
                // "Too high": suspects are tuples whose removal lowers q.
                Complaint::TooHigh => -delta_q,
                Complaint::TooLow => delta_q,
            }
        })
        .collect();
    DataAttribution {
        values,
        measure: "complaint-resolution influence (high = suspect)".into(),
    }
}

/// Convenience: returns the indices of the `k` prime suspects.
pub fn top_suspects(attribution: &DataAttribution, k: usize) -> Vec<usize> {
    attribution.ranking_desc().into_iter().take(k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::linear_gaussian;
    use xai_models::LogisticConfig;

    /// Corrupt labels upward (0 → 1) to inflate positive counts.
    fn inflate_labels(data: &mut Dataset, k: usize, seed: u64) -> Vec<usize> {
        use xai_rand::seq::SliceRandom;
        use xai_rand::SeedableRng;
        let mut rng = xai_rand::rngs::StdRng::seed_from_u64(seed);
        let mut zeros: Vec<usize> = (0..data.n_rows()).filter(|&i| data.y()[i] < 0.5).collect();
        zeros.shuffle(&mut rng);
        zeros.truncate(k);
        for &i in &zeros {
            data.set_label(i, 1.0);
        }
        zeros.sort_unstable();
        zeros
    }

    fn setup() -> (Dataset, Dataset, Vec<usize>, LogisticRegression) {
        let mut train = linear_gaussian(250, &[2.5, -1.0], 0.0, 101);
        let serve = linear_gaussian(300, &[2.5, -1.0], 0.0, 102);
        let guilty = inflate_labels(&mut train, 25, 7);
        let config = LogisticConfig { l2: 1e-2, ..LogisticConfig::default() };
        let model = LogisticRegression::fit(train.x(), train.y(), config);
        (train, serve, guilty, model)
    }

    #[test]
    fn relaxed_value_tracks_hard_count() {
        let (train, serve, _, model) = setup();
        let _ = train;
        let q = PredicateCountQuery::new(&serve, |_| true);
        let relaxed = q.relaxed_value(&model);
        let hard = q.hard_value(&model);
        assert!(
            (relaxed - hard).abs() < serve.n_rows() as f64 * 0.25,
            "relaxation should stay close: {relaxed} vs {hard}"
        );
    }

    #[test]
    fn complaint_finds_the_inflating_tuples() {
        let (train, serve, guilty, model) = setup();
        let q = PredicateCountQuery::new(&serve, |_| true);
        let att = complaint_influence(&model, &train, &q, Complaint::TooHigh);
        let suspects = top_suspects(&att, guilty.len());
        let hits = suspects.iter().filter(|s| guilty.contains(s)).count();
        let precision = hits as f64 / guilty.len() as f64;
        // Random guessing would land at 10%.
        assert!(precision > 0.5, "suspect precision {precision}");
    }

    #[test]
    fn removing_top_suspects_resolves_the_complaint() {
        let (train, serve, guilty, model) = setup();
        let q = PredicateCountQuery::new(&serve, |_| true);
        let before = q.relaxed_value(&model);
        let att = complaint_influence(&model, &train, &q, Complaint::TooHigh);
        let suspects = top_suspects(&att, 25);
        let cleaned = train.without(&suspects);
        let config = LogisticConfig { l2: 1e-2, ..LogisticConfig::default() };
        let refit = LogisticRegression::fit(cleaned.x(), cleaned.y(), config);
        let after = q.relaxed_value(&refit);
        assert!(
            after < before - 1.0,
            "removing suspects must lower the inflated count: {before} -> {after}"
        );
        let _ = guilty;
    }

    #[test]
    fn opposite_complaint_flips_the_ranking() {
        let (train, serve, _, model) = setup();
        let q = PredicateCountQuery::new(&serve, |_| true);
        let hi = complaint_influence(&model, &train, &q, Complaint::TooHigh);
        let lo = complaint_influence(&model, &train, &q, Complaint::TooLow);
        for (a, b) in hi.values.iter().zip(&lo.values) {
            assert!((a + b).abs() < 1e-12);
        }
    }

    #[test]
    fn filtered_queries_restrict_attention() {
        let (train, serve, _, model) = setup();
        // Complaint about positives among x0 > 0 only.
        let q = PredicateCountQuery::new(&serve, |x| x[0] > 0.0);
        assert!(q.mask.iter().any(|&m| m));
        assert!(q.mask.iter().any(|&m| !m));
        let att = complaint_influence(&model, &train, &q, Complaint::TooHigh);
        assert_eq!(att.values.len(), train.n_rows());
    }
}
