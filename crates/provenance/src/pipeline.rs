//! Pipeline provenance: holding data-preparation stages accountable
//! (§3 "Provenance-Based Explanations" \[29\]).
//!
//! The tutorial: *"training data errors may get introduced or exacerbated
//! during different data preparation stages. To hold particular stages
//! accountable … the flow of training data points must be monitored
//! through different stages using provenance techniques."* This module
//! implements exactly that: a typed preparation pipeline whose stages
//! record **cell-level provenance** (which stage last wrote each value),
//! plus a stage-ablation attributor that pins a quality regression on the
//! stage that caused it.

use xai_data::dataset::{Dataset, Task};
use xai_data::metrics::accuracy;
use xai_models::{Classifier, LogisticConfig, LogisticRegression};
use xai_linalg::Matrix;

/// A data-preparation stage.
pub trait Stage {
    /// Stage name for reports.
    fn name(&self) -> &str;

    /// Transforms the dataset, returning the new dataset and the set of
    /// `(row, col)` cells this stage wrote.
    fn apply(&self, data: &Dataset) -> (Dataset, Vec<(usize, usize)>);
}

/// Replaces out-of-range values of one column by a constant.
pub struct ImputeStage {
    /// Display name.
    pub name: String,
    /// Target column.
    pub column: usize,
    /// Values outside `[lo, hi]` are replaced.
    pub lo: f64,
    /// Upper validity bound.
    pub hi: f64,
    /// Replacement value — a *wrong* constant here simulates the buggy
    /// stage the experiments must find.
    pub fill: f64,
}

impl Stage for ImputeStage {
    fn name(&self) -> &str {
        &self.name
    }
    fn apply(&self, data: &Dataset) -> (Dataset, Vec<(usize, usize)>) {
        let mut x = data.x().clone();
        let mut touched = Vec::new();
        for i in 0..x.rows() {
            let v = x[(i, self.column)];
            if v < self.lo || v > self.hi {
                x[(i, self.column)] = self.fill;
                touched.push((i, self.column));
            }
        }
        (
            Dataset::new(data.schema().clone(), x, data.y().to_vec(), data.task()),
            touched,
        )
    }
}

/// Rescales one column by an affine map (a unit-conversion stage; wrong
/// factors are a classic silent pipeline bug).
pub struct ScaleStage {
    /// Display name.
    pub name: String,
    /// Target column.
    pub column: usize,
    /// Multiplier.
    pub factor: f64,
    /// Offset.
    pub offset: f64,
}

impl Stage for ScaleStage {
    fn name(&self) -> &str {
        &self.name
    }
    fn apply(&self, data: &Dataset) -> (Dataset, Vec<(usize, usize)>) {
        let mut x = data.x().clone();
        let mut touched = Vec::with_capacity(x.rows());
        for i in 0..x.rows() {
            x[(i, self.column)] = x[(i, self.column)] * self.factor + self.offset;
            touched.push((i, self.column));
        }
        (
            Dataset::new(data.schema().clone(), x, data.y().to_vec(), data.task()),
            touched,
        )
    }
}

/// Drops rows failing a predicate (e.g. deduplication/outlier removal).
pub struct FilterStage {
    /// Display name.
    pub name: String,
    /// Keep predicate over raw rows.
    pub keep: fn(&[f64]) -> bool,
}

impl Stage for FilterStage {
    fn name(&self) -> &str {
        &self.name
    }
    fn apply(&self, data: &Dataset) -> (Dataset, Vec<(usize, usize)>) {
        let keep: Vec<usize> = (0..data.n_rows()).filter(|&i| (self.keep)(data.row(i))).collect();
        // Row-level effect: report dropped rows as touched (col = MAX).
        let dropped: Vec<(usize, usize)> = (0..data.n_rows())
            .filter(|i| !keep.contains(i))
            .map(|i| (i, usize::MAX))
            .collect();
        (data.subset(&keep), dropped)
    }
}

/// Per-stage provenance record from one pipeline run.
#[derive(Clone, Debug)]
pub struct StageRecord {
    /// Stage name.
    pub stage: String,
    /// Cells written (`col == usize::MAX` marks a dropped row).
    pub cells_written: usize,
    /// Rows affected.
    pub rows_affected: usize,
}

/// A provenance-tracking preparation pipeline.
pub struct Pipeline {
    stages: Vec<Box<dyn Stage>>,
}

impl Pipeline {
    /// Builds a pipeline from stages.
    pub fn new(stages: Vec<Box<dyn Stage>>) -> Self {
        Self { stages }
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when there are no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Runs all stages, returning the prepared data and per-stage records.
    pub fn run(&self, raw: &Dataset) -> (Dataset, Vec<StageRecord>) {
        let mut data = raw.clone();
        let mut records = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            let (next, touched) = stage.apply(&data);
            let rows: std::collections::HashSet<usize> =
                touched.iter().map(|&(r, _)| r).collect();
            records.push(StageRecord {
                stage: stage.name().to_string(),
                cells_written: touched.len(),
                rows_affected: rows.len(),
            });
            data = next;
        }
        (data, records)
    }

    /// Runs the pipeline with stage `skip` disabled.
    pub fn run_without(&self, raw: &Dataset, skip: usize) -> Dataset {
        let mut data = raw.clone();
        for (s, stage) in self.stages.iter().enumerate() {
            if s == skip {
                continue;
            }
            let (next, _) = stage.apply(&data);
            data = next;
        }
        data
    }
}

/// Stage-accountability scores via ablation: for each stage, the change in
/// held-out model accuracy when that stage is removed from the pipeline.
/// **Positive score = removing the stage helps = the stage is harmful.**
pub fn attribute_error_to_stages(
    pipeline: &Pipeline,
    raw_train: &Dataset,
    test: &Dataset,
    config: LogisticConfig,
) -> Vec<(String, f64)> {
    let eval = |train: &Dataset| -> f64 {
        let model = LogisticRegression::fit(train.x(), train.y(), config);
        accuracy(test.y(), &Classifier::predict(&model, test.x()))
    };
    let (full, _) = pipeline.run(raw_train);
    let base = eval(&full);
    (0..pipeline.len())
        .map(|s| {
            let ablated = pipeline.run_without(raw_train, s);
            let acc = eval(&ablated);
            (pipeline.stages[s].name().to_string(), acc - base)
        })
        .collect()
}

/// Injects sensor-style corruption (out-of-range sentinels) into a column,
/// so impute stages have something legitimate to do. Returns affected rows.
pub fn inject_sentinels(data: &mut Dataset, column: usize, every: usize, sentinel: f64) -> Vec<usize> {
    let mut rows = Vec::new();
    let mut x: Matrix = data.x().clone();
    for i in (0..data.n_rows()).step_by(every.max(1)) {
        x[(i, column)] = sentinel;
        rows.push(i);
    }
    *data = Dataset::new(data.schema().clone(), x, data.y().to_vec(), Task::BinaryClassification);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::linear_gaussian;

    fn raw() -> (Dataset, Dataset) {
        let train = linear_gaussian(400, &[2.0, -1.5], 0.0, 111);
        let test = linear_gaussian(300, &[2.0, -1.5], 0.0, 112);
        (train, test)
    }

    #[test]
    fn records_track_what_stages_touch() {
        let (mut train, _) = raw();
        let hit = inject_sentinels(&mut train, 0, 10, 99.0);
        let pipeline = Pipeline::new(vec![
            Box::new(ImputeStage {
                name: "impute_x0".into(),
                column: 0,
                lo: -6.0,
                hi: 6.0,
                fill: 0.0,
            }),
            Box::new(ScaleStage { name: "scale_x1".into(), column: 1, factor: 1.0, offset: 0.0 }),
        ]);
        let (_, records) = pipeline.run(&train);
        assert_eq!(records[0].rows_affected, hit.len());
        assert_eq!(records[1].rows_affected, train.n_rows());
    }

    #[test]
    fn buggy_stage_is_identified_by_ablation() {
        let (mut train, test) = raw();
        inject_sentinels(&mut train, 0, 12, 99.0);
        // Stage 0: legitimate impute. Stage 1: BUGGY unit conversion that
        // wrecks feature 0. Stage 2: harmless filter.
        let pipeline = Pipeline::new(vec![
            Box::new(ImputeStage {
                name: "impute_x0".into(),
                column: 0,
                lo: -6.0,
                hi: 6.0,
                fill: 0.0,
            }),
            Box::new(ScaleStage {
                name: "buggy_rescale_x0".into(),
                column: 0,
                factor: -0.05,
                offset: 3.0,
            }),
            Box::new(FilterStage { name: "noop_filter".into(), keep: |_| true }),
        ]);
        let config = LogisticConfig::default();
        let scores = attribute_error_to_stages(&pipeline, &train, &test, config);
        let worst = scores
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(worst.0, "buggy_rescale_x0", "scores: {scores:?}");
        assert!(worst.1 > 0.05, "ablating the bug must help noticeably: {scores:?}");
    }

    #[test]
    fn helpful_stage_scores_negative() {
        let (mut train, test) = raw();
        inject_sentinels(&mut train, 0, 6, 99.0);
        let pipeline = Pipeline::new(vec![Box::new(ImputeStage {
            name: "impute_x0".into(),
            column: 0,
            lo: -6.0,
            hi: 6.0,
            fill: 0.0,
        })]);
        let scores = attribute_error_to_stages(&pipeline, &train, &test, LogisticConfig::default());
        assert!(
            scores[0].1 < 0.0,
            "removing a genuinely useful impute must hurt: {scores:?}"
        );
    }

    #[test]
    fn filter_stage_drops_rows() {
        let (train, _) = raw();
        let pipeline = Pipeline::new(vec![Box::new(FilterStage {
            name: "drop_negative_x0".into(),
            keep: |row| row[0] >= 0.0,
        })]);
        let (out, records) = pipeline.run(&train);
        assert!(out.n_rows() < train.n_rows());
        assert_eq!(records[0].rows_affected, train.n_rows() - out.n_rows());
    }
}
