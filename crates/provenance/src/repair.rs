//! Shapley-based explanations for database repairs
//! (Deutch, Frost, Gilad & Sheffer, §3 \[17\]).
//!
//! When a relation violates integrity constraints (functional
//! dependencies), *which tuples are to blame?* Following the paper's
//! framing, each tuple's responsibility is its Shapley value in the
//! inconsistency game `v(S) = #violations(S)`: the average marginal
//! number of conflicts a tuple brings when joining a random subset of the
//! database. Tuples with high responsibility are the prime candidates for
//! deletion-based repair — verified here by actually repairing greedily.

use crate::relation::{Relation, Value};
use xai_rand::rngs::StdRng;
use xai_rand::seq::SliceRandom;
use xai_rand::SeedableRng;

/// A functional dependency `lhs → rhs` over column names.
#[derive(Clone, Debug)]
pub struct FunctionalDependency {
    /// Determinant columns.
    pub lhs: Vec<String>,
    /// Dependent columns.
    pub rhs: Vec<String>,
}

impl FunctionalDependency {
    /// Convenience constructor.
    pub fn new(lhs: &[&str], rhs: &[&str]) -> Self {
        Self {
            lhs: lhs.iter().map(|s| s.to_string()).collect(),
            rhs: rhs.iter().map(|s| s.to_string()).collect(),
        }
    }
}

fn key_of(tuple: &[Value], idx: &[usize]) -> Vec<String> {
    idx.iter().map(|&i| tuple[i].to_string()).collect()
}

/// Counts violating pairs of an FD within the tuple subset `members`.
fn violations(relation: &Relation, fd_idx: &(Vec<usize>, Vec<usize>), members: &[usize]) -> usize {
    let (lhs, rhs) = fd_idx;
    let mut count = 0;
    for (a_pos, &a) in members.iter().enumerate() {
        for &b in &members[a_pos + 1..] {
            let ta = &relation.tuples[a].values;
            let tb = &relation.tuples[b].values;
            if key_of(ta, lhs) == key_of(tb, lhs) && key_of(ta, rhs) != key_of(tb, rhs) {
                count += 1;
            }
        }
    }
    count
}

/// Total FD violations in a subset across all dependencies.
pub fn total_violations(relation: &Relation, fds: &[FunctionalDependency], members: &[usize]) -> usize {
    fds.iter()
        .map(|fd| {
            let idx = (
                fd.lhs.iter().map(|c| relation.col(c)).collect::<Vec<_>>(),
                fd.rhs.iter().map(|c| relation.col(c)).collect::<Vec<_>>(),
            );
            violations(relation, &idx, members)
        })
        .sum()
}

/// Monte-Carlo Shapley responsibility of each tuple for the database's
/// inconsistency (permutation sampling over the violation-count game).
pub fn repair_responsibility(
    relation: &Relation,
    fds: &[FunctionalDependency],
    permutations: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(permutations >= 1);
    let n = relation.len();
    let fd_idx: Vec<(Vec<usize>, Vec<usize>)> = fds
        .iter()
        .map(|fd| {
            (
                fd.lhs.iter().map(|c| relation.col(c)).collect(),
                fd.rhs.iter().map(|c| relation.col(c)).collect(),
            )
        })
        .collect();
    let value = |members: &[usize]| -> f64 {
        fd_idx.iter().map(|idx| violations(relation, idx, members)).sum::<usize>() as f64
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let mut phi = vec![0.0; n];
    let mut perm: Vec<usize> = (0..n).collect();
    let mut prefix: Vec<usize> = Vec::with_capacity(n);
    for _ in 0..permutations {
        perm.shuffle(&mut rng);
        prefix.clear();
        let mut prev = 0.0;
        for &t in &perm {
            prefix.push(t);
            let cur = value(&prefix);
            phi[t] += (cur - prev) / permutations as f64;
            prev = cur;
        }
    }
    phi
}

/// Greedy deletion repair guided by responsibility: removes the
/// highest-responsibility tuple until no violations remain. Returns the
/// deleted tuple indices.
pub fn greedy_repair(relation: &Relation, fds: &[FunctionalDependency], seed: u64) -> Vec<usize> {
    let mut members: Vec<usize> = (0..relation.len()).collect();
    let mut deleted = Vec::new();
    while total_violations(relation, fds, &members) > 0 {
        let phi = {
            // Responsibility within the current sub-database.
            let sub_rel = Relation {
                name: relation.name.clone(),
                columns: relation.columns.clone(),
                tuples: members.iter().map(|&i| relation.tuples[i].clone()).collect(),
            };
            repair_responsibility(&sub_rel, fds, 60, seed)
        };
        let worst_pos = phi
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN responsibility"))
            .map(|(i, _)| i)
            .expect("non-empty");
        deleted.push(members.remove(worst_pos));
    }
    deleted.sort_unstable();
    deleted
}

#[cfg(test)]
mod tests {
    use super::*;

    /// zip → city with one dirty tuple breaking two clean ones.
    fn addresses() -> Relation {
        let (r, _) = Relation::base(
            "addresses",
            &["zip", "city"],
            vec![
                vec![Value::Int(10001), Value::Str("nyc".into())],
                vec![Value::Int(10001), Value::Str("nyc".into())],
                vec![Value::Int(10001), Value::Str("boston".into())], // dirty
                vec![Value::Int(2139), Value::Str("cambridge".into())],
            ],
            0,
        );
        r
    }

    #[test]
    fn violations_counted_pairwise() {
        let r = addresses();
        let fd = [FunctionalDependency::new(&["zip"], &["city"])];
        let all: Vec<usize> = (0..4).collect();
        // Tuple 2 conflicts with 0 and 1: two violating pairs.
        assert_eq!(total_violations(&r, &fd, &all), 2);
        assert_eq!(total_violations(&r, &fd, &[0, 1, 3]), 0);
    }

    #[test]
    fn dirty_tuple_gets_highest_responsibility() {
        let r = addresses();
        let fd = [FunctionalDependency::new(&["zip"], &["city"])];
        let phi = repair_responsibility(&r, &fd, 500, 7);
        let top = phi
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(top, 2, "responsibilities: {phi:?}");
        // Efficiency: responsibilities sum to the total violation count.
        let total: f64 = phi.iter().sum();
        assert!((total - 2.0).abs() < 1e-9);
        // The clean zip-2139 tuple is blameless.
        assert!(phi[3].abs() < 1e-12);
    }

    #[test]
    fn symmetric_conflict_splits_blame() {
        // Two tuples contradict each other with no majority: equal blame.
        let (r, _) = Relation::base(
            "pairs",
            &["k", "v"],
            vec![
                vec![Value::Int(1), Value::Str("a".into())],
                vec![Value::Int(1), Value::Str("b".into())],
            ],
            0,
        );
        let fd = [FunctionalDependency::new(&["k"], &["v"])];
        let phi = repair_responsibility(&r, &fd, 2000, 3);
        // Monte-Carlo estimate of the exact 1/2–1/2 split.
        assert!((phi[0] - 0.5).abs() < 0.05, "{phi:?}");
        assert!((phi[1] - 0.5).abs() < 0.05, "{phi:?}");
        // Efficiency is exact for permutation sampling.
        assert!((phi[0] + phi[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_repair_removes_the_dirty_tuple_only() {
        let r = addresses();
        let fd = [FunctionalDependency::new(&["zip"], &["city"])];
        let deleted = greedy_repair(&r, &fd, 5);
        assert_eq!(deleted, vec![2], "minimal repair removes exactly the dirty tuple");
    }

    #[test]
    fn multiple_fds_accumulate() {
        let (r, _) = Relation::base(
            "emp",
            &["id", "dept", "building"],
            vec![
                vec![Value::Int(1), Value::Str("db".into()), Value::Str("b1".into())],
                vec![Value::Int(1), Value::Str("ml".into()), Value::Str("b1".into())],
                vec![Value::Int(2), Value::Str("db".into()), Value::Str("b2".into())],
            ],
            0,
        );
        let fds = [
            FunctionalDependency::new(&["id"], &["dept"]),
            FunctionalDependency::new(&["dept"], &["building"]),
        ];
        let all: Vec<usize> = (0..3).collect();
        // id→dept violated by (0,1); dept→building violated by (0,2).
        assert_eq!(total_violations(&r, &fds, &all), 2);
    }
}
