//! # xai-provenance
//!
//! The §3 crate: explanations *from* and *for* data management systems.
//!
//! - [`semiring`] — provenance polynomials with Boolean / counting /
//!   tropical evaluations;
//! - [`relation`] — an annotated relational-algebra engine (σ, π, ⋈, ∪, γ)
//!   propagating provenance through queries;
//! - [`shapley_tuples`] — the Shapley value of base tuples in query
//!   answering (exact + sampled);
//! - [`complaint`] — Rain-style complaint-driven debugging of aggregate
//!   queries over model predictions;
//! - [`priu`] — PrIU-style incremental model updates under tuple
//!   deletions (Sherman–Morrison downdates);
//! - [`pipeline`] — preparation-pipeline provenance and stage
//!   accountability by ablation.

pub mod complaint;
pub mod explainer;
pub mod pipeline;
pub mod priu;
pub mod relation;
pub mod repair;
pub mod semiring;
pub mod shapley_tuples;
pub mod unlearn;
pub mod whynot;

pub use complaint::{complaint_influence, top_suspects, Complaint, PredicateCountQuery};
pub use explainer::ComplaintMethod;
pub use pipeline::{
    attribute_error_to_stages, inject_sentinels, FilterStage, ImputeStage, Pipeline, ScaleStage,
    Stage, StageRecord,
};
pub use priu::{retrain_ridge, IncrementalRidge};
pub use repair::{greedy_repair, repair_responsibility, total_violations, FunctionalDependency};
pub use relation::{Aggregate, AnnotatedTuple, Relation, Value};
pub use semiring::{BoolSemiring, CountingSemiring, Polynomial, Semiring, TropicalSemiring, VarId};
pub use unlearn::LogisticUnlearner;
pub use whynot::{verify_repair, why_not, WhyNotExplanation, WhyNotWitness};
pub use shapley_tuples::{tuple_shapley_exact, tuple_shapley_sampled, TupleGame};
