//! Provenance semirings (Green, Karvounarakis & Tannen; surveyed for XAI
//! use in §3 "Provenance-Based Explanations" \[29\]).
//!
//! Every derived tuple carries a **provenance polynomial** over base-tuple
//! variables: `+` records alternative derivations (union, projection
//! merges), `×` records joint use (joins). Evaluating the polynomial in
//! different semirings answers different questions — set presence
//! (Boolean), multiplicity (counting), minimal witnesses
//! (why-provenance), cheapest derivation (tropical) — without re-running
//! the query.

use std::collections::BTreeMap;

/// A base-tuple variable id.
pub type VarId = usize;

/// A provenance polynomial in `N[X]`: a sum of monomials with natural
/// coefficients; each monomial maps variables to exponents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Polynomial {
    /// monomial (sorted var→exponent map) → coefficient
    monomials: BTreeMap<Vec<(VarId, u32)>, u64>,
}

impl Polynomial {
    /// The additive identity (no derivation).
    pub fn zero() -> Self {
        Self { monomials: BTreeMap::new() }
    }

    /// The multiplicative identity (derived from nothing).
    pub fn one() -> Self {
        let mut m = BTreeMap::new();
        m.insert(Vec::new(), 1);
        Self { monomials: m }
    }

    /// A single base-tuple variable.
    pub fn var(v: VarId) -> Self {
        let mut m = BTreeMap::new();
        m.insert(vec![(v, 1)], 1);
        Self { monomials: m }
    }

    /// True when the polynomial is 0.
    pub fn is_zero(&self) -> bool {
        self.monomials.is_empty()
    }

    /// Sum (alternative derivations).
    pub fn plus(&self, other: &Polynomial) -> Polynomial {
        let mut m = self.monomials.clone();
        for (mono, coef) in &other.monomials {
            *m.entry(mono.clone()).or_insert(0) += coef;
        }
        Polynomial { monomials: m }
    }

    /// Product (joint derivation).
    pub fn times(&self, other: &Polynomial) -> Polynomial {
        let mut m: BTreeMap<Vec<(VarId, u32)>, u64> = BTreeMap::new();
        for (ma, ca) in &self.monomials {
            for (mb, cb) in &other.monomials {
                let mut vars: BTreeMap<VarId, u32> = ma.iter().copied().collect();
                for &(v, e) in mb {
                    *vars.entry(v).or_insert(0) += e;
                }
                let key: Vec<(VarId, u32)> = vars.into_iter().collect();
                *m.entry(key).or_insert(0) += ca * cb;
            }
        }
        Polynomial { monomials: m }
    }

    /// All variables mentioned (the tuple's lineage).
    pub fn lineage(&self) -> Vec<VarId> {
        let mut vars: Vec<VarId> = self
            .monomials
            .keys()
            .flat_map(|m| m.iter().map(|&(v, _)| v))
            .collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Why-provenance: the set of witness variable-sets (one per monomial,
    /// exponents and coefficients dropped).
    pub fn why(&self) -> Vec<Vec<VarId>> {
        let mut out: Vec<Vec<VarId>> = self
            .monomials
            .keys()
            .map(|m| m.iter().map(|&(v, _)| v).collect())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Evaluates in an arbitrary commutative semiring, mapping each
    /// variable through `assign`.
    pub fn eval<S: Semiring>(&self, assign: &dyn Fn(VarId) -> S::Elem) -> S::Elem {
        let mut acc = S::zero();
        for (mono, &coef) in &self.monomials {
            let mut term = S::one();
            for &(v, e) in mono {
                for _ in 0..e {
                    term = S::mul(&term, &assign(v));
                }
            }
            // coef-fold: term + term + … (coef times)
            let mut repeated = S::zero();
            for _ in 0..coef {
                repeated = S::add(&repeated, &term);
            }
            acc = S::add(&acc, &repeated);
        }
        acc
    }

    /// Boolean evaluation: is the tuple present given the set of available
    /// base tuples?
    pub fn present(&self, available: &dyn Fn(VarId) -> bool) -> bool {
        self.eval::<BoolSemiring>(&|v| available(v))
    }

    /// Counting evaluation: derivation multiplicity given per-tuple
    /// multiplicities.
    pub fn count(&self, multiplicity: &dyn Fn(VarId) -> u64) -> u64 {
        self.eval::<CountingSemiring>(&|v| multiplicity(v))
    }

    /// Tropical evaluation: cheapest derivation cost given per-tuple costs.
    pub fn min_cost(&self, cost: &dyn Fn(VarId) -> f64) -> f64 {
        self.eval::<TropicalSemiring>(&|v| cost(v))
    }

    /// Number of monomials (distinct derivations).
    pub fn n_derivations(&self) -> usize {
        self.monomials.len()
    }
}

/// A commutative semiring.
pub trait Semiring {
    /// Element type.
    type Elem: Clone;
    /// Additive identity.
    fn zero() -> Self::Elem;
    /// Multiplicative identity.
    fn one() -> Self::Elem;
    /// Addition.
    fn add(a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// Multiplication.
    fn mul(a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
}

/// (bool, ∨, ∧): set semantics.
pub struct BoolSemiring;
impl Semiring for BoolSemiring {
    type Elem = bool;
    fn zero() -> bool {
        false
    }
    fn one() -> bool {
        true
    }
    fn add(a: &bool, b: &bool) -> bool {
        *a || *b
    }
    fn mul(a: &bool, b: &bool) -> bool {
        *a && *b
    }
}

/// (ℕ, +, ×): bag semantics / derivation counting.
pub struct CountingSemiring;
impl Semiring for CountingSemiring {
    type Elem = u64;
    fn zero() -> u64 {
        0
    }
    fn one() -> u64 {
        1
    }
    fn add(a: &u64, b: &u64) -> u64 {
        a + b
    }
    fn mul(a: &u64, b: &u64) -> u64 {
        a * b
    }
}

/// (ℝ∪{∞}, min, +): cheapest derivation.
pub struct TropicalSemiring;
impl Semiring for TropicalSemiring {
    type Elem = f64;
    fn zero() -> f64 {
        f64::INFINITY
    }
    fn one() -> f64 {
        0.0
    }
    fn add(a: &f64, b: &f64) -> f64 {
        a.min(*b)
    }
    fn mul(a: &f64, b: &f64) -> f64 {
        a + b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_algebra() {
        let x = Polynomial::var(0);
        let y = Polynomial::var(1);
        // (x + y) · x = x² + xy
        let p = x.plus(&y).times(&x);
        assert_eq!(p.n_derivations(), 2);
        assert_eq!(p.lineage(), vec![0, 1]);
        // Under counting with x=2, y=3: 2² + 2·3 = 10.
        let count = p.count(&|v| if v == 0 { 2 } else { 3 });
        assert_eq!(count, 10);
    }

    #[test]
    fn zero_and_one_laws() {
        let x = Polynomial::var(7);
        assert_eq!(x.plus(&Polynomial::zero()), x);
        assert_eq!(x.times(&Polynomial::one()), x);
        assert!(x.times(&Polynomial::zero()).is_zero());
    }

    #[test]
    fn boolean_presence() {
        // p = x·y + z : present iff (x and y) or z.
        let p = Polynomial::var(0)
            .times(&Polynomial::var(1))
            .plus(&Polynomial::var(2));
        assert!(p.present(&|v| v == 2));
        assert!(p.present(&|v| v == 0 || v == 1));
        assert!(!p.present(&|v| v == 0));
        assert!(!p.present(&|_| false));
    }

    #[test]
    fn why_provenance_lists_witnesses() {
        let p = Polynomial::var(0)
            .times(&Polynomial::var(1))
            .plus(&Polynomial::var(2));
        assert_eq!(p.why(), vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn tropical_picks_cheapest_derivation() {
        // Two derivations: {0,1} costing 5, {2} costing 3.
        let p = Polynomial::var(0)
            .times(&Polynomial::var(1))
            .plus(&Polynomial::var(2));
        let cost = |v: VarId| match v {
            0 => 2.0,
            1 => 3.0,
            _ => 3.0,
        };
        assert_eq!(p.min_cost(&cost), 3.0);
    }

    #[test]
    fn eval_respects_coefficients_and_exponents() {
        // p = 2·x (via x + x)
        let x = Polynomial::var(0);
        let p = x.plus(&x);
        assert_eq!(p.count(&|_| 5), 10);
        // q = x² (via x·x)
        let q = x.times(&x);
        assert_eq!(q.count(&|_| 3), 9);
        // Bool semiring collapses both.
        assert!(p.present(&|_| true) && q.present(&|_| true));
    }
}
