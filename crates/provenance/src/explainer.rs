//! Unified-layer `Explainer` impl for provenance-based intervention
//! (DESIGN.md §3/§9): Rain-style complaint-driven debugging, ranking
//! training tuples by the influence of their removal on a relaxed
//! aggregate query over model predictions.
//!
//! The influence computation is closed-form linear algebra (one Hessian
//! solve): there are no random draws to seed, chunk or distribute, so
//! the `seed`/`workers`/`batched` plan knobs have nothing to act on and
//! the result is identical at every setting; a `SampleBudget` is
//! rejected as [`XaiError::Unsupported`]. The method is
//! model-specific: the oracle must downcast (via [`ModelOracle::as_any`])
//! to the workspace [`LogisticRegression`], whose Hessian the influence
//! machinery differentiates through.

use xai_core::taxonomy::method_card;
use xai_core::{
    catch_model, ExplainRequest, Explainer, Explanation, MethodCard, ModelOracle, XaiError,
    XaiResult,
};
use xai_models::LogisticRegression;

use crate::complaint::{complaint_influence, Complaint, PredicateCountQuery};

/// Complaint-driven training-data debugging (§3) through the unified
/// layer: explains `COUNT(*) WHERE M(x) = 1` over the request dataset.
#[derive(Clone, Copy, Debug)]
pub struct ComplaintMethod {
    /// Direction of the complaint the ranking should resolve.
    pub complaint: Complaint,
}

impl Default for ComplaintMethod {
    fn default() -> Self {
        Self { complaint: Complaint::TooHigh }
    }
}

impl Explainer for ComplaintMethod {
    fn card(&self) -> MethodCard {
        method_card("Complaint-driven debugging")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        if req.plan.budgeted() {
            return Err(XaiError::Unsupported {
                context: "Complaint-driven debugging has no budgeted execution path; \
                          clear RunConfig::budget"
                    .into(),
            });
        }
        let Some(lr) = model.as_any().and_then(|a| a.downcast_ref::<LogisticRegression>())
        else {
            return Err(XaiError::Unsupported {
                context: "Complaint-driven debugging differentiates through the logistic \
                          training objective; the oracle is not a LogisticRegression"
                    .into(),
            });
        };
        let query = PredicateCountQuery::new(req.data, |_| true);
        let att = catch_model("complaint influence solve", || {
            complaint_influence(lr, req.data, &query, self.complaint)
        })?;
        Ok(Explanation::DataValuation(att))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_core::taxonomy::{Access, Scope};
    use xai_core::RunConfig;
    use xai_data::synth::german_credit;
    use xai_models::{LogisticConfig, LogisticRegression};

    #[test]
    fn card_comes_from_the_catalogue() {
        let card = ComplaintMethod::default().card();
        assert_eq!(card.access, Access::ModelSpecific);
        assert_eq!(card.scope, Scope::TrainingData);
    }

    #[test]
    fn trait_path_matches_the_legacy_free_function_and_ignores_workers() {
        let data = german_credit(80, 17);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let query = PredicateCountQuery::new(&data, |_| true);
        let legacy = complaint_influence(&model, &data, &query, Complaint::TooHigh);
        for workers in [1usize, 4] {
            let req =
                ExplainRequest::new(&data).plan(RunConfig::seeded(1).with_workers(workers));
            let e = ComplaintMethod::default().explain(&model, &req).unwrap();
            assert_eq!(e.as_valuation().unwrap().values, legacy.values);
        }
    }

    #[test]
    fn non_logistic_oracles_are_rejected() {
        let data = german_credit(60, 18);
        let gbdt = xai_models::Gbdt::fit(data.x(), data.y(), xai_models::GbdtConfig::default());
        assert!(matches!(
            ComplaintMethod::default().explain(&gbdt, &ExplainRequest::new(&data)),
            Err(XaiError::Unsupported { .. })
        ));
    }
}
