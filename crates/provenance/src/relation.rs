//! A minimal in-memory relational engine with provenance-annotated tuples.
//!
//! Implements the operators the §3 literature needs — select, project,
//! natural join, union, and grouped aggregates — where every derived tuple
//! carries its [`Polynomial`] annotation: selections preserve, projections
//! add (merged duplicates), joins multiply, unions add. This is the
//! substrate for tuple-Shapley query explanations and pipeline provenance.

use crate::semiring::{Polynomial, VarId};
use std::collections::BTreeMap;
use std::fmt;

/// Total-order sort key derived from a tuple's values.
type SortKey = Vec<(u8, i64, String)>;

/// A field value.
#[derive(Clone, Debug, PartialEq, PartialOrd)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
}

impl Value {
    /// Total-order key (panics on NaN floats).
    fn key(&self) -> (u8, i64, String) {
        match self {
            Value::Int(i) => (0, *i, String::new()),
            Value::Float(f) => {
                assert!(!f.is_nan(), "NaN values are not orderable");
                (1, (f * 1e9) as i64, String::new())
            }
            Value::Str(s) => (2, 0, s.clone()),
        }
    }

    /// Numeric view (ints widen; strings panic).
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Int(i) => *i as f64,
            Value::Float(f) => *f,
            Value::Str(s) => panic!("'{s}' is not numeric"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// One annotated tuple.
#[derive(Clone, Debug)]
pub struct AnnotatedTuple {
    /// The field values, aligned with the relation's columns.
    pub values: Vec<Value>,
    /// Provenance annotation.
    pub provenance: Polynomial,
}

/// A named relation with named columns and annotated tuples.
#[derive(Clone, Debug)]
pub struct Relation {
    /// Relation name.
    pub name: String,
    /// Column names.
    pub columns: Vec<String>,
    /// The tuples.
    pub tuples: Vec<AnnotatedTuple>,
}

impl Relation {
    /// Builds a base relation, assigning fresh provenance variables
    /// starting at `first_var`. Returns the relation and the next free
    /// variable id.
    pub fn base(
        name: &str,
        columns: &[&str],
        rows: Vec<Vec<Value>>,
        first_var: VarId,
    ) -> (Self, VarId) {
        for r in &rows {
            assert_eq!(r.len(), columns.len(), "row arity mismatch in {name}");
        }
        let tuples = rows
            .into_iter()
            .enumerate()
            .map(|(i, values)| AnnotatedTuple {
                values,
                provenance: Polynomial::var(first_var + i),
            })
            .collect::<Vec<_>>();
        let next = first_var + tuples.len();
        (
            Self {
                name: name.to_string(),
                columns: columns.iter().map(|s| s.to_string()).collect(),
                tuples,
            },
            next,
        )
    }

    /// Column index by name.
    pub fn col(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("no column '{name}' in {}", self.name))
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// σ: keeps tuples satisfying the predicate; annotations pass through.
    pub fn select(&self, predicate: impl Fn(&[Value]) -> bool) -> Relation {
        Relation {
            name: format!("σ({})", self.name),
            columns: self.columns.clone(),
            tuples: self
                .tuples
                .iter()
                .filter(|t| predicate(&t.values))
                .cloned()
                .collect(),
        }
    }

    /// π: projects onto the named columns, merging duplicate rows by
    /// *adding* their annotations (set-semantics projection).
    pub fn project(&self, cols: &[&str]) -> Relation {
        let idx: Vec<usize> = cols.iter().map(|c| self.col(c)).collect();
        let mut merged: BTreeMap<SortKey, (Vec<Value>, Polynomial)> = BTreeMap::new();
        for t in &self.tuples {
            let vals: Vec<Value> = idx.iter().map(|&i| t.values[i].clone()).collect();
            let key: SortKey = vals.iter().map(|v| v.key()).collect();
            match merged.get_mut(&key) {
                Some((_, prov)) => {
                    *prov = prov.plus(&t.provenance);
                }
                None => {
                    merged.insert(key, (vals, t.provenance.clone()));
                }
            }
        }
        Relation {
            name: format!("π({})", self.name),
            columns: cols.iter().map(|s| s.to_string()).collect(),
            tuples: merged
                .into_values()
                .map(|(values, provenance)| AnnotatedTuple { values, provenance })
                .collect(),
        }
    }

    /// ⋈: natural join on the shared column names; annotations multiply.
    pub fn join(&self, other: &Relation) -> Relation {
        let shared: Vec<String> = self
            .columns
            .iter()
            .filter(|c| other.columns.contains(c))
            .cloned()
            .collect();
        assert!(!shared.is_empty(), "natural join requires shared columns");
        let self_idx: Vec<usize> = shared.iter().map(|c| self.col(c)).collect();
        let other_idx: Vec<usize> = shared.iter().map(|c| other.col(c)).collect();
        let other_extra: Vec<usize> = (0..other.columns.len())
            .filter(|&i| !shared.contains(&other.columns[i]))
            .collect();

        let mut columns = self.columns.clone();
        for &i in &other_extra {
            columns.push(other.columns[i].clone());
        }
        let mut tuples = Vec::new();
        for a in &self.tuples {
            for b in &other.tuples {
                let matches = self_idx
                    .iter()
                    .zip(&other_idx)
                    .all(|(&ia, &ib)| a.values[ia] == b.values[ib]);
                if matches {
                    let mut values = a.values.clone();
                    for &i in &other_extra {
                        values.push(b.values[i].clone());
                    }
                    tuples.push(AnnotatedTuple {
                        values,
                        provenance: a.provenance.times(&b.provenance),
                    });
                }
            }
        }
        Relation { name: format!("({}⋈{})", self.name, other.name), columns, tuples }
    }

    /// ∪: same-schema union; annotations of identical rows add.
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.columns, other.columns, "union requires identical schemas");
        let mut combined = self.clone();
        combined.tuples.extend(other.tuples.iter().cloned());
        // Merge duplicates through a projection onto all columns.
        let cols: Vec<&str> = self.columns.iter().map(|s| s.as_str()).collect();
        let mut merged = combined.project(&cols);
        merged.name = format!("({}∪{})", self.name, other.name);
        merged
    }

    /// γ: group by `keys`, aggregating `agg_col` with `agg`. The output
    /// annotation of each group is the *sum* of the group's annotations
    /// (its lineage); the aggregate value is computed over the group.
    pub fn aggregate(&self, keys: &[&str], agg_col: Option<&str>, agg: Aggregate) -> Relation {
        let key_idx: Vec<usize> = keys.iter().map(|c| self.col(c)).collect();
        let agg_idx = agg_col.map(|c| self.col(c));
        let mut groups: BTreeMap<SortKey, (Vec<Value>, Vec<f64>, Polynomial)> =
            BTreeMap::new();
        for t in &self.tuples {
            let key_vals: Vec<Value> = key_idx.iter().map(|&i| t.values[i].clone()).collect();
            let key: SortKey = key_vals.iter().map(|v| v.key()).collect();
            let x = agg_idx.map(|i| t.values[i].as_f64()).unwrap_or(1.0);
            match groups.get_mut(&key) {
                Some((_, xs, prov)) => {
                    xs.push(x);
                    *prov = prov.plus(&t.provenance);
                }
                None => {
                    groups.insert(key, (key_vals, vec![x], t.provenance.clone()));
                }
            }
        }
        let mut columns: Vec<String> = keys.iter().map(|s| s.to_string()).collect();
        columns.push(agg.column_name(agg_col));
        let tuples = groups
            .into_values()
            .map(|(mut values, xs, provenance)| {
                values.push(Value::Float(agg.apply(&xs)));
                AnnotatedTuple { values, provenance }
            })
            .collect();
        Relation { name: format!("γ({})", self.name), columns, tuples }
    }
}

/// Aggregate functions for γ.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregate {
    /// Row count.
    Count,
    /// Sum of the aggregate column.
    Sum,
    /// Mean of the aggregate column.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl Aggregate {
    fn apply(&self, xs: &[f64]) -> f64 {
        match self {
            Aggregate::Count => xs.len() as f64,
            Aggregate::Sum => xs.iter().sum(),
            Aggregate::Avg => xs.iter().sum::<f64>() / xs.len() as f64,
            Aggregate::Min => xs.iter().cloned().fold(f64::INFINITY, f64::min),
            Aggregate::Max => xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    fn column_name(&self, col: Option<&str>) -> String {
        let base = match self {
            Aggregate::Count => "count",
            Aggregate::Sum => "sum",
            Aggregate::Avg => "avg",
            Aggregate::Min => "min",
            Aggregate::Max => "max",
        };
        match col {
            Some(c) => format!("{base}({c})"),
            None => format!("{base}(*)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Relation, Relation) {
        let (orders, next) = Relation::base(
            "orders",
            &["cust", "item", "qty"],
            vec![
                vec![Value::Str("ann".into()), Value::Str("disk".into()), Value::Int(2)],
                vec![Value::Str("bob".into()), Value::Str("disk".into()), Value::Int(1)],
                vec![Value::Str("ann".into()), Value::Str("cpu".into()), Value::Int(3)],
            ],
            0,
        );
        let (customers, _) = Relation::base(
            "customers",
            &["cust", "city"],
            vec![
                vec![Value::Str("ann".into()), Value::Str("paris".into())],
                vec![Value::Str("bob".into()), Value::Str("rome".into())],
            ],
            next,
        );
        (orders, customers)
    }

    #[test]
    fn select_preserves_annotations() {
        let (orders, _) = sample();
        let big = orders.select(|v| v[2].as_f64() >= 2.0);
        assert_eq!(big.len(), 2);
        for t in &big.tuples {
            assert_eq!(t.provenance.n_derivations(), 1);
        }
    }

    #[test]
    fn project_merges_duplicates_with_plus() {
        let (orders, _) = sample();
        let custs = orders.project(&["cust"]);
        assert_eq!(custs.len(), 2);
        let ann = custs
            .tuples
            .iter()
            .find(|t| t.values[0] == Value::Str("ann".into()))
            .unwrap();
        // Ann appears in two base tuples: two derivations.
        assert_eq!(ann.provenance.n_derivations(), 2);
        assert_eq!(ann.provenance.lineage(), vec![0, 2]);
    }

    #[test]
    fn join_multiplies_annotations() {
        let (orders, customers) = sample();
        let joined = orders.join(&customers);
        assert_eq!(joined.len(), 3);
        assert_eq!(joined.columns, vec!["cust", "item", "qty", "city"]);
        for t in &joined.tuples {
            // Each joined tuple uses exactly one order and one customer.
            assert_eq!(t.provenance.lineage().len(), 2);
        }
    }

    #[test]
    fn aggregate_collects_group_lineage() {
        let (orders, _) = sample();
        let per_cust = orders.aggregate(&["cust"], Some("qty"), Aggregate::Sum);
        assert_eq!(per_cust.len(), 2);
        let ann = per_cust
            .tuples
            .iter()
            .find(|t| t.values[0] == Value::Str("ann".into()))
            .unwrap();
        assert_eq!(ann.values[1], Value::Float(5.0));
        assert_eq!(ann.provenance.lineage(), vec![0, 2]);
        let count = orders.aggregate(&[], None, Aggregate::Count);
        assert_eq!(count.tuples[0].values[0], Value::Float(3.0));
        assert_eq!(count.tuples[0].provenance.lineage(), vec![0, 1, 2]);
    }

    #[test]
    fn union_merges_same_rows() {
        let (orders, _) = sample();
        let a = orders.select(|v| v[0] == Value::Str("ann".into()));
        let b = orders.select(|v| v[1] == Value::Str("disk".into()));
        let u = a.union(&b);
        // ann-disk appears on both sides with the *same* base derivation:
        // annotations add to 2·x₀ (one monomial, counting multiplicity 2).
        assert_eq!(u.len(), 3);
        let annd = u
            .tuples
            .iter()
            .find(|t| t.values[0] == Value::Str("ann".into()) && t.values[1] == Value::Str("disk".into()))
            .unwrap();
        assert_eq!(annd.provenance.count(&|_| 1), 2);
        assert_eq!(annd.provenance.lineage(), vec![0]);
    }

    #[test]
    fn provenance_answers_deletion_questions() {
        // "Would ann still appear in the customer list if base tuple 0 were
        // deleted?" — yes, through tuple 2.
        let (orders, _) = sample();
        let custs = orders.project(&["cust"]);
        let ann = custs
            .tuples
            .iter()
            .find(|t| t.values[0] == Value::Str("ann".into()))
            .unwrap();
        assert!(ann.provenance.present(&|v| v != 0));
        assert!(!ann.provenance.present(&|v| v != 0 && v != 2));
    }
}
