//! Low-latency machine unlearning for logistic models
//! (HedgeCut's latency target \[59\] + PrIU's incremental philosophy \[77\],
//! both §3).
//!
//! Ridge regression unlearns exactly in `O(d²)` (see [`crate::priu`]).
//! Logistic regression has no closed form, but from the full-data optimum
//! a **single damped Newton step on the reduced objective** lands within
//! third-order error of the retrained optimum — the same curvature
//! argument as second-order group influence. The unlearner keeps the
//! model hot and applies one step per deletion request, with an exact
//! refit available as a fallback when the certified gradient norm grows
//! past a threshold.

use xai_data::Dataset;
use xai_models::{LogisticConfig, LogisticRegression};

/// A logistic model supporting fast deletion requests.
pub struct LogisticUnlearner {
    model: LogisticRegression,
    /// Remaining training data (rows still incorporated).
    remaining: Dataset,
    config: LogisticConfig,
    /// Gradient-norm threshold that triggers a full refit.
    pub refit_threshold: f64,
    /// Full refits performed so far.
    pub refits: usize,
    /// Newton-step deletions performed so far.
    pub fast_deletions: usize,
}

impl LogisticUnlearner {
    /// Trains the initial model.
    pub fn fit(train: &Dataset, config: LogisticConfig) -> Self {
        let model = LogisticRegression::fit(train.x(), train.y(), config);
        Self {
            model,
            remaining: train.clone(),
            config,
            refit_threshold: 1e-3,
            refits: 0,
            fast_deletions: 0,
        }
    }

    /// The current model.
    pub fn model(&self) -> &LogisticRegression {
        &self.model
    }

    /// Rows still incorporated.
    pub fn n_remaining(&self) -> usize {
        self.remaining.n_rows()
    }

    /// Gradient of the current objective at the current parameters
    /// (‖·‖∞ certifies how far from optimal the fast path has drifted).
    pub fn gradient_norm(&self) -> f64 {
        let g = self.reduced_gradient();
        g.iter().fold(0.0f64, |a, v| a.max(v.abs()))
    }

    fn reduced_gradient(&self) -> Vec<f64> {
        let d = self.model.weights().len();
        let mut g = vec![0.0; d];
        for i in 0..self.remaining.n_rows() {
            let gi = self.model.example_grad(self.remaining.row(i), self.remaining.y()[i]);
            for (a, b) in g.iter_mut().zip(&gi) {
                *a += b;
            }
        }
        let m = self.remaining.n_rows() as f64;
        for (k, v) in g.iter_mut().enumerate() {
            *v = *v / m + self.model.l2() * self.model.weights()[k];
        }
        g
    }

    /// Deletes the listed rows (indices into the *current* remaining set)
    /// with one warm-started Newton step through the shared incremental
    /// engine ([`LogisticRegression::fit_warm`] capped at one iteration);
    /// falls back to a full refit when the post-step gradient norm exceeds
    /// [`Self::refit_threshold`].
    pub fn forget(&mut self, rows: &[usize]) {
        assert!(
            rows.iter().all(|&r| r < self.remaining.n_rows()),
            "row index out of range"
        );
        assert!(
            rows.len() < self.remaining.n_rows(),
            "cannot forget the entire training set"
        );
        self.remaining = self.remaining.without(rows);
        let one_step = LogisticConfig { max_iter: 1, ..self.config };
        self.model = LogisticRegression::fit_warm(
            self.remaining.x(),
            self.remaining.y(),
            one_step,
            self.model.weights(),
        );
        self.fast_deletions += 1;
        if self.gradient_norm() > self.refit_threshold {
            self.model =
                LogisticRegression::fit(self.remaining.x(), self.remaining.y(), self.config);
            self.refits += 1;
        }
    }

    /// Ground truth: full retraining on the current remaining set.
    pub fn retrain_ground_truth(&self) -> LogisticRegression {
        LogisticRegression::fit(self.remaining.x(), self.remaining.y(), self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::linear_gaussian;
    use xai_linalg::{norm2, vsub};

    fn setup(n: usize) -> LogisticUnlearner {
        let train = linear_gaussian(n, &[2.0, -1.0, 0.5], 0.0, 121);
        let config = LogisticConfig { l2: 1e-2, ..LogisticConfig::default() };
        LogisticUnlearner::fit(&train, config)
    }

    #[test]
    fn single_deletion_matches_retraining_closely() {
        let mut un = setup(300);
        un.forget(&[17]);
        let truth = un.retrain_ground_truth();
        let err = norm2(&vsub(un.model().weights(), truth.weights()))
            / norm2(truth.weights());
        assert!(err < 1e-4, "relative parameter error {err}");
        assert_eq!(un.n_remaining(), 299);
    }

    #[test]
    fn sequential_deletions_stay_certified() {
        let mut un = setup(400);
        for batch in 0..10 {
            let rows: Vec<usize> = (0..5).map(|k| (batch * 13 + k * 7) % un.n_remaining()).collect();
            let mut rows = rows;
            rows.sort_unstable();
            rows.dedup();
            un.forget(&rows);
            assert!(
                un.gradient_norm() <= un.refit_threshold + 1e-12,
                "certificate violated at batch {batch}: {}",
                un.gradient_norm()
            );
        }
        let truth = un.retrain_ground_truth();
        let err = norm2(&vsub(un.model().weights(), truth.weights())) / norm2(truth.weights());
        assert!(err < 1e-2, "drift after 10 batches: {err}");
    }

    #[test]
    fn huge_deletion_triggers_refit() {
        let mut un = setup(300);
        un.refit_threshold = 1e-10; // force the fallback path
        let rows: Vec<usize> = (0..120).collect();
        un.forget(&rows);
        assert!(un.refits >= 1, "aggressive threshold must trigger a refit");
        let truth = un.retrain_ground_truth();
        let err = norm2(&vsub(un.model().weights(), truth.weights())) / norm2(truth.weights());
        assert!(err < 1e-6, "after refit the model is exact: {err}");
    }

    #[test]
    fn forgotten_points_stop_influencing_predictions() {
        // Train with a cluster of corrupted labels; forgetting them should
        // move predictions measurably.
        let mut train = linear_gaussian(300, &[3.0, 0.0, 0.0], 0.0, 131);
        let flipped = xai_data::inject_label_noise(&mut train, 0.2, 9);
        let config = LogisticConfig { l2: 1e-2, ..LogisticConfig::default() };
        let mut un = LogisticUnlearner::fit(&train, config);
        let before = un.model().coef()[0];
        un.forget(&flipped);
        let after = un.model().coef()[0];
        // Removing flipped labels must sharpen the true signal.
        assert!(after > before, "coef should strengthen: {before} -> {after}");
    }
}
