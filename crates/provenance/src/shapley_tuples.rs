//! The Shapley value of database tuples in query answering
//! (Livshits, Bertossi, Kimelfeld & Sebag, §3 \[62\]).
//!
//! Given a query answer with provenance polynomial `p`, the contribution
//! of each *endogenous* base tuple is the Shapley value of the cooperative
//! game `v(S) = p` evaluated in the Boolean semiring with exactly the
//! tuples `S` (plus all exogenous tuples) present — "how much of the
//! answer's existence is tuple t responsible for?". Exact computation is
//! `#P`-hard in general (hence exponential here), with permutation
//! sampling as the scalable path — mirroring the complexity landscape of
//! the paper.

use crate::semiring::{Polynomial, VarId};
use xai_shapley::{exact_shapley, permutation_shapley, CooperativeGame};

/// The Boolean query-answer game over endogenous tuples.
pub struct TupleGame<'a> {
    provenance: &'a Polynomial,
    endogenous: &'a [VarId],
}

impl<'a> TupleGame<'a> {
    /// Builds the game; variables not listed in `endogenous` are treated
    /// as exogenous (always present).
    pub fn new(provenance: &'a Polynomial, endogenous: &'a [VarId]) -> Self {
        Self { provenance, endogenous }
    }
}

impl CooperativeGame for TupleGame<'_> {
    fn n_players(&self) -> usize {
        self.endogenous.len()
    }

    fn value(&self, coalition: &[bool]) -> f64 {
        let present = |v: VarId| match self.endogenous.iter().position(|&e| e == v) {
            Some(i) => coalition[i],
            None => true, // exogenous
        };
        f64::from(self.provenance.present(&present))
    }
}

/// Exact tuple Shapley values (exponential in the endogenous tuple count).
pub fn tuple_shapley_exact(provenance: &Polynomial, endogenous: &[VarId]) -> Vec<f64> {
    exact_shapley(&TupleGame::new(provenance, endogenous))
}

/// Sampled tuple Shapley values for larger endogenous sets.
pub fn tuple_shapley_sampled(
    provenance: &Polynomial,
    endogenous: &[VarId],
    permutations: usize,
    seed: u64,
) -> Vec<f64> {
    permutation_shapley(&TupleGame::new(provenance, endogenous), permutations, seed).phi
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(v: VarId) -> Polynomial {
        Polynomial::var(v)
    }

    #[test]
    fn single_witness_splits_evenly() {
        // answer ⇐ t0 ∧ t1 : classic join witness; each tuple gets 1/2.
        let p = var(0).times(&var(1));
        let phi = tuple_shapley_exact(&p, &[0, 1]);
        assert!((phi[0] - 0.5).abs() < 1e-12);
        assert!((phi[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn alternative_witnesses_dilute_responsibility() {
        // answer ⇐ t0 ∨ t1 : either suffices; v = OR game.
        // φ_i = 1/2 each (marginal only when arriving first into ∅).
        let p = var(0).plus(&var(1));
        let phi = tuple_shapley_exact(&p, &[0, 1]);
        assert!((phi[0] - 0.5).abs() < 1e-12);
        assert!((phi[1] - 0.5).abs() < 1e-12);
        // Three alternatives ⇒ 1/3 each.
        let p3 = p.plus(&var(2));
        let phi3 = tuple_shapley_exact(&p3, &[0, 1, 2]);
        for v in &phi3 {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn exogenous_tuples_shift_credit() {
        // answer ⇐ t0 ∧ t1 with t1 exogenous: t0 carries everything.
        let p = var(0).times(&var(1));
        let phi = tuple_shapley_exact(&p, &[0]);
        assert!((phi[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_structure_gives_asymmetric_credit() {
        // answer ⇐ t0·t1 + t0·t2 : t0 is in every witness.
        let p = var(0).times(&var(1)).plus(&var(0).times(&var(2)));
        let phi = tuple_shapley_exact(&p, &[0, 1, 2]);
        assert!(phi[0] > phi[1], "pivotal tuple must earn more: {phi:?}");
        assert!((phi[1] - phi[2]).abs() < 1e-12, "symmetric tuples equal");
        // Efficiency: sums to 1 (the answer exists under full database).
        assert!((phi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Known closed form: φ0 = 2/3, φ1 = φ2 = 1/6.
        assert!((phi[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((phi[1] - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn irrelevant_tuple_scores_zero() {
        let p = var(0).times(&var(1));
        let phi = tuple_shapley_exact(&p, &[0, 1, 9]);
        assert!(phi[2].abs() < 1e-12);
    }

    #[test]
    fn sampled_matches_exact() {
        let p = var(0).times(&var(1)).plus(&var(2)).plus(&var(0).times(&var(3)));
        let endo = [0, 1, 2, 3];
        let exact = tuple_shapley_exact(&p, &endo);
        let sampled = tuple_shapley_sampled(&p, &endo, 4000, 7);
        for (a, b) in sampled.iter().zip(&exact) {
            assert!((a - b).abs() < 0.03, "{a} vs {b}");
        }
    }

    #[test]
    fn end_to_end_through_the_query_engine() {
        use crate::relation::{Relation, Value};
        // Who ordered disks? — explain why "ann" is an answer.
        let (orders, _) = Relation::base(
            "orders",
            &["cust", "item"],
            vec![
                vec![Value::Str("ann".into()), Value::Str("disk".into())],
                vec![Value::Str("ann".into()), Value::Str("disk".into())],
                vec![Value::Str("bob".into()), Value::Str("cpu".into())],
            ],
            0,
        );
        let answer = orders
            .select(|v| v[1] == Value::Str("disk".into()))
            .project(&["cust"]);
        let ann = answer
            .tuples
            .iter()
            .find(|t| t.values[0] == Value::Str("ann".into()))
            .unwrap();
        let endo: Vec<VarId> = ann.provenance.lineage();
        let phi = tuple_shapley_exact(&ann.provenance, &endo);
        // Two identical orders: each carries half the responsibility.
        assert_eq!(endo, vec![0, 1]);
        assert!((phi[0] - 0.5).abs() < 1e-12);
        assert!((phi[1] - 0.5).abs() < 1e-12);
    }
}
