//! Logic-based explanations: sufficient reasons / prime implicants
//! (Shih, Choi & Darwiche; Darwiche & Hirth; §2.2.2 \[65, 12\]).
//!
//! For a decision tree — a small logical circuit — a **sufficient reason**
//! for a prediction is a minimal set of feature assignments that *forces*
//! the prediction: fixing those features to the instance's values
//! guarantees the same class no matter what the remaining features do.
//! Per the tutorial, such a set has a *sufficiency score of exactly 1*;
//! minimality makes it a prime implicant of the decision function.
//!
//! Monte-Carlo necessity/sufficiency scores are provided for arbitrary
//! (possibly non-forced) feature sets, connecting to the probabilistic
//! notions of §2.1.3 \[20, 75\].

use xai_rand::rngs::StdRng;
use xai_rand::{Rng, SeedableRng};
use xai_core::{Condition, Op};
use xai_linalg::Matrix;
use xai_models::{DecisionTree, TreeNode};

/// Checks whether fixing `fixed` features at `x`'s values forces the tree's
/// class: every leaf reachable while branching freely on non-fixed features
/// must agree with the prediction at `x`.
pub fn is_sufficient(tree: &DecisionTree, x: &[f64], fixed: &[bool]) -> bool {
    let target = tree.predict_value(x) >= 0.5;
    fn rec(nodes: &[TreeNode], x: &[f64], fixed: &[bool], id: usize, target: bool) -> bool {
        let node = &nodes[id];
        match (node.left, node.right) {
            (Some(l), Some(r)) => {
                if fixed[node.feature] {
                    let next = if x[node.feature] <= node.threshold { l } else { r };
                    rec(nodes, x, fixed, next, target)
                } else {
                    rec(nodes, x, fixed, l, target) && rec(nodes, x, fixed, r, target)
                }
            }
            _ => (node.value >= 0.5) == target,
        }
    }
    rec(tree.nodes(), x, fixed, 0, target)
}

/// A sufficient reason: the minimal fixed-feature set and its rendering.
#[derive(Clone, Debug)]
pub struct SufficientReason {
    /// The features that must be fixed (a prime implicant support).
    pub features: Vec<usize>,
    /// Readable conditions (the root-to-leaf constraints implied by the
    /// fixed features along the instance's path).
    pub conditions: Vec<Condition>,
    /// The class being forced.
    pub prediction: f64,
}

/// Computes a sufficient reason (prime implicant) for the tree's
/// prediction on `x` by greedy elimination: start from all features used
/// on the instance's decision path, drop any whose removal keeps the
/// prediction forced.
///
/// Greedy elimination yields a *minimal* (irreducible) set — every retained
/// feature is necessary — though not necessarily a minimum-cardinality one
/// (that problem is NP-hard in general).
pub fn sufficient_reason(
    tree: &DecisionTree,
    x: &[f64],
    feature_names: &[&str],
) -> SufficientReason {
    let d = x.len();
    let mut fixed = vec![false; d];
    // Start from the features actually tested on the decision path.
    for &node_id in &tree.decision_path(x) {
        let node = &tree.nodes()[node_id];
        if !node.is_leaf() {
            fixed[node.feature] = true;
        }
    }
    debug_assert!(is_sufficient(tree, x, &fixed), "the full path always forces the leaf");
    // Greedy elimination in reverse feature order (deterministic).
    for j in (0..d).rev() {
        if fixed[j] {
            fixed[j] = false;
            if !is_sufficient(tree, x, &fixed) {
                fixed[j] = true;
            }
        }
    }
    let features: Vec<usize> = (0..d).filter(|&j| fixed[j]).collect();

    // Render: collect the tightest interval per fixed feature along the path.
    let mut conditions = Vec::new();
    for &j in &features {
        let mut lo = f64::NEG_INFINITY;
        let mut hi = f64::INFINITY;
        for &node_id in &tree.decision_path(x) {
            let node = &tree.nodes()[node_id];
            if node.is_leaf() || node.feature != j {
                continue;
            }
            if x[j] <= node.threshold {
                hi = hi.min(node.threshold);
            } else {
                lo = lo.max(node.threshold);
            }
        }
        if lo.is_finite() {
            conditions.push(Condition {
                feature: j,
                feature_name: feature_names[j].to_string(),
                op: Op::Gt,
                value: lo,
            });
        }
        if hi.is_finite() {
            conditions.push(Condition {
                feature: j,
                feature_name: feature_names[j].to_string(),
                op: Op::Le,
                value: hi,
            });
        }
    }
    SufficientReason {
        features,
        conditions,
        prediction: f64::from(tree.predict_value(x) >= 0.5),
    }
}

/// Monte-Carlo sufficiency score of fixing `features` at `x`'s values:
/// `P(f(x_S, B_{\bar S}) = f(x))` over background completions. Equals 1 for
/// any sufficient reason.
pub fn sufficiency_score(
    model: &dyn Fn(&[f64]) -> f64,
    x: &[f64],
    features: &[usize],
    background: &Matrix,
    n_samples: usize,
    seed: u64,
) -> f64 {
    assert!(background.rows() > 0 && n_samples > 0);
    let target = model(x) >= 0.5;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hits = 0usize;
    let mut probe = vec![0.0; x.len()];
    for _ in 0..n_samples {
        let b = rng.gen_range(0..background.rows());
        probe.copy_from_slice(background.row(b));
        for &j in features {
            probe[j] = x[j];
        }
        if (model(&probe) >= 0.5) == target {
            hits += 1;
        }
    }
    hits as f64 / n_samples as f64
}

/// Monte-Carlo necessity score of `features`:
/// `P(f(B_S, x_{\bar S}) ≠ f(x))` — how often randomizing *only* those
/// features flips the prediction.
pub fn necessity_score(
    model: &dyn Fn(&[f64]) -> f64,
    x: &[f64],
    features: &[usize],
    background: &Matrix,
    n_samples: usize,
    seed: u64,
) -> f64 {
    assert!(background.rows() > 0 && n_samples > 0);
    let target = model(x) >= 0.5;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flips = 0usize;
    let mut probe = x.to_vec();
    for _ in 0..n_samples {
        let b = rng.gen_range(0..background.rows());
        for &j in features {
            probe[j] = background[(b, j)];
        }
        if (model(&probe) >= 0.5) != target {
            flips += 1;
        }
        probe.copy_from_slice(x);
    }
    flips as f64 / n_samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::{circles, german_credit};
    use xai_models::{proba_fn, Classifier, TreeConfig};

    fn credit_tree() -> (DecisionTree, xai_data::Dataset) {
        let data = german_credit(600, 81);
        let tree = DecisionTree::fit(
            data.x(),
            data.y(),
            TreeConfig { max_depth: 5, min_samples_leaf: 10, ..TreeConfig::default() },
        );
        (tree, data)
    }

    #[test]
    fn reason_forces_the_prediction_exhaustively() {
        let (tree, data) = credit_tree();
        let names: Vec<&str> = data.schema().names();
        for i in 0..15 {
            let x = data.row(i);
            let reason = sufficient_reason(&tree, x, &names);
            let mut fixed = vec![false; data.n_features()];
            for &j in &reason.features {
                fixed[j] = true;
            }
            assert!(is_sufficient(&tree, x, &fixed), "reason must force (instance {i})");
        }
    }

    #[test]
    fn reason_is_minimal() {
        let (tree, data) = credit_tree();
        let names: Vec<&str> = data.schema().names();
        for i in 0..10 {
            let x = data.row(i);
            let reason = sufficient_reason(&tree, x, &names);
            let mut fixed = vec![false; data.n_features()];
            for &j in &reason.features {
                fixed[j] = true;
            }
            // Removing any single retained feature must break forcing.
            for &j in &reason.features {
                fixed[j] = false;
                assert!(
                    !is_sufficient(&tree, x, &fixed),
                    "feature {j} is redundant in the reason for instance {i}"
                );
                fixed[j] = true;
            }
        }
    }

    #[test]
    fn sufficiency_score_is_one_for_sufficient_reasons() {
        let (tree, data) = credit_tree();
        let names: Vec<&str> = data.schema().names();
        let f = proba_fn(&tree);
        for i in 0..5 {
            let x = data.row(i);
            let reason = sufficient_reason(&tree, x, &names);
            let s = sufficiency_score(&f, x, &reason.features, data.x(), 500, 3);
            assert!(
                (s - 1.0).abs() < 1e-12,
                "sufficient reason must score exactly 1, got {s} (instance {i})"
            );
        }
    }

    #[test]
    fn empty_set_scores_base_rate_not_one() {
        let data = circles(500, 91, 0.15);
        let tree = DecisionTree::fit(data.x(), data.y(), TreeConfig { max_depth: 7, ..TreeConfig::default() });
        let f = proba_fn(&tree);
        let x = data.row(0);
        let s_empty = sufficiency_score(&f, x, &[], data.x(), 800, 5);
        assert!(s_empty < 0.95, "empty set should not force on mixed data: {s_empty}");
        let all: Vec<usize> = (0..data.n_features()).collect();
        let s_all = sufficiency_score(&f, x, &all, data.x(), 100, 5);
        assert!((s_all - 1.0).abs() < 1e-12);
    }

    #[test]
    fn necessity_of_reason_features_exceeds_random_features() {
        let (tree, data) = credit_tree();
        let names: Vec<&str> = data.schema().names();
        let f = proba_fn(&tree);
        let mut reason_nec = 0.0;
        let mut complement_nec = 0.0;
        let mut count = 0.0;
        for i in 0..10 {
            let x = data.row(i);
            let reason = sufficient_reason(&tree, x, &names);
            if reason.features.is_empty() {
                continue;
            }
            let complement: Vec<usize> =
                (0..data.n_features()).filter(|j| !reason.features.contains(j)).collect();
            reason_nec += necessity_score(&f, x, &reason.features, data.x(), 400, 7);
            complement_nec += necessity_score(&f, x, &complement, data.x(), 400, 7);
            count += 1.0;
        }
        assert!(count > 0.0);
        assert!(
            reason_nec / count > complement_nec / count,
            "reason features should be more necessary: {} vs {}",
            reason_nec / count,
            complement_nec / count
        );
    }

    #[test]
    fn rendered_conditions_hold_on_the_instance() {
        let (tree, data) = credit_tree();
        let names: Vec<&str> = data.schema().names();
        let x = data.row(3);
        let reason = sufficient_reason(&tree, x, &names);
        for c in &reason.conditions {
            assert!(c.matches(x), "condition {c} must hold on the instance");
        }
        assert_eq!(reason.prediction, f64::from(Classifier::predict_one(&tree, x) >= 0.5));
    }
}
