//! Anchors: high-precision model-agnostic rules
//! (Ribeiro, Singh & Guestrin, §2.2 \[54\]).
//!
//! An *anchor* is a short conjunction of predicates over the instance's
//! feature values such that, whenever the anchor holds, the model (almost
//! always) predicts the same class as on the instance. Candidate
//! predicates come from the instance's own discretized description; the
//! search greedily adds the predicate with the best precision, where the
//! noisy precision estimates are compared with the KL-LUCB best-arm
//! bandit routine the paper uses ("a multi-armed bandit-based algorithm to
//! search for these rules").

use crate::itemset::{Item, ItemVocabulary};
use xai_rand::rngs::StdRng;
use xai_rand::{Rng, SeedableRng};
use xai_core::RuleExplanation;
use xai_data::Dataset;

/// Configuration for [`AnchorsExplainer::explain`].
#[derive(Clone, Copy, Debug)]
pub struct AnchorsConfig {
    /// Required precision (the paper's τ, default 0.95).
    pub precision_target: f64,
    /// Tolerance δ of the KL-LUCB confidence bounds.
    pub delta: f64,
    /// Hard cap on anchor length (rules beyond ~5 clauses are
    /// incomprehensible, per the tutorial).
    pub max_items: usize,
    /// Samples drawn per bandit pull.
    pub batch_size: usize,
    /// Total sampling budget per extension round.
    pub max_samples_per_round: usize,
}

impl Default for AnchorsConfig {
    fn default() -> Self {
        Self {
            precision_target: 0.95,
            delta: 0.05,
            max_items: 4,
            batch_size: 50,
            max_samples_per_round: 3000,
        }
    }
}

/// Fitted Anchors explainer: holds the item vocabulary and the training
/// columns used as the perturbation distribution.
#[derive(Clone, Debug)]
pub struct AnchorsExplainer {
    vocab: ItemVocabulary,
    /// Per-feature pools of training values (the sampling distribution).
    columns: Vec<Vec<f64>>,
    /// Training rows (for coverage measurement).
    rows: Vec<Vec<f64>>,
}

/// Bernoulli KL divergence.
fn kl_bernoulli(p: f64, q: f64) -> f64 {
    let p = p.clamp(1e-12, 1.0 - 1e-12);
    let q = q.clamp(1e-12, 1.0 - 1e-12);
    p * (p / q).ln() + (1.0 - p) * ((1.0 - p) / (1.0 - q)).ln()
}

/// Upper KL confidence bound: largest q ≥ p̂ with KL(p̂‖q) ≤ level.
fn kl_ucb(p_hat: f64, level: f64) -> f64 {
    let mut lo = p_hat;
    let mut hi = 1.0;
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if kl_bernoulli(p_hat, mid) > level {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo
}

/// Lower KL confidence bound: smallest q ≤ p̂ with KL(p̂‖q) ≤ level.
fn kl_lcb(p_hat: f64, level: f64) -> f64 {
    let mut lo = 0.0;
    let mut hi = p_hat;
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if kl_bernoulli(p_hat, mid) > level {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

/// Per-arm bandit statistics.
#[derive(Clone, Debug, Default)]
struct Arm {
    pulls: f64,
    successes: f64,
}

impl Arm {
    fn mean(&self) -> f64 {
        if self.pulls == 0.0 {
            0.0
        } else {
            self.successes / self.pulls
        }
    }
    fn level(&self, delta: f64) -> f64 {
        // Standard KL-LUCB exploration rate: log(1/δ)·(1 + o(1)) / pulls.
        if self.pulls == 0.0 {
            f64::INFINITY
        } else {
            ((1.0 / delta).ln() + 3.0 * (self.pulls.max(std::f64::consts::E)).ln().ln().max(0.0))
                / self.pulls
        }
    }
    fn ucb(&self, delta: f64) -> f64 {
        let l = self.level(delta);
        if l.is_infinite() {
            1.0
        } else {
            kl_ucb(self.mean(), l)
        }
    }
    fn lcb(&self, delta: f64) -> f64 {
        let l = self.level(delta);
        if l.is_infinite() {
            0.0
        } else {
            kl_lcb(self.mean(), l)
        }
    }
}

impl AnchorsExplainer {
    /// Builds the explainer from training data.
    pub fn fit(data: &Dataset) -> Self {
        let vocab = ItemVocabulary::build(data);
        let columns = (0..data.n_features()).map(|j| data.x().col(j)).collect();
        let rows = (0..data.n_rows()).map(|i| data.row(i).to_vec()).collect();
        Self { vocab, columns, rows }
    }

    /// Samples one perturbation: anchored features are drawn from training
    /// values *satisfying their predicate*; free features from the full
    /// column distribution.
    fn sample_row(&self, anchor: &[Item], rng: &mut StdRng, buf: &mut [f64]) {
        let anchored: Vec<(usize, Item)> = anchor
            .iter()
            .map(|&it| (self.vocab.predicate(it).feature(), it))
            .collect();
        for (j, col) in self.columns.iter().enumerate() {
            buf[j] = col[rng.gen_range(0..col.len())];
        }
        for &(feature, item) in &anchored {
            // Rejection-sample a training value satisfying the predicate.
            let pred = self.vocab.predicate(item);
            let col = &self.columns[feature];
            let mut probe = vec![0.0; buf.len()];
            for _ in 0..200 {
                let v = col[rng.gen_range(0..col.len())];
                probe[feature] = v;
                if pred.matches(&probe) {
                    buf[feature] = v;
                    break;
                }
            }
        }
    }

    /// Estimated precision of an anchor from `n` fresh samples.
    fn precision(
        &self,
        model: &dyn Fn(&[f64]) -> f64,
        target_class: bool,
        anchor: &[Item],
        n: usize,
        rng: &mut StdRng,
    ) -> (f64, f64) {
        let d = self.columns.len();
        let mut buf = vec![0.0; d];
        let mut hits = 0.0;
        for _ in 0..n {
            self.sample_row(anchor, rng, &mut buf);
            if (model(&buf) >= 0.5) == target_class {
                hits += 1.0;
            }
        }
        (hits, n as f64)
    }

    /// Fraction of training rows satisfying the anchor.
    fn coverage(&self, anchor: &[Item]) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let hit = self
            .rows
            .iter()
            .filter(|r| anchor.iter().all(|&it| self.vocab.predicate(it).matches(r)))
            .count();
        hit as f64 / self.rows.len() as f64
    }

    /// Finds an anchor for the model's prediction on `instance`.
    pub fn explain(
        &self,
        model: &dyn Fn(&[f64]) -> f64,
        instance: &[f64],
        config: AnchorsConfig,
        seed: u64,
    ) -> RuleExplanation {
        let mut rng = StdRng::seed_from_u64(seed);
        let target_class = model(instance) >= 0.5;
        // Candidate items: the instance's own transaction.
        let candidates = self.vocab.transaction(instance);

        let mut anchor: Vec<Item> = Vec::new();
        while anchor.len() < config.max_items {
            // Arms: each unused candidate appended to the current anchor.
            let unused: Vec<Item> = candidates
                .iter()
                .copied()
                .filter(|it| {
                    let f = self.vocab.predicate(*it).feature();
                    !anchor.iter().any(|&a| self.vocab.predicate(a).feature() == f)
                })
                .collect();
            if unused.is_empty() {
                break;
            }
            let mut arms: Vec<Arm> = vec![Arm::default(); unused.len()];
            let mut budget = config.max_samples_per_round;
            // KL-LUCB loop: pull the empirically-best arm and its strongest
            // challenger until they separate.
            while budget > 0 {
                // Initial pulls for unexplored arms.
                let (best_idx, challenger_idx) = {
                    let mut best = 0;
                    for (i, a) in arms.iter().enumerate() {
                        if a.mean() > arms[best].mean() {
                            best = i;
                        }
                    }
                    let mut challenger = usize::MAX;
                    for (i, a) in arms.iter().enumerate() {
                        if i != best
                            && (challenger == usize::MAX
                                || a.ucb(config.delta) > arms[challenger].ucb(config.delta))
                        {
                            challenger = i;
                        }
                    }
                    (best, challenger)
                };
                let to_pull: Vec<usize> = if challenger_idx == usize::MAX {
                    vec![best_idx]
                } else {
                    vec![best_idx, challenger_idx]
                };
                for idx in to_pull {
                    let mut trial = anchor.clone();
                    trial.push(unused[idx]);
                    let n = config.batch_size.min(budget);
                    if n == 0 {
                        break;
                    }
                    let (h, p) = self.precision(model, target_class, &trial, n, &mut rng);
                    arms[idx].successes += h;
                    arms[idx].pulls += p;
                    budget = budget.saturating_sub(n);
                }
                // Separation test.
                if challenger_idx != usize::MAX
                    && arms[best_idx].lcb(config.delta) > arms[challenger_idx].ucb(config.delta)
                {
                    break;
                }
                if challenger_idx == usize::MAX && arms[best_idx].pulls >= config.batch_size as f64 * 4.0 {
                    break;
                }
            }
            // Commit the best arm.
            let best = arms
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.mean().partial_cmp(&b.1.mean()).expect("NaN precision"))
                .map(|(i, _)| i)
                .expect("non-empty arms");
            anchor.push(unused[best]);
            if arms[best].lcb(config.delta) >= config.precision_target {
                break;
            }
        }

        // Final high-fidelity precision estimate.
        let (h, p) = self.precision(model, target_class, &anchor, 2000, &mut rng);
        let precision = if p > 0.0 { h / p } else { 0.0 };
        let conditions = anchor
            .iter()
            .flat_map(|&it| self.vocab.conditions(it))
            .collect();
        RuleExplanation {
            conditions,
            prediction: f64::from(target_class),
            precision,
            coverage: self.coverage(&anchor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::german_credit;
    use xai_models::{proba_fn, Gbdt, GbdtConfig};

    #[test]
    fn kl_bounds_bracket_the_mean() {
        for p in [0.1, 0.5, 0.9] {
            for level in [0.01, 0.1, 1.0] {
                let u = kl_ucb(p, level);
                let l = kl_lcb(p, level);
                assert!(l <= p + 1e-9 && p <= u + 1e-9, "bounds must bracket: {l} {p} {u}");
                assert!(kl_bernoulli(p, u) <= level + 1e-6);
                assert!(kl_bernoulli(p, l) <= level + 1e-6);
            }
        }
        // Tighter level ⇒ tighter bounds.
        assert!(kl_ucb(0.5, 0.01) < kl_ucb(0.5, 1.0));
        assert!(kl_lcb(0.5, 0.01) > kl_lcb(0.5, 1.0));
    }

    #[test]
    fn anchor_on_threshold_model_finds_the_threshold_feature() {
        let data = german_credit(600, 43);
        // Model: approve iff no defaults (feature 6 == 0).
        let model = |x: &[f64]| f64::from(x[6] < 0.5);
        let anchors = AnchorsExplainer::fit(&data);
        // Pick an instance with zero defaults.
        let idx = (0..data.n_rows()).find(|&i| data.row(i)[6] == 0.0).unwrap();
        let rule = anchors.explain(&model, data.row(idx), AnchorsConfig::default(), 7);
        assert_eq!(rule.prediction, 1.0);
        assert!(rule.precision > 0.9, "precision {}", rule.precision);
        assert!(
            rule.conditions.iter().any(|c| c.feature == 6),
            "the anchor must pin the defaults feature: {rule}"
        );
        assert!(rule.len() <= 8, "anchors must stay short");
    }

    #[test]
    fn anchor_precision_exceeds_unanchored_rate() {
        let data = german_credit(700, 47);
        let gbdt = Gbdt::fit(data.x(), data.y(), GbdtConfig { n_rounds: 30, ..GbdtConfig::default() });
        let f = proba_fn(&gbdt);
        let anchors = AnchorsExplainer::fit(&data);
        let instance = data.row(0);
        let rule = anchors.explain(&f, instance, AnchorsConfig::default(), 9);
        // Baseline: precision of the empty anchor (= class base rate under
        // full perturbation).
        let mut rng = StdRng::seed_from_u64(11);
        let target = f(instance) >= 0.5;
        let (h, p) = anchors.precision(&f, target, &[], 2000, &mut rng);
        let base_rate = h / p;
        assert!(
            rule.precision >= base_rate - 0.02,
            "anchored precision {} must beat base rate {base_rate}",
            rule.precision
        );
        assert!(rule.coverage > 0.0, "anchor must cover some real data");
    }

    #[test]
    fn deterministic_under_seed() {
        let data = german_credit(300, 51);
        let model = |x: &[f64]| f64::from(x[1] > 2500.0);
        let anchors = AnchorsExplainer::fit(&data);
        let a = anchors.explain(&model, data.row(0), AnchorsConfig::default(), 5);
        let b = anchors.explain(&model, data.row(0), AnchorsConfig::default(), 5);
        assert_eq!(a, b);
    }
}
