//! Transactions, items and dataset discretization for rule mining (§2.2.1).
//!
//! Rule-based explainers work over *items* — boolean predicates of the form
//! "feature j falls in bin b" or "feature j = category c". This module
//! turns a tabular [`Dataset`] into transactions over a stable item
//! vocabulary, and maps items back to readable [`Condition`]s.

use xai_core::{Condition, Op};
use xai_data::{Dataset, FeatureKind};
use xai_linalg::stats::quantile;

/// An item id into an [`ItemVocabulary`].
pub type Item = usize;

/// The predicate behind one item.
#[derive(Clone, Debug, PartialEq)]
pub enum ItemPredicate {
    /// Numeric feature falls in `(lo, hi]` (quartile bin; half-open on the
    /// left so it renders exactly as `feature > lo AND feature <= hi`).
    NumericBin {
        /// Feature column.
        feature: usize,
        /// Bin index (0-based).
        bin: usize,
        /// Exclusive lower edge (−∞ for the first bin).
        lo: f64,
        /// Inclusive upper edge (+∞ for the last bin).
        hi: f64,
    },
    /// Categorical feature equals a category code.
    Category {
        /// Feature column.
        feature: usize,
        /// Category code.
        code: usize,
    },
}

impl ItemPredicate {
    /// Feature column this item constrains.
    pub fn feature(&self) -> usize {
        match self {
            ItemPredicate::NumericBin { feature, .. } => *feature,
            ItemPredicate::Category { feature, .. } => *feature,
        }
    }

    /// Whether a raw row satisfies the predicate.
    pub fn matches(&self, row: &[f64]) -> bool {
        match self {
            ItemPredicate::NumericBin { feature, lo, hi, .. } => {
                let v = row[*feature];
                v > *lo && v <= *hi
            }
            ItemPredicate::Category { feature, code } => row[*feature].round() as usize == *code,
        }
    }
}

/// A stable mapping between items and predicates for one dataset.
#[derive(Clone, Debug)]
pub struct ItemVocabulary {
    predicates: Vec<ItemPredicate>,
    feature_names: Vec<String>,
}

impl ItemVocabulary {
    /// Builds the vocabulary: quartile bins for numeric features (4 items
    /// each), one item per category for categorical features.
    pub fn build(data: &Dataset) -> Self {
        let mut predicates = Vec::new();
        for (j, feature) in data.schema().features().iter().enumerate() {
            match &feature.kind {
                FeatureKind::Numeric { .. } => {
                    let col = data.x().col(j);
                    let q1 = quantile(&col, 0.25);
                    let q2 = quantile(&col, 0.5);
                    let q3 = quantile(&col, 0.75);
                    let edges = [f64::NEG_INFINITY, q1, q2, q3, f64::INFINITY];
                    for b in 0..4 {
                        // Skip degenerate bins from ties in the quantiles.
                        if edges[b] < edges[b + 1] {
                            predicates.push(ItemPredicate::NumericBin {
                                feature: j,
                                bin: b,
                                lo: edges[b],
                                hi: edges[b + 1],
                            });
                        }
                    }
                }
                FeatureKind::Categorical { categories } => {
                    for code in 0..categories.len() {
                        predicates.push(ItemPredicate::Category { feature: j, code });
                    }
                }
            }
        }
        Self {
            predicates,
            feature_names: data.schema().names().iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// True when there are no items.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// The predicate behind an item.
    pub fn predicate(&self, item: Item) -> &ItemPredicate {
        &self.predicates[item]
    }

    /// Converts one raw row into its (sorted) transaction.
    pub fn transaction(&self, row: &[f64]) -> Vec<Item> {
        self.predicates
            .iter()
            .enumerate()
            .filter(|(_, p)| p.matches(row))
            .map(|(i, _)| i)
            .collect()
    }

    /// Converts the whole dataset into transactions.
    pub fn transactions(&self, data: &Dataset) -> Vec<Vec<Item>> {
        (0..data.n_rows()).map(|i| self.transaction(data.row(i))).collect()
    }

    /// Renders an item as displayable [`Condition`]s (numeric bins need up
    /// to two clauses; categories need one).
    pub fn conditions(&self, item: Item) -> Vec<Condition> {
        let name = |f: usize| self.feature_names[f].clone();
        match self.predicate(item) {
            ItemPredicate::NumericBin { feature, lo, hi, .. } => {
                let mut cs = Vec::new();
                if lo.is_finite() {
                    cs.push(Condition {
                        feature: *feature,
                        feature_name: name(*feature),
                        op: Op::Gt,
                        value: *lo,
                    });
                }
                if hi.is_finite() {
                    cs.push(Condition {
                        feature: *feature,
                        feature_name: name(*feature),
                        op: Op::Le,
                        value: *hi,
                    });
                }
                cs
            }
            ItemPredicate::Category { feature, code } => vec![Condition {
                feature: *feature,
                feature_name: name(*feature),
                op: Op::Eq,
                value: *code as f64,
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::german_credit;

    #[test]
    fn every_row_gets_one_item_per_feature() {
        let data = german_credit(300, 5);
        let vocab = ItemVocabulary::build(&data);
        for i in 0..data.n_rows() {
            let t = vocab.transaction(data.row(i));
            assert_eq!(
                t.len(),
                data.n_features(),
                "each feature contributes exactly one item"
            );
            // Items must cover distinct features.
            let feats: std::collections::HashSet<usize> =
                t.iter().map(|&it| vocab.predicate(it).feature()).collect();
            assert_eq!(feats.len(), data.n_features());
        }
    }

    #[test]
    fn numeric_bins_partition_the_line() {
        let data = german_credit(500, 6);
        let vocab = ItemVocabulary::build(&data);
        // For feature 0 (age): bins must tile (-inf, inf) without overlap.
        let bins: Vec<&ItemPredicate> = (0..vocab.len())
            .map(|i| vocab.predicate(i))
            .filter(|p| p.feature() == 0)
            .collect();
        for probe in [-1e9, 18.0, 35.0, 50.0, 1e9] {
            let row = {
                let mut r = data.row(0).to_vec();
                r[0] = probe;
                r
            };
            let hits = bins.iter().filter(|p| p.matches(&row)).count();
            assert_eq!(hits, 1, "value {probe} must land in exactly one bin");
        }
    }

    #[test]
    fn conditions_render_readably() {
        let data = german_credit(200, 7);
        let vocab = ItemVocabulary::build(&data);
        let t = vocab.transaction(data.row(0));
        for &item in &t {
            let cs = vocab.conditions(item);
            assert!(!cs.is_empty());
            for c in &cs {
                assert!(c.matches(data.row(0)), "rendered condition must hold on the source row: {c}");
            }
        }
    }
}
