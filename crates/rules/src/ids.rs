//! Interpretable decision sets (Lakkaraju, Bach & Leskovec, §2.2 \[43\]).
//!
//! A decision set is an *unordered* collection of independent if-then
//! rules plus a default class. Following the paper, candidate rules are
//! mined from the data (frequent itemsets per class) and a subset is
//! selected by greedily optimizing a joint objective balancing accuracy
//! (precision, recall via coverage) against interpretability (few rules,
//! short rules, little overlap) — the greedy works because the objective
//! is monotone submodular up to the penalty terms.

// Greedy selection scans matches/labels/coverage by row id.
#![allow(clippy::needless_range_loop)]
use crate::apriori::apriori;
use crate::itemset::{Item, ItemVocabulary};
use xai_core::RuleExplanation;
use xai_data::Dataset;

/// Configuration for [`DecisionSet::fit`].
#[derive(Clone, Copy, Debug)]
pub struct IdsConfig {
    /// Minimum (fractional) support of candidate itemsets.
    pub min_support: f64,
    /// Maximum clauses per rule.
    pub max_rule_length: usize,
    /// Maximum rules in the set.
    pub max_rules: usize,
    /// Weight of the interpretability penalty (rule count + lengths).
    pub lambda_size: f64,
    /// Weight of the overlap penalty.
    pub lambda_overlap: f64,
}

impl Default for IdsConfig {
    fn default() -> Self {
        Self {
            min_support: 0.05,
            max_rule_length: 3,
            max_rules: 8,
            lambda_size: 0.01,
            lambda_overlap: 0.5,
        }
    }
}

/// One selected rule: items plus the class it predicts.
#[derive(Clone, Debug)]
struct SetRule {
    items: Vec<Item>,
    class: f64,
    /// Row mask of training rows matched.
    matches: Vec<bool>,
    precision: f64,
    coverage: f64,
}

/// A fitted interpretable decision set.
#[derive(Clone, Debug)]
pub struct DecisionSet {
    rules: Vec<SetRule>,
    vocab: ItemVocabulary,
    default_class: f64,
    /// Training accuracy of the final set.
    pub train_accuracy: f64,
}

impl DecisionSet {
    /// Learns a decision set directly from labeled data (the intrinsic
    /// usage) or from black-box labels (the distillation usage — pass the
    /// model's predictions as `y`).
    pub fn fit(data: &Dataset, y: &[f64], config: IdsConfig) -> Self {
        assert_eq!(data.n_rows(), y.len());
        let n = data.n_rows();
        let vocab = ItemVocabulary::build(data);
        let txns = vocab.transactions(data);
        let min_support = ((config.min_support * n as f64).ceil() as usize).max(2);
        let mined = apriori(&txns, min_support);

        // Candidate rules: frequent itemsets up to the length cap, assigned
        // their majority class, scored by precision.
        let mut candidates: Vec<SetRule> = Vec::new();
        for fis in mined.iter().filter(|f| f.items.len() <= config.max_rule_length) {
            let matches: Vec<bool> = (0..n)
                .map(|i| {
                    fis.items
                        .iter()
                        .all(|&it| vocab.predicate(it).matches(data.row(i)))
                })
                .collect();
            let covered = matches.iter().filter(|&&m| m).count();
            if covered == 0 {
                continue;
            }
            let pos = matches.iter().zip(y).filter(|(m, yv)| **m && **yv >= 0.5).count();
            let frac_pos = pos as f64 / covered as f64;
            let (class, precision) = if frac_pos >= 0.5 { (1.0, frac_pos) } else { (0.0, 1.0 - frac_pos) };
            candidates.push(SetRule {
                items: fis.items.clone(),
                class,
                matches,
                precision,
                coverage: covered as f64 / n as f64,
            });
        }

        // Default class: training majority.
        let pos_rate = y.iter().filter(|&&v| v >= 0.5).count() as f64 / n.max(1) as f64;
        let default_class = f64::from(pos_rate >= 0.5);

        // Greedy selection maximizing the gain in correctly-covered rows
        // minus interpretability penalties.
        let mut selected: Vec<SetRule> = Vec::new();
        let mut covered = vec![false; n];
        for _ in 0..config.max_rules {
            let mut best: Option<(usize, f64)> = None;
            for (ci, cand) in candidates.iter().enumerate() {
                if selected.iter().any(|s| s.items == cand.items) {
                    continue;
                }
                let mut gain = 0.0;
                for i in 0..n {
                    if !cand.matches[i] {
                        continue;
                    }
                    let correct = (y[i] >= 0.5) == (cand.class >= 0.5);
                    if covered[i] {
                        // Overlap penalty: double-covering rows is discouraged.
                        gain -= config.lambda_overlap;
                    } else {
                        let default_correct = (y[i] >= 0.5) == (default_class >= 0.5);
                        gain += f64::from(correct) - f64::from(default_correct);
                    }
                }
                gain -= config.lambda_size * (1.0 + cand.items.len() as f64) * n as f64 / 100.0;
                if best.is_none_or(|(_, g)| gain > g) {
                    best = Some((ci, gain));
                }
            }
            match best {
                Some((ci, gain)) if gain > 0.0 => {
                    let rule = candidates[ci].clone();
                    for i in 0..n {
                        if rule.matches[i] {
                            covered[i] = true;
                        }
                    }
                    selected.push(rule);
                }
                _ => break,
            }
        }

        let mut set = Self { rules: selected, vocab, default_class, train_accuracy: 0.0 };
        let correct = (0..n)
            .filter(|&i| (set.predict_one(data.row(i)) >= 0.5) == (y[i] >= 0.5))
            .count();
        set.train_accuracy = correct as f64 / n.max(1) as f64;
        set
    }

    /// Predicts by the highest-precision matching rule, falling back to the
    /// default class.
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        let mut best: Option<&SetRule> = None;
        for rule in &self.rules {
            if rule
                .items
                .iter()
                .all(|&it| self.vocab.predicate(it).matches(row))
                && best.is_none_or(|b| rule.precision > b.precision) {
                    best = Some(rule);
                }
        }
        best.map_or(self.default_class, |r| r.class)
    }

    /// Number of rules.
    pub fn n_rules(&self) -> usize {
        self.rules.len()
    }

    /// The default class.
    pub fn default_class(&self) -> f64 {
        self.default_class
    }

    /// The rules rendered as [`RuleExplanation`]s.
    pub fn rules(&self) -> Vec<RuleExplanation> {
        self.rules
            .iter()
            .map(|r| RuleExplanation {
                conditions: r.items.iter().flat_map(|&it| self.vocab.conditions(it)).collect(),
                prediction: r.class,
                precision: r.precision,
                coverage: r.coverage,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::metrics::accuracy;
    use xai_data::synth::german_credit;
    use xai_models::{Classifier, Gbdt, GbdtConfig};

    #[test]
    fn learns_compact_accurate_set_on_credit_data() {
        let data = german_credit(900, 61);
        let set = DecisionSet::fit(&data, data.y(), IdsConfig::default());
        assert!(set.n_rules() >= 1, "should select at least one rule");
        assert!(set.n_rules() <= 8);
        for rule in set.rules() {
            assert!(rule.len() <= 6, "rules must stay short: {rule}");
        }
        // Better than the majority-class baseline.
        let majority = data.positive_rate().max(1.0 - data.positive_rate());
        assert!(
            set.train_accuracy > majority + 0.01,
            "decision set {} must beat majority {majority}",
            set.train_accuracy
        );
    }

    #[test]
    fn distills_a_black_box() {
        let data = german_credit(700, 63);
        let gbdt = Gbdt::fit(data.x(), data.y(), GbdtConfig { n_rounds: 40, ..GbdtConfig::default() });
        let preds = Classifier::predict(&gbdt, data.x());
        let set = DecisionSet::fit(&data, &preds, IdsConfig::default());
        // Agreement of decision set with the black box it was distilled from.
        let set_preds: Vec<f64> = (0..data.n_rows()).map(|i| set.predict_one(data.row(i))).collect();
        let agreement = accuracy(&preds, &set_preds);
        assert!(agreement > 0.7, "distillation agreement {agreement}");
    }

    #[test]
    fn default_class_is_majority() {
        let data = german_credit(400, 67);
        let set = DecisionSet::fit(&data, data.y(), IdsConfig::default());
        let expected = f64::from(data.positive_rate() >= 0.5);
        assert_eq!(set.default_class(), expected);
    }

    #[test]
    fn max_rules_respected() {
        let data = german_credit(500, 71);
        let cfg = IdsConfig { max_rules: 2, ..IdsConfig::default() };
        let set = DecisionSet::fit(&data, data.y(), cfg);
        assert!(set.n_rules() <= 2);
    }
}
