//! FP-Growth frequent-itemset mining (Han, Pei & Yin, §2.2.1 \[27\]).
//!
//! Mines the same itemsets as Apriori without candidate generation: the
//! database is compressed into an FP-tree (prefix tree ordered by item
//! frequency) and mined recursively over conditional pattern bases.
//! Experiment E21 checks output equality with Apriori and measures the
//! runtime gap.

use crate::apriori::FrequentItemset;
use crate::itemset::Item;
use std::collections::HashMap;

#[derive(Debug)]
struct FpNode {
    item: Item,
    count: usize,
    parent: usize,
    children: HashMap<Item, usize>,
}

struct FpTree {
    nodes: Vec<FpNode>,
    /// item → node ids holding that item.
    header: HashMap<Item, Vec<usize>>,
}

impl FpTree {
    fn new() -> Self {
        let root = FpNode { item: usize::MAX, count: 0, parent: usize::MAX, children: HashMap::new() };
        Self { nodes: vec![root], header: HashMap::new() }
    }

    fn insert(&mut self, path: &[Item], count: usize) {
        let mut cur = 0usize;
        for &item in path {
            let next = match self.nodes[cur].children.get(&item) {
                Some(&id) => {
                    self.nodes[id].count += count;
                    id
                }
                None => {
                    let id = self.nodes.len();
                    self.nodes.push(FpNode {
                        item,
                        count,
                        parent: cur,
                        children: HashMap::new(),
                    });
                    self.nodes[cur].children.insert(item, id);
                    self.header.entry(item).or_default().push(id);
                    id
                }
            };
            cur = next;
        }
    }

    /// Path from a node's parent up to the root (excluding the root).
    fn prefix_path(&self, mut id: usize) -> Vec<Item> {
        let mut path = Vec::new();
        id = self.nodes[id].parent;
        while id != usize::MAX && self.nodes[id].item != usize::MAX {
            path.push(self.nodes[id].item);
            id = self.nodes[id].parent;
        }
        path.reverse();
        path
    }
}

fn build_tree(weighted_txns: &[(Vec<Item>, usize)], min_support: usize) -> (FpTree, Vec<Item>) {
    // Count item frequencies (items deduplicated within each transaction,
    // matching Apriori's set semantics).
    let mut counts: HashMap<Item, usize> = HashMap::new();
    for (t, c) in weighted_txns {
        let mut seen = t.clone();
        seen.sort_unstable();
        seen.dedup();
        for item in seen {
            *counts.entry(item).or_insert(0) += c;
        }
    }
    // Frequent items ordered by (count desc, item asc) for determinism.
    let mut order: Vec<Item> = counts
        .iter()
        .filter(|(_, &c)| c >= min_support)
        .map(|(&i, _)| i)
        .collect();
    order.sort_by(|&a, &b| counts[&b].cmp(&counts[&a]).then(a.cmp(&b)));
    let rank: HashMap<Item, usize> = order.iter().enumerate().map(|(r, &i)| (i, r)).collect();

    let mut tree = FpTree::new();
    for (t, c) in weighted_txns {
        let mut path: Vec<Item> = t.iter().copied().filter(|i| rank.contains_key(i)).collect();
        path.sort_by_key(|i| rank[i]);
        path.dedup();
        if !path.is_empty() {
            tree.insert(&path, *c);
        }
    }
    (tree, order)
}

fn mine(
    weighted_txns: &[(Vec<Item>, usize)],
    min_support: usize,
    suffix: &[Item],
    out: &mut Vec<FrequentItemset>,
) {
    let (tree, order) = build_tree(weighted_txns, min_support);
    // Mine items least-frequent first (reverse order) per the algorithm.
    for &item in order.iter().rev() {
        let support: usize = tree.header[&item].iter().map(|&id| tree.nodes[id].count).sum();
        let mut items = suffix.to_vec();
        items.push(item);
        items.sort_unstable();
        out.push(FrequentItemset { items: items.clone(), support });
        // Conditional pattern base for this item.
        let cond: Vec<(Vec<Item>, usize)> = tree.header[&item]
            .iter()
            .map(|&id| (tree.prefix_path(id), tree.nodes[id].count))
            .filter(|(p, _)| !p.is_empty())
            .collect();
        if !cond.is_empty() {
            let mut new_suffix = suffix.to_vec();
            new_suffix.push(item);
            mine(&cond, min_support, &new_suffix, out);
        }
    }
}

/// Mines all itemsets with support ≥ `min_support`; output is identical to
/// [`crate::apriori::apriori`] (same sets, same supports, same order).
pub fn fp_growth(transactions: &[Vec<Item>], min_support: usize) -> Vec<FrequentItemset> {
    assert!(min_support >= 1, "support threshold must be positive");
    let weighted: Vec<(Vec<Item>, usize)> = transactions.iter().map(|t| (t.clone(), 1)).collect();
    let mut out = Vec::new();
    mine(&weighted, min_support, &[], &mut out);
    out.sort_by(|a, b| (a.items.len(), &a.items).cmp(&(b.items.len(), &b.items)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::apriori;
    use xai_rand::rngs::StdRng;
    use xai_rand::{Rng, SeedableRng};

    fn market() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1],
            vec![0, 3, 2, 4],
            vec![1, 3, 2],
            vec![0, 1, 3, 2],
            vec![0, 1, 3],
        ]
    }

    #[test]
    fn agrees_with_apriori_on_market_data() {
        for min_support in [1, 2, 3, 4] {
            let a = apriori(&market(), min_support);
            let f = fp_growth(&market(), min_support);
            assert_eq!(a, f, "divergence at min_support {min_support}");
        }
    }

    #[test]
    fn agrees_with_apriori_on_random_databases() {
        let mut rng = StdRng::seed_from_u64(42);
        for round in 0..10 {
            let n_items = 8;
            let txns: Vec<Vec<Item>> = (0..40)
                .map(|_| {
                    (0..n_items)
                        .filter(|_| rng.gen::<f64>() < 0.35)
                        .collect::<Vec<Item>>()
                })
                .collect();
            for min_support in [2, 5, 10] {
                let a = apriori(&txns, min_support);
                let f = fp_growth(&txns, min_support);
                assert_eq!(a, f, "divergence in round {round} at support {min_support}");
            }
        }
    }

    #[test]
    fn duplicate_items_in_transaction_counted_once() {
        let txns = vec![vec![1, 1, 2], vec![1, 2], vec![2]];
        let f = fp_growth(&txns, 2);
        let one = f.iter().find(|s| s.items == vec![1]).unwrap();
        assert_eq!(one.support, 2);
    }

    #[test]
    fn empty_database() {
        assert!(fp_growth(&[], 1).is_empty());
    }
}
