//! Unified-layer `Explainer` impls for the rule family (DESIGN.md §9):
//! Anchors (local sufficient rules) and interpretable decision sets fit
//! as a global rule surrogate of the model under explanation.
//!
//! Dispatch contract: `workers > 1` runs a *pool* of independent Anchors
//! searches — candidate `p` at seed `child_seed(seed, p)` — across the
//! seeded executor and keeps the best rule (highest precision, then
//! shortest, then widest coverage), worker-count invariant and the grid
//! the shard layer partitions. Decision-set mining is a deterministic
//! pass with no random draws, so every execution plan returns the same
//! rule set. A `SampleBudget` is rejected as [`XaiError::Unsupported`]
//! by both methods.

use xai_core::shard::{
    arr_field, chunks_json, flatten_chunks, index_field, num_field, str_field, wire_error,
    DrawGrid, ShardableExplainer,
};
use xai_core::taxonomy::method_card;
use xai_core::{
    catch_model, validate, Condition, ExplainRequest, Explainer, Explanation, Json, MethodCard,
    ModelOracle, Op, RuleExplanation, XaiError, XaiResult,
};
use xai_rand::child_seed;
use xai_rand::parallel::try_par_map_seeded;

use crate::anchors::{AnchorsConfig, AnchorsExplainer};
use crate::ids::{DecisionSet, IdsConfig};

fn reject_budget(method: &str, req: &ExplainRequest<'_>) -> XaiResult<()> {
    if req.plan.budgeted() {
        return Err(XaiError::Unsupported {
            context: format!("{method} has no budgeted execution path; clear RunConfig::budget"),
        });
    }
    Ok(())
}

/// `true` when `a` beats `b` under the pool ranking: higher precision,
/// then shorter rule, then wider coverage. Strict comparisons keep the
/// selection stable — on a full tie the earlier candidate wins, so the
/// pool result does not depend on evaluation order.
fn beats(a: &RuleExplanation, b: &RuleExplanation) -> bool {
    if a.precision != b.precision {
        return a.precision > b.precision;
    }
    if a.conditions.len() != b.conditions.len() {
        return a.conditions.len() < b.conditions.len();
    }
    a.coverage > b.coverage
}

/// The pool merge: best rule first-wins under [`beats`].
fn select_best(rules: Vec<RuleExplanation>) -> Option<RuleExplanation> {
    let mut best: Option<RuleExplanation> = None;
    for rule in rules {
        if best.as_ref().is_none_or(|b| beats(&rule, b)) {
            best = Some(rule);
        }
    }
    best
}

fn op_str(op: Op) -> &'static str {
    match op {
        Op::Le => "le",
        Op::Gt => "gt",
        Op::Eq => "eq",
    }
}

/// Canonical wire form of one anchor rule; non-finite statistics are the
/// model's fault and refuse to serialize (they would mangle to `null`).
fn rule_to_json(rule: &RuleExplanation) -> XaiResult<Json> {
    let stats = [rule.prediction, rule.precision, rule.coverage];
    if let Some(v) = stats
        .iter()
        .chain(rule.conditions.iter().map(|c| &c.value))
        .find(|v| !v.is_finite())
    {
        return Err(XaiError::ModelFault {
            context: format!("Anchors rule contains non-finite value {v}"),
        });
    }
    let conditions = rule
        .conditions
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("feature", Json::Num(c.feature as f64)),
                ("feature_name", Json::str(c.feature_name.clone())),
                ("op", Json::str(op_str(c.op))),
                ("value", Json::Num(c.value)),
            ])
        })
        .collect();
    Ok(Json::obj(vec![
        ("conditions", Json::Arr(conditions)),
        ("prediction", Json::Num(rule.prediction)),
        ("precision", Json::Num(rule.precision)),
        ("coverage", Json::Num(rule.coverage)),
    ]))
}

fn rule_from_json(json: &Json, what: &str) -> XaiResult<RuleExplanation> {
    let mut conditions = Vec::new();
    for (i, c) in arr_field(json, "conditions", what)?.iter().enumerate() {
        let op = match str_field(c, "op", what)?.as_str() {
            "le" => Op::Le,
            "gt" => Op::Gt,
            "eq" => Op::Eq,
            other => {
                return Err(wire_error(format!(
                    "{what}: condition {i} has unknown op '{other}'"
                )))
            }
        };
        conditions.push(Condition {
            feature: index_field(c, "feature", what)?,
            feature_name: str_field(c, "feature_name", what)?,
            op,
            value: num_field(c, "value", what)?,
        });
    }
    Ok(RuleExplanation {
        conditions,
        prediction: num_field(json, "prediction", what)?,
        precision: num_field(json, "precision", what)?,
        coverage: num_field(json, "coverage", what)?,
    })
}

/// Anchors (§2.2) through the unified layer: a high-precision sufficient
/// rule for one prediction.
#[derive(Clone, Copy, Debug)]
pub struct AnchorsMethod {
    /// Precision target, confidence and length cap of the bandit search.
    pub config: AnchorsConfig,
    /// Independent searches raced on the parallel path; the best rule
    /// (highest precision, then shortest, then widest coverage) wins.
    /// `workers == 1` runs a single search at the plan seed.
    pub pool: usize,
}

impl Default for AnchorsMethod {
    fn default() -> Self {
        Self { config: AnchorsConfig::default(), pool: 4 }
    }
}

impl Explainer for AnchorsMethod {
    fn card(&self) -> MethodCard {
        method_card("Anchors")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        reject_budget("Anchors", req)?;
        let instance = req.need_instance("Anchors")?;
        validate::finite_slice("Anchors instance", instance)?;
        validate::finite_matrix("Anchors dataset", req.data.x())?;
        let explainer = AnchorsExplainer::fit(req.data);
        let f = |x: &[f64]| model.predict(x);
        let rule = if req.plan.parallel() {
            let pool = self.pool.max(1);
            let rules = try_par_map_seeded(pool, req.plan.seed, req.plan.workers, |p, _rng| {
                // Candidate `p` always searches at `child_seed(seed, p)`
                // (the executor's task RNG is unused), so the pool is
                // worker-count invariant and shardable per candidate.
                catch_model("Anchors bandit search", || {
                    explainer.explain(&f, instance, self.config, child_seed(req.plan.seed, p as u64))
                })
            })?
            .into_iter()
            .collect::<XaiResult<Vec<_>>>()?;
            select_best(rules).expect("pool is non-empty")
        } else {
            catch_model("Anchors bandit search", || {
                explainer.explain(&f, instance, self.config, req.plan.seed)
            })?
        };
        Ok(Explanation::Rules(vec![rule]))
    }

    fn as_shardable(&self) -> Option<&dyn ShardableExplainer> {
        Some(self)
    }
}

impl AnchorsMethod {
    /// Rebuilds the method from its canonical shard-config JSON.
    pub fn from_config_json(config: &Json) -> XaiResult<Self> {
        const WHAT: &str = "Anchors config";
        let pool = index_field(config, "pool", WHAT)?;
        if pool == 0 {
            return Err(wire_error(format!("{WHAT}: pool must be >= 1")));
        }
        Ok(Self {
            config: AnchorsConfig {
                precision_target: num_field(config, "precision_target", WHAT)?,
                delta: num_field(config, "delta", WHAT)?,
                max_items: index_field(config, "max_items", WHAT)?,
                batch_size: index_field(config, "batch_size", WHAT)?,
                max_samples_per_round: index_field(config, "max_samples_per_round", WHAT)?,
            },
            pool,
        })
    }
}

impl ShardableExplainer for AnchorsMethod {
    fn draw_grid(&self, req: &ExplainRequest<'_>) -> XaiResult<DrawGrid> {
        reject_budget("Anchors", req)?;
        req.need_instance("Anchors")?;
        Ok(DrawGrid { total_draws: self.pool.max(1), chunk_size: 1 })
    }

    fn explain_chunks(
        &self,
        model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        chunks: std::ops::Range<usize>,
    ) -> XaiResult<Json> {
        let instance = req.need_instance("Anchors")?;
        validate::finite_slice("Anchors instance", instance)?;
        validate::finite_matrix("Anchors dataset", req.data.x())?;
        let explainer = AnchorsExplainer::fit(req.data);
        let f = |x: &[f64]| model.predict(x);
        let mut out = Vec::with_capacity(chunks.len());
        for c in chunks {
            let rule = catch_model("Anchors bandit search", || {
                explainer.explain(&f, instance, self.config, child_seed(req.plan.seed, c as u64))
            })?;
            out.push(rule_to_json(&rule)?);
        }
        Ok(chunks_json(out))
    }

    fn merge_chunks(
        &self,
        _model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        partials: Vec<Json>,
    ) -> XaiResult<Explanation> {
        const WHAT: &str = "Anchors merge";
        req.need_instance("Anchors")?;
        let grid = self.draw_grid(req)?;
        let flat = flatten_chunks(&partials, WHAT)?;
        if flat.len() != grid.n_chunks() {
            return Err(wire_error(format!(
                "{WHAT}: got {} pool candidates for a {}-candidate pool",
                flat.len(),
                grid.n_chunks()
            )));
        }
        let rules = flat
            .into_iter()
            .map(|r| rule_from_json(r, WHAT))
            .collect::<XaiResult<Vec<_>>>()?;
        let best = select_best(rules)
            .ok_or_else(|| wire_error(format!("{WHAT}: empty candidate pool")))?;
        Ok(Explanation::Rules(vec![best]))
    }

    fn config_json(&self) -> Json {
        Json::obj(vec![
            ("pool", Json::Num(self.pool as f64)),
            ("precision_target", Json::Num(self.config.precision_target)),
            ("delta", Json::Num(self.config.delta)),
            ("max_items", Json::Num(self.config.max_items as f64)),
            ("batch_size", Json::Num(self.config.batch_size as f64)),
            (
                "max_samples_per_round",
                Json::Num(self.config.max_samples_per_round as f64),
            ),
        ])
    }
}

/// Interpretable decision sets (§2.2) through the unified layer, fit as
/// a *global rule surrogate*: the model's own hard labels over the
/// request dataset become the target, so the mined rules describe the
/// model rather than the raw data.
#[derive(Clone, Copy, Debug, Default)]
pub struct DecisionSetMethod {
    /// Support, length and set-size caps of the mining step.
    pub config: IdsConfig,
}

impl Explainer for DecisionSetMethod {
    fn card(&self) -> MethodCard {
        method_card("Interpretable decision sets")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        reject_budget("Interpretable decision sets", req)?;
        validate::finite_matrix("decision set dataset", req.data.x())?;
        let rules = catch_model("decision set surrogate fit", || {
            let labels: Vec<f64> = (0..req.data.n_rows())
                .map(|i| f64::from(model.predict(req.data.row(i)) >= 0.5))
                .collect();
            DecisionSet::fit(req.data, &labels, self.config).rules()
        })?;
        Ok(Explanation::Rules(rules))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_core::taxonomy::{Scope, Stage};
    use xai_core::{ExplanationForm, RunConfig};
    use xai_data::synth::german_credit;
    use xai_models::{LogisticConfig, LogisticRegression};

    #[test]
    fn cards_come_from_the_catalogue() {
        assert_eq!(AnchorsMethod::default().card().scope, Scope::Local);
        assert_eq!(AnchorsMethod::default().card().form, ExplanationForm::Rules);
        assert_eq!(DecisionSetMethod::default().card().stage, Stage::Intrinsic);
    }

    #[test]
    fn anchors_trait_path_yields_a_rule_for_the_instance() {
        let data = german_credit(120, 41);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let row = data.row(0).to_vec();
        let req = ExplainRequest::new(&data).instance(&row).plan(RunConfig::seeded(2));
        let e = AnchorsMethod::default().explain(&model, &req).unwrap();
        let rules = e.as_rules().unwrap();
        assert_eq!(rules.len(), 1);
        assert!(rules[0].matches(&row), "anchor must cover its own instance");
    }

    #[test]
    fn decision_set_describes_the_model_not_the_labels() {
        let data = german_credit(150, 42);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let req = ExplainRequest::new(&data);
        let e = DecisionSetMethod::default().explain(&model, &req).unwrap();
        let rules = e.as_rules().unwrap();
        assert!(!rules.is_empty(), "surrogate mined no rules");
        // The mined rules must agree with the model's own labels more
        // often than chance on the training rows.
        use xai_models::Classifier;
        let ds = {
            let labels: Vec<f64> = (0..data.n_rows())
                .map(|i| f64::from(model.proba_one(data.row(i)) >= 0.5))
                .collect();
            crate::ids::DecisionSet::fit(&data, &labels, IdsConfig::default())
        };
        let agree = (0..data.n_rows())
            .filter(|&i| {
                (ds.predict_one(data.row(i)) >= 0.5)
                    == (model.proba_one(data.row(i)) >= 0.5)
            })
            .count();
        assert!(agree * 2 > data.n_rows(), "agreement {agree}/{}", data.n_rows());
    }

    #[test]
    fn anchors_demands_an_instance() {
        let data = german_credit(50, 43);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        assert!(matches!(
            AnchorsMethod::default().explain(&model, &ExplainRequest::new(&data)),
            Err(XaiError::Unsupported { .. })
        ));
    }
}
