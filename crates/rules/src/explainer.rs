//! Unified-layer `Explainer` impls for the rule family (DESIGN.md §9):
//! Anchors (local sufficient rules) and interpretable decision sets fit
//! as a global rule surrogate of the model under explanation.
//!
//! Both searches are sequential; `workers` and `batched` are no-ops (the
//! result equals the `workers == 1` result bit-for-bit) and a
//! `SampleBudget` is rejected as [`XaiError::Unsupported`].

use xai_core::taxonomy::method_card;
use xai_core::{
    catch_model, validate, ExplainRequest, Explainer, Explanation, MethodCard, ModelOracle,
    XaiError, XaiResult,
};

use crate::anchors::{AnchorsConfig, AnchorsExplainer};
use crate::ids::{DecisionSet, IdsConfig};

fn reject_budget(method: &str, req: &ExplainRequest<'_>) -> XaiResult<()> {
    if req.plan.budgeted() {
        return Err(XaiError::Unsupported {
            context: format!("{method} has no budgeted execution path; clear RunConfig::budget"),
        });
    }
    Ok(())
}

/// Anchors (§2.2) through the unified layer: a high-precision sufficient
/// rule for one prediction.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnchorsMethod {
    /// Precision target, confidence and length cap of the bandit search.
    pub config: AnchorsConfig,
}

impl Explainer for AnchorsMethod {
    fn card(&self) -> MethodCard {
        method_card("Anchors")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        reject_budget("Anchors", req)?;
        let instance = req.need_instance("Anchors")?;
        validate::finite_slice("Anchors instance", instance)?;
        validate::finite_matrix("Anchors dataset", req.data.x())?;
        let explainer = AnchorsExplainer::fit(req.data);
        let f = |x: &[f64]| model.predict(x);
        let rule = catch_model("Anchors bandit search", || {
            explainer.explain(&f, instance, self.config, req.plan.seed)
        })?;
        Ok(Explanation::Rules(vec![rule]))
    }
}

/// Interpretable decision sets (§2.2) through the unified layer, fit as
/// a *global rule surrogate*: the model's own hard labels over the
/// request dataset become the target, so the mined rules describe the
/// model rather than the raw data.
#[derive(Clone, Copy, Debug, Default)]
pub struct DecisionSetMethod {
    /// Support, length and set-size caps of the mining step.
    pub config: IdsConfig,
}

impl Explainer for DecisionSetMethod {
    fn card(&self) -> MethodCard {
        method_card("Interpretable decision sets")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        reject_budget("Interpretable decision sets", req)?;
        validate::finite_matrix("decision set dataset", req.data.x())?;
        let rules = catch_model("decision set surrogate fit", || {
            let labels: Vec<f64> = (0..req.data.n_rows())
                .map(|i| f64::from(model.predict(req.data.row(i)) >= 0.5))
                .collect();
            DecisionSet::fit(req.data, &labels, self.config).rules()
        })?;
        Ok(Explanation::Rules(rules))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_core::taxonomy::{Scope, Stage};
    use xai_core::{ExplanationForm, RunConfig};
    use xai_data::synth::german_credit;
    use xai_models::{LogisticConfig, LogisticRegression};

    #[test]
    fn cards_come_from_the_catalogue() {
        assert_eq!(AnchorsMethod::default().card().scope, Scope::Local);
        assert_eq!(AnchorsMethod::default().card().form, ExplanationForm::Rules);
        assert_eq!(DecisionSetMethod::default().card().stage, Stage::Intrinsic);
    }

    #[test]
    fn anchors_trait_path_yields_a_rule_for_the_instance() {
        let data = german_credit(120, 41);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let row = data.row(0).to_vec();
        let req = ExplainRequest::new(&data).instance(&row).plan(RunConfig::seeded(2));
        let e = AnchorsMethod::default().explain(&model, &req).unwrap();
        let rules = e.as_rules().unwrap();
        assert_eq!(rules.len(), 1);
        assert!(rules[0].matches(&row), "anchor must cover its own instance");
    }

    #[test]
    fn decision_set_describes_the_model_not_the_labels() {
        let data = german_credit(150, 42);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let req = ExplainRequest::new(&data);
        let e = DecisionSetMethod::default().explain(&model, &req).unwrap();
        let rules = e.as_rules().unwrap();
        assert!(!rules.is_empty(), "surrogate mined no rules");
        // The mined rules must agree with the model's own labels more
        // often than chance on the training rows.
        use xai_models::Classifier;
        let ds = {
            let labels: Vec<f64> = (0..data.n_rows())
                .map(|i| f64::from(model.proba_one(data.row(i)) >= 0.5))
                .collect();
            crate::ids::DecisionSet::fit(&data, &labels, IdsConfig::default())
        };
        let agree = (0..data.n_rows())
            .filter(|&i| {
                (ds.predict_one(data.row(i)) >= 0.5)
                    == (model.proba_one(data.row(i)) >= 0.5)
            })
            .count();
        assert!(agree * 2 > data.n_rows(), "agreement {agree}/{}", data.n_rows());
    }

    #[test]
    fn anchors_demands_an_instance() {
        let data = german_credit(50, 43);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        assert!(matches!(
            AnchorsMethod::default().explain(&model, &ExplainRequest::new(&data)),
            Err(XaiError::Unsupported { .. })
        ));
    }
}
