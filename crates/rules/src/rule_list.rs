//! Ordered rule lists by sequential covering (CN2/RIPPER lineage).
//!
//! The second classical intrinsically-interpretable rule formalism of
//! §2.2: unlike a *decision set* (unordered, needs tie-breaking), a rule
//! list is evaluated top to bottom and the first matching rule fires —
//! trading some parallel readability for unambiguous semantics. Learned
//! greedily: grow the highest-precision rule (Laplace-corrected) on the
//! not-yet-covered data, commit it, remove what it covers, repeat.

use crate::itemset::{Item, ItemVocabulary};
use xai_core::RuleExplanation;
use xai_data::Dataset;

/// Configuration for [`RuleList::fit`].
#[derive(Clone, Copy, Debug)]
pub struct RuleListConfig {
    /// Maximum clauses per rule.
    pub max_rule_length: usize,
    /// Maximum number of rules before the default.
    pub max_rules: usize,
    /// Minimum (absolute) examples a rule must cover when learned.
    pub min_coverage: usize,
}

impl Default for RuleListConfig {
    fn default() -> Self {
        Self { max_rule_length: 3, max_rules: 10, min_coverage: 10 }
    }
}

#[derive(Clone, Debug)]
struct ListRule {
    items: Vec<Item>,
    class: f64,
    precision: f64,
    coverage: f64,
}

/// A fitted ordered rule list.
#[derive(Clone, Debug)]
pub struct RuleList {
    rules: Vec<ListRule>,
    vocab: ItemVocabulary,
    default_class: f64,
    /// Training accuracy of the final list.
    pub train_accuracy: f64,
}

fn laplace_precision(pos: usize, covered: usize) -> f64 {
    (pos as f64 + 1.0) / (covered as f64 + 2.0)
}

impl RuleList {
    /// Learns a rule list from labels `y` (pass model predictions to
    /// distill a black box instead).
    pub fn fit(data: &Dataset, y: &[f64], config: RuleListConfig) -> Self {
        assert_eq!(data.n_rows(), y.len());
        assert!(config.max_rule_length >= 1 && config.max_rules >= 1);
        let vocab = ItemVocabulary::build(data);
        let n = data.n_rows();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut rules: Vec<ListRule> = Vec::new();

        while rules.len() < config.max_rules && remaining.len() >= config.min_coverage {
            // Grow the best rule on the remaining examples.
            let mut best: Option<ListRule> = None;
            for &target in &[1.0f64, 0.0] {
                let mut items: Vec<Item> = Vec::new();
                let mut covered: Vec<usize> = remaining.clone();
                for _ in 0..config.max_rule_length {
                    // Try adding every item; keep the best Laplace precision.
                    let mut best_step: Option<(Item, Vec<usize>, f64)> = None;
                    for it in 0..vocab.len() {
                        if items
                            .iter()
                            .any(|&a| vocab.predicate(a).feature() == vocab.predicate(it).feature())
                        {
                            continue;
                        }
                        let next: Vec<usize> = covered
                            .iter()
                            .copied()
                            .filter(|&i| vocab.predicate(it).matches(data.row(i)))
                            .collect();
                        if next.len() < config.min_coverage {
                            continue;
                        }
                        let pos = next.iter().filter(|&&i| (y[i] >= 0.5) == (target >= 0.5)).count();
                        let p = laplace_precision(pos, next.len());
                        if best_step.as_ref().is_none_or(|(_, _, bp)| p > *bp) {
                            best_step = Some((it, next, p));
                        }
                    }
                    match best_step {
                        Some((it, next, _)) => {
                            items.push(it);
                            covered = next;
                        }
                        None => break,
                    }
                }
                if items.is_empty() {
                    continue;
                }
                let pos = covered.iter().filter(|&&i| (y[i] >= 0.5) == (target >= 0.5)).count();
                let precision = laplace_precision(pos, covered.len());
                let cand = ListRule {
                    items,
                    class: target,
                    precision,
                    coverage: covered.len() as f64 / n as f64,
                };
                if best.as_ref().is_none_or(|b| cand.precision > b.precision) {
                    best = Some(cand);
                }
            }
            let Some(rule) = best else { break };
            // Stop when the rule is no better than guessing on the remainder.
            let remaining_pos =
                remaining.iter().filter(|&&i| y[i] >= 0.5).count() as f64 / remaining.len() as f64;
            let base = remaining_pos.max(1.0 - remaining_pos);
            if rule.precision <= base {
                break;
            }
            // Remove covered examples and commit.
            remaining.retain(|&i| {
                !rule
                    .items
                    .iter()
                    .all(|&it| vocab.predicate(it).matches(data.row(i)))
            });
            rules.push(rule);
        }

        // Default: majority of what is left (or global majority when empty).
        let pool: &[usize] = if remaining.is_empty() { &[] } else { &remaining };
        let default_class = if pool.is_empty() {
            f64::from(y.iter().filter(|&&v| v >= 0.5).count() * 2 >= n)
        } else {
            f64::from(pool.iter().filter(|&&i| y[i] >= 0.5).count() * 2 >= pool.len())
        };

        let mut list = Self { rules, vocab, default_class, train_accuracy: 0.0 };
        let correct = (0..n)
            .filter(|&i| (list.predict_one(data.row(i)) >= 0.5) == (y[i] >= 0.5))
            .count();
        list.train_accuracy = correct as f64 / n.max(1) as f64;
        list
    }

    /// First-match prediction.
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        for rule in &self.rules {
            if rule
                .items
                .iter()
                .all(|&it| self.vocab.predicate(it).matches(row))
            {
                return rule.class;
            }
        }
        self.default_class
    }

    /// The rule that fires for `row` (None = default).
    pub fn firing_rule(&self, row: &[f64]) -> Option<usize> {
        self.rules.iter().position(|rule| {
            rule.items
                .iter()
                .all(|&it| self.vocab.predicate(it).matches(row))
        })
    }

    /// Number of rules before the default.
    pub fn n_rules(&self) -> usize {
        self.rules.len()
    }

    /// The default class.
    pub fn default_class(&self) -> f64 {
        self.default_class
    }

    /// Rendered rules in firing order.
    pub fn rules(&self) -> Vec<RuleExplanation> {
        self.rules
            .iter()
            .map(|r| RuleExplanation {
                conditions: r.items.iter().flat_map(|&it| self.vocab.conditions(it)).collect(),
                prediction: r.class,
                precision: r.precision,
                coverage: r.coverage,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::metrics::accuracy;
    use xai_data::synth::german_credit;
    use xai_models::{Classifier, Gbdt, GbdtConfig};

    #[test]
    fn beats_majority_on_credit_data() {
        let data = german_credit(900, 77);
        let list = RuleList::fit(&data, data.y(), RuleListConfig::default());
        let majority = data.positive_rate().max(1.0 - data.positive_rate());
        assert!(
            list.train_accuracy > majority,
            "list {} vs majority {majority}",
            list.train_accuracy
        );
        assert!(list.n_rules() >= 1 && list.n_rules() <= 10);
    }

    #[test]
    fn first_match_semantics() {
        let data = german_credit(600, 79);
        let list = RuleList::fit(&data, data.y(), RuleListConfig::default());
        for i in 0..data.n_rows().min(50) {
            let row = data.row(i);
            match list.firing_rule(row) {
                Some(r) => {
                    // Every earlier rule must NOT match.
                    let rendered = list.rules();
                    for earlier in &rendered[..r] {
                        assert!(!earlier.matches(row), "rule order violated");
                    }
                    assert!(rendered[r].matches(row));
                    assert_eq!(list.predict_one(row), rendered[r].prediction);
                }
                None => assert_eq!(list.predict_one(row), list.default_class()),
            }
        }
    }

    #[test]
    fn rules_are_short_and_ordered_by_learning() {
        let data = german_credit(700, 83);
        let cfg = RuleListConfig { max_rule_length: 2, ..RuleListConfig::default() };
        let list = RuleList::fit(&data, data.y(), cfg);
        for rule in list.rules() {
            assert!(rule.len() <= 4, "≤2 items ⇒ ≤4 rendered clauses: {rule}");
        }
    }

    #[test]
    fn distills_a_black_box_with_good_agreement() {
        let data = german_credit(700, 87);
        let gbdt = Gbdt::fit(data.x(), data.y(), GbdtConfig { n_rounds: 40, ..GbdtConfig::default() });
        let preds = Classifier::predict(&gbdt, data.x());
        let list = RuleList::fit(&data, &preds, RuleListConfig::default());
        let list_preds: Vec<f64> = (0..data.n_rows()).map(|i| list.predict_one(data.row(i))).collect();
        let agreement = accuracy(&preds, &list_preds);
        assert!(agreement > 0.7, "distillation agreement {agreement}");
    }
}
