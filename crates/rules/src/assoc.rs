//! Association rules from frequent itemsets (§2.2.1).
//!
//! `antecedent ⇒ consequent` rules scored by support, confidence and lift —
//! the classical data-management vocabulary the tutorial connects to
//! rule-based explanations.

use crate::apriori::FrequentItemset;
use crate::itemset::Item;
use std::collections::HashMap;

/// An association rule with its quality measures.
#[derive(Clone, Debug, PartialEq)]
pub struct AssociationRule {
    /// Left-hand side items (sorted).
    pub antecedent: Vec<Item>,
    /// Right-hand side items (sorted, disjoint from the antecedent).
    pub consequent: Vec<Item>,
    /// Support of the full itemset as a fraction of transactions.
    pub support: f64,
    /// `P(consequent | antecedent)`.
    pub confidence: f64,
    /// `confidence / P(consequent)`; > 1 means positive association.
    pub lift: f64,
}

/// Derives all rules with confidence ≥ `min_confidence` from mined
/// frequent itemsets.
///
/// `n_transactions` is the database size the itemsets were mined from.
pub fn association_rules(
    itemsets: &[FrequentItemset],
    n_transactions: usize,
    min_confidence: f64,
) -> Vec<AssociationRule> {
    assert!(n_transactions > 0, "empty database");
    assert!((0.0..=1.0).contains(&min_confidence));
    let support_of: HashMap<&[Item], usize> =
        itemsets.iter().map(|f| (f.items.as_slice(), f.support)).collect();
    let n = n_transactions as f64;
    let mut rules = Vec::new();
    for fis in itemsets.iter().filter(|f| f.items.len() >= 2) {
        // Every non-empty proper subset as antecedent.
        let k = fis.items.len();
        for mask in 1..(1usize << k) - 1 {
            let antecedent: Vec<Item> = (0..k)
                .filter(|b| mask & (1 << b) != 0)
                .map(|b| fis.items[b])
                .collect();
            let consequent: Vec<Item> = (0..k)
                .filter(|b| mask & (1 << b) == 0)
                .map(|b| fis.items[b])
                .collect();
            let Some(&ante_support) = support_of.get(antecedent.as_slice()) else {
                continue; // antecedent below threshold ⇒ cannot certify confidence
            };
            let confidence = fis.support as f64 / ante_support as f64;
            if confidence + 1e-12 < min_confidence {
                continue;
            }
            let Some(&cons_support) = support_of.get(consequent.as_slice()) else {
                continue;
            };
            let lift = confidence / (cons_support as f64 / n);
            rules.push(AssociationRule {
                antecedent,
                consequent,
                support: fis.support as f64 / n,
                confidence,
                lift,
            });
        }
    }
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .expect("NaN confidence")
            .then(b.lift.partial_cmp(&a.lift).expect("NaN lift"))
            .then(a.antecedent.cmp(&b.antecedent))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::apriori;

    fn market() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1],
            vec![0, 3, 2, 4],
            vec![1, 3, 2],
            vec![0, 1, 3, 2],
            vec![0, 1, 3],
        ]
    }

    #[test]
    fn beer_diapers_rule() {
        let fis = apriori(&market(), 2);
        let rules = association_rules(&fis, 5, 0.9);
        // beer(2) ⇒ diapers(3): support({2,3}) = 3, support({2}) = 3 ⇒ conf 1.0
        let rule = rules
            .iter()
            .find(|r| r.antecedent == vec![2] && r.consequent == vec![3])
            .expect("beer ⇒ diapers should be found");
        assert!((rule.confidence - 1.0).abs() < 1e-12);
        assert!((rule.support - 0.6).abs() < 1e-12);
        // lift = 1.0 / (4/5) = 1.25
        assert!((rule.lift - 1.25).abs() < 1e-12);
    }

    #[test]
    fn confidence_threshold_filters() {
        let fis = apriori(&market(), 2);
        let strict = association_rules(&fis, 5, 0.99);
        let loose = association_rules(&fis, 5, 0.5);
        assert!(strict.len() < loose.len());
        assert!(strict.iter().all(|r| r.confidence >= 0.99 - 1e-12));
    }

    #[test]
    fn antecedent_and_consequent_disjoint_and_sorted() {
        let fis = apriori(&market(), 2);
        for r in association_rules(&fis, 5, 0.5) {
            assert!(r.antecedent.windows(2).all(|w| w[0] < w[1]));
            assert!(r.consequent.windows(2).all(|w| w[0] < w[1]));
            assert!(!r.antecedent.iter().any(|i| r.consequent.contains(i)));
        }
    }

    #[test]
    fn rules_sorted_by_confidence() {
        let fis = apriori(&market(), 2);
        let rules = association_rules(&fis, 5, 0.4);
        for w in rules.windows(2) {
            assert!(w[0].confidence >= w[1].confidence - 1e-12);
        }
    }
}
