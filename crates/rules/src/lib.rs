//! # xai-rules
//!
//! Rule-based explanations (tutorial §2.2) and the data-management mining
//! substrate they build on (§2.2.1):
//!
//! - [`itemset`] — dataset discretization into transactions over a stable
//!   item vocabulary;
//! - [`mod@apriori`] / [`fpgrowth`] — frequent-itemset mining, two algorithms,
//!   provably identical output (experiment E21);
//! - [`assoc`] — association rules with support/confidence/lift;
//! - [`anchors`] — high-precision model-agnostic rules searched with the
//!   KL-LUCB bandit;
//! - [`ids`] — interpretable decision sets (joint accuracy +
//!   interpretability objective, greedy submodular selection);
//! - [`logic`] — sufficient reasons / prime implicants on decision trees
//!   with Monte-Carlo necessity & sufficiency scores (§2.2.2).

pub mod anchors;
pub mod apriori;
pub mod assoc;
pub mod explainer;
pub mod fpgrowth;
pub mod ids;
pub mod itemset;
pub mod logic;
pub mod rule_list;

pub use anchors::{AnchorsConfig, AnchorsExplainer};
pub use apriori::{apriori, FrequentItemset};
pub use explainer::{AnchorsMethod, DecisionSetMethod};
pub use assoc::{association_rules, AssociationRule};
pub use fpgrowth::fp_growth;
pub use ids::{DecisionSet, IdsConfig};
pub use itemset::{Item, ItemPredicate, ItemVocabulary};
pub use rule_list::{RuleList, RuleListConfig};
pub use logic::{
    is_sufficient, necessity_score, sufficiency_score, sufficient_reason, SufficientReason,
};
