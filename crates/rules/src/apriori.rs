//! Apriori frequent-itemset mining (Agrawal & Srikant, §2.2.1 \[3, 4\]).
//!
//! Level-wise candidate generation with the downward-closure pruning rule:
//! every subset of a frequent itemset is frequent. Serves as the reference
//! implementation that FP-Growth must agree with (experiment E21).

use crate::itemset::Item;
use std::collections::HashMap;

/// A frequent itemset with its absolute support count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrequentItemset {
    /// The items, sorted ascending.
    pub items: Vec<Item>,
    /// Number of transactions containing all of them.
    pub support: usize,
}

/// Mines all itemsets with support ≥ `min_support` (absolute count).
///
/// Returns itemsets sorted by (length, items) for deterministic output.
pub fn apriori(transactions: &[Vec<Item>], min_support: usize) -> Vec<FrequentItemset> {
    assert!(min_support >= 1, "support threshold must be positive");
    let mut results: Vec<FrequentItemset> = Vec::new();

    // L1 (items deduplicated within each transaction).
    let mut counts: HashMap<Item, usize> = HashMap::new();
    for t in transactions {
        let mut seen: Vec<Item> = t.clone();
        seen.sort_unstable();
        seen.dedup();
        for item in seen {
            *counts.entry(item).or_insert(0) += 1;
        }
    }
    let mut frequent: Vec<Vec<Item>> = counts
        .iter()
        .filter(|(_, &c)| c >= min_support)
        .map(|(&i, _)| vec![i])
        .collect();
    frequent.sort();
    for set in &frequent {
        results.push(FrequentItemset { items: set.clone(), support: counts[&set[0]] });
    }

    // Pre-sort transactions for subset checks.
    let sorted_txns: Vec<Vec<Item>> = transactions
        .iter()
        .map(|t| {
            let mut s = t.clone();
            s.sort_unstable();
            s
        })
        .collect();

    while !frequent.is_empty() {
        // Candidate generation: join step (share all but the last item),
        // then prune by downward closure.
        let prev: std::collections::HashSet<&[Item]> =
            frequent.iter().map(|v| v.as_slice()).collect();
        let mut candidates: Vec<Vec<Item>> = Vec::new();
        for i in 0..frequent.len() {
            for j in i + 1..frequent.len() {
                let a = &frequent[i];
                let b = &frequent[j];
                if a[..a.len() - 1] != b[..b.len() - 1] {
                    continue;
                }
                let mut cand = a.clone();
                cand.push(b[b.len() - 1]);
                cand.sort_unstable();
                // Prune: all (k-1)-subsets must be frequent.
                let all_frequent = (0..cand.len()).all(|drop| {
                    let mut sub = cand.clone();
                    sub.remove(drop);
                    prev.contains(sub.as_slice())
                });
                if all_frequent {
                    candidates.push(cand);
                }
            }
        }
        candidates.sort();
        candidates.dedup();
        if candidates.is_empty() {
            break;
        }
        // Count support.
        let mut next = Vec::new();
        for cand in candidates {
            let support = sorted_txns
                .iter()
                .filter(|t| is_subset(&cand, t))
                .count();
            if support >= min_support {
                results.push(FrequentItemset { items: cand.clone(), support });
                next.push(cand);
            }
        }
        frequent = next;
    }
    results.sort_by(|a, b| (a.items.len(), &a.items).cmp(&(b.items.len(), &b.items)));
    results
}

/// Subset test on two sorted slices.
pub fn is_subset(needle: &[Item], haystack: &[Item]) -> bool {
    let mut h = haystack.iter();
    'outer: for n in needle {
        for x in h.by_ref() {
            match x.cmp(n) {
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
                std::cmp::Ordering::Less => {}
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn market() -> Vec<Vec<Item>> {
        // Classic basket example: 0=bread 1=milk 2=beer 3=diapers 4=eggs
        vec![
            vec![0, 1],
            vec![0, 3, 2, 4],
            vec![1, 3, 2],
            vec![0, 1, 3, 2],
            vec![0, 1, 3],
        ]
    }

    #[test]
    fn known_supports() {
        let fis = apriori(&market(), 3);
        let find = |items: &[Item]| {
            fis.iter()
                .find(|f| f.items == items)
                .map(|f| f.support)
        };
        assert_eq!(find(&[0]), Some(4)); // bread
        assert_eq!(find(&[3]), Some(4)); // diapers
        assert_eq!(find(&[2, 3]), Some(3)); // beer+diapers — the classic pair
        assert_eq!(find(&[0, 1]), Some(3));
        assert_eq!(find(&[2]), Some(3));
        assert_eq!(find(&[4]), None); // eggs below threshold
    }

    #[test]
    fn downward_closure_holds() {
        let fis = apriori(&market(), 2);
        let all: std::collections::HashSet<&[Item]> =
            fis.iter().map(|f| f.items.as_slice()).collect();
        for f in &fis {
            if f.items.len() >= 2 {
                for drop in 0..f.items.len() {
                    let mut sub = f.items.clone();
                    sub.remove(drop);
                    assert!(all.contains(sub.as_slice()), "subset {sub:?} of {:?} missing", f.items);
                }
            }
        }
    }

    #[test]
    fn supports_are_monotone() {
        let fis = apriori(&market(), 1);
        let support_of = |items: &[Item]| fis.iter().find(|f| f.items == items).unwrap().support;
        assert!(support_of(&[2, 3]) <= support_of(&[2]));
        assert!(support_of(&[2, 3]) <= support_of(&[3]));
        assert!(support_of(&[0, 1, 3]) <= support_of(&[0, 1]));
    }

    #[test]
    fn empty_and_threshold_edge_cases() {
        assert!(apriori(&[], 1).is_empty());
        let fis = apriori(&market(), 6);
        assert!(fis.is_empty(), "nothing clears support 6 in 5 transactions");
    }

    #[test]
    fn subset_helper() {
        assert!(is_subset(&[1, 3], &[0, 1, 2, 3]));
        assert!(!is_subset(&[1, 5], &[0, 1, 2, 3]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1], &[]));
    }
}
