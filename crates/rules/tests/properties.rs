//! Property-based tests for the mining substrate: Apriori and FP-Growth
//! must agree on arbitrary databases, and the classical itemset laws must
//! hold. Run as deterministic seeded loops over `xai_rand`.

use xai_rand::property::cases;
use xai_rand::rngs::StdRng;
use xai_rand::Rng;
use xai_rules::{apriori, association_rules, fp_growth, Item};

/// A random transaction database over up to 9 items: 1..40 transactions of
/// 0..7 items each.
fn database(rng: &mut StdRng) -> Vec<Vec<Item>> {
    let n = rng.gen_range(1..40);
    (0..n)
        .map(|_| {
            let len = rng.gen_range(0..7);
            (0..len).map(|_| rng.gen_range(0usize..9)).collect()
        })
        .collect()
}

#[test]
fn apriori_equals_fp_growth() {
    cases(64, 301, |rng| {
        let db = database(rng);
        let min_support = rng.gen_range(1usize..8);
        let a = apriori(&db, min_support);
        let g = fp_growth(&db, min_support);
        assert_eq!(a, g);
    });
}

#[test]
fn downward_closure() {
    cases(64, 302, |rng| {
        let db = database(rng);
        let min_support = rng.gen_range(1usize..6);
        let fis = apriori(&db, min_support);
        let all: std::collections::HashSet<&[Item]> =
            fis.iter().map(|f| f.items.as_slice()).collect();
        for f in &fis {
            if f.items.len() < 2 {
                continue;
            }
            for drop in 0..f.items.len() {
                let mut sub = f.items.clone();
                sub.remove(drop);
                assert!(all.contains(sub.as_slice()), "missing subset {sub:?}");
            }
        }
    });
}

#[test]
fn support_is_antitone_in_itemset_size() {
    cases(64, 303, |rng| {
        let db = database(rng);
        let fis = apriori(&db, 1);
        let support: std::collections::HashMap<&[Item], usize> =
            fis.iter().map(|f| (f.items.as_slice(), f.support)).collect();
        for f in &fis {
            if f.items.len() < 2 {
                continue;
            }
            for drop in 0..f.items.len() {
                let mut sub = f.items.clone();
                sub.remove(drop);
                if let Some(&s) = support.get(sub.as_slice()) {
                    assert!(f.support <= s, "{:?} support {} > subset {}", f.items, f.support, s);
                }
            }
        }
    });
}

#[test]
fn supports_never_exceed_database_size() {
    cases(64, 304, |rng| {
        let db = database(rng);
        let min_support = rng.gen_range(1usize..5);
        let n = db.len();
        for f in apriori(&db, min_support) {
            assert!(f.support >= min_support);
            assert!(f.support <= n);
        }
    });
}

#[test]
fn rule_measures_are_coherent() {
    cases(64, 305, |rng| {
        let db = database(rng);
        let min_support = rng.gen_range(1usize..4);
        let fis = apriori(&db, min_support);
        let rules = association_rules(&fis, db.len().max(1), 0.0);
        for r in &rules {
            assert!((0.0..=1.0).contains(&r.support));
            assert!(r.confidence > 0.0 && r.confidence <= 1.0 + 1e-12);
            assert!(r.lift >= 0.0);
            // support(rule) ≤ confidence (since support(A) ≤ 1).
            assert!(r.support <= r.confidence + 1e-12);
        }
    });
}
