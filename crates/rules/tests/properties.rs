//! Property-based tests for the mining substrate: Apriori and FP-Growth
//! must agree on arbitrary databases, and the classical itemset laws must
//! hold.

use proptest::prelude::*;
use xai_rules::{apriori, association_rules, fp_growth, Item};

/// Strategy: a random transaction database over up to 9 items.
fn database() -> impl Strategy<Value = Vec<Vec<Item>>> {
    prop::collection::vec(
        prop::collection::vec(0usize..9, 0..7),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn apriori_equals_fp_growth(db in database(), min_support in 1usize..8) {
        let a = apriori(&db, min_support);
        let g = fp_growth(&db, min_support);
        prop_assert_eq!(a, g);
    }

    #[test]
    fn downward_closure(db in database(), min_support in 1usize..6) {
        let fis = apriori(&db, min_support);
        let all: std::collections::HashSet<&[Item]> =
            fis.iter().map(|f| f.items.as_slice()).collect();
        for f in &fis {
            if f.items.len() < 2 {
                continue;
            }
            for drop in 0..f.items.len() {
                let mut sub = f.items.clone();
                sub.remove(drop);
                prop_assert!(all.contains(sub.as_slice()), "missing subset {sub:?}");
            }
        }
    }

    #[test]
    fn support_is_antitone_in_itemset_size(db in database()) {
        let fis = apriori(&db, 1);
        let support: std::collections::HashMap<&[Item], usize> =
            fis.iter().map(|f| (f.items.as_slice(), f.support)).collect();
        for f in &fis {
            if f.items.len() < 2 {
                continue;
            }
            for drop in 0..f.items.len() {
                let mut sub = f.items.clone();
                sub.remove(drop);
                if let Some(&s) = support.get(sub.as_slice()) {
                    prop_assert!(f.support <= s, "{:?} support {} > subset {}", f.items, f.support, s);
                }
            }
        }
    }

    #[test]
    fn supports_never_exceed_database_size(db in database(), min_support in 1usize..5) {
        let n = db.len();
        for f in apriori(&db, min_support) {
            prop_assert!(f.support >= min_support);
            prop_assert!(f.support <= n);
        }
    }

    #[test]
    fn rule_measures_are_coherent(db in database(), min_support in 1usize..4) {
        let fis = apriori(&db, min_support);
        let rules = association_rules(&fis, db.len().max(1), 0.0);
        for r in &rules {
            prop_assert!((0.0..=1.0).contains(&r.support));
            prop_assert!(r.confidence > 0.0 && r.confidence <= 1.0 + 1e-12);
            prop_assert!(r.lift >= 0.0);
            // support(rule) ≤ confidence (since support(A) ≤ 1).
            prop_assert!(r.support <= r.confidence + 1e-12);
        }
    }
}
