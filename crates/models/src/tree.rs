//! CART decision trees (classification via Gini, regression via variance).
//!
//! The tree exposes its full structure — children, thresholds, per-node
//! cover and values — because three different explainers consume it
//! directly: TreeSHAP (§2.1.2) walks the node arrays, the logic-based
//! methods (§2.2.2) extract prime implicants from root-to-leaf paths, and
//! LeafInfluence (§2.3.2) re-weights leaf values.

use crate::traits::{Classifier, Model, Regressor};
use xai_rand::rngs::StdRng;
use xai_rand::seq::SliceRandom;
use xai_linalg::Matrix;

/// Split quality criterion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitCriterion {
    /// Gini impurity for 0/1 classification.
    Gini,
    /// Variance reduction for regression (also used for GBDT residual fits).
    Variance,
}

/// Configuration for [`DecisionTree::fit`].
#[derive(Clone, Copy, Debug)]
pub struct TreeConfig {
    /// Maximum tree depth (root is depth 0).
    pub max_depth: usize,
    /// Minimum examples required to consider splitting a node.
    pub min_samples_split: usize,
    /// Minimum examples each child must retain.
    pub min_samples_leaf: usize,
    /// Split criterion.
    pub criterion: SplitCriterion,
    /// When set, each split considers only this many randomly chosen
    /// features (random-forest mode; requires an RNG at fit time).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 6,
            min_samples_split: 2,
            min_samples_leaf: 1,
            criterion: SplitCriterion::Gini,
            max_features: None,
        }
    }
}

/// A node in the flattened tree. Leaves have `left == None`.
#[derive(Clone, Debug)]
pub struct TreeNode {
    /// Split feature (meaningless for leaves).
    pub feature: usize,
    /// Split threshold; examples with `x[feature] <= threshold` go left.
    pub threshold: f64,
    /// Left child index.
    pub left: Option<usize>,
    /// Right child index.
    pub right: Option<usize>,
    /// Node prediction: mean target (variance) or positive fraction (gini).
    pub value: f64,
    /// Number of training examples that reached this node ("cover").
    pub cover: f64,
}

impl TreeNode {
    /// True for leaf nodes.
    pub fn is_leaf(&self) -> bool {
        self.left.is_none()
    }
}

/// A fitted CART tree.
#[derive(Clone, Debug)]
pub struct DecisionTree {
    nodes: Vec<TreeNode>,
    n_features: usize,
    criterion: SplitCriterion,
}

struct Builder<'a> {
    x: &'a Matrix,
    y: &'a [f64],
    config: TreeConfig,
    nodes: Vec<TreeNode>,
    rng: Option<&'a mut StdRng>,
}

fn impurity(criterion: SplitCriterion, sum: f64, sum_sq: f64, n: f64) -> f64 {
    if n == 0.0 {
        return 0.0;
    }
    match criterion {
        SplitCriterion::Gini => {
            let p = sum / n;
            2.0 * p * (1.0 - p)
        }
        SplitCriterion::Variance => (sum_sq / n - (sum / n).powi(2)).max(0.0),
    }
}

impl<'a> Builder<'a> {
    /// Builds the subtree over `idx`, returning its node index.
    fn build(&mut self, idx: &mut [usize], depth: usize) -> usize {
        let n = idx.len() as f64;
        let sum: f64 = idx.iter().map(|&i| self.y[i]).sum();
        let sum_sq: f64 = idx.iter().map(|&i| self.y[i] * self.y[i]).sum();
        let node_impurity = impurity(self.config.criterion, sum, sum_sq, n);
        let value = sum / n;

        let node_id = self.nodes.len();
        self.nodes.push(TreeNode {
            feature: 0,
            threshold: 0.0,
            left: None,
            right: None,
            value,
            cover: n,
        });

        if depth >= self.config.max_depth
            || idx.len() < self.config.min_samples_split
            || node_impurity <= 1e-12
        {
            return node_id;
        }

        let Some((feature, threshold)) = self.best_split(idx, node_impurity) else {
            return node_id;
        };

        // Partition in place.
        let mut lo = 0;
        let mut hi = idx.len();
        while lo < hi {
            if self.x[(idx[lo], feature)] <= threshold {
                lo += 1;
            } else {
                hi -= 1;
                idx.swap(lo, hi);
            }
        }
        debug_assert!(lo > 0 && lo < idx.len(), "degenerate split survived screening");
        let (left_idx, right_idx) = idx.split_at_mut(lo);
        let left = self.build(left_idx, depth + 1);
        let right = self.build(right_idx, depth + 1);
        self.nodes[node_id].feature = feature;
        self.nodes[node_id].threshold = threshold;
        self.nodes[node_id].left = Some(left);
        self.nodes[node_id].right = Some(right);
        node_id
    }

    /// Finds the impurity-minimizing (feature, threshold) pair, or `None`
    /// when no valid split improves on the parent.
    fn best_split(&mut self, idx: &[usize], parent_impurity: f64) -> Option<(usize, f64)> {
        let n = idx.len() as f64;
        let d = self.x.cols();
        let mut candidates: Vec<usize> = (0..d).collect();
        if let Some(k) = self.config.max_features {
            let rng = self
                .rng
                .as_deref_mut()
                .expect("max_features requires an RNG at fit time");
            candidates.shuffle(rng);
            candidates.truncate(k.max(1).min(d));
        }

        let min_leaf = self.config.min_samples_leaf as f64;
        let mut best: Option<(f64, usize, f64)> = None; // (weighted child impurity, feature, threshold)
        let mut order: Vec<usize> = Vec::with_capacity(idx.len());
        for &feature in &candidates {
            order.clear();
            order.extend_from_slice(idx);
            // total_cmp: a NaN feature value sorts last (and `xnext <= xv`
            // then refuses to split on it) instead of panicking mid-fit.
            order.sort_by(|&a, &b| self.x[(a, feature)].total_cmp(&self.x[(b, feature)]));
            let mut lsum = 0.0;
            let mut lsq = 0.0;
            let total_sum: f64 = order.iter().map(|&i| self.y[i]).sum();
            let total_sq: f64 = order.iter().map(|&i| self.y[i] * self.y[i]).sum();
            for (pos, &i) in order.iter().enumerate().take(order.len() - 1) {
                let yi = self.y[i];
                lsum += yi;
                lsq += yi * yi;
                let nl = (pos + 1) as f64;
                let nr = n - nl;
                if nl < min_leaf || nr < min_leaf {
                    continue;
                }
                let xv = self.x[(i, feature)];
                let xnext = self.x[(order[pos + 1], feature)];
                if xnext <= xv {
                    continue; // no threshold separates equal values
                }
                let wi = (nl / n) * impurity(self.config.criterion, lsum, lsq, nl)
                    + (nr / n) * impurity(self.config.criterion, total_sum - lsum, total_sq - lsq, nr);
                // Accept zero-improvement splits (XOR-style targets need a
                // "useless" first split before the informative second one);
                // pure nodes never reach this point.
                if best.map_or(wi <= parent_impurity + 1e-12, |(b, _, _)| wi < b - 1e-15) {
                    best = Some((wi, feature, 0.5 * (xv + xnext)));
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }
}

impl DecisionTree {
    /// Fits a tree; pass an RNG when `config.max_features` is set.
    pub fn fit_with(x: &Matrix, y: &[f64], config: TreeConfig, rng: Option<&mut StdRng>) -> Self {
        assert_eq!(x.rows(), y.len(), "row/target mismatch");
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        let mut idx: Vec<usize> = (0..x.rows()).collect();
        let mut builder = Builder { x, y, config, nodes: Vec::new(), rng };
        builder.build(&mut idx, 0);
        DecisionTree { nodes: builder.nodes, n_features: x.cols(), criterion: config.criterion }
    }

    /// Reconstructs a tree from raw parts (used by persistence). Callers
    /// are responsible for child-index validity; prefer
    /// `xai_models::Persist::load`, which validates.
    pub fn from_parts(nodes: Vec<TreeNode>, n_features: usize, criterion: SplitCriterion) -> Self {
        assert!(!nodes.is_empty(), "a tree needs at least a root");
        Self { nodes, n_features, criterion }
    }

    /// Fits a deterministic tree (all features considered at every split).
    pub fn fit(x: &Matrix, y: &[f64], config: TreeConfig) -> Self {
        assert!(config.max_features.is_none(), "use fit_with for random-feature mode");
        Self::fit_with(x, y, config, None)
    }

    /// The flattened nodes; index 0 is the root.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Mutable node access (used by LeafInfluence-style re-weighting).
    pub fn nodes_mut(&mut self) -> &mut [TreeNode] {
        &mut self.nodes
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[TreeNode], id: usize) -> usize {
            match (nodes[id].left, nodes[id].right) {
                (Some(l), Some(r)) => 1 + rec(nodes, l).max(rec(nodes, r)),
                _ => 0,
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }

    /// The split criterion the tree was fitted with.
    pub fn criterion(&self) -> SplitCriterion {
        self.criterion
    }

    /// Index of the leaf that `x` falls into.
    pub fn leaf_of(&self, x: &[f64]) -> usize {
        let mut id = 0;
        loop {
            let node = &self.nodes[id];
            match (node.left, node.right) {
                (Some(l), Some(r)) => {
                    id = if x[node.feature] <= node.threshold { l } else { r };
                }
                _ => return id,
            }
        }
    }

    /// Root-to-leaf node index path for `x`.
    pub fn decision_path(&self, x: &[f64]) -> Vec<usize> {
        let mut path = vec![0];
        let mut id = 0;
        loop {
            let node = &self.nodes[id];
            match (node.left, node.right) {
                (Some(l), Some(r)) => {
                    id = if x[node.feature] <= node.threshold { l } else { r };
                    path.push(id);
                }
                _ => return path,
            }
        }
    }

    /// Raw value prediction (mean target / positive fraction at the leaf).
    pub fn predict_value(&self, x: &[f64]) -> f64 {
        self.nodes[self.leaf_of(x)].value
    }

    /// Raw value prediction for a coalition view (zero-copy, DESIGN.md
    /// §12): each split reads `instance[f]` when bit `f` of `mask` is set
    /// and `row[f]` otherwise — the same comparisons [`DecisionTree::leaf_of`]
    /// would make on the materialized mixture, so the leaf (and its value)
    /// is identical without building the mixed row.
    pub fn predict_value_masked(&self, instance: &[f64], row: &[f64], mask: u64) -> f64 {
        let mut id = 0;
        loop {
            let node = &self.nodes[id];
            match (node.left, node.right) {
                (Some(l), Some(r)) => {
                    let f = node.feature;
                    let xv = if mask >> f & 1 == 1 { instance[f] } else { row[f] };
                    id = if xv <= node.threshold { l } else { r };
                }
                _ => return node.value,
            }
        }
    }

    /// Leaf index for every row of `x`, by node-at-a-time traversal: the
    /// row set moves down the tree together, so each node's split is
    /// loaded once per *batch* instead of once per row. Routing decisions
    /// are the same comparisons as [`DecisionTree::leaf_of`], so the
    /// assignment is identical.
    pub fn leaves_of(&self, x: &Matrix) -> Vec<usize> {
        let mut leaves = vec![0usize; x.rows()];
        if x.rows() == 0 {
            return leaves;
        }
        let mut frontier: Vec<(usize, Vec<usize>)> = vec![(0, (0..x.rows()).collect())];
        while let Some((id, members)) = frontier.pop() {
            let node = &self.nodes[id];
            match (node.left, node.right) {
                (Some(l), Some(r)) => {
                    let mut left = Vec::new();
                    let mut right = Vec::new();
                    for i in members {
                        if x.row(i)[node.feature] <= node.threshold {
                            left.push(i);
                        } else {
                            right.push(i);
                        }
                    }
                    if !left.is_empty() {
                        frontier.push((l, left));
                    }
                    if !right.is_empty() {
                        frontier.push((r, right));
                    }
                }
                _ => {
                    for i in members {
                        leaves[i] = id;
                    }
                }
            }
        }
        leaves
    }

    /// Raw value predictions for every row via [`DecisionTree::leaves_of`].
    pub fn predict_values(&self, x: &Matrix) -> Vec<f64> {
        self.leaves_of(x).into_iter().map(|leaf| self.nodes[leaf].value).collect()
    }
}

impl Model for DecisionTree {
    fn n_features(&self) -> usize {
        self.n_features
    }
}

impl Regressor for DecisionTree {
    fn predict_one(&self, x: &[f64]) -> f64 {
        self.predict_value(x)
    }

    fn predict_batch(&self, x: &Matrix) -> Vec<f64> {
        self.predict_values(x)
    }
}

impl Classifier for DecisionTree {
    fn proba_one(&self, x: &[f64]) -> f64 {
        self.predict_value(x)
    }

    fn proba_batch(&self, x: &Matrix) -> Vec<f64> {
        self.predict_values(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::metrics::accuracy;
    use xai_data::synth::{circles, friedman1};
    use xai_linalg::r_squared;

    #[test]
    fn fits_xor_perfectly() {
        // XOR needs depth 2; a linear model cannot represent it at all.
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let y = vec![0.0, 1.0, 1.0, 0.0];
        let tree = DecisionTree::fit(&x, &y, TreeConfig::default());
        for i in 0..4 {
            assert_eq!(tree.predict_value(x.row(i)), y[i]);
        }
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn classification_on_rings() {
        let data = circles(600, 4, 0.1);
        let tree = DecisionTree::fit(
            data.x(),
            data.y(),
            TreeConfig { max_depth: 8, ..TreeConfig::default() },
        );
        let preds = Classifier::predict(&tree, data.x());
        assert!(accuracy(data.y(), &preds) > 0.95);
    }

    #[test]
    fn regression_on_friedman() {
        let data = friedman1(800, 5, 0.2);
        let tree = DecisionTree::fit(
            data.x(),
            data.y(),
            TreeConfig {
                max_depth: 8,
                criterion: SplitCriterion::Variance,
                min_samples_leaf: 3,
                ..TreeConfig::default()
            },
        );
        let preds = Regressor::predict(&tree, data.x());
        assert!(r_squared(data.y(), &preds) > 0.7);
    }

    #[test]
    fn depth_limit_respected() {
        let data = circles(500, 6, 0.15);
        for d in [1, 2, 3] {
            let tree = DecisionTree::fit(
                data.x(),
                data.y(),
                TreeConfig { max_depth: d, ..TreeConfig::default() },
            );
            assert!(tree.depth() <= d);
        }
    }

    #[test]
    fn min_samples_leaf_respected() {
        let data = circles(300, 8, 0.2);
        let tree = DecisionTree::fit(
            data.x(),
            data.y(),
            TreeConfig { max_depth: 10, min_samples_leaf: 20, ..TreeConfig::default() },
        );
        for node in tree.nodes() {
            if node.is_leaf() {
                assert!(node.cover >= 20.0, "leaf cover {}", node.cover);
            }
        }
    }

    #[test]
    fn covers_are_consistent() {
        let data = circles(400, 9, 0.2);
        let tree = DecisionTree::fit(data.x(), data.y(), TreeConfig::default());
        assert_eq!(tree.nodes()[0].cover, 400.0);
        for node in tree.nodes() {
            if let (Some(l), Some(r)) = (node.left, node.right) {
                assert_eq!(node.cover, tree.nodes()[l].cover + tree.nodes()[r].cover);
            }
        }
    }

    #[test]
    fn decision_path_is_connected_and_ends_at_leaf() {
        let data = circles(300, 10, 0.2);
        let tree = DecisionTree::fit(data.x(), data.y(), TreeConfig::default());
        let path = tree.decision_path(data.row(5));
        assert_eq!(path[0], 0);
        assert!(tree.nodes()[*path.last().unwrap()].is_leaf());
        for w in path.windows(2) {
            let parent = &tree.nodes()[w[0]];
            assert!(parent.left == Some(w[1]) || parent.right == Some(w[1]));
        }
        assert_eq!(*path.last().unwrap(), tree.leaf_of(data.row(5)));
    }

    #[test]
    fn constant_targets_give_single_leaf() {
        let x = Matrix::from_fn(20, 3, |i, j| (i + j) as f64);
        let y = vec![1.0; 20];
        let tree = DecisionTree::fit(&x, &y, TreeConfig::default());
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.predict_value(&[0.0, 0.0, 0.0]), 1.0);
    }

    #[test]
    fn random_feature_mode_needs_rng() {
        use xai_rand::SeedableRng;
        let data = circles(200, 11, 0.2);
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit_with(
            data.x(),
            data.y(),
            TreeConfig { max_features: Some(1), ..TreeConfig::default() },
            Some(&mut rng),
        );
        assert!(tree.n_leaves() >= 2);
    }
}
