//! Gradient-boosted decision trees (squared and logistic loss).
//!
//! The ensemble structure (base score + learning-rate-scaled trees over raw
//! margins) is exposed so that TreeSHAP (§2.1.2) can attribute the margin
//! and LeafInfluence (§2.3.2) can analyze leaf values with the structure
//! held fixed — both mirror how the original papers instrument XGBoost.

// Boosting updates index predictions and rows by the same id.
#![allow(clippy::needless_range_loop)]
use crate::traits::{Classifier, Model, Regressor};
use crate::tree::{DecisionTree, SplitCriterion, TreeConfig};
use xai_data::sigmoid;
use xai_linalg::Matrix;

/// Loss function for boosting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GbdtLoss {
    /// Squared error; raw prediction is the value itself.
    Squared,
    /// Binary logistic loss; raw prediction is the log-odds margin.
    Logistic,
}

/// Configuration for [`Gbdt::fit`].
#[derive(Clone, Copy, Debug)]
pub struct GbdtConfig {
    /// Number of boosting rounds (trees).
    pub n_rounds: usize,
    /// Shrinkage applied to every tree's contribution.
    pub learning_rate: f64,
    /// Per-tree configuration (criterion is forced to Variance).
    pub tree: TreeConfig,
    /// Loss function.
    pub loss: GbdtLoss,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        Self {
            n_rounds: 50,
            learning_rate: 0.1,
            tree: TreeConfig {
                max_depth: 3,
                min_samples_leaf: 5,
                criterion: SplitCriterion::Variance,
                ..TreeConfig::default()
            },
            loss: GbdtLoss::Logistic,
        }
    }
}

/// A fitted gradient-boosted ensemble.
#[derive(Clone, Debug)]
pub struct Gbdt {
    base_score: f64,
    learning_rate: f64,
    trees: Vec<DecisionTree>,
    loss: GbdtLoss,
    n_features: usize,
}

impl Gbdt {
    /// Fits by functional gradient descent with Newton leaf values for the
    /// logistic loss.
    pub fn fit(x: &Matrix, y: &[f64], config: GbdtConfig) -> Self {
        assert_eq!(x.rows(), y.len(), "row/target mismatch");
        assert!(config.n_rounds > 0);
        assert!(config.learning_rate > 0.0);
        let n = x.rows();
        let tree_config = TreeConfig { criterion: SplitCriterion::Variance, ..config.tree };

        let mean_y = y.iter().sum::<f64>() / n as f64;
        let base_score = match config.loss {
            GbdtLoss::Squared => mean_y,
            GbdtLoss::Logistic => {
                let p = mean_y.clamp(1e-6, 1.0 - 1e-6);
                (p / (1.0 - p)).ln()
            }
        };

        let mut raw = vec![base_score; n];
        let mut trees = Vec::with_capacity(config.n_rounds);
        for _ in 0..config.n_rounds {
            // Negative gradients of the loss w.r.t. the raw prediction.
            let residuals: Vec<f64> = match config.loss {
                GbdtLoss::Squared => y.iter().zip(&raw).map(|(yi, fi)| yi - fi).collect(),
                GbdtLoss::Logistic => y.iter().zip(&raw).map(|(yi, fi)| yi - sigmoid(*fi)).collect(),
            };
            let mut tree = DecisionTree::fit(x, &residuals, tree_config);
            if config.loss == GbdtLoss::Logistic {
                // Newton step per leaf: Σ residual / Σ p(1-p).
                let n_nodes = tree.nodes().len();
                let mut num = vec![0.0; n_nodes];
                let mut den = vec![0.0; n_nodes];
                for i in 0..n {
                    let leaf = tree.leaf_of(x.row(i));
                    let p = sigmoid(raw[i]);
                    num[leaf] += residuals[i];
                    den[leaf] += p * (1.0 - p);
                }
                for (id, node) in tree.nodes_mut().iter_mut().enumerate() {
                    if node.is_leaf() {
                        node.value = if den[id] > 1e-12 {
                            (num[id] / den[id]).clamp(-4.0, 4.0)
                        } else {
                            0.0
                        };
                    }
                }
            }
            for i in 0..n {
                raw[i] += config.learning_rate * tree.predict_value(x.row(i));
            }
            trees.push(tree);
        }
        Self {
            base_score,
            learning_rate: config.learning_rate,
            trees,
            loss: config.loss,
            n_features: x.cols(),
        }
    }

    /// Reconstructs an ensemble from raw parts (used by persistence).
    pub fn from_parts(
        base_score: f64,
        learning_rate: f64,
        trees: Vec<DecisionTree>,
        loss: GbdtLoss,
        n_features: usize,
    ) -> Self {
        assert!(learning_rate > 0.0);
        Self { base_score, learning_rate, trees, loss, n_features }
    }

    /// Raw additive prediction: `base + lr · Σₖ treeₖ(x)`.
    /// For the logistic loss this is the log-odds margin.
    pub fn margin(&self, x: &[f64]) -> f64 {
        let tree_sum: f64 = self.trees.iter().map(|t| t.predict_value(x)).sum();
        self.base_score + self.learning_rate * tree_sum
    }

    /// Margins for every row: each tree routes the whole batch at once,
    /// accumulating per row in boosting order (the same summation order as
    /// [`Gbdt::margin`], hence bit-identical).
    pub fn margin_batch(&self, x: &Matrix) -> Vec<f64> {
        let mut tree_sums = vec![0.0; x.rows()];
        for tree in &self.trees {
            for (a, v) in tree_sums.iter_mut().zip(tree.predict_values(x)) {
                *a += v;
            }
        }
        tree_sums
            .into_iter()
            .map(|s| self.base_score + self.learning_rate * s)
            .collect()
    }

    /// Masked coalition margins (zero-copy, DESIGN.md §12): the raw
    /// additive prediction for every background row's coalition view,
    /// split features read from `instance` where the mask bit is set.
    /// Per-row tree sums accumulate in boosting order from `0.0`, then
    /// `base + lr·sum` — the same association as [`Gbdt::margin_batch`],
    /// hence bit-identical without materializing any mixed rows.
    pub fn margin_masked_into(
        &self,
        instance: &[f64],
        background: &Matrix,
        mask: u64,
        out: &mut [f64],
    ) {
        assert_eq!(out.len(), background.rows(), "masked output length mismatch");
        out.fill(0.0);
        for tree in &self.trees {
            for (bi, o) in out.iter_mut().enumerate() {
                *o += tree.predict_value_masked(instance, background.row(bi), mask);
            }
        }
        for o in out.iter_mut() {
            *o = self.base_score + self.learning_rate * *o;
        }
    }

    /// The fitted trees in boosting order.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Mutable tree access for structure-fixed influence analyses.
    pub fn trees_mut(&mut self) -> &mut [DecisionTree] {
        &mut self.trees
    }

    /// The initial raw score.
    pub fn base_score(&self) -> f64 {
        self.base_score
    }

    /// The shrinkage factor.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// The loss the ensemble was fitted with.
    pub fn loss(&self) -> GbdtLoss {
        self.loss
    }
}

impl Model for Gbdt {
    fn n_features(&self) -> usize {
        self.n_features
    }
}

impl Regressor for Gbdt {
    fn predict_one(&self, x: &[f64]) -> f64 {
        match self.loss {
            GbdtLoss::Squared => self.margin(x),
            GbdtLoss::Logistic => sigmoid(self.margin(x)),
        }
    }

    fn predict_batch(&self, x: &Matrix) -> Vec<f64> {
        let margins = self.margin_batch(x);
        match self.loss {
            GbdtLoss::Squared => margins,
            GbdtLoss::Logistic => margins.into_iter().map(sigmoid).collect(),
        }
    }
}

impl Classifier for Gbdt {
    fn proba_one(&self, x: &[f64]) -> f64 {
        match self.loss {
            GbdtLoss::Squared => self.margin(x).clamp(0.0, 1.0),
            GbdtLoss::Logistic => sigmoid(self.margin(x)),
        }
    }

    fn proba_batch(&self, x: &Matrix) -> Vec<f64> {
        let margins = self.margin_batch(x);
        match self.loss {
            GbdtLoss::Squared => margins.into_iter().map(|m| m.clamp(0.0, 1.0)).collect(),
            GbdtLoss::Logistic => margins.into_iter().map(sigmoid).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::metrics::{accuracy, auc_roc, mse};
    use xai_data::synth::{circles, friedman1, german_credit};
    use xai_linalg::r_squared;

    #[test]
    fn regression_beats_constant_and_improves_with_rounds() {
        let train = friedman1(600, 61, 0.2);
        let test = friedman1(300, 62, 0.2);
        let short = Gbdt::fit(
            train.x(),
            train.y(),
            GbdtConfig { n_rounds: 5, loss: GbdtLoss::Squared, ..GbdtConfig::default() },
        );
        let long = Gbdt::fit(
            train.x(),
            train.y(),
            GbdtConfig { n_rounds: 120, loss: GbdtLoss::Squared, ..GbdtConfig::default() },
        );
        let mse_short = mse(test.y(), &Regressor::predict(&short, test.x()));
        let mse_long = mse(test.y(), &Regressor::predict(&long, test.x()));
        assert!(mse_long < mse_short, "boosting must reduce test error: {mse_long} vs {mse_short}");
        assert!(r_squared(test.y(), &Regressor::predict(&long, test.x())) > 0.75);
    }

    #[test]
    fn classification_on_rings() {
        let train = circles(600, 71, 0.2);
        let test = circles(300, 72, 0.2);
        let model = Gbdt::fit(train.x(), train.y(), GbdtConfig { n_rounds: 60, ..GbdtConfig::default() });
        assert!(accuracy(test.y(), &Classifier::predict(&model, test.x())) > 0.9);
        assert!(auc_roc(test.y(), &model.proba(test.x())) > 0.95);
    }

    #[test]
    fn margin_is_additive_in_trees() {
        let data = german_credit(400, 81);
        let model = Gbdt::fit(data.x(), data.y(), GbdtConfig { n_rounds: 10, ..GbdtConfig::default() });
        let x = data.row(0);
        let manual = model.base_score()
            + model.learning_rate() * model.trees().iter().map(|t| t.predict_value(x)).sum::<f64>();
        assert!((model.margin(x) - manual).abs() < 1e-12);
        assert!((model.proba_one(x) - sigmoid(model.margin(x))).abs() < 1e-12);
    }

    #[test]
    fn base_score_is_log_odds_of_positive_rate() {
        let data = german_credit(500, 91);
        let model = Gbdt::fit(data.x(), data.y(), GbdtConfig { n_rounds: 1, ..GbdtConfig::default() });
        let p = data.positive_rate();
        assert!((model.base_score() - (p / (1.0 - p)).ln()).abs() < 1e-9);
    }

    #[test]
    fn learns_real_signal_on_credit_data() {
        let data = german_credit(1200, 101);
        let (train, test) = data.train_test_split(0.25, 1);
        let model = Gbdt::fit(train.x(), train.y(), GbdtConfig { n_rounds: 80, ..GbdtConfig::default() });
        let auc = auc_roc(test.y(), &model.proba(test.x()));
        assert!(auc > 0.7, "credit AUC {auc}");
    }
}
