//! Common model interfaces.
//!
//! Model-agnostic explainers (dimension (b) of the tutorial's taxonomy)
//! only ever see [`PredictFn`]-shaped closures; these traits give the
//! concrete models a uniform surface from which those closures are built.

use xai_linalg::Matrix;

/// Anything with a fixed input arity.
pub trait Model {
    /// Number of input features the model expects.
    fn n_features(&self) -> usize;
}

/// Real-valued prediction.
pub trait Regressor: Model {
    /// Predicts a single row.
    fn predict_one(&self, x: &[f64]) -> f64;

    /// Predicts every row of a matrix.
    fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|i| self.predict_one(x.row(i))).collect()
    }
}

/// Binary probabilistic classification.
pub trait Classifier: Model {
    /// Probability of the positive class for a single row.
    fn proba_one(&self, x: &[f64]) -> f64;

    /// Probabilities for every row.
    fn proba(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|i| self.proba_one(x.row(i))).collect()
    }

    /// Hard 0/1 prediction at the 0.5 threshold.
    fn predict_one(&self, x: &[f64]) -> f64 {
        f64::from(self.proba_one(x) >= 0.5)
    }

    /// Hard predictions for every row.
    fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|i| Classifier::predict_one(self, x.row(i))).collect()
    }
}

/// The single-output prediction function surface consumed by model-agnostic
/// explainers: probability for classifiers, value for regressors.
pub type PredictFn<'a> = dyn Fn(&[f64]) -> f64 + 'a;

/// Wraps a classifier as a probability closure.
pub fn proba_fn<C: Classifier>(model: &C) -> impl Fn(&[f64]) -> f64 + '_ {
    move |x| model.proba_one(x)
}

/// Wraps a regressor as a value closure.
pub fn regress_fn<R: Regressor>(model: &R) -> impl Fn(&[f64]) -> f64 + '_ {
    move |x| model.predict_one(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(f64);
    impl Model for Constant {
        fn n_features(&self) -> usize {
            2
        }
    }
    impl Classifier for Constant {
        fn proba_one(&self, _x: &[f64]) -> f64 {
            self.0
        }
    }

    #[test]
    fn default_threshold_and_batching() {
        let hi = Constant(0.9);
        let lo = Constant(0.2);
        assert_eq!(Classifier::predict_one(&hi, &[0.0, 0.0]), 1.0);
        assert_eq!(Classifier::predict_one(&lo, &[0.0, 0.0]), 0.0);
        let m = Matrix::zeros(3, 2);
        assert_eq!(hi.proba(&m), vec![0.9; 3]);
        assert_eq!(Classifier::predict(&lo, &m), vec![0.0; 3]);
        let f = proba_fn(&hi);
        assert_eq!(f(&[1.0, 2.0]), 0.9);
    }
}
