//! Common model interfaces.
//!
//! Model-agnostic explainers (dimension (b) of the tutorial's taxonomy)
//! only ever see [`PredictFn`]- or [`BatchPredictFn`]-shaped closures;
//! these traits give the concrete models a uniform surface from which
//! those closures are built.
//!
//! Every trait has two surfaces: a scalar one (`*_one`) and a batched one
//! (`*_batch`) taking a whole [`Matrix`] of rows. The batched defaults are
//! the **canonical row loops** — `predict` / `proba` are thin delegations
//! to them — and every vectorized override in this crate is required to be
//! bit-identical to that row loop (enforced by the seeded property tests
//! and by `tests/batch_equivalence.rs` at the explainer level).

use xai_linalg::Matrix;

/// Anything with a fixed input arity.
pub trait Model {
    /// Number of input features the model expects.
    fn n_features(&self) -> usize;
}

/// Real-valued prediction.
pub trait Regressor: Model {
    /// Predicts a single row.
    fn predict_one(&self, x: &[f64]) -> f64;

    /// Predicts every row of a matrix in one call.
    ///
    /// The default is the canonical scalar fallback; vectorized overrides
    /// must return bit-identical values for every row.
    fn predict_batch(&self, x: &Matrix) -> Vec<f64> {
        x.iter_rows().map(|r| self.predict_one(r)).collect()
    }

    /// Predicts every row of a matrix (alias for the batch surface).
    fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.predict_batch(x)
    }
}

/// Binary probabilistic classification.
pub trait Classifier: Model {
    /// Probability of the positive class for a single row.
    fn proba_one(&self, x: &[f64]) -> f64;

    /// Probabilities for every row of a matrix in one call.
    ///
    /// The default is the canonical scalar fallback; vectorized overrides
    /// must return bit-identical values for every row.
    fn proba_batch(&self, x: &Matrix) -> Vec<f64> {
        x.iter_rows().map(|r| self.proba_one(r)).collect()
    }

    /// Probabilities for every row (alias for the batch surface).
    fn proba(&self, x: &Matrix) -> Vec<f64> {
        self.proba_batch(x)
    }

    /// Hard 0/1 prediction at the 0.5 threshold.
    fn predict_one(&self, x: &[f64]) -> f64 {
        f64::from(self.proba_one(x) >= 0.5)
    }

    /// Hard predictions for every row, thresholding the batch surface.
    fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.proba_batch(x).into_iter().map(|p| f64::from(p >= 0.5)).collect()
    }
}

/// The single-output prediction function surface consumed by model-agnostic
/// explainers: probability for classifiers, value for regressors.
pub type PredictFn<'a> = dyn Fn(&[f64]) -> f64 + 'a;

/// The batched prediction surface: a whole matrix of rows in, one output
/// per row out. Explainer hot loops materialize their perturbed rows into
/// one [`Matrix`] and make a single call through this type.
pub type BatchPredictFn<'a> = dyn Fn(&Matrix) -> Vec<f64> + 'a;

/// Wraps a classifier as a probability closure.
pub fn proba_fn<C: Classifier>(model: &C) -> impl Fn(&[f64]) -> f64 + '_ {
    move |x| model.proba_one(x)
}

/// Wraps a regressor as a value closure.
pub fn regress_fn<R: Regressor>(model: &R) -> impl Fn(&[f64]) -> f64 + '_ {
    move |x| model.predict_one(x)
}

/// Wraps a classifier as a batched probability closure.
pub fn batch_proba_fn<C: Classifier>(model: &C) -> impl Fn(&Matrix) -> Vec<f64> + '_ {
    move |x| model.proba_batch(x)
}

/// Wraps a regressor as a batched value closure.
pub fn batch_regress_fn<R: Regressor>(model: &R) -> impl Fn(&Matrix) -> Vec<f64> + '_ {
    move |x| model.predict_batch(x)
}

/// Adapts any scalar prediction closure to the batched surface by looping
/// over rows — the fallback that lets batched explainer entry points accept
/// models that only exist as a [`PredictFn`].
pub fn batch_from_scalar<'a, F: Fn(&[f64]) -> f64 + 'a>(f: F) -> impl Fn(&Matrix) -> Vec<f64> + 'a {
    move |x: &Matrix| x.iter_rows().map(&f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(f64);
    impl Model for Constant {
        fn n_features(&self) -> usize {
            2
        }
    }
    impl Classifier for Constant {
        fn proba_one(&self, _x: &[f64]) -> f64 {
            self.0
        }
    }

    struct Affine;
    impl Model for Affine {
        fn n_features(&self) -> usize {
            2
        }
    }
    impl Regressor for Affine {
        fn predict_one(&self, x: &[f64]) -> f64 {
            1.0 + 2.0 * x[0] - x[1]
        }
    }

    #[test]
    fn default_threshold_and_batching() {
        let hi = Constant(0.9);
        let lo = Constant(0.2);
        assert_eq!(Classifier::predict_one(&hi, &[0.0, 0.0]), 1.0);
        assert_eq!(Classifier::predict_one(&lo, &[0.0, 0.0]), 0.0);
        let m = Matrix::zeros(3, 2);
        assert_eq!(hi.proba(&m), vec![0.9; 3]);
        assert_eq!(hi.proba_batch(&m), vec![0.9; 3]);
        assert_eq!(Classifier::predict(&lo, &m), vec![0.0; 3]);
        let f = proba_fn(&hi);
        assert_eq!(f(&[1.0, 2.0]), 0.9);
    }

    #[test]
    fn batch_closures_and_scalar_adapter_agree() {
        let m = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 3.0]]);
        let model = Affine;
        let batched = batch_regress_fn(&model);
        assert_eq!(batched(&m), vec![1.0, 0.0]);
        let scalar = regress_fn(&model);
        let adapted = batch_from_scalar(scalar);
        assert_eq!(adapted(&m), batched(&m));
        let hi = Constant(0.9);
        let bp = batch_proba_fn(&hi);
        assert_eq!(bp(&m), vec![0.9, 0.9]);
        // Empty batches are fine end to end.
        assert_eq!(batched(&Matrix::zeros(0, 2)), Vec::<f64>::new());
    }
}
