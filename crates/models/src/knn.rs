//! k-nearest-neighbour prediction.
//!
//! Besides being a baseline model, kNN is the model class for which data
//! Shapley values have an exact closed form (Jia et al., §2.3.1), so the
//! neighbour machinery here is reused by `xai-datavalue::knn_shapley`.

use crate::traits::{Classifier, Model, Regressor};
use xai_linalg::Matrix;

/// A fitted (memorized) kNN model with Euclidean distances.
#[derive(Clone, Debug)]
pub struct Knn {
    x: Matrix,
    y: Vec<f64>,
    k: usize,
}

impl Knn {
    /// Memorizes the training set.
    pub fn fit(x: &Matrix, y: &[f64], k: usize) -> Self {
        assert_eq!(x.rows(), y.len(), "row/target mismatch");
        assert!(k >= 1, "k must be at least 1");
        assert!(x.rows() >= 1, "empty training set");
        Self { x: x.clone(), y: y.to_vec(), k: k.min(x.rows()) }
    }

    /// The neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Squared Euclidean distance between a query and training row `i`.
    fn dist_sq(&self, q: &[f64], i: usize) -> f64 {
        self.x
            .row(i)
            .iter()
            .zip(q)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Indices of all training points sorted by distance to `q`
    /// (ties broken by index for determinism).
    pub fn neighbours_sorted(&self, q: &[f64]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.x.rows()).collect();
        let dists: Vec<f64> = idx.iter().map(|&i| self.dist_sq(q, i)).collect();
        // total_cmp keeps the sort well-defined even if a NaN query slips
        // through: NaN distances sort last instead of panicking or, worse,
        // corrupting the comparator's transitivity.
        idx.sort_by(|&a, &b| dists[a].total_cmp(&dists[b]).then(a.cmp(&b)));
        idx
    }

    /// The `k` nearest training indices.
    pub fn k_nearest(&self, q: &[f64]) -> Vec<usize> {
        let mut ns = self.neighbours_sorted(q);
        ns.truncate(self.k);
        ns
    }

    /// Mean target over the k nearest neighbours.
    pub fn predict_value(&self, q: &[f64]) -> f64 {
        let ns = self.k_nearest(q);
        ns.iter().map(|&i| self.y[i]).sum::<f64>() / ns.len() as f64
    }
}

impl Model for Knn {
    fn n_features(&self) -> usize {
        self.x.cols()
    }
}

impl Regressor for Knn {
    fn predict_one(&self, x: &[f64]) -> f64 {
        self.predict_value(x)
    }
}

impl Classifier for Knn {
    fn proba_one(&self, x: &[f64]) -> f64 {
        self.predict_value(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::metrics::accuracy;
    use xai_data::synth::circles;

    #[test]
    fn one_nn_memorizes_training_data() {
        let data = circles(200, 5, 0.1);
        let knn = Knn::fit(data.x(), data.y(), 1);
        let preds = Classifier::predict(&knn, data.x());
        assert_eq!(accuracy(data.y(), &preds), 1.0);
    }

    #[test]
    fn generalizes_on_rings() {
        let train = circles(400, 6, 0.15);
        let test = circles(200, 7, 0.15);
        let knn = Knn::fit(train.x(), train.y(), 7);
        let preds = Classifier::predict(&knn, test.x());
        assert!(accuracy(test.y(), &preds) > 0.9);
    }

    #[test]
    fn neighbours_are_sorted_by_distance() {
        let x = Matrix::from_rows(&[vec![0.0], vec![10.0], vec![1.0], vec![5.0]]);
        let knn = Knn::fit(&x, &[0.0, 1.0, 0.0, 1.0], 2);
        assert_eq!(knn.neighbours_sorted(&[0.0]), vec![0, 2, 3, 1]);
        assert_eq!(knn.k_nearest(&[4.9]), vec![3, 2]);
    }

    #[test]
    fn k_clamped_to_dataset_size() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let knn = Knn::fit(&x, &[0.0, 1.0], 100);
        assert_eq!(knn.k(), 2);
        assert_eq!(knn.predict_value(&[0.0]), 0.5);
    }

    #[test]
    fn tie_break_is_deterministic() {
        let x = Matrix::from_rows(&[vec![1.0], vec![-1.0], vec![1.0]]);
        let knn = Knn::fit(&x, &[0.0, 1.0, 0.0], 1);
        // Rows 0 and 2 are equidistant from the query; lower index wins.
        assert_eq!(knn.k_nearest(&[0.0])[0], 0);
    }
}
