//! # xai-models
//!
//! From-scratch ML models with "white-box complete" access: every model
//! exposes the internals its explainers need. [`LogisticRegression`]
//! surfaces per-example gradients and Hessians for influence functions;
//! [`DecisionTree`] / [`Gbdt`] expose node arrays for TreeSHAP, prime
//! implicants and LeafInfluence; [`Knn`] exposes sorted neighbours for
//! closed-form KNN-Shapley; [`Mlp`] exposes input gradients for
//! saliency-style attributions.
//!
//! Model-agnostic explainers see only a `Fn(&[f64]) -> f64` closure built
//! with [`proba_fn`] / [`regress_fn`] — the tutorial's model-agnostic vs
//! model-dependent boundary (§1 dimension (b)) is enforced by the type
//! system. Their batched hot paths see the matching
//! `Fn(&Matrix) -> Vec<f64>` surface ([`batch_proba_fn`] /
//! [`batch_regress_fn`], with [`batch_from_scalar`] as the row-loop
//! fallback); every vectorized `predict_batch` override is bit-identical
//! to the scalar row loop.
//!
//! The unified explainer layer sees the same boundary through one object:
//! every model here implements `xai_core::ModelOracle` ([`oracle`]), with
//! optional gradient and downcast capabilities for the model-specific
//! methods.

pub mod forest;
pub mod gbdt;
pub mod knn;
pub mod linear;
pub mod logistic;
pub mod mlp;
pub mod naive_bayes;
pub mod oracle;
pub mod persist;
pub mod traits;
pub mod tree;

pub use forest::{ForestConfig, RandomForest};
pub use gbdt::{Gbdt, GbdtConfig, GbdtLoss};
pub use knn::Knn;
pub use linear::{LinearConfig, LinearRegression};
pub use logistic::{LogisticConfig, LogisticRegression};
pub use mlp::{Mlp, MlpConfig, MlpTask};
pub use naive_bayes::GaussianNb;
pub use persist::{
    load_from_file, model_fingerprint, persisted_bytes, save_to_file, Persist, PersistError,
};
pub use traits::{
    batch_from_scalar, batch_proba_fn, batch_regress_fn, proba_fn, regress_fn, BatchPredictFn,
    Classifier, Model, PredictFn, Regressor,
};
pub use tree::{DecisionTree, SplitCriterion, TreeConfig, TreeNode};
