//! Gaussian naive Bayes.
//!
//! An intrinsically interpretable probabilistic baseline: per-class,
//! per-feature Gaussians whose log-likelihood ratios decompose additively
//! over features — useful as a contrast to post-hoc attribution methods.

use crate::traits::{Classifier, Model};
use xai_linalg::Matrix;

/// A fitted Gaussian naive Bayes classifier for binary targets.
#[derive(Clone, Debug)]
pub struct GaussianNb {
    /// log P(y=1) − log P(y=0).
    log_prior_ratio: f64,
    /// Per-class per-feature means; `[class][feature]`.
    means: [Vec<f64>; 2],
    /// Per-class per-feature variances (floored for stability).
    vars: [Vec<f64>; 2],
}

impl GaussianNb {
    /// Fits class-conditional Gaussians.
    ///
    /// # Panics
    /// Panics when either class is absent from `y`.
    pub fn fit(x: &Matrix, y: &[f64]) -> Self {
        assert_eq!(x.rows(), y.len(), "row/target mismatch");
        let d = x.cols();
        let mut counts = [0usize; 2];
        let mut sums = [vec![0.0; d], vec![0.0; d]];
        for (row, &yi) in x.iter_rows().zip(y) {
            let c = usize::from(yi >= 0.5);
            counts[c] += 1;
            for (s, &v) in sums[c].iter_mut().zip(row) {
                *s += v;
            }
        }
        assert!(counts[0] > 0 && counts[1] > 0, "both classes must be present");
        let means = [
            sums[0].iter().map(|s| s / counts[0] as f64).collect::<Vec<_>>(),
            sums[1].iter().map(|s| s / counts[1] as f64).collect::<Vec<_>>(),
        ];
        let mut vars = [vec![0.0; d], vec![0.0; d]];
        for (row, &yi) in x.iter_rows().zip(y) {
            let c = usize::from(yi >= 0.5);
            for ((v, &xv), &m) in vars[c].iter_mut().zip(row).zip(&means[c]) {
                *v += (xv - m).powi(2);
            }
        }
        for c in 0..2 {
            for v in vars[c].iter_mut() {
                *v = (*v / counts[c] as f64).max(1e-9);
            }
        }
        let log_prior_ratio = (counts[1] as f64 / counts[0] as f64).ln();
        Self { log_prior_ratio, means, vars }
    }

    /// Per-feature log-likelihood-ratio contributions plus the prior term:
    /// the model's *intrinsic* additive explanation of its own decision.
    pub fn log_odds_contributions(&self, x: &[f64]) -> (f64, Vec<f64>) {
        let contributions = x
            .iter()
            .enumerate()
            .map(|(j, &v)| {
                let ll = |c: usize| -> f64 {
                    let m = self.means[c][j];
                    let var = self.vars[c][j];
                    -0.5 * ((v - m).powi(2) / var + var.ln())
                };
                ll(1) - ll(0)
            })
            .collect();
        (self.log_prior_ratio, contributions)
    }
}

impl Model for GaussianNb {
    fn n_features(&self) -> usize {
        self.means[0].len()
    }
}

impl Classifier for GaussianNb {
    fn proba_one(&self, x: &[f64]) -> f64 {
        let (prior, contribs) = self.log_odds_contributions(x);
        xai_data::sigmoid(prior + contribs.iter().sum::<f64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::metrics::accuracy;
    use xai_data::synth::linear_gaussian;

    #[test]
    fn separates_shifted_gaussians() {
        let data = linear_gaussian(1500, &[3.0, 0.0], 0.0, 13);
        let model = GaussianNb::fit(data.x(), data.y());
        let preds = Classifier::predict(&model, data.x());
        assert!(accuracy(data.y(), &preds) > 0.8);
    }

    #[test]
    fn contributions_sum_to_log_odds() {
        let data = linear_gaussian(300, &[1.0, -1.0], 0.2, 17);
        let model = GaussianNb::fit(data.x(), data.y());
        let x = data.row(4);
        let (prior, contribs) = model.log_odds_contributions(x);
        let log_odds = prior + contribs.iter().sum::<f64>();
        let p = model.proba_one(x);
        assert!((xai_data::sigmoid(log_odds) - p).abs() < 1e-12);
    }

    #[test]
    fn irrelevant_feature_contributes_little() {
        let data = linear_gaussian(4000, &[2.5, 0.0], 0.0, 19);
        let model = GaussianNb::fit(data.x(), data.y());
        let mut relevant = 0.0;
        let mut irrelevant = 0.0;
        for i in 0..200 {
            let (_, c) = model.log_odds_contributions(data.row(i));
            relevant += c[0].abs();
            irrelevant += c[1].abs();
        }
        assert!(relevant > 5.0 * irrelevant, "relevant {relevant} vs irrelevant {irrelevant}");
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_panics() {
        let x = Matrix::zeros(5, 2);
        GaussianNb::fit(&x, &[1.0; 5]);
    }
}
