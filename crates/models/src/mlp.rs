//! A small single-hidden-layer perceptron trained by mini-batch SGD.
//!
//! This is the workspace's stand-in for "deep models" (§2.4): it is
//! differentiable end-to-end and exposes `input_gradient`, which the
//! gradient/saliency attribution path (gradient × input) exercises. The
//! tutorial scopes itself to structured data, and so do we.

use crate::traits::{Classifier, Model, Regressor};
use xai_rand::rngs::StdRng;
use xai_rand::seq::SliceRandom;
use xai_rand::SeedableRng;
use xai_data::sigmoid;
use xai_linalg::distr::normal;
use xai_linalg::Matrix;

/// Output head of the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MlpTask {
    /// Sigmoid output trained with binary cross-entropy.
    Classification,
    /// Identity output trained with squared error.
    Regression,
}

/// Configuration for [`Mlp::fit`].
#[derive(Clone, Copy, Debug)]
pub struct MlpConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Output head.
    pub task: MlpTask,
    /// RNG seed for init and shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden: 16,
            epochs: 60,
            learning_rate: 0.05,
            batch_size: 32,
            task: MlpTask::Classification,
            seed: 0,
        }
    }
}

/// A fitted one-hidden-layer MLP with tanh activation.
#[derive(Clone, Debug)]
pub struct Mlp {
    /// Hidden weights, `hidden x d`.
    w1: Matrix,
    /// Hidden biases.
    b1: Vec<f64>,
    /// Output weights.
    w2: Vec<f64>,
    /// Output bias.
    b2: f64,
    task: MlpTask,
}

impl Mlp {
    /// Fallible twin of [`Mlp::fit`]: rejects non-finite training data up
    /// front and reports SGD divergence (non-finite weights after
    /// training, e.g. from an exploding learning rate) as
    /// [`xai_core::XaiError::ConvergenceFailure`] instead of handing back
    /// a NaN network.
    pub fn try_fit(x: &Matrix, y: &[f64], config: MlpConfig) -> xai_core::XaiResult<Self> {
        xai_core::validate::finite_matrix("mlp fit: design matrix", x)?;
        xai_core::validate::finite_slice("mlp fit: targets", y)?;
        let model = Self::fit(x, y, config);
        let finite = model.b2.is_finite()
            && model.b1.iter().all(|v| v.is_finite())
            && model.w2.iter().all(|v| v.is_finite())
            && (0..model.w1.rows()).all(|k| model.w1.row(k).iter().all(|v| v.is_finite()));
        if !finite {
            return Err(xai_core::XaiError::ConvergenceFailure {
                context: "mlp SGD diverged to non-finite weights".into(),
                iterations: config.epochs,
            });
        }
        Ok(model)
    }

    /// Trains the network.
    pub fn fit(x: &Matrix, y: &[f64], config: MlpConfig) -> Self {
        assert_eq!(x.rows(), y.len(), "row/target mismatch");
        assert!(config.hidden > 0 && config.epochs > 0 && config.batch_size > 0);
        let n = x.rows();
        let d = x.cols();
        let h = config.hidden;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let scale1 = (1.0 / d as f64).sqrt();
        let scale2 = (1.0 / h as f64).sqrt();
        let mut w1 = Matrix::from_fn(h, d, |_, _| normal(&mut rng, 0.0, scale1));
        let mut b1 = vec![0.0; h];
        let mut w2: Vec<f64> = (0..h).map(|_| normal(&mut rng, 0.0, scale2)).collect();
        let mut b2 = 0.0;

        let mut order: Vec<usize> = (0..n).collect();
        let mut hidden = vec![0.0; h];
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(config.batch_size) {
                let mut gw1 = Matrix::zeros(h, d);
                let mut gb1 = vec![0.0; h];
                let mut gw2 = vec![0.0; h];
                let mut gb2 = 0.0;
                for &i in batch {
                    let xi = x.row(i);
                    // Forward.
                    for (k, hv) in hidden.iter_mut().enumerate() {
                        *hv = (xai_linalg::dot(w1.row(k), xi) + b1[k]).tanh();
                    }
                    let raw = xai_linalg::dot(&w2, &hidden) + b2;
                    // dL/draw for both heads reduces to (pred − y).
                    let delta = match config.task {
                        MlpTask::Classification => sigmoid(raw) - y[i],
                        MlpTask::Regression => raw - y[i],
                    };
                    gb2 += delta;
                    for k in 0..h {
                        gw2[k] += delta * hidden[k];
                        let dh = delta * w2[k] * (1.0 - hidden[k] * hidden[k]);
                        gb1[k] += dh;
                        let grow = gw1.row_mut(k);
                        for (g, &xv) in grow.iter_mut().zip(xi) {
                            *g += dh * xv;
                        }
                    }
                }
                let step = config.learning_rate / batch.len() as f64;
                b2 -= step * gb2;
                for k in 0..h {
                    w2[k] -= step * gw2[k];
                    b1[k] -= step * gb1[k];
                    let wrow = w1.row_mut(k);
                    for (w, g) in wrow.iter_mut().zip(gw1.row(k)) {
                        *w -= step * g;
                    }
                }
            }
        }
        Self { w1, b1, w2, b2, task: config.task }
    }

    /// Raw (pre-head) output.
    pub fn raw(&self, x: &[f64]) -> f64 {
        let mut out = self.b2;
        for k in 0..self.w2.len() {
            out += self.w2[k] * (xai_linalg::dot(self.w1.row(k), x) + self.b1[k]).tanh();
        }
        out
    }

    /// Raw (pre-head) outputs for every row. The hidden pre-activations
    /// come from one blocked `X·W₁ᵀ` GEMM ([`xai_linalg::gemm_nt`], whose
    /// entries are bit-identical to the per-row dot products), and the
    /// output accumulation runs over hidden units in the same order as
    /// [`Mlp::raw`] — so each entry is bit-identical to the scalar path.
    pub fn raw_batch(&self, x: &Matrix) -> Vec<f64> {
        let hidden = xai_linalg::gemm_nt(x, &self.w1);
        (0..x.rows())
            .map(|i| {
                let hrow = hidden.row(i);
                let mut out = self.b2;
                for k in 0..self.w2.len() {
                    out += self.w2[k] * (hrow[k] + self.b1[k]).tanh();
                }
                out
            })
            .collect()
    }

    /// The output head the network was trained with.
    pub fn task(&self) -> MlpTask {
        self.task
    }

    /// Masked coalition raw outputs (zero-copy, DESIGN.md §12): one
    /// pre-head output per background row, reading `instance[k]` where bit
    /// `k` of `mask` is set and the background value otherwise. The hidden
    /// pre-activations come from [`xai_linalg::masked_gemm_nt`] into an
    /// arena-leased scratch matrix (bit-identical to the materialized
    /// `gemm_nt`), and the output accumulation runs over hidden units in
    /// the same order as [`Mlp::raw_batch`] — so each value is
    /// bit-identical to the copy-and-patch path.
    pub fn raw_masked_into(&self, instance: &[f64], background: &Matrix, mask: u64, out: &mut [f64]) {
        let b = background.rows();
        let h = self.w2.len();
        assert_eq!(out.len(), b, "raw_masked_into output length mismatch");
        xai_linalg::arena::with_scratch_matrix(b, h, |hidden| {
            xai_linalg::masked_gemm_nt(background, instance, mask, &self.w1, hidden);
            for (i, o) in out.iter_mut().enumerate() {
                let hrow = hidden.row(i);
                let mut s = self.b2;
                for k in 0..h {
                    s += self.w2[k] * (hrow[k] + self.b1[k]).tanh();
                }
                *o = s;
            }
        });
    }

    /// Gradient of the *model output* (probability or value) with respect to
    /// the input — the basis of saliency-style attributions.
    pub fn input_gradient(&self, x: &[f64]) -> Vec<f64> {
        let d = x.len();
        let mut grad_raw = vec![0.0; d];
        for k in 0..self.w2.len() {
            let a = (xai_linalg::dot(self.w1.row(k), x) + self.b1[k]).tanh();
            let scale = self.w2[k] * (1.0 - a * a);
            for (g, &w) in grad_raw.iter_mut().zip(self.w1.row(k)) {
                *g += scale * w;
            }
        }
        match self.task {
            MlpTask::Regression => grad_raw,
            MlpTask::Classification => {
                let p = sigmoid(self.raw(x));
                let scale = p * (1.0 - p);
                grad_raw.into_iter().map(|g| g * scale).collect()
            }
        }
    }
}

impl Model for Mlp {
    fn n_features(&self) -> usize {
        self.w1.cols()
    }
}

impl Regressor for Mlp {
    fn predict_one(&self, x: &[f64]) -> f64 {
        match self.task {
            MlpTask::Regression => self.raw(x),
            MlpTask::Classification => sigmoid(self.raw(x)),
        }
    }

    fn predict_batch(&self, x: &Matrix) -> Vec<f64> {
        let raws = self.raw_batch(x);
        match self.task {
            MlpTask::Regression => raws,
            MlpTask::Classification => raws.into_iter().map(sigmoid).collect(),
        }
    }
}

impl Classifier for Mlp {
    fn proba_one(&self, x: &[f64]) -> f64 {
        match self.task {
            MlpTask::Regression => self.raw(x).clamp(0.0, 1.0),
            MlpTask::Classification => sigmoid(self.raw(x)),
        }
    }

    fn proba_batch(&self, x: &Matrix) -> Vec<f64> {
        let raws = self.raw_batch(x);
        match self.task {
            MlpTask::Regression => raws.into_iter().map(|r| r.clamp(0.0, 1.0)).collect(),
            MlpTask::Classification => raws.into_iter().map(sigmoid).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::metrics::accuracy;
    use xai_data::synth::{circles, linear_gaussian};

    #[test]
    fn learns_nonlinear_rings() {
        let train = circles(600, 3, 0.1);
        let test = circles(300, 4, 0.1);
        let mlp = Mlp::fit(
            train.x(),
            train.y(),
            MlpConfig { hidden: 24, epochs: 150, learning_rate: 0.1, ..MlpConfig::default() },
        );
        let acc = accuracy(test.y(), &Classifier::predict(&mlp, test.x()));
        assert!(acc > 0.9, "ring accuracy {acc}");
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let data = linear_gaussian(300, &[1.0, -2.0, 0.5], 0.0, 9);
        let mlp = Mlp::fit(data.x(), data.y(), MlpConfig { epochs: 30, ..MlpConfig::default() });
        let x = data.row(0).to_vec();
        let grad = mlp.input_gradient(&x);
        let eps = 1e-6;
        for j in 0..x.len() {
            let mut xp = x.clone();
            xp[j] += eps;
            let mut xm = x.clone();
            xm[j] -= eps;
            let fd = (mlp.proba_one(&xp) - mlp.proba_one(&xm)) / (2.0 * eps);
            assert!((grad[j] - fd).abs() < 1e-5, "grad[{j}] {} vs fd {fd}", grad[j]);
        }
    }

    #[test]
    fn gradient_tracks_relevance() {
        // Only feature 0 matters; its gradient magnitude should dominate.
        let data = linear_gaussian(3000, &[3.0, 0.0], 0.0, 10);
        let mlp = Mlp::fit(data.x(), data.y(), MlpConfig { epochs: 80, ..MlpConfig::default() });
        let mut g0 = 0.0;
        let mut g1 = 0.0;
        for i in 0..100 {
            let g = mlp.input_gradient(data.row(i));
            g0 += g[0].abs();
            g1 += g[1].abs();
        }
        assert!(g0 > 3.0 * g1, "relevant {g0} vs irrelevant {g1}");
    }

    #[test]
    fn deterministic_under_seed() {
        let data = circles(200, 12, 0.2);
        let cfg = MlpConfig { epochs: 10, seed: 5, ..MlpConfig::default() };
        let m1 = Mlp::fit(data.x(), data.y(), cfg);
        let m2 = Mlp::fit(data.x(), data.y(), cfg);
        assert_eq!(m1.proba(data.x()), m2.proba(data.x()));
    }

    #[test]
    fn try_fit_rejects_poisoned_data_and_divergence() {
        let data = linear_gaussian(100, &[1.0, -1.0], 0.0, 3);
        let cfg = MlpConfig { epochs: 5, ..MlpConfig::default() };
        assert!(Mlp::try_fit(data.x(), data.y(), cfg).is_ok());
        let mut bad = data.x().clone();
        bad[(0, 0)] = f64::INFINITY;
        assert!(matches!(
            Mlp::try_fit(&bad, data.y(), cfg),
            Err(xai_core::XaiError::NonFiniteInput { .. })
        ));
        // An absurd learning rate on a regression head explodes tanh-free
        // output weights to non-finite values.
        let x = Matrix::from_fn(50, 1, |i, _| i as f64);
        let y: Vec<f64> = (0..50).map(|i| 1e6 * i as f64).collect();
        let diverging = MlpConfig {
            task: MlpTask::Regression,
            learning_rate: 1e12,
            epochs: 50,
            hidden: 4,
            ..MlpConfig::default()
        };
        assert!(matches!(
            Mlp::try_fit(&x, &y, diverging),
            Err(xai_core::XaiError::ConvergenceFailure { .. })
        ));
    }

    #[test]
    fn regression_head() {
        // y = 2 x0 (deterministic); MLP should fit closely.
        let x = Matrix::from_fn(200, 1, |i, _| (i as f64 / 100.0) - 1.0);
        let y: Vec<f64> = x.iter_rows().map(|r| 2.0 * r[0]).collect();
        let mlp = Mlp::fit(
            &x,
            &y,
            MlpConfig {
                task: MlpTask::Regression,
                epochs: 300,
                learning_rate: 0.05,
                hidden: 8,
                ..MlpConfig::default()
            },
        );
        let pred = Regressor::predict_one(&mlp, &[0.5]);
        assert!((pred - 1.0).abs() < 0.2, "pred {pred}");
    }
}
