//! Model persistence: JSON save/load for the workspace's model families.
//!
//! Explanations are only auditable if the *model that produced them* can
//! be stored alongside. This module serializes the parametric models and
//! tree ensembles to the workspace's own JSON (`xai-core::report::Json`)
//! and restores them bit-exactly (same predictions on every input) — the
//! round-trip property the tests assert.

use crate::gbdt::{Gbdt, GbdtLoss};
use crate::linear::LinearRegression;
use crate::logistic::LogisticRegression;
use crate::tree::{DecisionTree, SplitCriterion, TreeNode};
use xai_core::report::Json;

/// Persistence errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PersistError(pub String);

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model persistence error: {}", self.0)
    }
}

impl std::error::Error for PersistError {}

impl From<PersistError> for xai_core::XaiError {
    fn from(e: PersistError) -> Self {
        xai_core::XaiError::Parse { context: e.to_string() }
    }
}

/// Saves a model to a JSON file, propagating I/O failures as
/// [`xai_core::XaiError::Io`].
pub fn save_to_file<M: Persist>(
    model: &M,
    path: impl AsRef<std::path::Path>,
) -> xai_core::XaiResult<()> {
    let path = path.as_ref();
    std::fs::write(path, model.save().to_json())
        .map_err(|e| xai_core::XaiError::from_io(&e, path.display()))
}

/// Loads a model from a JSON file. A missing file comes back as
/// [`xai_core::XaiError::Io`]; a truncated or malformed document as
/// [`xai_core::XaiError::Parse`] — never a process abort.
pub fn load_from_file<M: Persist>(path: impl AsRef<std::path::Path>) -> xai_core::XaiResult<M> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| xai_core::XaiError::from_io(&e, path.display()))?;
    let json = xai_core::parse_json(&text)?;
    Ok(M::load(&json)?)
}

/// The model's canonical persisted byte representation: the compact JSON
/// text of [`Persist::save`]. Two models with identical parameters
/// produce identical bytes; these are the bytes the serving layer hashes
/// into a model fingerprint.
pub fn persisted_bytes<M: Persist>(model: &M) -> Vec<u8> {
    model.save().to_json().into_bytes()
}

/// FNV-1a fingerprint of [`persisted_bytes`], as used by
/// `xai_core::serve` result-cache keys: replacing a registered model
/// changes the fingerprint, which unreachably strands every cached
/// result of the old version.
pub fn model_fingerprint<M: Persist>(model: &M) -> u64 {
    xai_core::serve::fingerprint_bytes(&persisted_bytes(model))
}

fn field<'a>(j: &'a Json, key: &str) -> Result<&'a Json, PersistError> {
    j.get(key).ok_or_else(|| PersistError(format!("missing field '{key}'")))
}

fn num(j: &Json, key: &str) -> Result<f64, PersistError> {
    field(j, key)?
        .as_num()
        .ok_or_else(|| PersistError(format!("field '{key}' is not a number")))
}

fn nums(j: &Json, key: &str) -> Result<Vec<f64>, PersistError> {
    field(j, key)?
        .as_arr()
        .ok_or_else(|| PersistError(format!("field '{key}' is not an array")))?
        .iter()
        .map(|v| v.as_num().ok_or_else(|| PersistError(format!("non-number in '{key}'"))))
        .collect()
}

/// Serializable surface for models.
pub trait Persist: Sized {
    /// Renders the model as JSON.
    fn save(&self) -> Json;
    /// Restores a model from JSON.
    fn load(json: &Json) -> Result<Self, PersistError>;
}

impl Persist for LinearRegression {
    fn save(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::str("linear_regression")),
            ("intercept", Json::Num(self.intercept())),
            ("coef", Json::nums(self.coef())),
        ])
    }

    fn load(json: &Json) -> Result<Self, PersistError> {
        if field(json, "kind")?.as_str() != Some("linear_regression") {
            return Err(PersistError("kind mismatch: expected linear_regression".into()));
        }
        Ok(LinearRegression::from_parameters(num(json, "intercept")?, nums(json, "coef")?))
    }
}

impl Persist for LogisticRegression {
    fn save(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::str("logistic_regression")),
            ("intercept", Json::Num(self.intercept())),
            ("coef", Json::nums(self.coef())),
            ("l2", Json::Num(self.l2())),
        ])
    }

    fn load(json: &Json) -> Result<Self, PersistError> {
        if field(json, "kind")?.as_str() != Some("logistic_regression") {
            return Err(PersistError("kind mismatch: expected logistic_regression".into()));
        }
        Ok(LogisticRegression::from_parameters(
            num(json, "intercept")?,
            &nums(json, "coef")?,
            num(json, "l2")?,
        ))
    }
}

fn node_to_json(n: &TreeNode) -> Json {
    Json::obj(vec![
        ("feature", Json::Num(n.feature as f64)),
        ("threshold", Json::Num(n.threshold)),
        ("left", n.left.map_or(Json::Null, |l| Json::Num(l as f64))),
        ("right", n.right.map_or(Json::Null, |r| Json::Num(r as f64))),
        ("value", Json::Num(n.value)),
        ("cover", Json::Num(n.cover)),
    ])
}

fn node_from_json(j: &Json) -> Result<TreeNode, PersistError> {
    let opt_idx = |key: &str| -> Result<Option<usize>, PersistError> {
        match field(j, key)? {
            Json::Null => Ok(None),
            v => Ok(Some(v.as_num().ok_or_else(|| PersistError(format!("bad '{key}'")))? as usize)),
        }
    };
    Ok(TreeNode {
        feature: num(j, "feature")? as usize,
        threshold: num(j, "threshold")?,
        left: opt_idx("left")?,
        right: opt_idx("right")?,
        value: num(j, "value")?,
        cover: num(j, "cover")?,
    })
}

impl Persist for DecisionTree {
    fn save(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::str("decision_tree")),
            ("n_features", Json::Num(crate::traits::Model::n_features(self) as f64)),
            (
                "criterion",
                Json::str(match self.criterion() {
                    SplitCriterion::Gini => "gini",
                    SplitCriterion::Variance => "variance",
                }),
            ),
            ("nodes", Json::Arr(self.nodes().iter().map(node_to_json).collect())),
        ])
    }

    fn load(json: &Json) -> Result<Self, PersistError> {
        if field(json, "kind")?.as_str() != Some("decision_tree") {
            return Err(PersistError("kind mismatch: expected decision_tree".into()));
        }
        let criterion = match field(json, "criterion")?.as_str() {
            Some("gini") => SplitCriterion::Gini,
            Some("variance") => SplitCriterion::Variance,
            other => return Err(PersistError(format!("bad criterion {other:?}"))),
        };
        let nodes = field(json, "nodes")?
            .as_arr()
            .ok_or_else(|| PersistError("'nodes' is not an array".into()))?
            .iter()
            .map(node_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        if nodes.is_empty() {
            return Err(PersistError("tree has no nodes".into()));
        }
        // Validate child indices before constructing.
        for (i, n) in nodes.iter().enumerate() {
            for child in [n.left, n.right].into_iter().flatten() {
                if child >= nodes.len() || child == i {
                    return Err(PersistError(format!("node {i} has invalid child {child}")));
                }
            }
        }
        Ok(DecisionTree::from_parts(
            nodes,
            num(json, "n_features")? as usize,
            criterion,
        ))
    }
}

impl Persist for Gbdt {
    fn save(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::str("gbdt")),
            ("base_score", Json::Num(self.base_score())),
            ("learning_rate", Json::Num(self.learning_rate())),
            (
                "loss",
                Json::str(match self.loss() {
                    GbdtLoss::Squared => "squared",
                    GbdtLoss::Logistic => "logistic",
                }),
            ),
            ("n_features", Json::Num(crate::traits::Model::n_features(self) as f64)),
            ("trees", Json::Arr(self.trees().iter().map(Persist::save).collect())),
        ])
    }

    fn load(json: &Json) -> Result<Self, PersistError> {
        if field(json, "kind")?.as_str() != Some("gbdt") {
            return Err(PersistError("kind mismatch: expected gbdt".into()));
        }
        let loss = match field(json, "loss")?.as_str() {
            Some("squared") => GbdtLoss::Squared,
            Some("logistic") => GbdtLoss::Logistic,
            other => return Err(PersistError(format!("bad loss {other:?}"))),
        };
        let trees = field(json, "trees")?
            .as_arr()
            .ok_or_else(|| PersistError("'trees' is not an array".into()))?
            .iter()
            .map(DecisionTree::load)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Gbdt::from_parts(
            num(json, "base_score")?,
            num(json, "learning_rate")?,
            trees,
            loss,
            num(json, "n_features")? as usize,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{Classifier, Regressor};
    use crate::{GbdtConfig, LinearConfig, LogisticConfig, TreeConfig};
    use xai_core::parse_json;
    use xai_data::synth::{friedman1, german_credit};

    #[test]
    fn linear_roundtrip_through_text() {
        let data = friedman1(200, 3, 0.2);
        let m = LinearRegression::fit(data.x(), data.y(), LinearConfig::default()).unwrap();
        let text = m.save().to_json();
        let restored = LinearRegression::load(&parse_json(&text).unwrap()).unwrap();
        for i in 0..20 {
            assert_eq!(m.predict_one(data.row(i)), restored.predict_one(data.row(i)));
        }
    }

    #[test]
    fn logistic_roundtrip() {
        let data = german_credit(300, 5);
        let m = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let restored =
            LogisticRegression::load(&parse_json(&m.save().to_json()).unwrap()).unwrap();
        for i in 0..20 {
            assert_eq!(m.proba_one(data.row(i)), restored.proba_one(data.row(i)));
        }
        assert_eq!(m.l2(), restored.l2());
    }

    #[test]
    fn tree_roundtrip_preserves_structure_and_predictions() {
        let data = german_credit(400, 7);
        let tree = DecisionTree::fit(data.x(), data.y(), TreeConfig { max_depth: 6, ..TreeConfig::default() });
        let restored = DecisionTree::load(&parse_json(&tree.save().to_json()).unwrap()).unwrap();
        assert_eq!(tree.nodes().len(), restored.nodes().len());
        assert_eq!(tree.n_leaves(), restored.n_leaves());
        for i in 0..data.n_rows() {
            assert_eq!(tree.predict_value(data.row(i)), restored.predict_value(data.row(i)));
            assert_eq!(tree.leaf_of(data.row(i)), restored.leaf_of(data.row(i)));
        }
    }

    #[test]
    fn gbdt_roundtrip_and_treeshap_still_works() {
        let data = german_credit(300, 9);
        let m = Gbdt::fit(data.x(), data.y(), GbdtConfig { n_rounds: 15, ..GbdtConfig::default() });
        let restored = Gbdt::load(&parse_json(&m.save().to_json()).unwrap()).unwrap();
        for i in 0..30 {
            assert_eq!(m.margin(data.row(i)), restored.margin(data.row(i)));
        }
        assert_eq!(m.base_score(), restored.base_score());
        assert_eq!(m.loss(), restored.loss());
    }

    #[test]
    fn file_roundtrip_and_truncation_are_typed_errors() {
        let data = friedman1(100, 3, 0.2);
        let m = LinearRegression::fit(data.x(), data.y(), LinearConfig::default()).unwrap();
        let path = std::env::temp_dir().join("xai_persist_test_model.json");
        save_to_file(&m, &path).unwrap();
        let restored: LinearRegression = load_from_file(&path).unwrap();
        assert_eq!(m.predict_one(data.row(0)), restored.predict_one(data.row(0)));

        // Truncate the file mid-document: Parse error, not a panic.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        let err = load_from_file::<LinearRegression>(&path).unwrap_err();
        assert!(matches!(err, xai_core::XaiError::Parse { .. }), "{err}");

        let _ = std::fs::remove_file(&path);
        let err = load_from_file::<LinearRegression>(&path).unwrap_err();
        assert!(matches!(err, xai_core::XaiError::Io { .. }), "{err}");
    }

    #[test]
    fn corrupted_documents_are_rejected() {
        assert!(LinearRegression::load(&parse_json("{}").unwrap()).is_err());
        let wrong_kind = parse_json(r#"{"kind":"gbdt"}"#).unwrap();
        assert!(LinearRegression::load(&wrong_kind).is_err());
        // Tree with out-of-range child index.
        let bad = parse_json(
            r#"{"kind":"decision_tree","n_features":2,"criterion":"gini",
                "nodes":[{"feature":0,"threshold":0.5,"left":7,"right":null,"value":0.5,"cover":1}]}"#,
        )
        .unwrap();
        assert!(DecisionTree::load(&bad).is_err());
    }
}
