//! L2-regularized logistic regression fitted by damped Newton iterations.
//!
//! This model is deliberately "white-box complete": besides prediction it
//! exposes its per-example loss gradients and its Hessian, which is exactly
//! the access influence functions (§2.3.2, Koh & Liang) and PrIU-style
//! incremental updates (§3) require.
//!
//! Objective (average-loss convention):
//! `L(w) = (1/n) Σᵢ sᵢ · ℓ(w; xᵢ, yᵢ) + (λ/2)‖w‖²`,
//! where `ℓ` is the binary cross-entropy and `sᵢ` optional sample weights.

use crate::traits::{Classifier, Model};
use xai_core::{validate, XaiError, XaiResult};
use xai_data::sigmoid;
use xai_linalg::{dot, solve_spd, Matrix};

/// Configuration for [`LogisticRegression::fit`].
#[derive(Clone, Copy, Debug)]
pub struct LogisticConfig {
    /// L2 penalty λ applied to every weight (including the intercept, which
    /// keeps the Hessian uniformly positive-definite — the property the
    /// influence-function math relies on).
    pub l2: f64,
    /// Maximum Newton iterations.
    pub max_iter: usize,
    /// Convergence threshold on the gradient's infinity norm.
    pub tol: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self { l2: 1e-3, max_iter: 50, tol: 1e-8 }
    }
}

/// A fitted logistic-regression model.
#[derive(Clone, Debug)]
pub struct LogisticRegression {
    /// Weight vector in augmented space: index 0 is the intercept.
    w: Vec<f64>,
    /// The λ used at fit time (needed to reproduce gradients/Hessians).
    l2: f64,
    /// Newton iterations actually performed.
    iterations: usize,
    /// Whether the gradient tolerance was reached.
    converged: bool,
}

fn augment(x: &[f64]) -> Vec<f64> {
    let mut v = Vec::with_capacity(x.len() + 1);
    v.push(1.0);
    v.extend_from_slice(x);
    v
}

impl LogisticRegression {
    /// Fits on a feature matrix and 0/1 targets with unit sample weights.
    pub fn fit(x: &Matrix, y: &[f64], config: LogisticConfig) -> Self {
        Self::fit_weighted(x, y, &vec![1.0; y.len()], config)
    }

    /// Fits with non-negative per-sample weights. Zero-weight examples are
    /// exactly equivalent to removal — the property leave-one-out and
    /// Data-Shapley methods exploit.
    pub fn fit_weighted(x: &Matrix, y: &[f64], sample_weights: &[f64], config: LogisticConfig) -> Self {
        let cold = vec![0.0; x.cols() + 1];
        Self::fit_weighted_warm(x, y, sample_weights, config, &cold)
    }

    /// **Warm-start** fit: seeds Newton from `init` (augmented space,
    /// intercept first) instead of from zero. The objective is strictly
    /// convex, so the optimum reached is the same; what changes is the
    /// iteration count — from a nearby optimum (one row added or removed)
    /// Newton converges in 1–2 steps instead of the usual 6–8. This is the
    /// logistic half of the incremental-training engine (§3: PrIU [77],
    /// HedgeCut [59]); the ridge half lives in `xai-linalg`'s rank-one
    /// Cholesky kernels.
    pub fn fit_warm(x: &Matrix, y: &[f64], config: LogisticConfig, init: &[f64]) -> Self {
        Self::fit_weighted_warm(x, y, &vec![1.0; y.len()], config, init)
    }

    /// Warm-start fit with per-sample weights (see [`Self::fit_warm`]).
    pub fn fit_weighted_warm(
        x: &Matrix,
        y: &[f64],
        sample_weights: &[f64],
        config: LogisticConfig,
        init: &[f64],
    ) -> Self {
        Self::newton_fit(x, y, sample_weights, config, init)
            .expect("Hessian is PD for l2 > 0")
    }

    /// Fallible twin of [`Self::fit`]: rejects non-finite inputs up front,
    /// reports a singular Hessian as [`XaiError::SingularSystem`] and a
    /// fit that exhausts `max_iter` without meeting the gradient tolerance
    /// as [`XaiError::ConvergenceFailure`] — never a silent garbage model.
    pub fn try_fit(x: &Matrix, y: &[f64], config: LogisticConfig) -> XaiResult<Self> {
        Self::try_fit_weighted(x, y, &vec![1.0; y.len()], config)
    }

    /// Fallible twin of [`Self::fit_weighted`]; see [`Self::try_fit`].
    pub fn try_fit_weighted(
        x: &Matrix,
        y: &[f64],
        sample_weights: &[f64],
        config: LogisticConfig,
    ) -> XaiResult<Self> {
        let cold = vec![0.0; x.cols() + 1];
        Self::try_fit_weighted_warm(x, y, sample_weights, config, &cold)
    }

    /// Fallible twin of [`Self::fit_warm`]; see [`Self::try_fit`].
    pub fn try_fit_warm(
        x: &Matrix,
        y: &[f64],
        config: LogisticConfig,
        init: &[f64],
    ) -> XaiResult<Self> {
        Self::try_fit_weighted_warm(x, y, &vec![1.0; y.len()], config, init)
    }

    /// Fallible twin of [`Self::fit_weighted_warm`]; see [`Self::try_fit`].
    pub fn try_fit_weighted_warm(
        x: &Matrix,
        y: &[f64],
        sample_weights: &[f64],
        config: LogisticConfig,
        init: &[f64],
    ) -> XaiResult<Self> {
        validate::finite_matrix("logistic fit: design matrix", x)?;
        validate::finite_slice("logistic fit: targets", y)?;
        validate::finite_slice("logistic fit: sample weights", sample_weights)?;
        validate::finite_slice("logistic fit: warm-start weights", init)?;
        let model = Self::newton_fit(x, y, sample_weights, config, init)?;
        if !model.converged {
            return Err(XaiError::ConvergenceFailure {
                context: "logistic Newton fit missed the gradient tolerance".into(),
                iterations: model.iterations,
            });
        }
        Ok(model)
    }

    /// The damped-Newton loop shared by the panicking and `try_` fits.
    fn newton_fit(
        x: &Matrix,
        y: &[f64],
        sample_weights: &[f64],
        config: LogisticConfig,
        init: &[f64],
    ) -> XaiResult<Self> {
        assert_eq!(x.rows(), y.len(), "row/target mismatch");
        assert_eq!(x.rows(), sample_weights.len(), "row/weight mismatch");
        assert!(config.l2 > 0.0, "l2 must be positive for a strictly convex objective");
        let d = x.cols() + 1;
        assert_eq!(init.len(), d, "warm-start weights must be augmented (intercept first)");
        let n_eff: f64 = sample_weights.iter().sum();
        assert!(n_eff > 0.0, "all sample weights are zero");
        let mut w = init.to_vec();
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..config.max_iter {
            iterations += 1;
            // Gradient and Hessian of the averaged weighted loss.
            let mut grad = vec![0.0; d];
            let mut hess = Matrix::zeros(d, d);
            for ((row, &yi), &si) in x.iter_rows().zip(y).zip(sample_weights) {
                if si == 0.0 {
                    continue;
                }
                let xi = augment(row);
                let p = sigmoid(dot(&w, &xi));
                let g = si * (p - yi);
                let h = si * p * (1.0 - p);
                for (k, &xk) in xi.iter().enumerate() {
                    grad[k] += g * xk;
                    if h * xk != 0.0 {
                        let hrow = hess.row_mut(k);
                        for (hv, &xj) in hrow.iter_mut().zip(&xi) {
                            *hv += h * xk * xj;
                        }
                    }
                }
            }
            for k in 0..d {
                grad[k] = grad[k] / n_eff + config.l2 * w[k];
            }
            hess.scale_mut(1.0 / n_eff);
            hess.add_diag_mut(config.l2);

            let ginf = grad.iter().fold(0.0f64, |a, g| a.max(g.abs()));
            if ginf < config.tol {
                converged = true;
                break;
            }
            let step = solve_spd(&hess, &grad, 0.0).map_err(XaiError::from)?;
            // Damped update: halve until the step is finite and bounded.
            let mut alpha = 1.0;
            loop {
                let cand: Vec<f64> = w.iter().zip(&step).map(|(wi, s)| wi - alpha * s).collect();
                if cand.iter().all(|v| v.is_finite()) {
                    w = cand;
                    break;
                }
                alpha *= 0.5;
                if alpha < 1e-8 {
                    break;
                }
            }
        }
        Ok(Self { w, l2: config.l2, iterations, converged })
    }

    /// Builds a model from explicit parameters (intercept first).
    pub fn from_parameters(intercept: f64, coef: &[f64], l2: f64) -> Self {
        let mut w = vec![intercept];
        w.extend_from_slice(coef);
        Self { w, l2, iterations: 0, converged: true }
    }

    /// The intercept.
    pub fn intercept(&self) -> f64 {
        self.w[0]
    }

    /// The feature coefficients.
    pub fn coef(&self) -> &[f64] {
        &self.w[1..]
    }

    /// Full parameter vector in augmented space (intercept first).
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// λ used at fit time.
    pub fn l2(&self) -> f64 {
        self.l2
    }

    /// Newton iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether fitting converged to tolerance.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Decision margin `w · [1, x]`.
    pub fn margin(&self, x: &[f64]) -> f64 {
        dot(&self.w, &augment(x))
    }

    /// Margins for every row in one blocked pass, with no per-row
    /// [`augment`] allocation. The scalar margin accumulates the intercept
    /// *first* (`w[0]·1` is the leading term of the augmented dot), so this
    /// uses the bias-first [`xai_linalg::affine_fold`] kernel and is
    /// bit-identical to [`LogisticRegression::margin`] per row.
    pub fn margin_batch(&self, x: &Matrix) -> Vec<f64> {
        xai_linalg::affine_fold(x, &self.w[1..], self.w[0])
    }

    /// Masked coalition margins (zero-copy, DESIGN.md §12): one margin per
    /// background row, reading `instance[k]` where bit `k` of `mask` is
    /// set and the background value otherwise. Uses the bias-first
    /// [`xai_linalg::masked_affine_fold`] kernel, so each margin is
    /// bit-identical to [`LogisticRegression::margin`] over the
    /// materialized coalition view.
    pub fn margin_masked_into(
        &self,
        instance: &[f64],
        background: &Matrix,
        mask: u64,
        out: &mut [f64],
    ) {
        xai_linalg::masked_affine_fold(background, instance, mask, &self.w[1..], self.w[0], out);
    }

    /// Whole-round twin of [`Self::margin_masked_into`]: one
    /// `background.rows()`-length margin block per mask, coalition-major,
    /// through [`xai_linalg::masked_affine_fold_many`] — bit-identical to
    /// the per-mask calls, with the weighted products hoisted out of the
    /// round. This is the Kernel SHAP hot path for logistic oracles.
    pub fn margin_masked_many_into(
        &self,
        instance: &[f64],
        background: &Matrix,
        masks: &[u64],
        out: &mut [f64],
    ) {
        xai_linalg::masked_affine_fold_many(
            background,
            instance,
            masks,
            &self.w[1..],
            self.w[0],
            out,
        );
    }

    /// Per-example loss `ℓ(w; x, y)` (no regularization term).
    pub fn example_loss(&self, x: &[f64], y: f64) -> f64 {
        let p = self.proba_one(x).clamp(1e-12, 1.0 - 1e-12);
        -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
    }

    /// Per-example loss gradient `∇_w ℓ(w; x, y) = (p − y)·[1, x]` in
    /// augmented space. The building block of influence functions.
    pub fn example_grad(&self, x: &[f64], y: f64) -> Vec<f64> {
        let xi = augment(x);
        let p = sigmoid(dot(&self.w, &xi));
        xi.iter().map(|&v| (p - y) * v).collect()
    }

    /// Hessian of the *total* objective at the current parameters:
    /// `(1/n) Σᵢ pᵢ(1−pᵢ) x̃ᵢx̃ᵢᵀ + λI`. Positive-definite for λ > 0.
    pub fn hessian(&self, x: &Matrix, _y: &[f64]) -> Matrix {
        let d = self.w.len();
        let mut hess = Matrix::zeros(d, d);
        for row in x.iter_rows() {
            let xi = augment(row);
            let p = sigmoid(dot(&self.w, &xi));
            let h = p * (1.0 - p);
            for (k, &xk) in xi.iter().enumerate() {
                if h * xk == 0.0 {
                    continue;
                }
                let hrow = hess.row_mut(k);
                for (hv, &xj) in hrow.iter_mut().zip(&xi) {
                    *hv += h * xk * xj;
                }
            }
        }
        hess.scale_mut(1.0 / x.rows() as f64);
        hess.add_diag_mut(self.l2);
        hess
    }

    /// Hessian–vector product without materializing the Hessian, for
    /// conjugate-gradient influence computations on wide models.
    pub fn hessian_vec_product(&self, x: &Matrix, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.w.len());
        let mut out = vec![0.0; v.len()];
        for row in x.iter_rows() {
            let xi = augment(row);
            let p = sigmoid(dot(&self.w, &xi));
            let h = p * (1.0 - p);
            let xv = dot(&xi, v);
            let scale = h * xv;
            for (o, &xk) in out.iter_mut().zip(&xi) {
                *o += scale * xk;
            }
        }
        let n = x.rows() as f64;
        for (o, &vi) in out.iter_mut().zip(v) {
            *o = *o / n + self.l2 * vi;
        }
        out
    }
}

impl Model for LogisticRegression {
    fn n_features(&self) -> usize {
        self.w.len() - 1
    }
}

impl Classifier for LogisticRegression {
    fn proba_one(&self, x: &[f64]) -> f64 {
        sigmoid(self.margin(x))
    }

    fn proba_batch(&self, x: &Matrix) -> Vec<f64> {
        self.margin_batch(x).into_iter().map(sigmoid).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::metrics::{accuracy, auc_roc};
    use xai_data::synth::linear_gaussian;
    use xai_linalg::vsub;

    fn fitted() -> (LogisticRegression, xai_data::Dataset) {
        let data = linear_gaussian(2000, &[2.0, -1.0, 0.0], 0.5, 42);
        let m = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        (m, data)
    }

    #[test]
    fn recovers_generating_weights() {
        let (m, _) = fitted();
        assert!(m.converged());
        // Signs and rough magnitudes of the data-generating mechanism.
        assert!(m.coef()[0] > 1.5, "w0 = {}", m.coef()[0]);
        assert!(m.coef()[1] < -0.6, "w1 = {}", m.coef()[1]);
        assert!(m.coef()[2].abs() < 0.2, "w2 = {}", m.coef()[2]);
        assert!(m.intercept() > 0.1);
    }

    #[test]
    fn predictive_performance() {
        let (m, data) = fitted();
        let probs = m.proba(data.x());
        // Labels are Bernoulli draws from the true probabilities, so even the
        // Bayes-optimal scorer cannot reach AUC 1; ~0.87 is the ceiling here.
        assert!(auc_roc(data.y(), &probs) > 0.82);
        let preds = Classifier::predict(&m, data.x());
        assert!(accuracy(data.y(), &preds) > 0.8);
    }

    #[test]
    fn zero_weight_equals_removal() {
        let data = linear_gaussian(200, &[1.0, -2.0], 0.0, 7);
        let config = LogisticConfig::default();
        let mut weights = vec![1.0; 200];
        for i in 0..10 {
            weights[i] = 0.0;
        }
        let weighted = LogisticRegression::fit_weighted(data.x(), data.y(), &weights, config);
        let removed_idx: Vec<usize> = (10..200).collect();
        let reduced = data.subset(&removed_idx);
        let refit = LogisticRegression::fit(reduced.x(), reduced.y(), config);
        let diff = vsub(weighted.weights(), refit.weights());
        assert!(diff.iter().all(|d| d.abs() < 1e-6), "{diff:?}");
    }

    #[test]
    fn gradient_is_zero_at_optimum() {
        let (m, data) = fitted();
        let d = m.weights().len();
        let mut total = vec![0.0; d];
        for i in 0..data.n_rows() {
            let g = m.example_grad(data.row(i), data.y()[i]);
            for (t, gi) in total.iter_mut().zip(&g) {
                *t += gi;
            }
        }
        for (k, t) in total.iter_mut().enumerate() {
            *t = *t / data.n_rows() as f64 + m.l2() * m.weights()[k];
        }
        assert!(total.iter().all(|g| g.abs() < 1e-6), "stationarity violated: {total:?}");
    }

    #[test]
    fn hessian_matches_finite_differences() {
        let data = linear_gaussian(300, &[1.0, 0.5], -0.2, 3);
        let m = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let h = m.hessian(data.x(), data.y());
        // Finite-difference the averaged gradient along coordinate 1.
        let eps = 1e-5;
        let grad_at = |w: &[f64]| -> Vec<f64> {
            let probe = LogisticRegression {
                w: w.to_vec(),
                l2: m.l2(),
                iterations: 0,
                converged: true,
            };
            let d = w.len();
            let mut g = vec![0.0; d];
            for i in 0..data.n_rows() {
                let gi = probe.example_grad(data.row(i), data.y()[i]);
                for (a, b) in g.iter_mut().zip(&gi) {
                    *a += b;
                }
            }
            for (k, a) in g.iter_mut().enumerate() {
                *a = *a / data.n_rows() as f64 + m.l2() * w[k];
            }
            g
        };
        let mut wp = m.weights().to_vec();
        wp[1] += eps;
        let mut wm = m.weights().to_vec();
        wm[1] -= eps;
        let fd: Vec<f64> = vsub(&grad_at(&wp), &grad_at(&wm)).iter().map(|v| v / (2.0 * eps)).collect();
        for k in 0..wp.len() {
            assert!((fd[k] - h[(k, 1)]).abs() < 1e-5, "H[{k},1]: fd {} vs {}", fd[k], h[(k, 1)]);
        }
    }

    #[test]
    fn hvp_matches_explicit_hessian() {
        let (m, data) = fitted();
        let h = m.hessian(data.x(), data.y());
        let v: Vec<f64> = (0..m.weights().len()).map(|i| (i as f64 * 0.7).sin()).collect();
        let hv1 = m.hessian_vec_product(data.x(), &v);
        let hv2 = h.matvec(&v);
        for (a, b) in hv1.iter().zip(&hv2) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn warm_start_reaches_the_same_optimum_faster() {
        let data = linear_gaussian(400, &[2.0, -1.0], 0.0, 17);
        let config = LogisticConfig { l2: 1e-2, ..LogisticConfig::default() };
        let cold = LogisticRegression::fit(data.x(), data.y(), config);
        // Remove one row; warm-start the reduced fit from the full optimum.
        let keep: Vec<usize> = (1..400).collect();
        let reduced = data.subset(&keep);
        let cold_reduced = LogisticRegression::fit(reduced.x(), reduced.y(), config);
        let warm_reduced =
            LogisticRegression::fit_warm(reduced.x(), reduced.y(), config, cold.weights());
        assert!(warm_reduced.converged());
        let diff = vsub(warm_reduced.weights(), cold_reduced.weights());
        assert!(diff.iter().all(|d| d.abs() < 1e-8), "optima diverged: {diff:?}");
        assert!(
            warm_reduced.iterations() < cold_reduced.iterations(),
            "warm start must save Newton iterations: {} vs {}",
            warm_reduced.iterations(),
            cold_reduced.iterations()
        );
    }

    #[test]
    fn warm_start_from_zero_is_bit_identical_to_cold_fit() {
        let data = linear_gaussian(150, &[1.0, 0.5], 0.2, 23);
        let config = LogisticConfig::default();
        let cold = LogisticRegression::fit(data.x(), data.y(), config);
        let warm = LogisticRegression::fit_warm(data.x(), data.y(), config, &[0.0; 3]);
        assert_eq!(cold.weights(), warm.weights());
        assert_eq!(cold.iterations(), warm.iterations());
    }

    #[test]
    fn try_fit_matches_fit_and_types_failures() {
        let data = linear_gaussian(200, &[1.0, -2.0], 0.0, 7);
        let config = LogisticConfig::default();
        let plain = LogisticRegression::fit(data.x(), data.y(), config);
        let tried = LogisticRegression::try_fit(data.x(), data.y(), config).expect("clean fit");
        assert_eq!(plain.weights(), tried.weights());

        // NaN feature → NonFiniteInput.
        let mut bad = data.x().clone();
        bad[(3, 1)] = f64::NAN;
        let err = LogisticRegression::try_fit(&bad, data.y(), config).unwrap_err();
        assert!(matches!(err, xai_core::XaiError::NonFiniteInput { .. }), "{err}");

        // One iteration cannot meet the tolerance → certified non-convergence.
        let starved = LogisticConfig { max_iter: 1, ..config };
        let err = LogisticRegression::try_fit(data.x(), data.y(), starved).unwrap_err();
        assert!(
            matches!(err, xai_core::XaiError::ConvergenceFailure { iterations: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn from_parameters_predicts() {
        let m = LogisticRegression::from_parameters(0.0, &[10.0], 1e-3);
        assert!(m.proba_one(&[1.0]) > 0.99);
        assert!(m.proba_one(&[-1.0]) < 0.01);
        assert_eq!(m.n_features(), 1);
    }
}
