//! Random forests: bagged CART trees with random feature subsets.

use crate::traits::{Classifier, Model, Regressor};
use crate::tree::{DecisionTree, TreeConfig};
use xai_rand::rngs::StdRng;
use xai_rand::{Rng, SeedableRng};
use xai_linalg::Matrix;

/// Configuration for [`RandomForest::fit`].
#[derive(Clone, Copy, Debug)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration; `max_features = None` defaults to √d.
    pub tree: TreeConfig,
    /// Bootstrap sample size as a fraction of the training set.
    pub subsample: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 50,
            tree: TreeConfig { max_depth: 8, ..TreeConfig::default() },
            subsample: 1.0,
            seed: 0,
        }
    }
}

/// A bagged ensemble of CART trees; the prediction is the mean of the
/// per-tree values (probability for Gini trees, value for variance trees).
#[derive(Clone, Debug)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_features: usize,
}

impl RandomForest {
    /// Fits the forest.
    pub fn fit(x: &Matrix, y: &[f64], config: ForestConfig) -> Self {
        assert!(config.n_trees > 0, "need at least one tree");
        assert!(config.subsample > 0.0 && config.subsample <= 1.0);
        let n = x.rows();
        let d = x.cols();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let default_mf = (d as f64).sqrt().round().max(1.0) as usize;
        let tree_config = TreeConfig {
            max_features: Some(config.tree.max_features.unwrap_or(default_mf)),
            ..config.tree
        };
        let m = ((n as f64) * config.subsample).round().max(1.0) as usize;
        let mut trees = Vec::with_capacity(config.n_trees);
        for _ in 0..config.n_trees {
            // Bootstrap sample (with replacement).
            let idx: Vec<usize> = (0..m).map(|_| rng.gen_range(0..n)).collect();
            let xb = x.select_rows(&idx);
            let yb: Vec<f64> = idx.iter().map(|&i| y[i]).collect();
            trees.push(DecisionTree::fit_with(&xb, &yb, tree_config, Some(&mut rng)));
        }
        Self { trees, n_features: d }
    }

    /// The fitted trees.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Mean of per-tree values.
    pub fn predict_value(&self, x: &[f64]) -> f64 {
        let total: f64 = self.trees.iter().map(|t| t.predict_value(x)).sum();
        total / self.trees.len() as f64
    }

    /// Batched ensemble average: each tree routes the whole batch at once,
    /// and per-row accumulation runs in tree order — the same summation
    /// order as [`RandomForest::predict_value`], hence bit-identical.
    pub fn predict_values(&self, x: &Matrix) -> Vec<f64> {
        let mut acc = vec![0.0; x.rows()];
        for tree in &self.trees {
            for (a, v) in acc.iter_mut().zip(tree.predict_values(x)) {
                *a += v;
            }
        }
        let n = self.trees.len() as f64;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }

    /// Masked coalition predictions (zero-copy, DESIGN.md §12): the
    /// ensemble average for every background row's coalition view, split
    /// features read from `instance` where the mask bit is set. Per-row
    /// accumulation runs in tree order then divides, the same summation as
    /// [`RandomForest::predict_values`] — bit-identical without
    /// materializing any mixed rows.
    pub fn predict_values_masked(
        &self,
        instance: &[f64],
        background: &Matrix,
        mask: u64,
        out: &mut [f64],
    ) {
        assert_eq!(out.len(), background.rows(), "masked output length mismatch");
        out.fill(0.0);
        for tree in &self.trees {
            for (bi, o) in out.iter_mut().enumerate() {
                *o += tree.predict_value_masked(instance, background.row(bi), mask);
            }
        }
        let n = self.trees.len() as f64;
        for o in out.iter_mut() {
            *o /= n;
        }
    }
}

impl Model for RandomForest {
    fn n_features(&self) -> usize {
        self.n_features
    }
}

impl Regressor for RandomForest {
    fn predict_one(&self, x: &[f64]) -> f64 {
        self.predict_value(x)
    }

    fn predict_batch(&self, x: &Matrix) -> Vec<f64> {
        self.predict_values(x)
    }
}

impl Classifier for RandomForest {
    fn proba_one(&self, x: &[f64]) -> f64 {
        self.predict_value(x)
    }

    fn proba_batch(&self, x: &Matrix) -> Vec<f64> {
        self.predict_values(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::SplitCriterion;
    use xai_data::metrics::{accuracy, auc_roc};
    use xai_data::synth::{circles, friedman1};
    use xai_linalg::r_squared;

    #[test]
    fn beats_single_tree_on_noisy_rings() {
        let train = circles(600, 21, 0.35);
        let test = circles(400, 22, 0.35);
        let tree = DecisionTree::fit(
            train.x(),
            train.y(),
            TreeConfig { max_depth: 10, ..TreeConfig::default() },
        );
        let forest = RandomForest::fit(
            train.x(),
            train.y(),
            ForestConfig { n_trees: 60, seed: 5, ..ForestConfig::default() },
        );
        let acc_tree = accuracy(test.y(), &Classifier::predict(&tree, test.x()));
        let acc_forest = accuracy(test.y(), &Classifier::predict(&forest, test.x()));
        assert!(
            acc_forest >= acc_tree - 0.01,
            "forest {acc_forest} should not lose to tree {acc_tree}"
        );
        assert!(acc_forest > 0.85);
        assert!(auc_roc(test.y(), &forest.proba(test.x())) > 0.9);
    }

    #[test]
    fn regression_mode() {
        let train = friedman1(700, 31, 0.3);
        let test = friedman1(300, 32, 0.3);
        let forest = RandomForest::fit(
            train.x(),
            train.y(),
            ForestConfig {
                n_trees: 40,
                tree: TreeConfig {
                    criterion: SplitCriterion::Variance,
                    max_depth: 9,
                    min_samples_leaf: 2,
                    ..TreeConfig::default()
                },
                seed: 7,
                ..ForestConfig::default()
            },
        );
        let preds = Regressor::predict(&forest, test.x());
        assert!(r_squared(test.y(), &preds) > 0.6);
    }

    #[test]
    fn deterministic_under_seed() {
        let data = circles(200, 41, 0.2);
        let cfg = ForestConfig { n_trees: 10, seed: 9, ..ForestConfig::default() };
        let f1 = RandomForest::fit(data.x(), data.y(), cfg);
        let f2 = RandomForest::fit(data.x(), data.y(), cfg);
        let p1 = f1.proba(data.x());
        let p2 = f2.proba(data.x());
        assert_eq!(p1, p2);
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let data = circles(200, 51, 0.2);
        let forest = RandomForest::fit(
            data.x(),
            data.y(),
            ForestConfig { n_trees: 15, seed: 3, ..ForestConfig::default() },
        );
        for p in forest.proba(data.x()) {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
