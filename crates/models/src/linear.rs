//! Linear (ridge) regression via the normal equations.
//!
//! Besides being a model in its own right, this is the inherently
//! interpretable surrogate class used by LIME (§2.1.1) and the regression
//! target of the PrIU incremental-update experiments (§3).

use crate::traits::{Model, Regressor};
use xai_linalg::{dot, least_squares, weighted_least_squares, LinalgError, Matrix};

/// Configuration for [`LinearRegression::fit`].
#[derive(Clone, Copy, Debug)]
pub struct LinearConfig {
    /// L2 penalty on the non-intercept coefficients.
    pub ridge: f64,
    /// Whether to fit an intercept term.
    pub intercept: bool,
}

impl Default for LinearConfig {
    fn default() -> Self {
        Self { ridge: 1e-6, intercept: true }
    }
}

/// A fitted linear model `y = intercept + coef · x`.
#[derive(Clone, Debug)]
pub struct LinearRegression {
    intercept: f64,
    coef: Vec<f64>,
}

impl LinearRegression {
    /// Fits by (ridge-regularized) least squares.
    pub fn fit(x: &Matrix, y: &[f64], config: LinearConfig) -> Result<Self, LinalgError> {
        let design = if config.intercept { x.with_intercept() } else { x.clone() };
        let w = least_squares(&design, y, config.ridge)?;
        Ok(Self::from_solution(w, config.intercept, x.cols()))
    }

    /// Fits with per-sample weights (the LIME/Kernel-SHAP core).
    pub fn fit_weighted(
        x: &Matrix,
        y: &[f64],
        sample_weights: &[f64],
        config: LinearConfig,
    ) -> Result<Self, LinalgError> {
        let design = if config.intercept { x.with_intercept() } else { x.clone() };
        let w = weighted_least_squares(&design, y, sample_weights, config.ridge)?;
        Ok(Self::from_solution(w, config.intercept, x.cols()))
    }

    fn from_solution(w: Vec<f64>, intercept: bool, d: usize) -> Self {
        if intercept {
            Self { intercept: w[0], coef: w[1..].to_vec() }
        } else {
            debug_assert_eq!(w.len(), d);
            Self { intercept: 0.0, coef: w }
        }
    }

    /// Builds a model directly from known parameters.
    pub fn from_parameters(intercept: f64, coef: Vec<f64>) -> Self {
        Self { intercept, coef }
    }

    /// The intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The coefficients (one per feature).
    pub fn coef(&self) -> &[f64] {
        &self.coef
    }

    /// Masked coalition predictions (zero-copy, DESIGN.md §12): one
    /// prediction per background row, reading `instance[k]` where bit `k`
    /// of `mask` is set and the background value otherwise. Same
    /// sum-first/intercept-last association as
    /// [`Regressor::predict_batch`], so each value is bit-identical to
    /// predicting the materialized coalition view.
    pub fn predict_masked_into(
        &self,
        instance: &[f64],
        background: &Matrix,
        mask: u64,
        out: &mut [f64],
    ) {
        xai_linalg::masked_matvec(background, instance, mask, &self.coef, out);
        for o in out.iter_mut() {
            *o += self.intercept;
        }
    }

    /// Whole-round twin of [`Self::predict_masked_into`]: one
    /// `background.rows()`-length block per mask, coalition-major, through
    /// [`xai_linalg::masked_matvec_many`]. Bit-identical to the per-mask
    /// calls (same sum-first/intercept-last association per value).
    pub fn predict_masked_many_into(
        &self,
        instance: &[f64],
        background: &Matrix,
        masks: &[u64],
        out: &mut [f64],
    ) {
        xai_linalg::masked_matvec_many(background, instance, masks, &self.coef, out);
        for o in out.iter_mut() {
            *o += self.intercept;
        }
    }
}

impl Model for LinearRegression {
    fn n_features(&self) -> usize {
        self.coef.len()
    }
}

impl Regressor for LinearRegression {
    fn predict_one(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.coef.len());
        self.intercept + dot(&self.coef, x)
    }

    /// Blocked mat-vec fast path. The scalar form sums the products first
    /// and adds the intercept last, so the batch form does the same —
    /// bit-identical per row.
    fn predict_batch(&self, x: &Matrix) -> Vec<f64> {
        let mut out = xai_linalg::matvec_blocked(x, &self.coef);
        for o in &mut out {
            *o += self.intercept;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_linalg::r_squared;

    #[test]
    fn recovers_exact_coefficients() {
        let x = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![2.0, 1.0],
            vec![3.0, 4.0],
            vec![0.0, 1.0],
            vec![5.0, 2.0],
        ]);
        let y: Vec<f64> = x.iter_rows().map(|r| 1.5 + 2.0 * r[0] - 0.5 * r[1]).collect();
        let m = LinearRegression::fit(&x, &y, LinearConfig::default()).unwrap();
        assert!((m.intercept() - 1.5).abs() < 1e-4);
        assert!((m.coef()[0] - 2.0).abs() < 1e-4);
        assert!((m.coef()[1] + 0.5).abs() < 1e-4);
        let preds = m.predict(&x);
        assert!(r_squared(&y, &preds) > 0.999999);
    }

    #[test]
    fn no_intercept_mode() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let y = vec![2.0, 4.0, 6.0];
        let m = LinearRegression::fit(&x, &y, LinearConfig { ridge: 0.0, intercept: false }).unwrap();
        assert_eq!(m.intercept(), 0.0);
        assert!((m.coef()[0] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]);
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let loose = LinearRegression::fit(&x, &y, LinearConfig { ridge: 0.0, intercept: false }).unwrap();
        let tight = LinearRegression::fit(&x, &y, LinearConfig { ridge: 100.0, intercept: false }).unwrap();
        assert!(tight.coef()[0].abs() < loose.coef()[0].abs());
    }

    #[test]
    fn weighted_fit_focuses_on_heavy_samples() {
        // Two inconsistent clusters; weights pick which one the fit obeys.
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![1.0], vec![2.0]]);
        let y = vec![1.0, 2.0, 10.0, 20.0];
        let w_lo = vec![1.0, 1.0, 0.0, 0.0];
        let m = LinearRegression::fit_weighted(&x, &y, &w_lo, LinearConfig { ridge: 1e-9, intercept: false }).unwrap();
        assert!((m.coef()[0] - 1.0).abs() < 1e-4);
        let w_hi = vec![0.0, 0.0, 1.0, 1.0];
        let m = LinearRegression::fit_weighted(&x, &y, &w_hi, LinearConfig { ridge: 1e-9, intercept: false }).unwrap();
        assert!((m.coef()[0] - 10.0).abs() < 1e-4);
    }

    #[test]
    fn from_parameters_roundtrip() {
        let m = LinearRegression::from_parameters(1.0, vec![2.0, 3.0]);
        assert_eq!(m.predict_one(&[1.0, 1.0]), 6.0);
        assert_eq!(m.n_features(), 2);
    }
}
