//! [`ModelOracle`] implementations for every concrete model: the bridge
//! between this crate and the unified explainer layer (DESIGN.md §9).
//!
//! `xai-core` cannot depend on this crate (we depend on it), so the
//! oracle trait lives there and the impls live here. Conventions match
//! the legacy adapters exactly, so the trait path is bit-identical to the
//! free-function path:
//!
//! - classifiers expose their positive-class probability
//!   (`Classifier::proba_one` / `proba_batch`, the `proba_fn` /
//!   `batch_proba_fn` convention); models implementing both surfaces
//!   (trees, forests, GBDTs, k-NN, MLPs) side with the classifier view,
//!   which is what every existing example and test explains;
//! - `LinearRegression` exposes `Regressor::predict_one` / `predict_batch`
//!   (the `regress_fn` convention);
//! - `predict_batch` overrides route through each model's vectorized
//!   kernels, so `RunConfig { batched: true, .. }` hits the same code the
//!   `*_batched` twins did;
//! - `gradient` is provided exactly where the workspace already had a
//!   gradient surface (`xai_surrogate::Differentiable`,
//!   `xai_counterfactual::GradientModel`): logistic regression and MLPs,
//!   plus the trivially constant linear-regression gradient;
//! - `as_any` returns `Some` for every model so structure-walking methods
//!   (TreeSHAP, provenance interventions) can downcast.

use std::any::Any;

use xai_core::ModelOracle;
use xai_linalg::Matrix;

use crate::traits::{Classifier, Model, Regressor};
use crate::{
    DecisionTree, GaussianNb, Gbdt, Knn, LinearRegression, LogisticRegression, Mlp, RandomForest,
};

macro_rules! classifier_oracle {
    ($ty:ty) => {
        impl ModelOracle for $ty {
            fn n_features(&self) -> usize {
                Model::n_features(self)
            }
            fn predict(&self, x: &[f64]) -> f64 {
                Classifier::proba_one(self, x)
            }
            fn predict_batch(&self, rows: &Matrix) -> Vec<f64> {
                Classifier::proba_batch(self, rows)
            }
            fn as_any(&self) -> Option<&dyn Any> {
                Some(self)
            }
        }
    };
}

classifier_oracle!(DecisionTree);
classifier_oracle!(RandomForest);
classifier_oracle!(Gbdt);
classifier_oracle!(Knn);
classifier_oracle!(GaussianNb);

impl ModelOracle for LinearRegression {
    fn n_features(&self) -> usize {
        Model::n_features(self)
    }
    fn predict(&self, x: &[f64]) -> f64 {
        Regressor::predict_one(self, x)
    }
    fn predict_batch(&self, rows: &Matrix) -> Vec<f64> {
        Regressor::predict_batch(self, rows)
    }
    fn gradient(&self, _x: &[f64]) -> Option<Vec<f64>> {
        Some(self.coef().to_vec())
    }
    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }
}

impl ModelOracle for LogisticRegression {
    fn n_features(&self) -> usize {
        Model::n_features(self)
    }
    fn predict(&self, x: &[f64]) -> f64 {
        Classifier::proba_one(self, x)
    }
    fn predict_batch(&self, rows: &Matrix) -> Vec<f64> {
        Classifier::proba_batch(self, rows)
    }
    /// `∂p/∂x = p(1−p)·w` — the same formula the Wachter and saliency
    /// adapters use, so gradient methods are bit-identical either way.
    fn gradient(&self, x: &[f64]) -> Option<Vec<f64>> {
        let p = Classifier::proba_one(self, x);
        let s = p * (1.0 - p);
        Some(self.coef().iter().map(|w| w * s).collect())
    }
    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }
}

impl ModelOracle for Mlp {
    fn n_features(&self) -> usize {
        Model::n_features(self)
    }
    fn predict(&self, x: &[f64]) -> f64 {
        Classifier::proba_one(self, x)
    }
    fn predict_batch(&self, rows: &Matrix) -> Vec<f64> {
        Classifier::proba_batch(self, rows)
    }
    fn gradient(&self, x: &[f64]) -> Option<Vec<f64>> {
        Some(self.input_gradient(x))
    }
    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GbdtConfig, LogisticConfig, TreeConfig};
    use xai_data::synth::german_credit;

    #[test]
    fn oracle_matches_the_legacy_adapters() {
        let data = german_credit(80, 11);
        let x = data.row(0);

        let logit = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let oracle: &dyn ModelOracle = &logit;
        assert_eq!(oracle.n_features(), data.x().cols());
        assert_eq!(oracle.predict(x), logit.proba_one(x));
        assert_eq!(oracle.predict_batch(data.x()), logit.proba_batch(data.x()));

        let tree = DecisionTree::fit(data.x(), data.y(), TreeConfig::default());
        let oracle: &dyn ModelOracle = &tree;
        assert_eq!(oracle.predict(x), tree.predict_value(x));
        assert_eq!(oracle.predict_batch(data.x()), tree.predict_values(data.x()));
    }

    #[test]
    fn gradients_match_the_existing_surfaces() {
        let data = german_credit(80, 12);
        let x = data.row(3);

        let logit = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let g = ModelOracle::gradient(&logit, x).unwrap();
        let p = logit.proba_one(x);
        for (gj, wj) in g.iter().zip(logit.coef()) {
            assert!((gj - wj * p * (1.0 - p)).abs() < 1e-12);
        }

        let gbdt = Gbdt::fit(data.x(), data.y(), GbdtConfig::default());
        assert!(ModelOracle::gradient(&gbdt, x).is_none(), "trees have no gradient");
    }

    #[test]
    fn as_any_downcasts_to_the_concrete_model() {
        let data = german_credit(60, 13);
        let gbdt = Gbdt::fit(data.x(), data.y(), GbdtConfig::default());
        let oracle: &dyn ModelOracle = &gbdt;
        let any = oracle.as_any().unwrap();
        assert!(any.downcast_ref::<Gbdt>().is_some());
        assert!(any.downcast_ref::<Mlp>().is_none());
    }
}
