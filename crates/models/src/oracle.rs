//! [`ModelOracle`] implementations for every concrete model: the bridge
//! between this crate and the unified explainer layer (DESIGN.md §9).
//!
//! `xai-core` cannot depend on this crate (we depend on it), so the
//! oracle trait lives there and the impls live here. Conventions match
//! the legacy adapters exactly, so the trait path is bit-identical to the
//! free-function path:
//!
//! - classifiers expose their positive-class probability
//!   (`Classifier::proba_one` / `proba_batch`, the `proba_fn` /
//!   `batch_proba_fn` convention); models implementing both surfaces
//!   (trees, forests, GBDTs, k-NN, MLPs) side with the classifier view,
//!   which is what every existing example and test explains;
//! - `LinearRegression` exposes `Regressor::predict_one` / `predict_batch`
//!   (the `regress_fn` convention);
//! - `predict_batch` overrides route through each model's vectorized
//!   kernels, so `RunConfig { batched: true, .. }` hits the same code the
//!   `*_batched` twins did;
//! - `gradient` is provided exactly where the workspace already had a
//!   gradient surface (`xai_surrogate::Differentiable`,
//!   `xai_counterfactual::GradientModel`): logistic regression and MLPs,
//!   plus the trivially constant linear-regression gradient;
//! - `as_any` returns `Some` for every model so structure-walking methods
//!   (TreeSHAP, provenance interventions) can downcast;
//! - `predict_masked` overrides route through each model's zero-copy
//!   masked kernels (DESIGN.md §12) — linear/logistic evaluate whole
//!   rounds through the hoisted `masked_*_many` mat-vec/affine kernels,
//!   MLPs the masked GEMM, and the tree ensembles
//!   route splits through `predict_value_masked` — each bit-identical to
//!   predicting the materialized coalition view. k-NN and naive Bayes keep
//!   the gather-into-scratch default (their batch path *is* the scalar
//!   row loop, so the default is already canonical).

use std::any::Any;

use xai_core::ModelOracle;
use xai_linalg::Matrix;

use crate::traits::{Classifier, Model, Regressor};
use crate::{
    DecisionTree, GaussianNb, Gbdt, Knn, LinearRegression, LogisticRegression, Mlp, RandomForest,
};

macro_rules! classifier_oracle {
    ($ty:ty) => {
        impl ModelOracle for $ty {
            fn n_features(&self) -> usize {
                Model::n_features(self)
            }
            fn predict(&self, x: &[f64]) -> f64 {
                Classifier::proba_one(self, x)
            }
            fn predict_batch(&self, rows: &Matrix) -> Vec<f64> {
                Classifier::proba_batch(self, rows)
            }
            fn as_any(&self) -> Option<&dyn Any> {
                Some(self)
            }
        }
    };
}

classifier_oracle!(Knn);
classifier_oracle!(GaussianNb);

/// Appends `masks.len() × background.rows()` masked predictions to `out`
/// (coalition-major), evaluating each mask's chunk with `fill`. The shared
/// skeleton of every per-model `predict_masked` override.
fn masked_chunks(
    background: &Matrix,
    masks: &[u64],
    out: &mut Vec<f64>,
    mut fill: impl FnMut(u64, &mut [f64]),
) {
    let b = background.rows();
    out.clear();
    out.resize(masks.len() * b, 0.0);
    for (ci, &mask) in masks.iter().enumerate() {
        fill(mask, &mut out[ci * b..(ci + 1) * b]);
    }
}

impl ModelOracle for DecisionTree {
    fn n_features(&self) -> usize {
        Model::n_features(self)
    }
    fn predict(&self, x: &[f64]) -> f64 {
        Classifier::proba_one(self, x)
    }
    fn predict_batch(&self, rows: &Matrix) -> Vec<f64> {
        Classifier::proba_batch(self, rows)
    }
    fn predict_masked(&self, instance: &[f64], background: &Matrix, masks: &[u64], out: &mut Vec<f64>) {
        masked_chunks(background, masks, out, |mask, chunk| {
            for (bi, o) in chunk.iter_mut().enumerate() {
                *o = self.predict_value_masked(instance, background.row(bi), mask);
            }
        });
    }
    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }
}

impl ModelOracle for RandomForest {
    fn n_features(&self) -> usize {
        Model::n_features(self)
    }
    fn predict(&self, x: &[f64]) -> f64 {
        Classifier::proba_one(self, x)
    }
    fn predict_batch(&self, rows: &Matrix) -> Vec<f64> {
        Classifier::proba_batch(self, rows)
    }
    fn predict_masked(&self, instance: &[f64], background: &Matrix, masks: &[u64], out: &mut Vec<f64>) {
        masked_chunks(background, masks, out, |mask, chunk| {
            self.predict_values_masked(instance, background, mask, chunk);
        });
    }
    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }
}

impl ModelOracle for Gbdt {
    fn n_features(&self) -> usize {
        Model::n_features(self)
    }
    fn predict(&self, x: &[f64]) -> f64 {
        Classifier::proba_one(self, x)
    }
    fn predict_batch(&self, rows: &Matrix) -> Vec<f64> {
        Classifier::proba_batch(self, rows)
    }
    /// Masked margins plus the classifier head, applied per value in the
    /// same order as `Classifier::proba_batch` — bit-identical either way.
    fn predict_masked(&self, instance: &[f64], background: &Matrix, masks: &[u64], out: &mut Vec<f64>) {
        use crate::gbdt::GbdtLoss;
        masked_chunks(background, masks, out, |mask, chunk| {
            self.margin_masked_into(instance, background, mask, chunk);
            for o in chunk.iter_mut() {
                *o = match self.loss() {
                    GbdtLoss::Squared => o.clamp(0.0, 1.0),
                    GbdtLoss::Logistic => xai_data::sigmoid(*o),
                };
            }
        });
    }
    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }
}

impl ModelOracle for LinearRegression {
    fn n_features(&self) -> usize {
        Model::n_features(self)
    }
    fn predict(&self, x: &[f64]) -> f64 {
        Regressor::predict_one(self, x)
    }
    fn predict_batch(&self, rows: &Matrix) -> Vec<f64> {
        Regressor::predict_batch(self, rows)
    }
    /// One whole-round call into the hoisted masked mat-vec kernel —
    /// bit-identical to the per-mask `predict_masked_into` loop.
    fn predict_masked(&self, instance: &[f64], background: &Matrix, masks: &[u64], out: &mut Vec<f64>) {
        out.clear();
        out.resize(masks.len() * background.rows(), 0.0);
        self.predict_masked_many_into(instance, background, masks, out);
    }
    fn gradient(&self, _x: &[f64]) -> Option<Vec<f64>> {
        Some(self.coef().to_vec())
    }
    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }
}

impl ModelOracle for LogisticRegression {
    fn n_features(&self) -> usize {
        Model::n_features(self)
    }
    fn predict(&self, x: &[f64]) -> f64 {
        Classifier::proba_one(self, x)
    }
    fn predict_batch(&self, rows: &Matrix) -> Vec<f64> {
        Classifier::proba_batch(self, rows)
    }
    /// Masked margins for the whole round through the hoisted bias-first
    /// kernel, then the sigmoid — the same composition as
    /// `Classifier::proba_batch`, bit-identical to the per-mask loop.
    fn predict_masked(&self, instance: &[f64], background: &Matrix, masks: &[u64], out: &mut Vec<f64>) {
        out.clear();
        out.resize(masks.len() * background.rows(), 0.0);
        self.margin_masked_many_into(instance, background, masks, out);
        for o in out.iter_mut() {
            *o = xai_data::sigmoid(*o);
        }
    }
    /// `∂p/∂x = p(1−p)·w` — the same formula the Wachter and saliency
    /// adapters use, so gradient methods are bit-identical either way.
    fn gradient(&self, x: &[f64]) -> Option<Vec<f64>> {
        let p = Classifier::proba_one(self, x);
        let s = p * (1.0 - p);
        Some(self.coef().iter().map(|w| w * s).collect())
    }
    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }
}

impl ModelOracle for Mlp {
    fn n_features(&self) -> usize {
        Model::n_features(self)
    }
    fn predict(&self, x: &[f64]) -> f64 {
        Classifier::proba_one(self, x)
    }
    fn predict_batch(&self, rows: &Matrix) -> Vec<f64> {
        Classifier::proba_batch(self, rows)
    }
    /// Masked raw outputs through the masked GEMM, then the classifier
    /// head per value in `proba_batch` order — bit-identical either way.
    fn predict_masked(&self, instance: &[f64], background: &Matrix, masks: &[u64], out: &mut Vec<f64>) {
        use crate::mlp::MlpTask;
        masked_chunks(background, masks, out, |mask, chunk| {
            self.raw_masked_into(instance, background, mask, chunk);
            for o in chunk.iter_mut() {
                *o = match self.task() {
                    MlpTask::Regression => o.clamp(0.0, 1.0),
                    MlpTask::Classification => xai_data::sigmoid(*o),
                };
            }
        });
    }
    fn gradient(&self, x: &[f64]) -> Option<Vec<f64>> {
        Some(self.input_gradient(x))
    }
    fn as_any(&self) -> Option<&dyn Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GbdtConfig, LogisticConfig, TreeConfig};
    use xai_data::synth::german_credit;

    #[test]
    fn oracle_matches_the_legacy_adapters() {
        let data = german_credit(80, 11);
        let x = data.row(0);

        let logit = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let oracle: &dyn ModelOracle = &logit;
        assert_eq!(oracle.n_features(), data.x().cols());
        assert_eq!(oracle.predict(x), logit.proba_one(x));
        assert_eq!(oracle.predict_batch(data.x()), logit.proba_batch(data.x()));

        let tree = DecisionTree::fit(data.x(), data.y(), TreeConfig::default());
        let oracle: &dyn ModelOracle = &tree;
        assert_eq!(oracle.predict(x), tree.predict_value(x));
        assert_eq!(oracle.predict_batch(data.x()), tree.predict_values(data.x()));
    }

    #[test]
    fn gradients_match_the_existing_surfaces() {
        let data = german_credit(80, 12);
        let x = data.row(3);

        let logit = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let g = ModelOracle::gradient(&logit, x).unwrap();
        let p = logit.proba_one(x);
        for (gj, wj) in g.iter().zip(logit.coef()) {
            assert!((gj - wj * p * (1.0 - p)).abs() < 1e-12);
        }

        let gbdt = Gbdt::fit(data.x(), data.y(), GbdtConfig::default());
        assert!(ModelOracle::gradient(&gbdt, x).is_none(), "trees have no gradient");
    }

    #[test]
    fn as_any_downcasts_to_the_concrete_model() {
        let data = german_credit(60, 13);
        let gbdt = Gbdt::fit(data.x(), data.y(), GbdtConfig::default());
        let oracle: &dyn ModelOracle = &gbdt;
        let any = oracle.as_any().unwrap();
        assert!(any.downcast_ref::<Gbdt>().is_some());
        assert!(any.downcast_ref::<Mlp>().is_none());
    }
}
