//! Property-based tests for the model substrate.

use proptest::prelude::*;
use xai_linalg::Matrix;
use xai_models::{
    Classifier, DecisionTree, GaussianNb, Knn, LinearConfig, LinearRegression, LogisticConfig,
    LogisticRegression, Regressor, SplitCriterion, TreeConfig,
};

/// Strategy: a small dataset of rows in [-5, 5] with 0/1 labels containing
/// both classes.
fn binary_dataset() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (2..=4usize, 8..=40usize)
        .prop_flat_map(|(d, n)| {
            (
                prop::collection::vec(-5.0..5.0f64, n * d),
                prop::collection::vec(prop::bool::ANY, n),
                Just((n, d)),
            )
        })
        .prop_filter_map("need both classes", |(data, labels, (n, d))| {
            let pos = labels.iter().filter(|&&b| b).count();
            if pos == 0 || pos == n {
                return None;
            }
            let x = Matrix::from_vec(n, d, data);
            let y = labels.into_iter().map(f64::from).collect();
            Some((x, y))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tree_probabilities_stay_in_unit_interval((x, y) in binary_dataset()) {
        let tree = DecisionTree::fit(&x, &y, TreeConfig { max_depth: 4, ..TreeConfig::default() });
        for i in 0..x.rows() {
            let p = tree.proba_one(x.row(i));
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn tree_regression_predictions_within_target_range((x, y) in binary_dataset()) {
        // Reinterpret labels as regression targets scaled to [0, 10].
        let targets: Vec<f64> = y.iter().map(|v| v * 10.0).collect();
        let tree = DecisionTree::fit(
            &x,
            &targets,
            TreeConfig { criterion: SplitCriterion::Variance, max_depth: 5, ..TreeConfig::default() },
        );
        let lo = targets.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = targets.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for i in 0..x.rows() {
            let p = Regressor::predict_one(&tree, x.row(i));
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }

    #[test]
    fn logistic_probabilities_finite_and_bounded((x, y) in binary_dataset()) {
        let m = LogisticRegression::fit(&x, &y, LogisticConfig { max_iter: 20, ..LogisticConfig::default() });
        for i in 0..x.rows() {
            let p = m.proba_one(x.row(i));
            prop_assert!(p.is_finite() && (0.0..=1.0).contains(&p));
        }
        prop_assert!(m.weights().iter().all(|w| w.is_finite()));
    }

    #[test]
    fn knn_prediction_is_a_training_label_average((x, y) in binary_dataset()) {
        let knn = Knn::fit(&x, &y, 3);
        for i in 0..x.rows().min(5) {
            let p = knn.proba_one(x.row(i));
            prop_assert!((0.0..=1.0).contains(&p));
            // With k=3 the prediction is a multiple of 1/3.
            let scaled = p * 3.0;
            prop_assert!((scaled - scaled.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn naive_bayes_probabilities_valid((x, y) in binary_dataset()) {
        let nb = GaussianNb::fit(&x, &y);
        for i in 0..x.rows().min(8) {
            let p = nb.proba_one(x.row(i));
            prop_assert!(p.is_finite() && (0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn linear_regression_is_affine(
        coefs in prop::collection::vec(-3.0..3.0f64, 2..4),
        bias in -2.0..2.0f64,
    ) {
        // Fit on exact affine data: prediction must interpolate new points.
        let d = coefs.len();
        let n = 4 * d + 4;
        let x = Matrix::from_fn(n, d, |i, j| ((i * (j + 2) + j) % 7) as f64 - 3.0);
        let y: Vec<f64> = x.iter_rows().map(|r| bias + xai_linalg::dot(&coefs, r)).collect();
        let m = LinearRegression::fit(&x, &y, LinearConfig { ridge: 1e-10, intercept: true }).unwrap();
        let probe: Vec<f64> = (0..d).map(|j| 0.5 * j as f64 - 1.0).collect();
        let expected = bias + xai_linalg::dot(&coefs, &probe);
        prop_assert!((Regressor::predict_one(&m, &probe) - expected).abs() < 1e-4);
    }
}
