//! Property-based tests for the model substrate, run as deterministic
//! seeded loops over `xai_rand`.

use xai_linalg::Matrix;
use xai_models::{
    Classifier, DecisionTree, ForestConfig, GaussianNb, Gbdt, GbdtConfig, GbdtLoss, Knn,
    LinearConfig, LinearRegression, LogisticConfig, LogisticRegression, Mlp, MlpConfig, MlpTask,
    RandomForest, Regressor, SplitCriterion, TreeConfig,
};
use xai_rand::property::{cases, vec_in};
use xai_rand::rngs::StdRng;
use xai_rand::Rng;

/// A small dataset of rows in [-5, 5] with 0/1 labels containing both
/// classes (resampled until both appear).
fn binary_dataset(rng: &mut StdRng) -> (Matrix, Vec<f64>) {
    loop {
        let d = rng.gen_range(2..=4);
        let n = rng.gen_range(8..=40);
        let data = vec_in(rng, n * d, -5.0, 5.0);
        let labels: Vec<f64> = (0..n).map(|_| f64::from(rng.gen::<bool>())).collect();
        let pos = labels.iter().filter(|&&v| v > 0.5).count();
        if pos == 0 || pos == n {
            continue;
        }
        return (Matrix::from_vec(n, d, data), labels);
    }
}

#[test]
fn tree_probabilities_stay_in_unit_interval() {
    cases(64, 401, |rng| {
        let (x, y) = binary_dataset(rng);
        let tree = DecisionTree::fit(&x, &y, TreeConfig { max_depth: 4, ..TreeConfig::default() });
        for i in 0..x.rows() {
            let p = tree.proba_one(x.row(i));
            assert!((0.0..=1.0).contains(&p));
        }
    });
}

#[test]
fn tree_regression_predictions_within_target_range() {
    cases(64, 402, |rng| {
        let (x, y) = binary_dataset(rng);
        // Reinterpret labels as regression targets scaled to [0, 10].
        let targets: Vec<f64> = y.iter().map(|v| v * 10.0).collect();
        let tree = DecisionTree::fit(
            &x,
            &targets,
            TreeConfig { criterion: SplitCriterion::Variance, max_depth: 5, ..TreeConfig::default() },
        );
        let lo = targets.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = targets.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for i in 0..x.rows() {
            let p = Regressor::predict_one(&tree, x.row(i));
            assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    });
}

#[test]
fn logistic_probabilities_finite_and_bounded() {
    cases(64, 403, |rng| {
        let (x, y) = binary_dataset(rng);
        let m = LogisticRegression::fit(&x, &y, LogisticConfig { max_iter: 20, ..LogisticConfig::default() });
        for i in 0..x.rows() {
            let p = m.proba_one(x.row(i));
            assert!(p.is_finite() && (0.0..=1.0).contains(&p));
        }
        assert!(m.weights().iter().all(|w| w.is_finite()));
    });
}

#[test]
fn knn_prediction_is_a_training_label_average() {
    cases(64, 404, |rng| {
        let (x, y) = binary_dataset(rng);
        let knn = Knn::fit(&x, &y, 3);
        for i in 0..x.rows().min(5) {
            let p = knn.proba_one(x.row(i));
            assert!((0.0..=1.0).contains(&p));
            // With k=3 the prediction is a multiple of 1/3.
            let scaled = p * 3.0;
            assert!((scaled - scaled.round()).abs() < 1e-9);
        }
    });
}

#[test]
fn naive_bayes_probabilities_valid() {
    cases(64, 405, |rng| {
        let (x, y) = binary_dataset(rng);
        let nb = GaussianNb::fit(&x, &y);
        for i in 0..x.rows().min(8) {
            let p = nb.proba_one(x.row(i));
            assert!(p.is_finite() && (0.0..=1.0).contains(&p));
        }
    });
}

#[test]
fn linear_regression_is_affine() {
    cases(64, 406, |rng| {
        // Fit on exact affine data: prediction must interpolate new points.
        let d = rng.gen_range(2..4);
        let coefs = vec_in(rng, d, -3.0, 3.0);
        let bias: f64 = rng.gen_range(-2.0..2.0);
        let n = 4 * d + 4;
        let x = Matrix::from_fn(n, d, |i, j| ((i * (j + 2) + j) % 7) as f64 - 3.0);
        let y: Vec<f64> = x.iter_rows().map(|r| bias + xai_linalg::dot(&coefs, r)).collect();
        let m = LinearRegression::fit(&x, &y, LinearConfig { ridge: 1e-10, intercept: true }).unwrap();
        let probe: Vec<f64> = (0..d).map(|j| 0.5 * j as f64 - 1.0).collect();
        let expected = bias + xai_linalg::dot(&coefs, &probe);
        assert!((Regressor::predict_one(&m, &probe) - expected).abs() < 1e-4);
    });
}

// ---------------------------------------------------------------------------
// Batch/scalar equivalence: `predict_batch` / `proba_batch` must agree with
// the row-by-row scalar path to *exact* (bitwise) equality for all eight
// model families, including the empty-matrix and single-row edge cases.
// This is the contract the batched explainer paths build on.
// ---------------------------------------------------------------------------

/// Probe matrices exercising the edge cases: empty, single row, and a
/// block big enough to hit the blocked kernels' remainder handling.
fn probe_batches(rng: &mut StdRng, d: usize) -> Vec<Matrix> {
    let multi_rows = rng.gen_range(5..=13);
    vec![
        Matrix::zeros(0, d),
        Matrix::from_vec(1, d, vec_in(rng, d, -6.0, 6.0)),
        Matrix::from_vec(multi_rows, d, vec_in(rng, multi_rows * d, -6.0, 6.0)),
    ]
}

fn assert_regressor_batch_exact<R: Regressor>(model: &R, probes: &[Matrix], name: &str) {
    for m in probes {
        let batched = model.predict_batch(m);
        let scalar: Vec<f64> = m.iter_rows().map(|r| model.predict_one(r)).collect();
        assert_eq!(batched, scalar, "{name}: predict_batch != predict_one loop ({} rows)", m.rows());
        assert_eq!(model.predict(m), batched, "{name}: predict must route through the batch surface");
    }
}

fn assert_classifier_batch_exact<C: Classifier>(model: &C, probes: &[Matrix], name: &str) {
    for m in probes {
        let batched = model.proba_batch(m);
        let scalar: Vec<f64> = m.iter_rows().map(|r| model.proba_one(r)).collect();
        assert_eq!(batched, scalar, "{name}: proba_batch != proba_one loop ({} rows)", m.rows());
        let hard: Vec<f64> = batched.iter().map(|&p| f64::from(p >= 0.5)).collect();
        assert_eq!(Classifier::predict(model, m), hard, "{name}: hard predictions diverge");
    }
}

#[test]
fn linear_and_logistic_batch_paths_are_bit_identical() {
    cases(48, 407, |rng| {
        let (x, y) = binary_dataset(rng);
        let d = x.cols();
        let probes = probe_batches(rng, d);
        let linear = LinearRegression::fit(&x, &y, LinearConfig::default()).unwrap();
        assert_regressor_batch_exact(&linear, &probes, "linear");
        let logistic =
            LogisticRegression::fit(&x, &y, LogisticConfig { max_iter: 15, ..LogisticConfig::default() });
        assert_classifier_batch_exact(&logistic, &probes, "logistic");
    });
}

#[test]
fn tree_ensemble_batch_paths_are_bit_identical() {
    cases(32, 408, |rng| {
        let (x, y) = binary_dataset(rng);
        let d = x.cols();
        let probes = probe_batches(rng, d);
        let tree = DecisionTree::fit(&x, &y, TreeConfig { max_depth: 5, ..TreeConfig::default() });
        assert_regressor_batch_exact(&tree, &probes, "tree");
        assert_classifier_batch_exact(&tree, &probes, "tree");
        let forest = RandomForest::fit(
            &x,
            &y,
            ForestConfig { n_trees: 7, seed: 3, ..ForestConfig::default() },
        );
        assert_regressor_batch_exact(&forest, &probes, "forest");
        assert_classifier_batch_exact(&forest, &probes, "forest");
        for loss in [GbdtLoss::Squared, GbdtLoss::Logistic] {
            let gbdt = Gbdt::fit(&x, &y, GbdtConfig { n_rounds: 12, loss, ..GbdtConfig::default() });
            assert_regressor_batch_exact(&gbdt, &probes, "gbdt");
            assert_classifier_batch_exact(&gbdt, &probes, "gbdt");
        }
    });
}

#[test]
fn knn_naive_bayes_and_mlp_batch_paths_are_bit_identical() {
    cases(32, 409, |rng| {
        let (x, y) = binary_dataset(rng);
        let d = x.cols();
        let probes = probe_batches(rng, d);
        let knn = Knn::fit(&x, &y, 3);
        assert_regressor_batch_exact(&knn, &probes, "knn");
        assert_classifier_batch_exact(&knn, &probes, "knn");
        let nb = GaussianNb::fit(&x, &y);
        assert_classifier_batch_exact(&nb, &probes, "naive_bayes");
        for task in [MlpTask::Regression, MlpTask::Classification] {
            let mlp = Mlp::fit(
                &x,
                &y,
                MlpConfig { hidden: 6, epochs: 4, task, seed: 11, ..MlpConfig::default() },
            );
            assert_regressor_batch_exact(&mlp, &probes, "mlp");
            assert_classifier_batch_exact(&mlp, &probes, "mlp");
        }
    });
}
