//! LU factorization with partial pivoting for general square systems.
//!
//! The Cholesky path covers symmetric positive-definite systems; LU handles
//! the general case (e.g. solving linear SCM mechanisms `(I - B) x = u` whose
//! coefficient matrix is not symmetric).

// Pivoted elimination indexes matrix, permutation and rhs together.
#![allow(clippy::needless_range_loop)]
use crate::matrix::Matrix;
use crate::LinalgError;

/// LU factorization `P A = L U` with partial pivoting.
#[derive(Clone, Debug)]
pub struct Lu {
    /// Combined L (below diagonal, unit diagonal implied) and U (on/above diagonal).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    sign: f64,
}

impl Lu {
    /// Factorizes a general square matrix. Non-finite inputs are rejected
    /// up front: partial pivoting only inspects one column per step, so a
    /// NaN elsewhere would otherwise survive into the factors.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { rows: a.rows(), cols: a.cols() });
        }
        crate::check_finite_matrix(a)?;
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Pivot: largest |value| in column k at or below the diagonal.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in k + 1..n {
                let v = lu[(i, k)].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max == 0.0 || !max.is_finite() {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in k + 1..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in k + 1..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }
        Ok(Self { lu, perm, sign })
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.rows();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Apply permutation, then forward substitution with unit-lower L.
        let mut y: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        for i in 1..n {
            let mut sum = y[i];
            for k in 0..i {
                sum -= self.lu[(i, k)] * y[k];
            }
            y[i] = sum;
        }
        // Backward substitution with U.
        let mut x = y;
        for i in (0..n).rev() {
            let mut sum = x[i];
            for k in i + 1..n {
                sum -= self.lu[(i, k)] * x[k];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        x
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            out.set_col(j, &self.solve(&b.col(j)));
        }
        out
    }

    /// Inverse of `A`.
    pub fn inverse(&self) -> Matrix {
        self.solve_matrix(&Matrix::identity(self.lu.rows()))
    }

    /// Determinant of `A`.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.lu.rows() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// Convenience: factor-and-solve a general square system. Rejects
/// non-finite right-hand sides so the solution never carries NaN.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    crate::check_finite_slice(b)?;
    Ok(Lu::factor(a)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_general_system() {
        let a = Matrix::from_rows(&[
            vec![0.0, 2.0, 1.0],
            vec![1.0, -2.0, -3.0],
            vec![-1.0, 1.0, 2.0],
        ]);
        let x_true = vec![2.0, -1.0, 3.0];
        let b = a.matvec(&x_true);
        let x = solve(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn det_known_values() {
        let a = Matrix::from_rows(&[vec![3.0, 8.0], vec![4.0, 6.0]]);
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() - (-14.0)).abs() < 1e-10);
        let i = Matrix::identity(4);
        assert!((Lu::factor(&i).unwrap().det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 4.0],
        ]);
        let inv = Lu::factor(&a).unwrap().inverse();
        assert!(a.matmul(&inv).approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(&a, &[5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12 && (x[1] - 5.0).abs() < 1e-12);
    }
}
