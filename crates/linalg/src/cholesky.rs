//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used throughout the workspace to solve normal equations (linear and ridge
//! regression, the weighted least-squares cores of LIME and Kernel SHAP) and
//! to sample from multivariate Gaussians in the SCM module.
//!
//! Besides the `O(d³)` factorization, the factor supports **rank-one
//! updates and downdates** ([`cholupdate`] / [`choldowndate`]): an SPD
//! factor of `XᵀX + λI` absorbs or sheds one training row in `O(d²)`,
//! which is the kernel the incremental-training engines (PrIU-style
//! deletions, incremental data-valuation utilities) are built on.

// Triangular solves index several arrays by the same running bound;
// zipped iterators would obscure the textbook forms.
#![allow(clippy::needless_range_loop)]
use crate::matrix::Matrix;
use crate::LinalgError;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] when a non-positive pivot
    /// is encountered (the matrix is singular or indefinite) and
    /// [`LinalgError::NonFinite`] when any entry is NaN/±Inf, so a factor is
    /// never built from poisoned input.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { rows: a.rows(), cols: a.cols() });
        }
        crate::check_finite_matrix(a)?;
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i, value: sum });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Self { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward then backward substitution.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x);
        x
    }

    /// Allocation-free [`Cholesky::solve`]: writes the solution into `out`
    /// (resized to fit), so hot loops can reuse one buffer across solves.
    pub fn solve_into(&self, b: &[f64], out: &mut Vec<f64>) {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "rhs length mismatch");
        out.clear();
        out.resize(n, 0.0);
        // Forward: L y = b (y lives in `out`; row i only reads y[0..i]).
        for i in 0..n {
            let row = self.l.row(i);
            let mut sum = b[i];
            for (&lik, &yk) in row[..i].iter().zip(out.iter()) {
                sum -= lik * yk;
            }
            out[i] = sum / row[i];
        }
        // Backward: Lᵀ x = y by elimination — column i of Lᵀ is row i of
        // L, so once x[i] is known, x[i]·L[i, ..i] leaves the right-hand
        // side. Touches only contiguous row prefixes.
        for i in (0..n).rev() {
            let row = self.l.row(i);
            let xi = out[i] / row[i];
            out[i] = xi;
            let (front, _) = out.split_at_mut(i);
            for (o, &lik) in front.iter_mut().zip(row) {
                *o -= lik * xi;
            }
        }
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.col(j));
            out.set_col(j, &col);
        }
        out
    }

    /// Inverse of `A` (use sparingly; prefer `solve`).
    pub fn inverse(&self) -> Matrix {
        self.solve_matrix(&Matrix::identity(self.l.rows()))
    }

    /// `log |A|` computed from the factor diagonal (numerically stable).
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Factor of `λI` — the natural starting point for incrementally-built
    /// ridge statistics (`XᵀX + λI` with no rows absorbed yet).
    ///
    /// # Panics
    /// Panics when `lambda <= 0` (the factor would not be positive-definite).
    pub fn scaled_identity(n: usize, lambda: f64) -> Self {
        assert!(lambda > 0.0, "λ must be positive for an SPD factor");
        Self { l: Matrix::diag(&vec![lambda.sqrt(); n]) }
    }

    /// Rank-one **update**: rewrites the factor in place so that `L Lᵀ`
    /// becomes `A + x xᵀ`, in `O(d²)` instead of the `O(d³)` of a fresh
    /// factorization. The classic hyperbolic-rotation sweep (LINPACK
    /// `dchud`): each column `k` is rotated so the updated factor stays
    /// lower-triangular with a positive diagonal.
    ///
    /// # Panics
    /// Panics when `x.len()` does not match the factor dimension.
    pub fn rank_one_update(&mut self, x: &[f64]) {
        let n = self.l.rows();
        assert_eq!(x.len(), n, "update vector length mismatch");
        // Row-oriented sweep: rotation `k` is determined at row `k`'s
        // diagonal and applied lazily to later rows, so the factor is
        // touched one contiguous row prefix at a time instead of walking
        // strided columns. Element-wise the arithmetic (and its order) is
        // identical to the classic column sweep.
        let mut stack = [(0.0f64, 0.0f64); ROT_STACK];
        let mut heap = Vec::new();
        let rot = rot_buffer(&mut stack, &mut heap, n);
        for i in 0..n {
            let row = self.l.row_mut(i);
            let mut wi = x[i];
            for (lik, &(c, s)) in row[..i].iter_mut().zip(rot.iter()) {
                let new = (*lik + s * wi) / c;
                wi = c * wi - s * new;
                *lik = new;
            }
            let lii = row[i];
            // Factor diagonals and update rows are far from the overflow
            // range, so the naive norm beats the libm `hypot` call.
            let r = (lii * lii + wi * wi).sqrt();
            rot[i] = (r / lii, wi / lii);
            row[i] = r;
        }
    }

    /// Rank-one **downdate**: rewrites the factor so that `L Lᵀ` becomes
    /// `A − x xᵀ`, in `O(d²)`. Fails with
    /// [`LinalgError::NotPositiveDefinite`] when the downdated matrix would
    /// be singular or indefinite (e.g. shedding a row that was never
    /// absorbed); on failure the factor is left **unchanged**, so callers
    /// can fall back to a full refactorization.
    ///
    /// # Panics
    /// Panics when `x.len()` does not match the factor dimension.
    pub fn rank_one_downdate(&mut self, x: &[f64]) -> Result<(), LinalgError> {
        let n = self.l.rows();
        assert_eq!(x.len(), n, "downdate vector length mismatch");
        // Sweep a copy; commit only on success (strong exception safety).
        // Row-oriented like `rank_one_update`; see there.
        let mut l = self.l.clone();
        let mut stack = [(0.0f64, 0.0f64); ROT_STACK];
        let mut heap = Vec::new();
        let rot = rot_buffer(&mut stack, &mut heap, n);
        for i in 0..n {
            let row = l.row_mut(i);
            let mut wi = x[i];
            for (lik, &(c, s)) in row[..i].iter_mut().zip(rot.iter()) {
                let new = (*lik - s * wi) / c;
                wi = c * wi - s * new;
                *lik = new;
            }
            let lii = row[i];
            let r2 = (lii - wi) * (lii + wi);
            // Reject while the pivot still has relative headroom: past this
            // point the downdated factor is numerically meaningless.
            if r2 <= lii * lii * 1e-14 || !r2.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: i, value: r2 });
            }
            let r = r2.sqrt();
            rot[i] = (r / lii, wi / lii);
            row[i] = r;
        }
        self.l = l;
        Ok(())
    }
}

/// Rotation buffers up to this dimension live on the stack — rank-one
/// sweeps on the small factors the valuation hot loops maintain then run
/// allocation-free.
const ROT_STACK: usize = 32;

/// Returns a `(c, s)` rotation slice of length `n`, borrowing the stack
/// array when it fits and spilling to the heap vector otherwise.
fn rot_buffer<'a>(
    stack: &'a mut [(f64, f64); ROT_STACK],
    heap: &'a mut Vec<(f64, f64)>,
    n: usize,
) -> &'a mut [(f64, f64)] {
    if n <= ROT_STACK {
        &mut stack[..n]
    } else {
        heap.resize(n, (0.0, 0.0));
        heap
    }
}

/// Free-function spelling of [`Cholesky::rank_one_update`] (MATLAB's
/// `cholupdate(R, x, '+')`).
pub fn cholupdate(factor: &mut Cholesky, x: &[f64]) {
    factor.rank_one_update(x);
}

/// Free-function spelling of [`Cholesky::rank_one_downdate`] (MATLAB's
/// `cholupdate(R, x, '-')`).
pub fn choldowndate(factor: &mut Cholesky, x: &[f64]) -> Result<(), LinalgError> {
    factor.rank_one_downdate(x)
}

/// Solves a symmetric positive-definite system, adding `ridge * I` first.
///
/// This is the standard entry point for normal-equation solves:
/// `solve_spd(&x.gram(), &x.t_matvec(&y), 1e-8)`.
pub fn solve_spd(a: &Matrix, b: &[f64], ridge: f64) -> Result<Vec<f64>, LinalgError> {
    crate::check_finite_slice(b)?;
    let mut a = a.clone();
    if ridge > 0.0 {
        a.add_diag_mut(ridge);
    }
    Ok(Cholesky::factor(&a)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I is SPD for any B.
        let b = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![0.0, 1.0, -1.0],
            vec![2.0, 0.0, 1.0],
        ]);
        let mut a = b.matmul(&b.transpose());
        a.add_diag_mut(1.0);
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose());
        assert!(rec.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = Cholesky::factor(&a).unwrap().solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9, "{xi} vs {ti}");
        }
    }

    #[test]
    fn inverse_times_a_is_identity() {
        let a = spd3();
        let inv = Cholesky::factor(&a).unwrap().inverse();
        assert!(a.matmul(&inv).approx_eq(&Matrix::identity(3), 1e-9));
    }

    #[test]
    fn log_det_matches_2x2_closed_form() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.log_det() - (11.0_f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Cholesky::factor(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn rank_one_update_matches_fresh_factorization() {
        let a = spd3();
        let x = [0.7, -1.3, 0.4];
        let mut ch = Cholesky::factor(&a).unwrap();
        ch.rank_one_update(&x);
        let mut updated = a.clone();
        for i in 0..3 {
            for j in 0..3 {
                updated[(i, j)] += x[i] * x[j];
            }
        }
        let fresh = Cholesky::factor(&updated).unwrap();
        assert!(ch.l().approx_eq(fresh.l(), 1e-10), "factors diverged");
    }

    #[test]
    fn rank_one_downdate_inverts_update() {
        let a = spd3();
        let x = [1.1, 0.2, -0.8];
        let reference = Cholesky::factor(&a).unwrap();
        let mut ch = reference.clone();
        ch.rank_one_update(&x);
        ch.rank_one_downdate(&x).unwrap();
        assert!(ch.l().approx_eq(reference.l(), 1e-9));
    }

    #[test]
    fn downdate_to_singular_rejected_and_factor_preserved() {
        // λI + xxᵀ minus (1+ε)·xxᵀ-worth of x is indefinite.
        let lambda = 1e-6;
        let x = [2.0, -1.0, 3.0];
        let mut ch = Cholesky::scaled_identity(3, lambda);
        ch.rank_one_update(&x);
        let before = ch.l().clone();
        let too_much: Vec<f64> = x.iter().map(|v| v * 1.001).collect();
        assert!(matches!(
            ch.rank_one_downdate(&too_much),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
        assert!(ch.l().approx_eq(&before, 0.0), "failed downdate must not corrupt the factor");
    }

    #[test]
    fn scaled_identity_is_the_ridge_prior_factor() {
        let ch = Cholesky::scaled_identity(4, 0.25);
        let rec = ch.l().matmul(&ch.l().transpose());
        assert!(rec.approx_eq(&Matrix::diag(&vec![0.25; 4]), 1e-15));
        let x = ch.solve(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(x, vec![4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn free_function_spellings_delegate() {
        let a = spd3();
        let x = [0.3, 0.9, -0.2];
        let mut ch = Cholesky::factor(&a).unwrap();
        cholupdate(&mut ch, &x);
        choldowndate(&mut ch, &x).unwrap();
        assert!(ch.l().approx_eq(Cholesky::factor(&a).unwrap().l(), 1e-9));
    }

    #[test]
    fn ridge_rescues_singular_system() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]); // singular
        assert!(Cholesky::factor(&a).is_err());
        let x = solve_spd(&a, &[2.0, 2.0], 1e-6).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }
}
