//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used throughout the workspace to solve normal equations (linear and ridge
//! regression, the weighted least-squares cores of LIME and Kernel SHAP) and
//! to sample from multivariate Gaussians in the SCM module.

// Triangular solves index several arrays by the same running bound;
// zipped iterators would obscure the textbook forms.
#![allow(clippy::needless_range_loop)]
use crate::matrix::Matrix;
use crate::LinalgError;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] when a non-positive pivot
    /// is encountered (the matrix is singular or indefinite).
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { rows: a.rows(), cols: a.cols() });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i, value: sum });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Self { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward then backward substitution.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.col(j));
            out.set_col(j, &col);
        }
        out
    }

    /// Inverse of `A` (use sparingly; prefer `solve`).
    pub fn inverse(&self) -> Matrix {
        self.solve_matrix(&Matrix::identity(self.l.rows()))
    }

    /// `log |A|` computed from the factor diagonal (numerically stable).
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Solves a symmetric positive-definite system, adding `ridge * I` first.
///
/// This is the standard entry point for normal-equation solves:
/// `solve_spd(&x.gram(), &x.t_matvec(&y), 1e-8)`.
pub fn solve_spd(a: &Matrix, b: &[f64], ridge: f64) -> Result<Vec<f64>, LinalgError> {
    let mut a = a.clone();
    if ridge > 0.0 {
        a.add_diag_mut(ridge);
    }
    Ok(Cholesky::factor(&a)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I is SPD for any B.
        let b = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![0.0, 1.0, -1.0],
            vec![2.0, 0.0, 1.0],
        ]);
        let mut a = b.matmul(&b.transpose());
        a.add_diag_mut(1.0);
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose());
        assert!(rec.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = Cholesky::factor(&a).unwrap().solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9, "{xi} vs {ti}");
        }
    }

    #[test]
    fn inverse_times_a_is_identity() {
        let a = spd3();
        let inv = Cholesky::factor(&a).unwrap().inverse();
        assert!(a.matmul(&inv).approx_eq(&Matrix::identity(3), 1e-9));
    }

    #[test]
    fn log_det_matches_2x2_closed_form() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.log_det() - (11.0_f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Cholesky::factor(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn ridge_rescues_singular_system() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]); // singular
        assert!(Cholesky::factor(&a).is_err());
        let x = solve_spd(&a, &[2.0, 2.0], 1e-6).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }
}
