//! Higher-level solvers built on the factorizations: (weighted/ridge) least
//! squares and conjugate gradients.
//!
//! - Ordinary/ridge least squares back linear regression and the global
//!   surrogate models.
//! - *Weighted* least squares is the computational core of both LIME
//!   (locality kernel weights) and Kernel SHAP (Shapley kernel weights).
//! - Conjugate gradients provides Hessian-inverse–vector products for
//!   influence functions without materializing the inverse (Koh & Liang §3).

use crate::cholesky::solve_spd;
use crate::matrix::{dot, vaxpy, vsub, Matrix};
use crate::LinalgError;

/// Solves `min_w ||X w - y||² + ridge ||w||²` via the normal equations.
pub fn least_squares(x: &Matrix, y: &[f64], ridge: f64) -> Result<Vec<f64>, LinalgError> {
    assert_eq!(x.rows(), y.len(), "row/target count mismatch");
    crate::check_finite_slice(y)?;
    let gram = x.gram();
    let rhs = x.t_matvec(y);
    solve_spd(&gram, &rhs, ridge.max(0.0))
}

/// Solves `min_w Σ_i s_i (x_i·w - y_i)² + ridge ||w||²` for sample weights `s`.
///
/// Weights must be non-negative; rows with zero weight are effectively
/// ignored.
pub fn weighted_least_squares(
    x: &Matrix,
    y: &[f64],
    weights: &[f64],
    ridge: f64,
) -> Result<Vec<f64>, LinalgError> {
    assert_eq!(x.rows(), y.len(), "row/target count mismatch");
    assert_eq!(x.rows(), weights.len(), "row/weight count mismatch");
    crate::check_finite_slice(y)?;
    crate::check_finite_slice(weights)?;
    let d = x.cols();
    let mut gram = Matrix::zeros(d, d);
    let mut rhs = vec![0.0; d];
    for ((row, &yi), &si) in x.iter_rows().zip(y).zip(weights) {
        debug_assert!(si >= 0.0, "negative sample weight");
        if si == 0.0 {
            continue;
        }
        for (j, &rj) in row.iter().enumerate() {
            let srj = si * rj;
            if srj == 0.0 {
                continue;
            }
            let grow = gram.row_mut(j);
            for (g, &rk) in grow.iter_mut().zip(row) {
                *g += srj * rk;
            }
            rhs[j] += srj * yi;
        }
    }
    solve_spd(&gram, &rhs, ridge.max(0.0))
}

/// Result of a conjugate-gradient solve.
#[derive(Clone, Debug)]
pub struct CgResult {
    /// The solution estimate.
    pub x: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final residual norm `||A x - b||`.
    pub residual_norm: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Conjugate gradients for `A x = b` where `A` is given implicitly as a
/// matrix–vector product closure (must be symmetric positive-definite).
///
/// This is how influence functions compute `H⁻¹ v` using only Hessian–vector
/// products.
pub fn conjugate_gradient(
    apply_a: impl Fn(&[f64]) -> Vec<f64>,
    b: &[f64],
    tol: f64,
    max_iter: usize,
) -> CgResult {
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut r = b.to_vec(); // r = b - A·0
    let mut p = r.clone();
    let mut rs_old = dot(&r, &r);
    let b_norm = rs_old.sqrt().max(1e-300);
    let target = (tol * b_norm).max(f64::MIN_POSITIVE);

    for it in 0..max_iter {
        if rs_old.sqrt() <= target {
            return CgResult { x, iterations: it, residual_norm: rs_old.sqrt(), converged: true };
        }
        let ap = apply_a(&p);
        let pap = dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            // Not SPD along p (or numerical breakdown): stop with best estimate.
            return CgResult { x, iterations: it, residual_norm: rs_old.sqrt(), converged: false };
        }
        let alpha = rs_old / pap;
        x = vaxpy(&x, alpha, &p);
        r = vaxpy(&r, -alpha, &ap);
        let rs_new = dot(&r, &r);
        p = vaxpy(&r, rs_new / rs_old, &p);
        rs_old = rs_new;
    }
    let converged = rs_old.sqrt() <= target;
    CgResult { x, iterations: max_iter, residual_norm: rs_old.sqrt(), converged }
}

/// Conjugate gradients with an explicit matrix.
pub fn conjugate_gradient_mat(a: &Matrix, b: &[f64], tol: f64, max_iter: usize) -> CgResult {
    conjugate_gradient(|v| a.matvec(v), b, tol, max_iter)
}

/// Coefficient of determination R² of predictions vs targets.
pub fn r_squared(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    let n = y_true.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mean = y_true.iter().sum::<f64>() / n;
    let ss_tot: f64 = y_true.iter().map(|v| (v - mean).powi(2)).sum();
    let ss_res: f64 = vsub(y_true, y_pred).iter().map(|v| v * v).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 { 1.0 } else { 0.0 }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Weighted R², the local-fidelity measure reported by LIME.
pub fn weighted_r_squared(y_true: &[f64], y_pred: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len());
    assert_eq!(y_true.len(), weights.len());
    let wsum: f64 = weights.iter().sum();
    if wsum == 0.0 {
        return 0.0;
    }
    let mean = y_true.iter().zip(weights).map(|(y, w)| y * w).sum::<f64>() / wsum;
    let ss_tot: f64 = y_true.iter().zip(weights).map(|(y, w)| w * (y - mean).powi(2)).sum();
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .zip(weights)
        .map(|((t, p), w)| w * (t - p).powi(2))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 { 1.0 } else { 0.0 }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_squares_exact_fit() {
        // y = 2 + 3 x1 - x2, noiseless; include intercept column.
        let xs = [
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![2.0, 3.0],
            vec![-1.0, 1.5],
        ];
        let x = Matrix::from_rows(&xs.iter().map(|r| {
            let mut v = vec![1.0];
            v.extend_from_slice(r);
            v
        }).collect::<Vec<_>>());
        let y: Vec<f64> = xs.iter().map(|r| 2.0 + 3.0 * r[0] - r[1]).collect();
        let w = least_squares(&x, &y, 1e-10).unwrap();
        assert!((w[0] - 2.0).abs() < 1e-5);
        assert!((w[1] - 3.0).abs() < 1e-5);
        assert!((w[2] + 1.0).abs() < 1e-5);
    }

    #[test]
    fn weighted_ls_ignores_zero_weight_outlier() {
        // Perfect line y = x plus one wild outlier with zero weight.
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
        ]);
        let y = vec![0.0, 1.0, 2.0, 100.0];
        let weights = vec![1.0, 1.0, 1.0, 0.0];
        let w = weighted_least_squares(&x, &y, &weights, 1e-10).unwrap();
        assert!(w[0].abs() < 1e-5);
        assert!((w[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn weighted_ls_matches_unweighted_with_unit_weights() {
        let x = Matrix::from_fn(6, 3, |i, j| ((i * 3 + j) % 5) as f64 + 1.0);
        let y = vec![1.0, 2.0, 0.5, -1.0, 3.0, 2.5];
        let a = least_squares(&x, &y, 1e-8).unwrap();
        let b = weighted_least_squares(&x, &y, &vec![1.0; 6], 1e-8).unwrap();
        for (ai, bi) in a.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-8);
        }
    }

    #[test]
    fn cg_matches_cholesky() {
        let b0 = Matrix::from_fn(4, 4, |i, j| ((i + 2 * j) % 3) as f64);
        let mut a = b0.matmul(&b0.transpose());
        a.add_diag_mut(2.0);
        let rhs = vec![1.0, -1.0, 2.0, 0.5];
        let cg = conjugate_gradient_mat(&a, &rhs, 1e-12, 100);
        assert!(cg.converged);
        let direct = crate::cholesky::Cholesky::factor(&a).unwrap().solve(&rhs);
        for (c, d) in cg.x.iter().zip(&direct) {
            assert!((c - d).abs() < 1e-8, "{c} vs {d}");
        }
    }

    #[test]
    fn cg_exact_in_n_iterations() {
        let a = Matrix::diag(&[1.0, 2.0, 3.0]);
        let res = conjugate_gradient_mat(&a, &[1.0, 1.0, 1.0], 1e-14, 10);
        assert!(res.converged);
        assert!(res.iterations <= 4);
    }

    #[test]
    fn r2_perfect_and_mean_baselines() {
        let y = vec![1.0, 2.0, 3.0];
        assert!((r_squared(&y, &y) - 1.0).abs() < 1e-12);
        let mean_pred = vec![2.0, 2.0, 2.0];
        assert!(r_squared(&y, &mean_pred).abs() < 1e-12);
    }

    #[test]
    fn weighted_r2_respects_weights() {
        let y = vec![1.0, 2.0, 100.0];
        let p = vec![1.0, 2.0, 0.0];
        // Zero weight on the mispredicted point ⇒ perfect weighted fit.
        assert!((weighted_r_squared(&y, &p, &[1.0, 1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(weighted_r_squared(&y, &p, &[1.0, 1.0, 1.0]) < 1.0);
    }
}
