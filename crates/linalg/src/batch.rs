//! Blocked kernels for batched model inference.
//!
//! The batched prediction paths in `xai-models` funnel through these three
//! kernels. They are *cache-blocked* — several output values are produced
//! per pass over the shared operand, so the right-hand side stays in
//! registers/L1 — but the **reduction dimension is never tiled or
//! reordered**. Each output is accumulated in ascending index order,
//! exactly like the naive [`crate::dot`] loop, so every result is
//! bit-identical to the corresponding scalar expression. That contract is
//! what lets the batched explainer paths in `xai-shapley` / `xai-surrogate`
//! promise bit-identical output to their scalar counterparts
//! (`tests/batch_equivalence.rs` enforces it end to end).

use crate::matrix::{dot, Matrix};

/// Rows of output produced per pass over the shared right-hand operand.
const ROW_BLOCK: usize = 4;

/// Blocked matrix–vector product: `out[i] = dot(a.row(i), v)`.
///
/// Processes [`ROW_BLOCK`] rows per pass with one independent accumulator
/// each (instruction-level parallelism; `v` is read once per block from
/// cache). Each accumulator runs over `k` in ascending order starting from
/// `0.0`, so `out[i]` is bit-identical to `dot(a.row(i), v)`.
pub fn matvec_blocked(a: &Matrix, v: &[f64]) -> Vec<f64> {
    assert_eq!(a.cols(), v.len(), "matvec arity mismatch");
    let m = a.rows();
    let mut out = vec![0.0; m];
    let mut i = 0;
    while i + ROW_BLOCK <= m {
        let (r0, r1, r2, r3) = (a.row(i), a.row(i + 1), a.row(i + 2), a.row(i + 3));
        let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
        for (k, &vk) in v.iter().enumerate() {
            s0 += r0[k] * vk;
            s1 += r1[k] * vk;
            s2 += r2[k] * vk;
            s3 += r3[k] * vk;
        }
        out[i] = s0;
        out[i + 1] = s1;
        out[i + 2] = s2;
        out[i + 3] = s3;
        i += ROW_BLOCK;
    }
    while i < m {
        out[i] = dot(a.row(i), v);
        i += 1;
    }
    out
}

/// Blocked affine map with *bias-first* accumulation:
/// `out[i] = ((bias + row[0]·v[0]) + row[1]·v[1]) + …`.
///
/// This is the association produced by an augmented dot product
/// `dot([bias, v], [1, row])` — the shape of a logistic-regression margin —
/// which differs in floating point from `bias + dot(row, v)` (sum first,
/// bias last). Models whose scalar path folds the intercept *into* the
/// accumulation must use this kernel to stay bit-identical.
pub fn affine_fold(a: &Matrix, v: &[f64], bias: f64) -> Vec<f64> {
    assert_eq!(a.cols(), v.len(), "affine arity mismatch");
    let m = a.rows();
    let mut out = vec![0.0; m];
    let mut i = 0;
    while i + ROW_BLOCK <= m {
        let (r0, r1, r2, r3) = (a.row(i), a.row(i + 1), a.row(i + 2), a.row(i + 3));
        let (mut s0, mut s1, mut s2, mut s3) = (bias, bias, bias, bias);
        for (k, &vk) in v.iter().enumerate() {
            s0 += r0[k] * vk;
            s1 += r1[k] * vk;
            s2 += r2[k] * vk;
            s3 += r3[k] * vk;
        }
        out[i] = s0;
        out[i + 1] = s1;
        out[i + 2] = s2;
        out[i + 3] = s3;
        i += ROW_BLOCK;
    }
    while i < m {
        let row = a.row(i);
        let mut s = bias;
        for (k, &vk) in v.iter().enumerate() {
            s += row[k] * vk;
        }
        out[i] = s;
        i += 1;
    }
    out
}

/// Columns of output produced per pass in [`gemm_nt`].
const COL_BLOCK: usize = 4;

/// Blocked `A·Bᵀ`: `out[(i, j)] = dot(a.row(i), b.row(j))`.
///
/// `a` is `m×k`, `b` is `n×k`; the result is `m×n`. The kernel blocks over
/// [`COL_BLOCK`] rows of `b` (output columns) with one accumulator each, so
/// a panel of `b` is streamed once per `a`-row; the `k` loop always runs in
/// ascending order from `0.0`, keeping every entry bit-identical to the
/// naive dot product. This is the MLP hidden-layer kernel (`X·W₁ᵀ`).
pub fn gemm_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "gemm_nt inner-dimension mismatch");
    let (m, n, kk) = (a.rows(), b.rows(), a.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        let mut j = 0;
        while j + COL_BLOCK <= n {
            let (b0, b1, b2, b3) = (b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3));
            let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
            for k in 0..kk {
                let av = arow[k];
                s0 += av * b0[k];
                s1 += av * b1[k];
                s2 += av * b2[k];
                s3 += av * b3[k];
            }
            orow[j] = s0;
            orow[j + 1] = s1;
            orow[j + 2] = s2;
            orow[j + 3] = s3;
            j += COL_BLOCK;
        }
        while j < n {
            orow[j] = dot(arow, b.row(j));
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(rows: usize, cols: usize, salt: u64) -> Matrix {
        // Deterministic awkward values: irrational-ish magnitudes so any
        // accumulation reorder would change low-order bits.
        Matrix::from_fn(rows, cols, |i, j| {
            let t = (i * cols + j) as f64 + salt as f64 * 0.618;
            (t * 1.414_213_562_373_095).sin() * 3.0 + 0.1
        })
    }

    #[test]
    fn matvec_blocked_is_bit_identical_to_dot() {
        for rows in [0usize, 1, 3, 4, 5, 8, 11] {
            let a = probe(rows, 7, 1);
            let v: Vec<f64> = (0..7).map(|k| ((k * k) as f64).sqrt() - 1.2).collect();
            let blocked = matvec_blocked(&a, &v);
            let naive: Vec<f64> = (0..rows).map(|i| dot(a.row(i), &v)).collect();
            assert_eq!(blocked, naive, "rows={rows}");
        }
    }

    #[test]
    fn matvec_blocked_matches_matrix_matvec() {
        let a = probe(9, 5, 2);
        let v = vec![0.3, -1.7, 2.2, 0.0, 5.5];
        assert_eq!(matvec_blocked(&a, &v), a.matvec(&v));
    }

    #[test]
    fn affine_fold_reproduces_augmented_dot() {
        let a = probe(10, 6, 3);
        let w: Vec<f64> = (0..7).map(|k| (k as f64 - 2.5) * 0.317).collect();
        let folded = affine_fold(&a, &w[1..], w[0]);
        for i in 0..a.rows() {
            let mut aug = vec![1.0];
            aug.extend_from_slice(a.row(i));
            assert_eq!(folded[i], dot(&w, &aug), "row {i}");
        }
    }

    #[test]
    fn affine_fold_differs_from_bias_last_in_general() {
        // Sanity check of the doc claim: bias-first and bias-last are
        // different FP associations (they agree only by coincidence).
        let a = probe(64, 9, 4);
        let v: Vec<f64> = (0..9).map(|k| ((k + 1) as f64).ln() - 0.9).collect();
        let first = affine_fold(&a, &v, 0.123_456_789);
        let last: Vec<f64> = matvec_blocked(&a, &v)
            .into_iter()
            .map(|s| 0.123_456_789 + s)
            .collect();
        assert!(
            first.iter().zip(&last).any(|(x, y)| x != y),
            "expected at least one low-order-bit difference"
        );
        // ... while staying equal to ~1e-15 relative.
        for (x, y) in first.iter().zip(&last) {
            assert!((x - y).abs() <= 1e-12 * x.abs().max(1.0));
        }
    }

    #[test]
    fn gemm_nt_is_bit_identical_to_dot_grid() {
        for (m, n, k) in [(0, 3, 4), (5, 0, 4), (1, 1, 1), (6, 7, 5), (8, 4, 9), (3, 10, 2)] {
            let a = probe(m, k, 5);
            let b = probe(n, k, 6);
            let c = gemm_nt(&a, &b);
            assert_eq!(c.shape(), (m, n));
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(c[(i, j)], dot(a.row(i), b.row(j)), "({i},{j}) of {m}x{n}x{k}");
                }
            }
        }
    }

    #[test]
    fn gemm_nt_matches_matmul_with_transpose() {
        let a = probe(6, 4, 7);
        let b = probe(5, 4, 8);
        let via_t = a.matmul(&b.transpose());
        let direct = gemm_nt(&a, &b);
        assert!(direct.approx_eq(&via_t, 1e-12));
    }
}
