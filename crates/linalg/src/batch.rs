//! Blocked kernels for batched model inference.
//!
//! The batched prediction paths in `xai-models` funnel through these
//! kernels. They are *cache-blocked* — several output values are produced
//! per pass over the shared operand, so the right-hand side stays in
//! registers/L1 — but the **reduction dimension is never tiled or
//! reordered**. Each output is accumulated in ascending index order,
//! exactly like the naive [`crate::dot`] loop, so every result is
//! bit-identical to the corresponding scalar expression. That contract is
//! what lets the batched explainer paths in `xai-shapley` / `xai-surrogate`
//! promise bit-identical output to their scalar counterparts
//! (`tests/batch_equivalence.rs` enforces it end to end).
//!
//! Each kernel also has a **masked** variant (`masked_matvec`,
//! `masked_affine_fold`, `masked_gemm_nt`) for zero-copy coalition
//! evaluation (DESIGN.md §12): instead of materializing a perturbed copy of
//! the background matrix, the masked kernel reads the *instance* value for
//! columns whose bit is set in a `u64` coalition mask and the *background*
//! value otherwise. The accumulation order is identical to the unmasked
//! kernel run over the materialized mixture, so masked results are
//! bit-identical to the copy-and-patch path they replace. The `_many`
//! twins (`masked_matvec_many`, `masked_affine_fold_many`) evaluate a
//! whole round of masks in one call, hoisting the weighted products into
//! arena scratch so the per-mask loop is addition-only — same bits,
//! roundly fewer instructions.

use crate::matrix::{dot, Matrix};

/// Returns true when feature `k` is replaced by the instance value under
/// `mask` (coalition member ⇒ read the instance column).
#[inline(always)]
fn masked(mask: u64, k: usize) -> bool {
    mask >> k & 1 == 1
}

/// Rows of output produced per pass over the shared right-hand operand.
const ROW_BLOCK: usize = 4;

/// Blocked matrix–vector product: `out[i] = dot(a.row(i), v)`.
///
/// Processes [`ROW_BLOCK`] rows per pass with one independent accumulator
/// each (instruction-level parallelism; `v` is read once per block from
/// cache). Each accumulator runs over `k` in ascending order starting from
/// `0.0`, so `out[i]` is bit-identical to `dot(a.row(i), v)`.
pub fn matvec_blocked(a: &Matrix, v: &[f64]) -> Vec<f64> {
    assert_eq!(a.cols(), v.len(), "matvec arity mismatch");
    let m = a.rows();
    let mut out = vec![0.0; m];
    let mut i = 0;
    while i + ROW_BLOCK <= m {
        let (r0, r1, r2, r3) = (a.row(i), a.row(i + 1), a.row(i + 2), a.row(i + 3));
        let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
        for (k, &vk) in v.iter().enumerate() {
            s0 += r0[k] * vk;
            s1 += r1[k] * vk;
            s2 += r2[k] * vk;
            s3 += r3[k] * vk;
        }
        out[i] = s0;
        out[i + 1] = s1;
        out[i + 2] = s2;
        out[i + 3] = s3;
        i += ROW_BLOCK;
    }
    while i < m {
        out[i] = dot(a.row(i), v);
        i += 1;
    }
    out
}

/// Blocked affine map with *bias-first* accumulation:
/// `out[i] = ((bias + row[0]·v[0]) + row[1]·v[1]) + …`.
///
/// This is the association produced by an augmented dot product
/// `dot([bias, v], [1, row])` — the shape of a logistic-regression margin —
/// which differs in floating point from `bias + dot(row, v)` (sum first,
/// bias last). Models whose scalar path folds the intercept *into* the
/// accumulation must use this kernel to stay bit-identical.
pub fn affine_fold(a: &Matrix, v: &[f64], bias: f64) -> Vec<f64> {
    assert_eq!(a.cols(), v.len(), "affine arity mismatch");
    let m = a.rows();
    let mut out = vec![0.0; m];
    let mut i = 0;
    while i + ROW_BLOCK <= m {
        let (r0, r1, r2, r3) = (a.row(i), a.row(i + 1), a.row(i + 2), a.row(i + 3));
        let (mut s0, mut s1, mut s2, mut s3) = (bias, bias, bias, bias);
        for (k, &vk) in v.iter().enumerate() {
            s0 += r0[k] * vk;
            s1 += r1[k] * vk;
            s2 += r2[k] * vk;
            s3 += r3[k] * vk;
        }
        out[i] = s0;
        out[i + 1] = s1;
        out[i + 2] = s2;
        out[i + 3] = s3;
        i += ROW_BLOCK;
    }
    while i < m {
        let row = a.row(i);
        let mut s = bias;
        for (k, &vk) in v.iter().enumerate() {
            s += row[k] * vk;
        }
        out[i] = s;
        i += 1;
    }
    out
}

/// Columns of output produced per pass in [`gemm_nt`].
const COL_BLOCK: usize = 4;

/// Blocked `A·Bᵀ`: `out[(i, j)] = dot(a.row(i), b.row(j))`.
///
/// `a` is `m×k`, `b` is `n×k`; the result is `m×n`. The kernel blocks over
/// [`COL_BLOCK`] rows of `b` (output columns) with one accumulator each, so
/// a panel of `b` is streamed once per `a`-row; the `k` loop always runs in
/// ascending order from `0.0`, keeping every entry bit-identical to the
/// naive dot product. This is the MLP hidden-layer kernel (`X·W₁ᵀ`).
pub fn gemm_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "gemm_nt inner-dimension mismatch");
    let (m, n, kk) = (a.rows(), b.rows(), a.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        let mut j = 0;
        while j + COL_BLOCK <= n {
            let (b0, b1, b2, b3) = (b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3));
            let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
            for k in 0..kk {
                let av = arow[k];
                s0 += av * b0[k];
                s1 += av * b1[k];
                s2 += av * b2[k];
                s3 += av * b3[k];
            }
            orow[j] = s0;
            orow[j + 1] = s1;
            orow[j + 2] = s2;
            orow[j + 3] = s3;
            j += COL_BLOCK;
        }
        while j < n {
            orow[j] = dot(arow, b.row(j));
            j += 1;
        }
    }
    out
}

/// Masked matrix–vector product over a coalition view:
/// `out[i] = dot(mix(i), v)` where `mix(i)[k]` is `instance[k]` when bit
/// `k` of `mask` is set and `background[(i, k)]` otherwise.
///
/// No mixture row is ever materialized. Accumulation runs over `k` in
/// ascending order from `0.0` per output — the same association as
/// [`matvec_blocked`] over the materialized mixture, hence bit-identical.
/// For masked columns the product `v[k]·instance[k]` is hoisted out of the
/// row loop (one multiply instead of one per background row); hoisting a
/// multiplication never changes its bits.
///
/// `out` must have exactly `background.rows()` elements; it is overwritten.
///
/// # Panics
/// Panics on arity mismatch or when `background.cols() > 64` (the mask is
/// a `u64` bitset).
pub fn masked_matvec(background: &Matrix, instance: &[f64], mask: u64, v: &[f64], out: &mut [f64]) {
    out.fill(0.0);
    masked_accumulate(background, instance, mask, v, out);
}

/// Masked affine map with *bias-first* accumulation, the coalition-view
/// twin of [`affine_fold`]: `out[i] = ((bias + mix(i)[0]·v[0]) + …)`.
///
/// Same masked-column semantics and bit-identity argument as
/// [`masked_matvec`]; the accumulators simply start at `bias`.
pub fn masked_affine_fold(
    background: &Matrix,
    instance: &[f64],
    mask: u64,
    v: &[f64],
    bias: f64,
    out: &mut [f64],
) {
    out.fill(bias);
    masked_accumulate(background, instance, mask, v, out);
}

/// Shared k-outer accumulation loop for the masked vector kernels. `out`
/// holds one running accumulator per background row; each `k` step adds
/// that column's contribution to every row, so per-row accumulation order
/// is ascending `k` — exactly the scalar `dot` association.
fn masked_accumulate(background: &Matrix, instance: &[f64], mask: u64, v: &[f64], out: &mut [f64]) {
    let (b, d) = background.shape();
    assert_eq!(instance.len(), d, "masked kernel instance arity mismatch");
    assert_eq!(v.len(), d, "masked kernel weight arity mismatch");
    assert_eq!(out.len(), b, "masked kernel output length mismatch");
    assert!(d <= 64, "masked kernels support at most 64 features, got {d}");
    let bg = background.as_slice();
    for (k, &vk) in v.iter().enumerate() {
        if masked(mask, k) {
            let p = vk * instance[k];
            for o in out.iter_mut() {
                *o += p;
            }
        } else {
            for (bi, o) in out.iter_mut().enumerate() {
                *o += vk * bg[bi * d + k];
            }
        }
    }
}

/// Batched twin of [`masked_matvec`]: evaluates every mask in `masks`
/// into consecutive `background.rows()`-length blocks of `out`
/// (coalition-major). Bit-identical to calling [`masked_matvec`] once per
/// mask, but the weighted products are hoisted out of the per-mask loop
/// (see [`masked_accumulate_many`]), so the hot loop is pure additions —
/// this is the throughput kernel behind Kernel SHAP's masked rounds.
///
/// `out` must have exactly `masks.len() × background.rows()` elements; it
/// is overwritten.
pub fn masked_matvec_many(
    background: &Matrix,
    instance: &[f64],
    masks: &[u64],
    v: &[f64],
    out: &mut [f64],
) {
    masked_accumulate_many(background, instance, masks, v, 0.0, out);
}

/// Batched twin of [`masked_affine_fold`]: bias-first masked margins for
/// every mask in `masks`, written coalition-major into `out`. Same
/// hoisting and bit-identity argument as [`masked_matvec_many`]; the
/// accumulators simply start at `bias`.
pub fn masked_affine_fold_many(
    background: &Matrix,
    instance: &[f64],
    masks: &[u64],
    v: &[f64],
    bias: f64,
    out: &mut [f64],
) {
    masked_accumulate_many(background, instance, masks, v, bias, out);
}

/// Shared batched masked accumulation. Two hoists make the per-mask loop
/// addition-only without touching the float semantics:
///
/// - `p[k] = v[k]·instance[k]` (the masked-column contribution) is
///   computed once per *call* instead of once per mask;
/// - `vbt[k][r] = v[k]·background[(r, k)]` (the unmasked-column
///   contribution) is precomputed column-major into arena scratch, so each
///   unmasked step is one contiguous vector add.
///
/// Per output row the accumulation is still `init`, then ascending `k`,
/// and every addend is the *same product of the same operands* as in
/// [`masked_accumulate`] — hoisting a multiplication never changes its
/// bits, so each block equals the single-mask kernel exactly.
fn masked_accumulate_many(
    background: &Matrix,
    instance: &[f64],
    masks: &[u64],
    v: &[f64],
    init: f64,
    out: &mut [f64],
) {
    let (b, d) = background.shape();
    assert_eq!(instance.len(), d, "masked kernel instance arity mismatch");
    assert_eq!(v.len(), d, "masked kernel weight arity mismatch");
    assert_eq!(out.len(), masks.len() * b, "masked kernel output length mismatch");
    assert!(d <= 64, "masked kernels support at most 64 features, got {d}");
    if b == 0 || masks.is_empty() {
        return;
    }
    let bg = background.as_slice();
    // Addend table, two `b`-length columns per feature: column `2k` holds
    // the unmasked contribution `v[k]·background[(r, k)]`, column `2k + 1`
    // the masked one (`v[k]·instance[k]`, replicated). The per-mask loop
    // then selects by *index arithmetic* on the mask bit — no data-
    // dependent branch, which matters because coalition bit patterns are
    // adversarially unpredictable to the branch predictor.
    crate::arena::with_scratch(2 * d * b, |tbl| {
        for k in 0..d {
            let vk = v[k];
            let pk = vk * instance[k];
            let (bg_col, inst_col) = tbl[2 * k * b..(2 * k + 2) * b].split_at_mut(b);
            for (r, c) in bg_col.iter_mut().enumerate() {
                *c = vk * bg[r * d + k];
            }
            inst_col.fill(pk);
        }
        // Compile-time block widths keep the whole accumulator in
        // registers across the k loop (one store-back per mask); other
        // widths take the in-place loop with identical operation order.
        match b {
            2 => masked_round_fixed::<2>(tbl, masks, d, init, out),
            4 => masked_round_fixed::<4>(tbl, masks, d, init, out),
            8 => masked_round_fixed::<8>(tbl, masks, d, init, out),
            16 => masked_round_fixed::<16>(tbl, masks, d, init, out),
            _ => {
                for (chunk, &mask) in out.chunks_exact_mut(b).zip(masks) {
                    chunk.fill(init);
                    for k in 0..d {
                        let bit = (mask >> k & 1) as usize;
                        let src = &tbl[(2 * k + bit) * b..(2 * k + bit + 1) * b];
                        for (o, &w) in chunk.iter_mut().zip(src) {
                            *o += w;
                        }
                    }
                }
            }
        }
    });
}

/// One masked round at a compile-time background width `B`: the running
/// sums live in a `[f64; B]` register file across the feature loop and
/// are stored back once per mask. Operation order per output row is
/// identical to the dynamic-width loop in [`masked_accumulate_many`]
/// (`init`, then ascending `k`), so the results are bit-identical.
fn masked_round_fixed<const B: usize>(
    tbl: &[f64],
    masks: &[u64],
    d: usize,
    init: f64,
    out: &mut [f64],
) {
    // Two masks in flight per iteration: their accumulator files are
    // independent, so the adds interleave instead of serializing on one
    // chain of dependent f64 additions.
    let mut chunks = out.chunks_exact_mut(2 * B);
    let mut pairs = masks.chunks_exact(2);
    for (chunk, pair) in (&mut chunks).zip(&mut pairs) {
        let (m0, m1) = (pair[0], pair[1]);
        let mut a0 = [init; B];
        let mut a1 = [init; B];
        for k in 0..d {
            let s0 = &tbl[(2 * k + (m0 >> k & 1) as usize) * B..][..B];
            let s1 = &tbl[(2 * k + (m1 >> k & 1) as usize) * B..][..B];
            for (o, &w) in a0.iter_mut().zip(s0) {
                *o += w;
            }
            for (o, &w) in a1.iter_mut().zip(s1) {
                *o += w;
            }
        }
        chunk[..B].copy_from_slice(&a0);
        chunk[B..].copy_from_slice(&a1);
    }
    for (chunk, &mask) in chunks.into_remainder().chunks_exact_mut(B).zip(pairs.remainder()) {
        let mut acc = [init; B];
        for k in 0..d {
            let src = &tbl[(2 * k + (mask >> k & 1) as usize) * B..][..B];
            for (o, &w) in acc.iter_mut().zip(src) {
                *o += w;
            }
        }
        chunk.copy_from_slice(&acc);
    }
}

/// Masked `A·Bᵀ` over a coalition view, the twin of [`gemm_nt`]:
/// `out[(i, j)] = dot(mix(i), b.row(j))` with `mix(i)` as in
/// [`masked_matvec`]. `out` must be `background.rows() × b.rows()` and is
/// overwritten.
///
/// Loop structure (COL_BLOCK panel over `b`, ascending `k` from `0.0`) is
/// identical to [`gemm_nt`] — the only difference is that the `a` operand
/// is selected per element instead of read from a materialized mixture, so
/// every entry stays bit-identical. This is the masked MLP hidden-layer
/// kernel.
pub fn masked_gemm_nt(background: &Matrix, instance: &[f64], mask: u64, b: &Matrix, out: &mut Matrix) {
    let (m, kk) = background.shape();
    let n = b.rows();
    assert_eq!(b.cols(), kk, "masked_gemm_nt inner-dimension mismatch");
    assert_eq!(instance.len(), kk, "masked_gemm_nt instance arity mismatch");
    assert_eq!(out.shape(), (m, n), "masked_gemm_nt output shape mismatch");
    assert!(kk <= 64, "masked kernels support at most 64 features, got {kk}");
    for i in 0..m {
        let arow = background.row(i);
        let orow = out.row_mut(i);
        let mut j = 0;
        while j + COL_BLOCK <= n {
            let (b0, b1, b2, b3) = (b.row(j), b.row(j + 1), b.row(j + 2), b.row(j + 3));
            let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
            for k in 0..kk {
                let av = if masked(mask, k) { instance[k] } else { arow[k] };
                s0 += av * b0[k];
                s1 += av * b1[k];
                s2 += av * b2[k];
                s3 += av * b3[k];
            }
            orow[j] = s0;
            orow[j + 1] = s1;
            orow[j + 2] = s2;
            orow[j + 3] = s3;
            j += COL_BLOCK;
        }
        while j < n {
            let brow = b.row(j);
            let mut s = 0.0;
            for k in 0..kk {
                let av = if masked(mask, k) { instance[k] } else { arow[k] };
                s += av * brow[k];
            }
            orow[j] = s;
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(rows: usize, cols: usize, salt: u64) -> Matrix {
        // Deterministic awkward values: irrational-ish magnitudes so any
        // accumulation reorder would change low-order bits.
        Matrix::from_fn(rows, cols, |i, j| {
            let t = (i * cols + j) as f64 + salt as f64 * 0.618;
            (t * 1.414_213_562_373_095).sin() * 3.0 + 0.1
        })
    }

    #[test]
    fn matvec_blocked_is_bit_identical_to_dot() {
        for rows in [0usize, 1, 3, 4, 5, 8, 11] {
            let a = probe(rows, 7, 1);
            let v: Vec<f64> = (0..7).map(|k| ((k * k) as f64).sqrt() - 1.2).collect();
            let blocked = matvec_blocked(&a, &v);
            let naive: Vec<f64> = (0..rows).map(|i| dot(a.row(i), &v)).collect();
            assert_eq!(blocked, naive, "rows={rows}");
        }
    }

    #[test]
    fn matvec_blocked_matches_matrix_matvec() {
        let a = probe(9, 5, 2);
        let v = vec![0.3, -1.7, 2.2, 0.0, 5.5];
        assert_eq!(matvec_blocked(&a, &v), a.matvec(&v));
    }

    #[test]
    fn affine_fold_reproduces_augmented_dot() {
        let a = probe(10, 6, 3);
        let w: Vec<f64> = (0..7).map(|k| (k as f64 - 2.5) * 0.317).collect();
        let folded = affine_fold(&a, &w[1..], w[0]);
        for i in 0..a.rows() {
            let mut aug = vec![1.0];
            aug.extend_from_slice(a.row(i));
            assert_eq!(folded[i], dot(&w, &aug), "row {i}");
        }
    }

    #[test]
    fn affine_fold_differs_from_bias_last_in_general() {
        // Sanity check of the doc claim: bias-first and bias-last are
        // different FP associations (they agree only by coincidence).
        let a = probe(64, 9, 4);
        let v: Vec<f64> = (0..9).map(|k| ((k + 1) as f64).ln() - 0.9).collect();
        let first = affine_fold(&a, &v, 0.123_456_789);
        let last: Vec<f64> = matvec_blocked(&a, &v)
            .into_iter()
            .map(|s| 0.123_456_789 + s)
            .collect();
        assert!(
            first.iter().zip(&last).any(|(x, y)| x != y),
            "expected at least one low-order-bit difference"
        );
        // ... while staying equal to ~1e-15 relative.
        for (x, y) in first.iter().zip(&last) {
            assert!((x - y).abs() <= 1e-12 * x.abs().max(1.0));
        }
    }

    #[test]
    fn gemm_nt_is_bit_identical_to_dot_grid() {
        for (m, n, k) in [(0, 3, 4), (5, 0, 4), (1, 1, 1), (6, 7, 5), (8, 4, 9), (3, 10, 2)] {
            let a = probe(m, k, 5);
            let b = probe(n, k, 6);
            let c = gemm_nt(&a, &b);
            assert_eq!(c.shape(), (m, n));
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(c[(i, j)], dot(a.row(i), b.row(j)), "({i},{j}) of {m}x{n}x{k}");
                }
            }
        }
    }

    #[test]
    fn gemm_nt_matches_matmul_with_transpose() {
        let a = probe(6, 4, 7);
        let b = probe(5, 4, 8);
        let via_t = a.matmul(&b.transpose());
        let direct = gemm_nt(&a, &b);
        assert!(direct.approx_eq(&via_t, 1e-12));
    }

    /// Materializes the coalition mixture the masked kernels read in place:
    /// instance value where the mask bit is set, background value otherwise.
    fn mixture(background: &Matrix, instance: &[f64], mask: u64) -> Matrix {
        Matrix::from_fn(background.rows(), background.cols(), |i, k| {
            if masked(mask, k) {
                instance[k]
            } else {
                background[(i, k)]
            }
        })
    }

    /// Mask patterns exercised by every masked-kernel test: empty, full,
    /// each singleton, and a handful of irregular subsets.
    fn mask_patterns(d: usize) -> Vec<u64> {
        let full = if d == 64 { u64::MAX } else { (1u64 << d) - 1 };
        let mut masks = vec![0, full];
        for k in 0..d {
            masks.push(1u64 << k);
        }
        masks.push(0b1011_0101 & full);
        masks.push(0b0100_1010 & full);
        masks.push(full & !1);
        masks
    }

    #[test]
    fn masked_matvec_is_bit_identical_to_materialized() {
        for rows in [1usize, 3, 4, 8, 11] {
            let bg = probe(rows, 9, 11);
            let inst: Vec<f64> = (0..9).map(|k| (k as f64 * 2.399).cos() * 1.7).collect();
            let v: Vec<f64> = (0..9).map(|k| ((k * k) as f64).sqrt() - 1.2).collect();
            let mut out = vec![f64::NAN; rows];
            for mask in mask_patterns(9) {
                masked_matvec(&bg, &inst, mask, &v, &mut out);
                let expect = matvec_blocked(&mixture(&bg, &inst, mask), &v);
                assert_eq!(out, expect, "rows={rows} mask={mask:#b}");
            }
        }
    }

    #[test]
    fn masked_affine_fold_is_bit_identical_to_materialized() {
        let bg = probe(8, 6, 12);
        let inst: Vec<f64> = (0..6).map(|k| (k as f64 * 1.093).sin() - 0.4).collect();
        let w: Vec<f64> = (0..7).map(|k| (k as f64 - 2.5) * 0.317).collect();
        let mut out = vec![f64::NAN; 8];
        for mask in mask_patterns(6) {
            masked_affine_fold(&bg, &inst, mask, &w[1..], w[0], &mut out);
            let expect = affine_fold(&mixture(&bg, &inst, mask), &w[1..], w[0]);
            assert_eq!(out, expect, "mask={mask:#b}");
        }
    }

    #[test]
    fn masked_many_kernels_are_bit_identical_to_per_mask_calls() {
        for rows in [1usize, 4, 8, 11] {
            let bg = probe(rows, 9, 15);
            let inst: Vec<f64> = (0..9).map(|k| (k as f64 * 0.731).cos() * 2.1).collect();
            let w: Vec<f64> = (0..10).map(|k| (k as f64 - 4.5) * 0.277).collect();
            let masks = mask_patterns(9);
            let mut many = vec![f64::NAN; masks.len() * rows];
            let mut single = vec![f64::NAN; rows];

            masked_matvec_many(&bg, &inst, &masks, &w[1..], &mut many);
            for (chunk, &mask) in many.chunks_exact(rows).zip(&masks) {
                masked_matvec(&bg, &inst, mask, &w[1..], &mut single);
                assert_eq!(chunk, &single[..], "matvec rows={rows} mask={mask:#b}");
            }

            masked_affine_fold_many(&bg, &inst, &masks, &w[1..], w[0], &mut many);
            for (chunk, &mask) in many.chunks_exact(rows).zip(&masks) {
                masked_affine_fold(&bg, &inst, mask, &w[1..], w[0], &mut single);
                assert_eq!(chunk, &single[..], "affine rows={rows} mask={mask:#b}");
            }
        }
        // Degenerate shapes are no-ops, not panics.
        let bg = probe(3, 2, 16);
        masked_matvec_many(&bg, &[0.5, 0.5], &[], &[1.0, 2.0], &mut []);
        let empty = Matrix::zeros(0, 2);
        masked_matvec_many(&empty, &[0.5, 0.5], &[1, 2], &[1.0, 2.0], &mut []);
    }

    #[test]
    fn masked_gemm_nt_is_bit_identical_to_materialized() {
        for (m, n) in [(1usize, 1usize), (5, 4), (8, 7), (3, 10)] {
            let bg = probe(m, 5, 13);
            let inst: Vec<f64> = (0..5).map(|k| (k as f64 * 3.14).tan().clamp(-2.0, 2.0)).collect();
            let b = probe(n, 5, 14);
            let mut out = Matrix::zeros(m, n);
            for mask in mask_patterns(5) {
                masked_gemm_nt(&bg, &inst, mask, &b, &mut out);
                let expect = gemm_nt(&mixture(&bg, &inst, mask), &b);
                assert_eq!(out.as_slice(), expect.as_slice(), "m={m} n={n} mask={mask:#b}");
            }
        }
    }
}
