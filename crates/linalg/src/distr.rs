//! Random sampling primitives (Gaussian, multivariate Gaussian, categorical).
//!
//! `rand_distr` is not on the dependency allowlist, so the Gaussian sampler
//! is a small Box–Muller implementation. Every sampler takes an explicit
//! `Rng` so callers stay deterministic under a fixed seed.

// The lower-triangular matvec walks rows and a prefix of z in lockstep.
#![allow(clippy::needless_range_loop)]
use crate::cholesky::Cholesky;
use crate::matrix::Matrix;
use crate::LinalgError;
use xai_rand::Rng;

/// Draws a standard normal value via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Reject u1 == 0 to avoid ln(0).
    let mut u1: f64 = rng.gen();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.gen();
    }
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws `N(mean, std²)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * standard_normal(rng)
}

/// Fills a vector with iid standard normals.
pub fn normal_vec<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    (0..n).map(|_| standard_normal(rng)).collect()
}

/// Multivariate normal sampler `N(mean, cov)` using the Cholesky factor of
/// the covariance.
#[derive(Clone, Debug)]
pub struct MultivariateNormal {
    mean: Vec<f64>,
    chol_l: Matrix,
}

impl MultivariateNormal {
    /// Builds the sampler; fails when `cov` is not positive-definite.
    pub fn new(mean: Vec<f64>, cov: &Matrix) -> Result<Self, LinalgError> {
        assert_eq!(mean.len(), cov.rows(), "mean/cov dimension mismatch");
        let chol = Cholesky::factor(cov)?;
        Ok(Self { mean, chol_l: chol.l().clone() })
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let z = normal_vec(rng, self.mean.len());
        let mut out = self.mean.clone();
        // out += L z
        for i in 0..self.mean.len() {
            for (k, &zk) in z.iter().enumerate().take(i + 1) {
                out[i] += self.chol_l[(i, k)] * zk;
            }
        }
        out
    }

    /// Draws `n` samples as rows of a matrix.
    pub fn sample_matrix<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Matrix {
        let d = self.mean.len();
        let mut m = Matrix::zeros(n, d);
        for i in 0..n {
            let s = self.sample(rng);
            m.row_mut(i).copy_from_slice(&s);
        }
        m
    }
}

/// Samples an index from unnormalized non-negative weights.
///
/// # Panics
/// Panics when all weights are zero or any weight is negative/non-finite.
pub fn categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights
        .iter()
        .map(|&w| {
            assert!(w >= 0.0 && w.is_finite(), "invalid categorical weight {w}");
            w
        })
        .sum();
    assert!(total > 0.0, "categorical weights sum to zero");
    let mut t = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Bernoulli draw with success probability `p`.
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    rng.gen::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, pearson, std_dev};
    use xai_rand::rngs::StdRng;
    use xai_rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        assert!(mean(&xs).abs() < 0.03, "mean {}", mean(&xs));
        assert!((std_dev(&xs) - 1.0).abs() < 0.03, "std {}", std_dev(&xs));
    }

    #[test]
    fn mvn_respects_correlation() {
        let cov = Matrix::from_rows(&[vec![1.0, 0.8], vec![0.8, 1.0]]);
        let mvn = MultivariateNormal::new(vec![0.0, 5.0], &cov).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let m = mvn.sample_matrix(&mut rng, 10_000);
        let c0 = m.col(0);
        let c1 = m.col(1);
        assert!((mean(&c1) - 5.0).abs() < 0.05);
        let r = pearson(&c0, &c1);
        assert!((r - 0.8).abs() < 0.05, "correlation {r}");
    }

    #[test]
    fn mvn_rejects_indefinite_cov() {
        let cov = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(MultivariateNormal::new(vec![0.0, 0.0], &cov).is_err());
    }

    #[test]
    fn categorical_frequencies_follow_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[categorical(&mut rng, &weights)] += 1;
        }
        let freq: Vec<f64> = counts.iter().map(|&c| c as f64 / 30_000.0).collect();
        assert!((freq[0] - 0.1).abs() < 0.02);
        assert!((freq[1] - 0.3).abs() < 0.02);
        assert!((freq[2] - 0.6).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn categorical_all_zero_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        categorical(&mut rng, &[0.0, 0.0]);
    }

    #[test]
    fn deterministic_under_seed() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            normal_vec(&mut rng, 5)
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }
}
