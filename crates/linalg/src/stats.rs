//! Descriptive statistics over slices and matrix columns.
//!
//! These primitives are used for dataset standardization, the
//! median-absolute-deviation distances of counterfactual search (Wachter et
//! al. style), and correlation structure in the synthetic generators.

use crate::matrix::Matrix;

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0 for fewer than two values.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (average of middle two for even lengths); NaN-free inputs assumed.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Median absolute deviation: `median(|x - median(x)|)`.
///
/// The robust scale used to normalize counterfactual distances.
pub fn mad(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let med = median(xs);
    let devs: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median(&devs)
}

/// Empirical quantile with linear interpolation, `q` in `\[0, 1\]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Sample covariance between two equal-length slices.
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Pearson correlation; 0 when either side is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let sx = std_dev(xs);
    let sy = std_dev(ys);
    if sx == 0.0 || sy == 0.0 {
        return 0.0;
    }
    let n = xs.len() as f64;
    covariance(xs, ys) * (n - 1.0) / n / (sx * sy)
}

/// Spearman rank correlation; the standard agreement measure between
/// estimated and ground-truth influence/valuation rankings.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

/// Fractional ranks (ties get the average rank), 1-based.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in ranks input"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Column means of a matrix.
pub fn col_means(m: &Matrix) -> Vec<f64> {
    (0..m.cols()).map(|j| mean(&m.col(j))).collect()
}

/// Column standard deviations of a matrix.
pub fn col_stds(m: &Matrix) -> Vec<f64> {
    (0..m.cols()).map(|j| std_dev(&m.col(j))).collect()
}

/// Sample covariance matrix of the rows of `m` (features in columns).
pub fn covariance_matrix(m: &Matrix) -> Matrix {
    let d = m.cols();
    let means = col_means(m);
    let mut cov = Matrix::zeros(d, d);
    if m.rows() < 2 {
        return cov;
    }
    for row in m.iter_rows() {
        for j in 0..d {
            let dj = row[j] - means[j];
            if dj == 0.0 {
                continue;
            }
            let crow = cov.row_mut(j);
            for (k, c) in crow.iter_mut().enumerate() {
                *c += dj * (row[k] - means[k]);
            }
        }
    }
    cov.scale_mut(1.0 / (m.rows() - 1) as f64);
    cov
}

/// Top-k agreement between two score vectors: fraction of the k largest of
/// `a` that also appear among the k largest of `b`.
pub fn top_k_agreement(a: &[f64], b: &[f64], k: usize) -> f64 {
    assert_eq!(a.len(), b.len());
    let k = k.min(a.len());
    if k == 0 {
        return 1.0;
    }
    let top = |v: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&x, &y| v[y].partial_cmp(&v[x]).expect("NaN in top_k input"));
        idx.truncate(k);
        idx
    };
    let ta = top(a);
    let tb = top(b);
    let hits = ta.iter().filter(|i| tb.contains(i)).count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_and_mad() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        // MAD of {1,1,2,2,4,6,9} around median 2 is median{1,1,0,0,2,4,7}=1
        assert_eq!(mad(&[1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0]), 1.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 0.5), 5.0);
        assert_eq!(quantile(&xs, 1.0), 10.0);
    }

    #[test]
    fn correlation_signs() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let yn: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &yn) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[1.0; 4]), 0.0);
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone but non-linear relationship ⇒ Spearman 1, Pearson < 1.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y) < 1.0);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn covariance_matrix_symmetry_and_diag() {
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![2.0, 1.0],
            vec![3.0, 4.0],
            vec![4.0, 3.0],
        ]);
        let c = covariance_matrix(&m);
        assert!((c[(0, 1)] - c[(1, 0)]).abs() < 1e-12);
        // Diagonal entries are sample variances.
        let v0: f64 = covariance(&m.col(0), &m.col(0));
        assert!((c[(0, 0)] - v0).abs() < 1e-12);
    }

    #[test]
    fn top_k_agreement_bounds() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(top_k_agreement(&a, &a, 2), 1.0);
        assert_eq!(top_k_agreement(&a, &b, 2), 0.0);
    }
}
