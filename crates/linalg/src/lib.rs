//! # xai-linalg
//!
//! From-scratch dense linear algebra and statistics substrate for the `xai`
//! workspace. The XAI method crates never depend on external numeric
//! libraries; everything they need lives here:
//!
//! - [`matrix::Matrix`] — dense row-major matrices with the usual products;
//! - [`batch`] — blocked mat-vec / `A·Bᵀ` kernels for batched model
//!   inference, bit-identical to the naive dot-product loops, plus masked
//!   variants that evaluate coalition views without materializing them;
//! - [`arena`] — thread-local scratch-buffer pool backing the zero-copy
//!   coalition paths (DESIGN.md §12);
//! - [`cholesky`] / [`lu`] — direct factorizations for SPD and general
//!   square systems;
//! - [`solve`] — (weighted) least squares and conjugate gradients, the
//!   computational cores of LIME, Kernel SHAP and influence functions;
//! - [`stats`] — descriptive statistics, robust scales (MAD), rank
//!   correlations used to score explanation agreement;
//! - [`distr`] — seeded Gaussian / multivariate-Gaussian / categorical
//!   sampling for perturbation-based explainers and synthetic data.
//!
//! Everything is deterministic given the caller's RNG; no global state.

pub mod arena;
pub mod batch;
pub mod cholesky;
pub mod distr;
pub mod lu;
pub mod matrix;
pub mod solve;
pub mod stats;

pub use arena::{with_scratch, with_scratch_matrix, with_scratch_vec, ScratchArena};
pub use batch::{
    affine_fold, gemm_nt, masked_affine_fold, masked_affine_fold_many, masked_gemm_nt,
    masked_matvec, masked_matvec_many, matvec_blocked,
};
pub use cholesky::{choldowndate, cholupdate, solve_spd, Cholesky};
pub use lu::Lu;
pub use matrix::{dot, norm1, norm2, vadd, vaxpy, vscale, vsub, Matrix};
pub use solve::{
    conjugate_gradient, conjugate_gradient_mat, least_squares, r_squared,
    weighted_least_squares, weighted_r_squared, CgResult,
};

/// Errors produced by the factorizations and solvers.
#[derive(Clone, Debug, PartialEq)]
pub enum LinalgError {
    /// A square-matrix operation received a rectangular matrix.
    NotSquare {
        /// Actual row count.
        rows: usize,
        /// Actual column count.
        cols: usize,
    },
    /// Cholesky hit a non-positive pivot: the matrix is not positive-definite.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
        /// The offending pivot value.
        value: f64,
    },
    /// LU hit an exactly-zero pivot column: the matrix is singular.
    Singular {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// An input matrix or vector contained NaN or ±Inf. Factorizations
    /// reject these up front rather than propagating NaN into the factors.
    NonFinite {
        /// Row of the first offending entry (0 for plain vectors).
        row: usize,
        /// Column of the first offending entry (the index, for vectors).
        col: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "expected a square matrix, got {rows}x{cols}")
            }
            LinalgError::NotPositiveDefinite { pivot, value } => {
                write!(f, "matrix is not positive-definite (pivot {pivot} = {value})")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot at column {pivot})")
            }
            LinalgError::NonFinite { row, col } => {
                write!(f, "input contains a non-finite value at ({row}, {col})")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Checks every entry of a matrix, reporting the first NaN/±Inf position.
pub fn check_finite_matrix(a: &matrix::Matrix) -> Result<(), LinalgError> {
    for i in 0..a.rows() {
        for (j, v) in a.row(i).iter().enumerate() {
            if !v.is_finite() {
                return Err(LinalgError::NonFinite { row: i, col: j });
            }
        }
    }
    Ok(())
}

/// Checks every entry of a vector, reporting the first NaN/±Inf index as
/// the column of a row-0 `NonFinite` error.
pub fn check_finite_slice(v: &[f64]) -> Result<(), LinalgError> {
    match v.iter().position(|x| !x.is_finite()) {
        Some(col) => Err(LinalgError::NonFinite { row: 0, col }),
        None => Ok(()),
    }
}
