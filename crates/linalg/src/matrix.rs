//! Dense, row-major matrix of `f64` values.
//!
//! This is the workhorse type for every numeric algorithm in the workspace:
//! normal-equation solvers, Hessians for influence functions, covariance
//! matrices for structural causal models, and the weighted least squares at
//! the heart of LIME and Kernel SHAP.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense matrix with row-major storage.
///
/// Invariant: `data.len() == rows * cols` at all times.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} expected {cols}", r.len());
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Consumes the matrix, returning its row-major backing storage.
    /// Together with [`Matrix::from_vec`] this lets hot paths shuttle a
    /// scratch buffer in and out of matrix form without reallocating.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Diagonal matrix from a slice.
    pub fn diag(d: &[f64]) -> Self {
        let mut m = Self::zeros(d.len(), d.len());
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at each position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column {j} out of bounds for {} cols", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Set column `j` from a slice.
    pub fn set_col(&mut self, j: usize, values: &[f64]) {
        assert_eq!(values.len(), self.rows);
        for (i, &v) in values.iter().enumerate() {
            self[(i, j)] = v;
        }
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix–matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop contiguous in both `rhs` and `out`.
        for i in 0..self.rows {
            let arow = self.row(i);
            for (k, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        self.iter_rows().map(|row| dot(row, v)).collect()
    }

    /// `self^T * v` without materializing the transpose.
    pub fn t_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, v.len(), "t_matvec dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (row, &vi) in self.iter_rows().zip(v) {
            if vi == 0.0 {
                continue;
            }
            for (o, &r) in out.iter_mut().zip(row) {
                *o += vi * r;
            }
        }
        out
    }

    /// Gram matrix `self^T * self` (always symmetric positive semi-definite).
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for row in self.iter_rows() {
            for (j, &rj) in row.iter().enumerate() {
                if rj == 0.0 {
                    continue;
                }
                let orow = out.row_mut(j);
                for (o, &rk) in orow.iter_mut().zip(row) {
                    *o += rj * rk;
                }
            }
        }
        out
    }

    /// Scales every element in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a scaled copy.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// Adds `s * I` in place (ridge / damping term). Requires a square matrix.
    pub fn add_diag_mut(&mut self, s: f64) {
        assert!(self.is_square(), "add_diag_mut requires a square matrix");
        for i in 0..self.rows {
            self[(i, i)] += s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, v| acc.max(v.abs()))
    }

    /// Extracts a sub-matrix given row and column index lists.
    pub fn select(&self, row_idx: &[usize], col_idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(row_idx.len(), col_idx.len());
        for (oi, &i) in row_idx.iter().enumerate() {
            for (oj, &j) in col_idx.iter().enumerate() {
                out[(oi, oj)] = self[(i, j)];
            }
        }
        out
    }

    /// Extracts the listed rows.
    pub fn select_rows(&self, row_idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(row_idx.len(), self.cols);
        for (oi, &i) in row_idx.iter().enumerate() {
            out.row_mut(oi).copy_from_slice(self.row(i));
        }
        out
    }

    /// Appends a column of ones on the left (bias/intercept column).
    pub fn with_intercept(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols + 1);
        for i in 0..self.rows {
            out[(i, 0)] = 1.0;
            out.row_mut(i)[1..].copy_from_slice(self.row(i));
        }
        out
    }

    /// Stacks two matrices vertically.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack requires equal column counts");
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// True when all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Checks element-wise closeness within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>10.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L1 norm.
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|v| v.abs()).sum()
}

/// `a - b` element-wise.
pub fn vsub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// `a + b` element-wise.
pub fn vadd(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// `a + s * b` element-wise (axpy).
pub fn vaxpy(a: &[f64], s: f64, b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x + s * y).collect()
}

/// Scales a slice into a new vector.
pub fn vscale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert!(!m.is_square());
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn bad_construction_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert!(m.matmul(&i).approx_eq(&m, 1e-12));
        assert!(i.matmul(&m).approx_eq(&m, 1e-12));
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        assert!(m.transpose().transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert!(c.approx_eq(&Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]), 1e-12));
    }

    #[test]
    fn matvec_and_t_matvec_agree_with_matmul() {
        let a = Matrix::from_fn(4, 3, |i, j| (i + j) as f64 * 0.5 + 1.0);
        let v = vec![1.0, -2.0, 0.5];
        let mv = a.matvec(&v);
        let expected = a.matmul(&Matrix::from_vec(3, 1, v.clone()));
        for (i, &x) in mv.iter().enumerate() {
            assert!((x - expected[(i, 0)]).abs() < 1e-12);
        }
        let w = vec![1.0, 0.0, -1.0, 2.0];
        let tv = a.t_matvec(&w);
        let expected_t = a.transpose().matvec(&w);
        for (x, y) in tv.iter().zip(&expected_t) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn gram_equals_t_times_self() {
        let a = Matrix::from_fn(5, 3, |i, j| ((i * 3 + j) % 4) as f64 - 1.5);
        let g = a.gram();
        let expected = a.transpose().matmul(&a);
        assert!(g.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn select_and_stack() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.select(&[1, 3], &[0, 2]);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s[(0, 0)], 4.0);
        assert_eq!(s[(1, 1)], 14.0);
        let v = m.select_rows(&[0]).vstack(&m.select_rows(&[3]));
        assert_eq!(v.shape(), (2, 4));
        assert_eq!(v[(1, 0)], 12.0);
    }

    #[test]
    fn with_intercept_prepends_ones() {
        let m = Matrix::from_rows(&[vec![2.0, 3.0]]);
        let mi = m.with_intercept();
        assert_eq!(mi.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm1(&[-1.0, 2.0]), 3.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(vaxpy(&[1.0, 1.0], 2.0, &[1.0, -1.0]), vec![3.0, -1.0]);
    }

    #[test]
    fn add_diag_and_norms() {
        let mut m = Matrix::zeros(2, 2);
        m.add_diag_mut(3.0);
        assert!((m.frobenius_norm() - (18.0_f64).sqrt()).abs() < 1e-12);
        assert_eq!(m.max_abs(), 3.0);
    }
}
