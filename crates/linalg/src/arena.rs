//! Thread-local scratch arena for allocation-free hot paths.
//!
//! The masked coalition-evaluation layer (DESIGN.md §12) replaces the
//! per-round probe-matrix materialization with kernels that read their
//! operands in place — but the *outputs* of those kernels (per-coalition
//! prediction blocks, gathered rows for models without a masked kernel)
//! still need somewhere to live. This module provides that somewhere: a
//! per-thread pool of `f64` buffers leased for the duration of a closure
//! and returned to the pool afterwards, so steady-state evaluation makes
//! **zero heap allocations** once each thread's pool has grown to its
//! high-water mark.
//!
//! Determinism: the arena only changes *where* intermediate values are
//! stored, never what is computed — every leased buffer is fully
//! overwritten before use (or explicitly zeroed by [`with_scratch`]).
//! Because the pool is `thread_local!`, parallel executor workers never
//! share buffers, so results are independent of worker count and
//! scheduling, preserving the workspace's bit-identity contract.

use std::cell::RefCell;

use crate::matrix::Matrix;

/// A pool of reusable `f64` buffers. Usually accessed through the
/// thread-local [`with_scratch`] / [`with_scratch_matrix`] entry points;
/// public so tests and single-threaded callers can hold their own.
#[derive(Default)]
pub struct ScratchArena {
    bufs: RefCell<Vec<Vec<f64>>>,
}

impl ScratchArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffers currently parked in the pool (not leased).
    pub fn pooled(&self) -> usize {
        self.bufs.borrow().len()
    }

    /// Leases a buffer of exactly `len` zeroed elements for the duration
    /// of `f`, then returns it to the pool. Leases may nest: each nested
    /// call pops a distinct buffer.
    pub fn with_scratch<R>(&self, len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
        let mut buf = self.lease(len);
        let out = f(&mut buf);
        self.park(buf);
        out
    }

    /// Leases an empty-but-warm `Vec<f64>` for the duration of `f`: the
    /// vector starts with `len() == 0` but keeps its pooled capacity, so
    /// callers that `resize`/`extend` to a steady-state size allocate only
    /// on the first lease.
    pub fn with_scratch_vec<R>(&self, f: impl FnOnce(&mut Vec<f64>) -> R) -> R {
        let mut buf = self.bufs.borrow_mut().pop().unwrap_or_default();
        buf.clear();
        let out = f(&mut buf);
        self.park(buf);
        out
    }

    /// Leases a `rows × cols` [`Matrix`] (zeroed) for the duration of `f`.
    /// The matrix's storage comes from the pool and goes back to it, so no
    /// allocation happens once the pool is warm.
    pub fn with_scratch_matrix<R>(
        &self,
        rows: usize,
        cols: usize,
        f: impl FnOnce(&mut Matrix) -> R,
    ) -> R {
        let buf = self.lease(rows * cols);
        let mut m = Matrix::from_vec(rows, cols, buf);
        let out = f(&mut m);
        self.park(m.into_vec());
        out
    }

    fn lease(&self, len: usize) -> Vec<f64> {
        let mut buf = self.bufs.borrow_mut().pop().unwrap_or_default();
        // clear + resize zeroes every element without reallocating when
        // capacity suffices; a fresh lease always starts from all-zeros.
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    fn park(&self, buf: Vec<f64>) {
        self.bufs.borrow_mut().push(buf);
    }
}

thread_local! {
    static ARENA: ScratchArena = ScratchArena::new();
}

/// Leases a zeroed `len`-element buffer from the calling thread's arena
/// for the duration of `f`. See [`ScratchArena::with_scratch`].
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    ARENA.with(|a| a.with_scratch(len, f))
}

/// Leases an empty-but-warm `Vec<f64>` from the calling thread's arena for
/// the duration of `f`. See [`ScratchArena::with_scratch_vec`].
pub fn with_scratch_vec<R>(f: impl FnOnce(&mut Vec<f64>) -> R) -> R {
    ARENA.with(|a| a.with_scratch_vec(f))
}

/// Leases a zeroed `rows × cols` [`Matrix`] from the calling thread's
/// arena for the duration of `f`. See [`ScratchArena::with_scratch_matrix`].
pub fn with_scratch_matrix<R>(rows: usize, cols: usize, f: impl FnOnce(&mut Matrix) -> R) -> R {
    ARENA.with(|a| a.with_scratch_matrix(rows, cols, f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_zeroed_and_recycled() {
        let arena = ScratchArena::new();
        let ptr1 = arena.with_scratch(16, |buf| {
            assert_eq!(buf.len(), 16);
            assert!(buf.iter().all(|&v| v == 0.0));
            buf[3] = 7.5;
            buf.as_ptr() as usize
        });
        assert_eq!(arena.pooled(), 1);
        // Same (or equal-capacity) storage comes back, zeroed again.
        let ptr2 = arena.with_scratch(16, |buf| {
            assert!(buf.iter().all(|&v| v == 0.0));
            buf.as_ptr() as usize
        });
        assert_eq!(ptr1, ptr2, "the pool should recycle the same allocation");
    }

    #[test]
    fn nested_leases_get_distinct_buffers() {
        let arena = ScratchArena::new();
        arena.with_scratch(8, |outer| {
            outer[0] = 1.0;
            arena.with_scratch(8, |inner| {
                inner[0] = 2.0;
                assert_ne!(outer.as_ptr(), inner.as_ptr());
            });
            assert_eq!(outer[0], 1.0, "inner lease must not alias the outer");
        });
        assert_eq!(arena.pooled(), 2);
    }

    #[test]
    fn scratch_matrix_round_trips_storage() {
        let arena = ScratchArena::new();
        arena.with_scratch_matrix(3, 4, |m| {
            assert_eq!(m.shape(), (3, 4));
            m[(2, 3)] = 9.0;
        });
        assert_eq!(arena.pooled(), 1);
        arena.with_scratch_matrix(2, 2, |m| {
            assert_eq!(m.as_slice(), &[0.0; 4], "recycled matrix must be zeroed");
        });
    }

    #[test]
    fn thread_local_entry_points_work() {
        let sum = with_scratch(5, |buf| {
            for (i, v) in buf.iter_mut().enumerate() {
                *v = i as f64;
            }
            buf.iter().sum::<f64>()
        });
        assert_eq!(sum, 10.0);
        let trace = with_scratch_matrix(2, 2, |m| {
            m[(0, 0)] = 1.0;
            m[(1, 1)] = 2.0;
            m[(0, 0)] + m[(1, 1)]
        });
        assert_eq!(trace, 3.0);
    }
}
