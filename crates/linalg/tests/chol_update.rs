//! Seeded property suite for the rank-one Cholesky kernels.
//!
//! The contract under test: updating a factor (`cholupdate`) must agree
//! with factorizing the updated matrix, downdating (`choldowndate`) must
//! agree with factorizing the downdated matrix, and a downdate that would
//! leave the matrix singular or indefinite must be rejected without
//! corrupting the factor. Lower-triangular Cholesky factors with positive
//! diagonals are unique, so agreement is checked element-wise on `L`.

use xai_linalg::{choldowndate, cholupdate, Cholesky, LinalgError, Matrix};
use xai_rand::property::{cases, vec_in};
use xai_rand::rngs::StdRng;
use xai_rand::Rng;

/// Random SPD matrix `B Bᵀ + (0.5 + u) I` of the given size.
fn random_spd(rng: &mut StdRng, n: usize) -> Matrix {
    let b = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
    let mut a = b.matmul(&b.transpose());
    a.add_diag_mut(0.5 + rng.gen::<f64>());
    a
}

fn rank_one_added(a: &Matrix, x: &[f64], sign: f64) -> Matrix {
    let mut out = a.clone();
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            out[(i, j)] += sign * x[i] * x[j];
        }
    }
    out
}

#[test]
fn update_agrees_with_factor_of_updated_matrix() {
    cases(64, 0xC401, |rng| {
        let n = rng.gen_range(1..8);
        let a = random_spd(rng, n);
        let x = vec_in(rng, n, -2.0, 2.0);
        let mut updated_factor = Cholesky::factor(&a).unwrap();
        cholupdate(&mut updated_factor, &x);
        let factor_of_updated = Cholesky::factor(&rank_one_added(&a, &x, 1.0)).unwrap();
        assert!(
            updated_factor.l().approx_eq(factor_of_updated.l(), 1e-9),
            "n={n}: updated factor diverged from factor of updated matrix"
        );
    });
}

#[test]
fn downdate_agrees_with_factor_of_downdated_matrix() {
    cases(64, 0xC402, |rng| {
        let n = rng.gen_range(1..8);
        let a = random_spd(rng, n);
        let x = vec_in(rng, n, -2.0, 2.0);
        // A + xxᵀ is safely downdatable by x; the result must match the
        // factor of A itself.
        let mut f = Cholesky::factor(&rank_one_added(&a, &x, 1.0)).unwrap();
        choldowndate(&mut f, &x).unwrap();
        let truth = Cholesky::factor(&a).unwrap();
        assert!(
            f.l().approx_eq(truth.l(), 1e-8),
            "n={n}: downdated factor diverged from factor of downdated matrix"
        );
    });
}

#[test]
fn update_downdate_roundtrip_is_identity_over_long_sequences() {
    cases(32, 0xC403, |rng| {
        let n = rng.gen_range(2..7);
        let a = random_spd(rng, n);
        let reference = Cholesky::factor(&a).unwrap();
        let mut f = reference.clone();
        // Absorb a batch of rows, then shed them in reverse order.
        let rows: Vec<Vec<f64>> = (0..12).map(|_| vec_in(rng, n, -1.5, 1.5)).collect();
        for r in &rows {
            cholupdate(&mut f, r);
        }
        for r in rows.iter().rev() {
            choldowndate(&mut f, r).unwrap();
        }
        assert!(
            f.l().approx_eq(reference.l(), 1e-7),
            "n={n}: 12-deep update/downdate roundtrip drifted"
        );
    });
}

#[test]
fn solves_through_updated_factor_match_direct_solves() {
    cases(32, 0xC404, |rng| {
        let n = rng.gen_range(1..7);
        let a = random_spd(rng, n);
        let x = vec_in(rng, n, -2.0, 2.0);
        let b = vec_in(rng, n, -3.0, 3.0);
        let mut f = Cholesky::factor(&a).unwrap();
        cholupdate(&mut f, &x);
        let via_update = f.solve(&b);
        let direct = Cholesky::factor(&rank_one_added(&a, &x, 1.0)).unwrap().solve(&b);
        for (u, d) in via_update.iter().zip(&direct) {
            assert!((u - d).abs() < 1e-8, "n={n}: {u} vs {d}");
        }
    });
}

#[test]
fn downdate_to_near_singular_is_rejected_and_preserves_the_factor() {
    cases(64, 0xC405, |rng| {
        let n = rng.gen_range(1..7);
        // λI + xxᵀ downdated by (1+δ)x leaves λI − (2δ+δ²)xxᵀ, indefinite
        // whenever (2δ+δ²)‖x‖² > λ; the bounds below guarantee that.
        let lambda = 10f64.powf(rng.gen_range(-9.0..-3.0));
        let x = vec_in(rng, n, 0.5, 2.0);
        let mut f = Cholesky::scaled_identity(n, lambda);
        cholupdate(&mut f, &x);
        let before = f.l().clone();
        let overshoot: Vec<f64> = x.iter().map(|v| v * 1.01).collect();
        match f.rank_one_downdate(&overshoot) {
            Err(LinalgError::NotPositiveDefinite { .. }) => {}
            other => panic!("overshoot downdate must be rejected, got {other:?}"),
        }
        assert!(
            f.l().approx_eq(&before, 0.0),
            "rejected downdate must leave the factor bit-identical"
        );
        // The exact vector is still removable: we land back on λI. The
        // update's 1-ulp rounding is amplified by the λ ≪ ‖x‖² roundtrip
        // (r² − w² cancels to λ), so the bound is loose in absolute terms
        // while still ~1e-4-relative to the √λ diagonal.
        choldowndate(&mut f, &x).unwrap();
        assert!(f.l().approx_eq(Cholesky::scaled_identity(n, lambda).l(), 1e-4 * lambda.sqrt().max(1e-9)));
    });
}
