//! Direct coverage for the failure paths of the factorizations: singular
//! and non-finite systems must come back as typed errors, never as NaN
//! factors or panics.

use xai_linalg::{
    least_squares, solve_spd, weighted_least_squares, Cholesky, LinalgError, Lu, Matrix,
};

fn nan_matrix(at: (usize, usize)) -> Matrix {
    let mut a = Matrix::from_rows(&[vec![4.0, 1.0, 0.0], vec![1.0, 3.0, 1.0], vec![0.0, 1.0, 2.0]]);
    a[(at.0, at.1)] = f64::NAN;
    a
}

#[test]
fn lu_rejects_singular() {
    let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
    assert!(matches!(Lu::factor(&a), Err(LinalgError::Singular { .. })));
    let zero = Matrix::zeros(3, 3);
    assert!(matches!(Lu::factor(&zero), Err(LinalgError::Singular { pivot: 0 })));
}

#[test]
fn lu_rejects_non_finite_anywhere() {
    // A NaN off the pivot column would survive partial pivoting's
    // column-local scan; the up-front check must catch it regardless of
    // position.
    for at in [(0, 0), (0, 2), (1, 1), (2, 0)] {
        let err = Lu::factor(&nan_matrix(at)).expect_err("NaN input must be rejected");
        assert_eq!(err, LinalgError::NonFinite { row: at.0, col: at.1 });
    }
    let mut inf = Matrix::identity(2);
    inf[(1, 0)] = f64::INFINITY;
    assert!(matches!(Lu::factor(&inf), Err(LinalgError::NonFinite { row: 1, col: 0 })));
}

#[test]
fn lu_solve_rejects_non_finite_rhs() {
    let a = Matrix::identity(2);
    let err = xai_linalg::lu::solve(&a, &[1.0, f64::NAN]).expect_err("NaN rhs");
    assert_eq!(err, LinalgError::NonFinite { row: 0, col: 1 });
}

#[test]
fn cholesky_rejects_singular_and_indefinite() {
    // Rank-one ⇒ singular.
    let singular = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
    assert!(matches!(
        Cholesky::factor(&singular),
        Err(LinalgError::NotPositiveDefinite { .. })
    ));
    // Indefinite.
    let indefinite = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
    assert!(matches!(
        Cholesky::factor(&indefinite),
        Err(LinalgError::NotPositiveDefinite { .. })
    ));
}

#[test]
fn cholesky_rejects_non_finite_without_building_a_factor() {
    for at in [(0, 0), (2, 1), (1, 2)] {
        let err = Cholesky::factor(&nan_matrix(at)).expect_err("NaN input must be rejected");
        assert_eq!(err, LinalgError::NonFinite { row: at.0, col: at.1 });
    }
}

#[test]
fn solve_spd_rejects_non_finite_rhs() {
    let a = Matrix::identity(3);
    let err = solve_spd(&a, &[0.0, f64::INFINITY, 1.0], 0.0).expect_err("Inf rhs");
    assert_eq!(err, LinalgError::NonFinite { row: 0, col: 1 });
}

#[test]
fn least_squares_rejects_non_finite_targets_and_weights() {
    let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]]);
    assert!(matches!(
        least_squares(&x, &[0.0, f64::NAN, 2.0], 1e-8),
        Err(LinalgError::NonFinite { .. })
    ));
    assert!(matches!(
        weighted_least_squares(&x, &[0.0, 1.0, 2.0], &[1.0, f64::NAN, 1.0], 1e-8),
        Err(LinalgError::NonFinite { .. })
    ));
    // A NaN hidden in the design matrix surfaces through the normal
    // equations as a typed error too — never as NaN coefficients.
    let mut bad = x.clone();
    bad[(1, 1)] = f64::NAN;
    let res = least_squares(&bad, &[0.0, 1.0, 2.0], 1e-8);
    match res {
        Err(_) => {}
        Ok(w) => panic!("poisoned design must not yield coefficients: {w:?}"),
    }
}

#[test]
fn degenerate_least_squares_recovers_under_ridge() {
    // Duplicate columns: the unridged normal equations are singular, but a
    // positive ridge restores solvability — the degradation path KernelSHAP
    // relies on.
    let x = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
    let y = [1.0, 2.0, 3.0];
    assert!(least_squares(&x, &y, 0.0).is_err());
    let w = least_squares(&x, &y, 1e-6).expect("ridge makes the system SPD");
    assert!(w.iter().all(|v| v.is_finite()));
}
