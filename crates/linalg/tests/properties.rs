//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use xai_linalg::matrix::{dot, norm2, vadd, vsub};
use xai_linalg::{Cholesky, Lu, Matrix};

/// Strategy: a matrix with bounded entries and shape.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0..10.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Strategy: a square matrix.
fn square_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim).prop_flat_map(|n| {
        prop::collection::vec(-10.0..10.0f64, n * n)
            .prop_map(move |data| Matrix::from_vec(n, n, data))
    })
}

proptest! {
    #[test]
    fn transpose_involution(m in matrix_strategy(6)) {
        prop_assert!(m.transpose().transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_transpose_identity(
        (a, b) in (1..=5usize, 1..=5usize, 1..=5usize).prop_flat_map(|(r, k, c)| (
            prop::collection::vec(-10.0..10.0f64, r * k).prop_map(move |d| Matrix::from_vec(r, k, d)),
            prop::collection::vec(-10.0..10.0f64, k * c).prop_map(move |d| Matrix::from_vec(k, c, d)),
        ))
    ) {
        // (A B)^T = B^T A^T.
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn gram_is_symmetric_psd_diag(m in matrix_strategy(6)) {
        let g = m.gram();
        for i in 0..g.rows() {
            prop_assert!(g[(i, i)] >= -1e-12, "negative diagonal in Gram matrix");
            for j in 0..g.cols() {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn cholesky_solves_spd_systems(b0 in square_strategy(5), rhs_seed in -5.0..5.0f64) {
        let n = b0.rows();
        let mut a = b0.matmul(&b0.transpose());
        a.add_diag_mut(n as f64 + 1.0); // guarantee positive-definiteness
        let b: Vec<f64> = (0..n).map(|i| rhs_seed + i as f64).collect();
        let ch = Cholesky::factor(&a).expect("SPD by construction");
        let x = ch.solve(&b);
        let resid = vsub(&a.matvec(&x), &b);
        prop_assert!(norm2(&resid) < 1e-6 * (1.0 + norm2(&b)));
    }

    #[test]
    fn lu_solve_residual_small(a in square_strategy(5), rhs_seed in -5.0..5.0f64) {
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| rhs_seed - i as f64).collect();
        if let Ok(lu) = Lu::factor(&a) {
            // Skip nearly-singular draws where the condition number makes
            // any direct method inaccurate.
            prop_assume!(lu.det().abs() > 1e-6);
            let x = lu.solve(&b);
            let resid = vsub(&a.matvec(&x), &b);
            prop_assert!(norm2(&resid) < 1e-5 * (1.0 + norm2(&b)) * (1.0 + a.max_abs()));
        }
    }

    #[test]
    fn lu_det_multiplicative(
        (a, b) in (1..=4usize).prop_flat_map(|n| (
            prop::collection::vec(-10.0..10.0f64, n * n).prop_map(move |d| Matrix::from_vec(n, n, d)),
            prop::collection::vec(-10.0..10.0f64, n * n).prop_map(move |d| Matrix::from_vec(n, n, d)),
        ))
    ) {
        if let (Ok(la), Ok(lb)) = (Lu::factor(&a), Lu::factor(&b)) {
            let ab = a.matmul(&b);
            if let Ok(lab) = Lu::factor(&ab) {
                let lhs = lab.det();
                let rhs = la.det() * lb.det();
                let scale = 1.0 + lhs.abs().max(rhs.abs());
                prop_assert!((lhs - rhs).abs() < 1e-6 * scale);
            }
        }
    }

    #[test]
    fn vector_algebra_roundtrip(v in prop::collection::vec(-100.0..100.0f64, 1..32)) {
        let zero = vec![0.0; v.len()];
        prop_assert_eq!(vadd(&v, &zero), v.clone());
        let diff = vsub(&v, &v);
        prop_assert!(diff.iter().all(|&x| x == 0.0));
        prop_assert!(dot(&v, &zero) == 0.0);
    }

    #[test]
    fn cauchy_schwarz(pairs in prop::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 1..16)) {
        let (u, w): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        prop_assert!(dot(&u, &w).abs() <= norm2(&u) * norm2(&w) + 1e-9);
    }
}
