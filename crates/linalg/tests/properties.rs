//! Property-based tests for the linear-algebra substrate, run as
//! deterministic seeded loops over `xai_rand` (64+ random cases per
//! property; failing cases print a replay seed).

use xai_rand::property::{cases, vec_in};
use xai_rand::rngs::StdRng;
use xai_rand::Rng;
use xai_linalg::matrix::{dot, norm2, vadd, vsub};
use xai_linalg::{Cholesky, Lu, Matrix};

/// A random matrix with bounded entries and shape `1..=max_dim` each way.
fn random_matrix(rng: &mut StdRng, max_dim: usize) -> Matrix {
    let r = rng.gen_range(1..=max_dim);
    let c = rng.gen_range(1..=max_dim);
    Matrix::from_vec(r, c, vec_in(rng, r * c, -10.0, 10.0))
}

/// A random square matrix of side `1..=max_dim`.
fn random_square(rng: &mut StdRng, max_dim: usize) -> Matrix {
    let n = rng.gen_range(1..=max_dim);
    Matrix::from_vec(n, n, vec_in(rng, n * n, -10.0, 10.0))
}

#[test]
fn transpose_involution() {
    cases(64, 101, |rng| {
        let m = random_matrix(rng, 6);
        assert!(m.transpose().transpose().approx_eq(&m, 0.0));
    });
}

#[test]
fn matmul_transpose_identity() {
    cases(64, 102, |rng| {
        // (A B)^T = B^T A^T.
        let r = rng.gen_range(1..=5);
        let k = rng.gen_range(1..=5);
        let c = rng.gen_range(1..=5);
        let a = Matrix::from_vec(r, k, vec_in(rng, r * k, -10.0, 10.0));
        let b = Matrix::from_vec(k, c, vec_in(rng, k * c, -10.0, 10.0));
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        assert!(lhs.approx_eq(&rhs, 1e-9));
    });
}

#[test]
fn gram_is_symmetric_psd_diag() {
    cases(64, 103, |rng| {
        let m = random_matrix(rng, 6);
        let g = m.gram();
        for i in 0..g.rows() {
            assert!(g[(i, i)] >= -1e-12, "negative diagonal in Gram matrix");
            for j in 0..g.cols() {
                assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-9);
            }
        }
    });
}

#[test]
fn cholesky_solves_spd_systems() {
    cases(64, 104, |rng| {
        let b0 = random_square(rng, 5);
        let n = b0.rows();
        let mut a = b0.matmul(&b0.transpose());
        a.add_diag_mut(n as f64 + 1.0); // guarantee positive-definiteness
        let rhs_seed = rng.gen_range(-5.0..5.0);
        let b: Vec<f64> = (0..n).map(|i| rhs_seed + i as f64).collect();
        let ch = Cholesky::factor(&a).expect("SPD by construction");
        let x = ch.solve(&b);
        let resid = vsub(&a.matvec(&x), &b);
        assert!(norm2(&resid) < 1e-6 * (1.0 + norm2(&b)));
    });
}

#[test]
fn lu_solve_residual_small() {
    cases(64, 105, |rng| {
        let a = random_square(rng, 5);
        let n = a.rows();
        let rhs_seed = rng.gen_range(-5.0..5.0);
        let b: Vec<f64> = (0..n).map(|i| rhs_seed - i as f64).collect();
        if let Ok(lu) = Lu::factor(&a) {
            // Skip nearly-singular draws where the condition number makes
            // any direct method inaccurate.
            if lu.det().abs() <= 1e-6 {
                return;
            }
            let x = lu.solve(&b);
            let resid = vsub(&a.matvec(&x), &b);
            assert!(norm2(&resid) < 1e-5 * (1.0 + norm2(&b)) * (1.0 + a.max_abs()));
        }
    });
}

#[test]
fn lu_det_multiplicative() {
    cases(64, 106, |rng| {
        let n = rng.gen_range(1..=4);
        let a = Matrix::from_vec(n, n, vec_in(rng, n * n, -10.0, 10.0));
        let b = Matrix::from_vec(n, n, vec_in(rng, n * n, -10.0, 10.0));
        if let (Ok(la), Ok(lb)) = (Lu::factor(&a), Lu::factor(&b)) {
            let ab = a.matmul(&b);
            if let Ok(lab) = Lu::factor(&ab) {
                let lhs = lab.det();
                let rhs = la.det() * lb.det();
                let scale = 1.0 + lhs.abs().max(rhs.abs());
                assert!((lhs - rhs).abs() < 1e-6 * scale);
            }
        }
    });
}

#[test]
fn vector_algebra_roundtrip() {
    cases(64, 107, |rng| {
        let n = rng.gen_range(1..32);
        let v = vec_in(rng, n, -100.0, 100.0);
        let zero = vec![0.0; v.len()];
        assert_eq!(vadd(&v, &zero), v.clone());
        let diff = vsub(&v, &v);
        assert!(diff.iter().all(|&x| x == 0.0));
        assert!(dot(&v, &zero) == 0.0);
    });
}

#[test]
fn cauchy_schwarz() {
    cases(64, 108, |rng| {
        let n = rng.gen_range(1..16);
        let u = vec_in(rng, n, -10.0, 10.0);
        let w = vec_in(rng, n, -10.0, 10.0);
        assert!(dot(&u, &w).abs() <= norm2(&u) * norm2(&w) + 1e-9);
    });
}
