//! Unified-layer `Explainer` impls for the counterfactual family
//! (DESIGN.md §9): Wachter gradient descent, GeCo's genetic search under
//! plausibility/feasibility constraints, and DiCE's diverse set.
//!
//! Dispatch contract: `workers > 1` selects GeCo's fixed-chunk parallel
//! multi-start twin and DiCE's candidate pool (`k · restarts`
//! independent searches, candidate `c` at `child_seed(seed, c)`, merged
//! by a greedy diverse selection) — both worker-count invariant though a
//! different search schedule than `workers == 1`, and for DiCE the pool
//! is the grid the shard layer partitions. Wachter is deterministic
//! gradient descent with no random draws, so every execution plan
//! returns the same result. None of the searches has a batched or
//! budgeted twin; a `SampleBudget` is rejected as
//! [`XaiError::Unsupported`].
// This module is the blessed call site of the deprecated legacy twins:
// the unified dispatch below is what replaces them.
#![allow(deprecated)]

use xai_core::shard::{
    chunks_json, flatten_chunks, index_field, num_field, nums_field, wire_error, DrawGrid,
    ShardableExplainer,
};
use xai_core::taxonomy::method_card;
use xai_core::{
    catch_model, validate, Counterfactual, ExplainRequest, Explainer, Explanation, Json,
    MethodCard, ModelOracle, XaiError, XaiResult,
};
use xai_rand::child_seed;
use xai_rand::rngs::StdRng;
use xai_rand::SeedableRng;

use crate::dice::{DiceConfig, DiceExplainer};
use crate::geco::{try_geco, try_geco_parallel, GecoConfig, Plaf};
use crate::wachter::{try_wachter_counterfactual, GradientModel, WachterConfig};

fn reject_budget(method: &str, req: &ExplainRequest<'_>) -> XaiResult<()> {
    if req.plan.budgeted() {
        return Err(XaiError::Unsupported {
            context: format!("{method} has no budgeted execution path; clear RunConfig::budget"),
        });
    }
    Ok(())
}

/// Adapter: the Wachter gradient surface over any oracle that advertises
/// a gradient.
struct OracleGradient<'a>(&'a dyn ModelOracle);

impl GradientModel for OracleGradient<'_> {
    fn output(&self, x: &[f64]) -> f64 {
        self.0.predict(x)
    }
    fn gradient(&self, x: &[f64]) -> Vec<f64> {
        self.0.gradient(x).expect("gradient availability checked before dispatch")
    }
}

/// Wachter-style gradient counterfactuals (§2.1.4) through the unified
/// layer; needs a differentiable model.
#[derive(Clone, Copy, Debug, Default)]
pub struct WachterMethod {
    /// Annealing schedule and step sizes.
    pub config: WachterConfig,
}

impl Explainer for WachterMethod {
    fn card(&self) -> MethodCard {
        method_card("Wachter counterfactuals")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        reject_budget("Wachter counterfactuals", req)?;
        let instance = req.need_instance("Wachter counterfactuals")?;
        if model.gradient(instance).is_none() {
            return Err(XaiError::Unsupported {
                context: "Wachter counterfactual search needs a differentiable model; \
                          this oracle offers no gradient"
                    .into(),
            });
        }
        let adapter = OracleGradient(model);
        let cf = try_wachter_counterfactual(&adapter, req.data, instance, self.config)?;
        Ok(Explanation::Counterfactuals(vec![cf]))
    }
}

/// GeCo genetic counterfactual search (§2.1.4) through the unified
/// layer; feasibility rules come from the dataset schema's mutability
/// annotations ([`Plaf::from_schema`]).
#[derive(Clone, Copy, Debug)]
pub struct GecoMethod {
    /// Population / generation schedule.
    pub config: GecoConfig,
    /// Restarts for the parallel multi-start twin (`workers > 1`).
    pub starts: usize,
}

impl Default for GecoMethod {
    fn default() -> Self {
        Self { config: GecoConfig::default(), starts: 4 }
    }
}

impl Explainer for GecoMethod {
    fn card(&self) -> MethodCard {
        method_card("GeCo")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        reject_budget("GeCo", req)?;
        let instance = req.need_instance("GeCo")?;
        let plaf = Plaf::from_schema(req.data);
        let f = |x: &[f64]| model.predict(x);
        let cf = if req.plan.parallel() {
            try_geco_parallel(
                &f,
                req.data,
                instance,
                &plaf,
                self.config,
                req.plan.seed,
                self.starts,
                req.plan.workers,
            )?
        } else {
            try_geco(&f, req.data, instance, &plaf, self.config, req.plan.seed)?
        };
        Ok(Explanation::Counterfactuals(vec![cf]))
    }
}

/// DiCE diverse counterfactuals (§2.1.4) through the unified layer.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiceMethod {
    /// Set size, diversity/proximity trade-off and search schedule.
    pub config: DiceConfig,
}

impl Explainer for DiceMethod {
    fn card(&self) -> MethodCard {
        method_card("DiCE")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        reject_budget("DiCE", req)?;
        let instance = req.need_instance("DiCE")?;
        let explainer = DiceExplainer::fit(req.data);
        let f = |x: &[f64]| model.predict(x);
        let cfs = if req.plan.parallel() {
            explainer.try_generate_pool(&f, instance, self.config, req.plan.seed, req.plan.workers)?
        } else {
            explainer.try_generate(&f, instance, self.config, req.plan.seed)?
        };
        Ok(Explanation::Counterfactuals(cfs))
    }

    fn as_shardable(&self) -> Option<&dyn ShardableExplainer> {
        Some(self)
    }
}

impl DiceMethod {
    /// Rebuilds the method from its canonical shard-config JSON.
    pub fn from_config_json(config: &Json) -> XaiResult<Self> {
        const WHAT: &str = "DiCE config";
        Ok(Self {
            config: DiceConfig {
                k: index_field(config, "k", WHAT)?,
                proximity_weight: num_field(config, "proximity_weight", WHAT)?,
                diversity_weight: num_field(config, "diversity_weight", WHAT)?,
                sparsity_weight: num_field(config, "sparsity_weight", WHAT)?,
                iterations: index_field(config, "iterations", WHAT)?,
                restarts: index_field(config, "restarts", WHAT)?,
            },
        })
    }

    /// Size of the candidate pool the parallel and sharded paths search.
    fn pool(&self) -> usize {
        (self.config.k * self.config.restarts.max(1)).max(1)
    }
}

impl ShardableExplainer for DiceMethod {
    fn draw_grid(&self, req: &ExplainRequest<'_>) -> XaiResult<DrawGrid> {
        reject_budget("DiCE", req)?;
        req.need_instance("DiCE")?;
        Ok(DrawGrid { total_draws: self.pool(), chunk_size: 1 })
    }

    fn explain_chunks(
        &self,
        model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        chunks: std::ops::Range<usize>,
    ) -> XaiResult<Json> {
        let instance = req.need_instance("DiCE")?;
        validate::finite_slice("DiCE instance", instance)?;
        let explainer = DiceExplainer::fit(req.data);
        let f = |x: &[f64]| model.predict(x);
        let original_output = catch_model("DiCE original prediction", || f(instance))?;
        let target_positive = original_output < 0.5;
        let mut out = Vec::with_capacity(chunks.len());
        for c in chunks {
            let mut rng = StdRng::seed_from_u64(child_seed(req.plan.seed, c as u64));
            let candidate = catch_model("DiCE local search", || {
                explainer.pool_candidate(&f, instance, target_positive, self.config, &mut rng)
            })?;
            out.push(match candidate {
                None => Json::Null,
                Some((cf, loss)) => {
                    if !loss.is_finite() || cf.iter().any(|v| !v.is_finite()) {
                        return Err(XaiError::ModelFault {
                            context: "DiCE local search produced a non-finite candidate".into(),
                        });
                    }
                    Json::obj(vec![("cf", Json::nums(&cf)), ("loss", Json::Num(loss))])
                }
            });
        }
        Ok(chunks_json(out))
    }

    fn merge_chunks(
        &self,
        model: &dyn ModelOracle,
        req: &ExplainRequest<'_>,
        partials: Vec<Json>,
    ) -> XaiResult<Explanation> {
        const WHAT: &str = "DiCE merge";
        let instance = req.need_instance("DiCE")?;
        validate::finite_slice("DiCE instance", instance)?;
        let grid = self.draw_grid(req)?;
        let flat = flatten_chunks(&partials, WHAT)?;
        if flat.len() != grid.n_chunks() {
            return Err(wire_error(format!(
                "{WHAT}: got {} pool candidates for a {}-candidate pool",
                flat.len(),
                grid.n_chunks()
            )));
        }
        let d = instance.len();
        let candidates = flat
            .into_iter()
            .enumerate()
            .map(|(i, c)| match c {
                Json::Null => Ok(None),
                _ => {
                    let cf = nums_field(c, "cf", WHAT)?;
                    if cf.len() != d {
                        return Err(wire_error(format!(
                            "{WHAT}: candidate {i} has {} features, want {d}",
                            cf.len()
                        )));
                    }
                    Ok(Some((cf, num_field(c, "loss", WHAT)?)))
                }
            })
            .collect::<XaiResult<Vec<_>>>()?;
        let explainer = DiceExplainer::fit(req.data);
        let f = |x: &[f64]| model.predict(x);
        let original_output = catch_model("DiCE original prediction", || f(instance))?;
        let chosen = explainer.select_diverse(&candidates, self.config);
        let results = catch_model("DiCE counterfactual certification", || {
            chosen
                .into_iter()
                .map(|cf| {
                    let cf_output = f(&cf);
                    Counterfactual::new(
                        instance.to_vec(),
                        cf.clone(),
                        original_output,
                        cf_output,
                        explainer.distance(instance, &cf),
                    )
                })
                .collect::<Vec<_>>()
        })?;
        let cfs = crate::dice::certify_set(results, "pooled DiCE search", self.config)?;
        Ok(Explanation::Counterfactuals(cfs))
    }

    fn config_json(&self) -> Json {
        Json::obj(vec![
            ("k", Json::Num(self.config.k as f64)),
            ("proximity_weight", Json::Num(self.config.proximity_weight)),
            ("diversity_weight", Json::Num(self.config.diversity_weight)),
            ("sparsity_weight", Json::Num(self.config.sparsity_weight)),
            ("iterations", Json::Num(self.config.iterations as f64)),
            ("restarts", Json::Num(self.config.restarts as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_core::taxonomy::{Access, Scope};
    use xai_core::{ExplanationForm, RunConfig};
    use xai_data::synth::german_credit;
    use xai_models::{LogisticConfig, LogisticRegression};

    fn rejected_row(data: &xai_data::Dataset, model: &LogisticRegression) -> Vec<f64> {
        use xai_models::Classifier;
        (0..data.n_rows())
            .map(|i| data.row(i))
            .find(|r| model.proba_one(r) < 0.5)
            .expect("some rejected applicant exists")
            .to_vec()
    }

    #[test]
    fn cards_come_from_the_catalogue() {
        assert_eq!(WachterMethod::default().card().access, Access::ModelSpecific);
        assert_eq!(GecoMethod::default().card().scope, Scope::Local);
        assert_eq!(DiceMethod::default().card().form, ExplanationForm::Counterfactual);
    }

    #[test]
    fn all_three_searches_flip_a_rejection() {
        let data = german_credit(150, 31);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let row = rejected_row(&data, &model);
        let req = ExplainRequest::new(&data).instance(&row).plan(RunConfig::seeded(5));

        for method in [
            &WachterMethod::default() as &dyn Explainer,
            &GecoMethod::default(),
            &DiceMethod::default(),
        ] {
            let e = method.explain(&model, &req).unwrap();
            let cfs = e.as_counterfactuals().unwrap();
            assert!(!cfs.is_empty(), "{} found no counterfactual", method.card().name);
            for cf in cfs {
                assert!(
                    cf.counterfactual_output >= 0.5,
                    "{} returned a non-flipping counterfactual",
                    method.card().name
                );
            }
        }
    }

    #[test]
    fn wachter_requires_a_gradient_surface() {
        let data = german_credit(60, 32);
        let gbdt = xai_models::Gbdt::fit(data.x(), data.y(), xai_models::GbdtConfig::default());
        let row = data.row(0).to_vec();
        let req = ExplainRequest::new(&data).instance(&row);
        assert!(matches!(
            WachterMethod::default().explain(&gbdt, &req),
            Err(XaiError::Unsupported { .. })
        ));
    }
}
