//! Unified-layer `Explainer` impls for the counterfactual family
//! (DESIGN.md §9): Wachter gradient descent, GeCo's genetic search under
//! plausibility/feasibility constraints, and DiCE's diverse set.
//!
//! Dispatch contract: `workers > 1` selects the fixed-chunk parallel
//! multi-start twins for GeCo and DiCE (worker-count-invariant but a
//! different search schedule than `workers == 1`, matching the legacy
//! functions); Wachter is deterministic gradient descent, so `seed` /
//! `workers` / `batched` are no-ops. None of the searches has a batched
//! or budgeted twin; a `SampleBudget` is rejected as
//! [`XaiError::Unsupported`].
// This module is the blessed call site of the deprecated legacy twins:
// the unified dispatch below is what replaces them.
#![allow(deprecated)]

use xai_core::taxonomy::method_card;
use xai_core::{
    ExplainRequest, Explainer, Explanation, MethodCard, ModelOracle, XaiError, XaiResult,
};

use crate::dice::{DiceConfig, DiceExplainer};
use crate::geco::{try_geco, try_geco_parallel, GecoConfig, Plaf};
use crate::wachter::{try_wachter_counterfactual, GradientModel, WachterConfig};

fn reject_budget(method: &str, req: &ExplainRequest<'_>) -> XaiResult<()> {
    if req.plan.budgeted() {
        return Err(XaiError::Unsupported {
            context: format!("{method} has no budgeted execution path; clear RunConfig::budget"),
        });
    }
    Ok(())
}

/// Adapter: the Wachter gradient surface over any oracle that advertises
/// a gradient.
struct OracleGradient<'a>(&'a dyn ModelOracle);

impl GradientModel for OracleGradient<'_> {
    fn output(&self, x: &[f64]) -> f64 {
        self.0.predict(x)
    }
    fn gradient(&self, x: &[f64]) -> Vec<f64> {
        self.0.gradient(x).expect("gradient availability checked before dispatch")
    }
}

/// Wachter-style gradient counterfactuals (§2.1.4) through the unified
/// layer; needs a differentiable model.
#[derive(Clone, Copy, Debug, Default)]
pub struct WachterMethod {
    /// Annealing schedule and step sizes.
    pub config: WachterConfig,
}

impl Explainer for WachterMethod {
    fn card(&self) -> MethodCard {
        method_card("Wachter counterfactuals")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        reject_budget("Wachter counterfactuals", req)?;
        let instance = req.need_instance("Wachter counterfactuals")?;
        if model.gradient(instance).is_none() {
            return Err(XaiError::Unsupported {
                context: "Wachter counterfactual search needs a differentiable model; \
                          this oracle offers no gradient"
                    .into(),
            });
        }
        let adapter = OracleGradient(model);
        let cf = try_wachter_counterfactual(&adapter, req.data, instance, self.config)?;
        Ok(Explanation::Counterfactuals(vec![cf]))
    }
}

/// GeCo genetic counterfactual search (§2.1.4) through the unified
/// layer; feasibility rules come from the dataset schema's mutability
/// annotations ([`Plaf::from_schema`]).
#[derive(Clone, Copy, Debug)]
pub struct GecoMethod {
    /// Population / generation schedule.
    pub config: GecoConfig,
    /// Restarts for the parallel multi-start twin (`workers > 1`).
    pub starts: usize,
}

impl Default for GecoMethod {
    fn default() -> Self {
        Self { config: GecoConfig::default(), starts: 4 }
    }
}

impl Explainer for GecoMethod {
    fn card(&self) -> MethodCard {
        method_card("GeCo")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        reject_budget("GeCo", req)?;
        let instance = req.need_instance("GeCo")?;
        let plaf = Plaf::from_schema(req.data);
        let f = |x: &[f64]| model.predict(x);
        let cf = if req.plan.parallel() {
            try_geco_parallel(
                &f,
                req.data,
                instance,
                &plaf,
                self.config,
                req.plan.seed,
                self.starts,
                req.plan.workers,
            )?
        } else {
            try_geco(&f, req.data, instance, &plaf, self.config, req.plan.seed)?
        };
        Ok(Explanation::Counterfactuals(vec![cf]))
    }
}

/// DiCE diverse counterfactuals (§2.1.4) through the unified layer.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiceMethod {
    /// Set size, diversity/proximity trade-off and search schedule.
    pub config: DiceConfig,
}

impl Explainer for DiceMethod {
    fn card(&self) -> MethodCard {
        method_card("DiCE")
    }

    fn explain(&self, model: &dyn ModelOracle, req: &ExplainRequest<'_>) -> XaiResult<Explanation> {
        reject_budget("DiCE", req)?;
        let instance = req.need_instance("DiCE")?;
        let explainer = DiceExplainer::fit(req.data);
        let f = |x: &[f64]| model.predict(x);
        let cfs = if req.plan.parallel() {
            explainer.try_generate_parallel(
                &f,
                instance,
                self.config,
                req.plan.seed,
                req.plan.workers,
            )?
        } else {
            explainer.try_generate(&f, instance, self.config, req.plan.seed)?
        };
        Ok(Explanation::Counterfactuals(cfs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_core::taxonomy::{Access, Scope};
    use xai_core::{ExplanationForm, RunConfig};
    use xai_data::synth::german_credit;
    use xai_models::{LogisticConfig, LogisticRegression};

    fn rejected_row(data: &xai_data::Dataset, model: &LogisticRegression) -> Vec<f64> {
        use xai_models::Classifier;
        (0..data.n_rows())
            .map(|i| data.row(i))
            .find(|r| model.proba_one(r) < 0.5)
            .expect("some rejected applicant exists")
            .to_vec()
    }

    #[test]
    fn cards_come_from_the_catalogue() {
        assert_eq!(WachterMethod::default().card().access, Access::ModelSpecific);
        assert_eq!(GecoMethod::default().card().scope, Scope::Local);
        assert_eq!(DiceMethod::default().card().form, ExplanationForm::Counterfactual);
    }

    #[test]
    fn all_three_searches_flip_a_rejection() {
        let data = german_credit(150, 31);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let row = rejected_row(&data, &model);
        let req = ExplainRequest::new(&data).instance(&row).plan(RunConfig::seeded(5));

        for method in [
            &WachterMethod::default() as &dyn Explainer,
            &GecoMethod::default(),
            &DiceMethod::default(),
        ] {
            let e = method.explain(&model, &req).unwrap();
            let cfs = e.as_counterfactuals().unwrap();
            assert!(!cfs.is_empty(), "{} found no counterfactual", method.card().name);
            for cf in cfs {
                assert!(
                    cf.counterfactual_output >= 0.5,
                    "{} returned a non-flipping counterfactual",
                    method.card().name
                );
            }
        }
    }

    #[test]
    fn wachter_requires_a_gradient_surface() {
        let data = german_credit(60, 32);
        let gbdt = xai_models::Gbdt::fit(data.x(), data.y(), xai_models::GbdtConfig::default());
        let row = data.row(0).to_vec();
        let req = ExplainRequest::new(&data).instance(&row);
        assert!(matches!(
            WachterMethod::default().explain(&gbdt, &req),
            Err(XaiError::Unsupported { .. })
        ));
    }
}
