//! # xai-counterfactual
//!
//! Counterfactual explanations and algorithmic recourse (tutorial §2.1.4):
//!
//! - [`distance`] — MAD-L1 proximity, sparsity, diversity and
//!   data-manifold plausibility metrics;
//! - [`dice`] — diverse counterfactual sets under feasibility constraints;
//! - [`mod@geco`] — genetic search with a PLAF-style constraint language and
//!   plausibility-by-construction value pools, plus the random-search
//!   baseline (experiment E10);
//! - [`recourse`] — minimal-cost action sets for linear classifiers over
//!   mutable features only;
//! - [`lewis`] — probabilities of necessity/sufficiency over an SCM, with
//!   causally-propagated recourse ranking.

pub mod dice;
pub mod distance;
pub mod explainer;
pub mod geco;
pub mod lewis;
pub mod recourse;
pub mod wachter;

pub use dice::{DiceConfig, DiceExplainer};
pub use distance::{diversity, implausibility, FeatureScales};
pub use explainer::{DiceMethod, GecoMethod, WachterMethod};
#[allow(deprecated)] // re-export keeps the legacy twins reachable during migration
pub use geco::{
    geco, geco_parallel, random_search_counterfactual, try_geco, try_geco_parallel, GecoConfig,
    Plaf, PlafRule,
};
pub use lewis::{CausationScores, Lewis};
pub use wachter::{try_wachter_counterfactual, wachter_counterfactual, GradientModel, WachterConfig};
pub use recourse::{linear_recourse, Action, Recourse, RecourseConfig};
