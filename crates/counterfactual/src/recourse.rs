//! Actionable recourse for linear classifiers
//! (Ustun, Spangher & Liu, §2.1.4 \[69\]).
//!
//! Given an individual who received an unfavourable decision from a linear
//! model, find a minimal-cost *action set* — changes to mutable features
//! only — that flips the decision. Costs are MAD-normalized so "move one
//! robust standard unit" costs the same for every feature. Features the
//! person cannot act on (protected or immutable) are never used, which is
//! the paper's core distinction from plain counterfactuals.

use crate::distance::FeatureScales;
use xai_core::Counterfactual;
use xai_data::{Dataset, FeatureKind, Mutability};
use xai_models::{Classifier, LogisticRegression};

/// One proposed feature change.
#[derive(Clone, Debug, PartialEq)]
pub struct Action {
    /// Feature index.
    pub feature: usize,
    /// Feature name.
    pub feature_name: String,
    /// Current value.
    pub from: f64,
    /// Proposed value.
    pub to: f64,
    /// MAD-normalized cost of this change.
    pub cost: f64,
}

/// A full recourse recommendation.
#[derive(Clone, Debug)]
pub struct Recourse {
    /// The ordered actions.
    pub actions: Vec<Action>,
    /// Total cost.
    pub total_cost: f64,
    /// The resulting counterfactual instance.
    pub result: Counterfactual,
}

/// Configuration for [`linear_recourse`].
#[derive(Clone, Copy, Debug)]
pub struct RecourseConfig {
    /// Grid resolution per feature (steps between current value and bound).
    pub grid_steps: usize,
    /// Margin beyond the boundary to require (robustness buffer).
    pub margin: f64,
    /// Maximum number of actions.
    pub max_actions: usize,
}

impl Default for RecourseConfig {
    fn default() -> Self {
        Self { grid_steps: 10, margin: 0.05, max_actions: 4 }
    }
}

/// Computes recourse for a negatively-classified instance under a logistic
/// model by greedy best-margin-gain-per-cost selection over per-feature
/// action grids. Returns `None` when the feasible action space cannot flip
/// the decision.
pub fn linear_recourse(
    model: &LogisticRegression,
    data: &Dataset,
    instance: &[f64],
    config: RecourseConfig,
) -> Option<Recourse> {
    assert_eq!(instance.len(), data.n_features());
    let original_output = model.proba_one(instance);
    if original_output >= 0.5 {
        // Already approved — no recourse needed.
        return None;
    }
    let scales = FeatureScales::fit(data);
    let coef = model.coef();
    let d = instance.len();

    // Build feasible action grids per mutable feature.
    let mut grids: Vec<Vec<f64>> = vec![Vec::new(); d];
    for (j, feature) in data.schema().features().iter().enumerate() {
        if feature.mutability == Mutability::Immutable {
            continue;
        }
        match &feature.kind {
            FeatureKind::Numeric { min, max } => {
                let (lo, hi) = match feature.mutability {
                    Mutability::IncreaseOnly => (instance[j], *max),
                    Mutability::DecreaseOnly => (*min, instance[j]),
                    _ => (*min, *max),
                };
                for s in 1..=config.grid_steps {
                    let t = s as f64 / config.grid_steps as f64;
                    let up = instance[j] + (hi - instance[j]) * t;
                    let down = instance[j] + (lo - instance[j]) * t;
                    if (up - instance[j]).abs() > 1e-12 {
                        grids[j].push(up);
                    }
                    if (down - instance[j]).abs() > 1e-12 {
                        grids[j].push(down);
                    }
                }
            }
            FeatureKind::Categorical { categories } => {
                for c in 0..categories.len() {
                    if (c as f64 - instance[j]).abs() > 1e-12 {
                        grids[j].push(c as f64);
                    }
                }
            }
        }
    }

    // Greedy: pick the action with the best margin gain per unit cost.
    let mut current = instance.to_vec();
    let mut actions: Vec<Action> = Vec::new();
    let target_margin = config.margin;
    for _ in 0..config.max_actions {
        if model.margin(&current) > target_margin {
            break;
        }
        let mut best: Option<(usize, f64, f64)> = None; // (feature, value, score)
        for j in 0..d {
            if actions.iter().any(|a| a.feature == j) {
                continue; // one action per feature
            }
            for &v in &grids[j] {
                let gain = coef[j] * (v - current[j]);
                if gain <= 0.0 {
                    continue;
                }
                let cost = (v - current[j]).abs() / scales.mad[j];
                if cost < 1e-12 {
                    continue;
                }
                let score = gain / cost;
                if best.is_none_or(|(_, _, s)| score > s) {
                    best = Some((j, v, score));
                }
            }
        }
        let (j, v, _) = best?;
        actions.push(Action {
            feature: j,
            feature_name: data.schema().feature(j).name.clone(),
            from: current[j],
            to: v,
            cost: (v - current[j]).abs() / scales.mad[j],
        });
        current[j] = v;
    }

    if model.margin(&current) <= 0.0 {
        return None;
    }
    // Trim overshoot: actions are kept but the flip is verified.
    let cf_output = model.proba_one(&current);
    let total_cost = actions.iter().map(|a| a.cost).sum();
    let result = Counterfactual::new(
        instance.to_vec(),
        current,
        original_output,
        cf_output,
        total_cost,
    );
    Some(Recourse { actions, total_cost, result })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::german_credit;
    use xai_models::LogisticConfig;

    fn setup() -> (Dataset, LogisticRegression) {
        let data = german_credit(900, 23);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        (data, model)
    }

    fn first_rejected(data: &Dataset, model: &LogisticRegression) -> Option<usize> {
        (0..data.n_rows()).find(|&i| model.proba_one(data.row(i)) < 0.35)
    }

    #[test]
    fn recourse_flips_the_decision() {
        let (data, model) = setup();
        let i = first_rejected(&data, &model).expect("rejection exists");
        let r = linear_recourse(&model, &data, data.row(i), RecourseConfig::default())
            .expect("recourse should exist");
        assert!(r.result.is_valid(), "decision must flip");
        assert!(!r.actions.is_empty());
        assert!(r.total_cost > 0.0);
    }

    #[test]
    fn protected_features_never_appear_in_actions() {
        let (data, model) = setup();
        let protected = data.schema().protected_indices();
        for i in (0..data.n_rows()).filter(|&i| model.proba_one(data.row(i)) < 0.35).take(10) {
            if let Some(r) = linear_recourse(&model, &data, data.row(i), RecourseConfig::default()) {
                for a in &r.actions {
                    assert!(!protected.contains(&a.feature), "protected feature in recourse");
                }
            }
        }
    }

    #[test]
    fn actions_respect_monotonicity() {
        let (data, model) = setup();
        let i = first_rejected(&data, &model).unwrap();
        if let Some(r) = linear_recourse(&model, &data, data.row(i), RecourseConfig::default()) {
            for a in &r.actions {
                match data.schema().feature(a.feature).mutability {
                    Mutability::IncreaseOnly => assert!(a.to >= a.from),
                    Mutability::DecreaseOnly => assert!(a.to <= a.from),
                    Mutability::Immutable => panic!("immutable feature acted on"),
                    Mutability::Free => {}
                }
            }
        }
    }

    #[test]
    fn approved_instances_need_no_recourse() {
        let (data, model) = setup();
        let i = (0..data.n_rows()).find(|&i| model.proba_one(data.row(i)) > 0.7).unwrap();
        assert!(linear_recourse(&model, &data, data.row(i), RecourseConfig::default()).is_none());
    }

    #[test]
    fn every_action_helps_the_margin() {
        let (data, model) = setup();
        let i = first_rejected(&data, &model).unwrap();
        if let Some(r) = linear_recourse(&model, &data, data.row(i), RecourseConfig::default()) {
            for a in &r.actions {
                let gain = model.coef()[a.feature] * (a.to - a.from);
                assert!(gain > 0.0, "action on {} hurts the margin", a.feature_name);
            }
        }
    }
}
