//! Wachter-style gradient counterfactuals.
//!
//! The foundational counterfactual formulation behind §2.1.4 (\[45\]'s
//! philosophical grounding, operationalized by Wachter, Mittelstadt &
//! Russell): solve
//!
//! `argmin_{x'} λ · (f(x') − target)² + d(x, x')`
//!
//! by gradient descent, annealing λ upward until the prediction crosses
//! the boundary. Needs a differentiable model — the workspace's
//! `xai_surrogate::Differentiable` trait supplies `∂f/∂x`; this module
//! keeps its own minimal gradient surface to avoid a crate cycle.

use crate::distance::FeatureScales;
use xai_core::{catch_model, validate, Counterfactual, XaiError, XaiResult};
use xai_data::Dataset;

/// The gradient surface Wachter search needs.
pub trait GradientModel {
    /// Model output (probability) at `x`.
    fn output(&self, x: &[f64]) -> f64;
    /// Gradient of the output w.r.t. the input.
    fn gradient(&self, x: &[f64]) -> Vec<f64>;
}

impl GradientModel for xai_models::LogisticRegression {
    fn output(&self, x: &[f64]) -> f64 {
        use xai_models::Classifier;
        self.proba_one(x)
    }
    fn gradient(&self, x: &[f64]) -> Vec<f64> {
        let p = self.output(x);
        let s = p * (1.0 - p);
        self.coef().iter().map(|w| w * s).collect()
    }
}

impl GradientModel for xai_models::Mlp {
    fn output(&self, x: &[f64]) -> f64 {
        use xai_models::Classifier;
        self.proba_one(x)
    }
    fn gradient(&self, x: &[f64]) -> Vec<f64> {
        self.input_gradient(x)
    }
}

/// Configuration for [`wachter_counterfactual`].
#[derive(Clone, Copy, Debug)]
pub struct WachterConfig {
    /// Gradient steps per λ stage.
    pub steps_per_stage: usize,
    /// λ annealing stages (λ multiplies by 10 each stage).
    pub stages: usize,
    /// Initial λ.
    pub initial_lambda: f64,
    /// Gradient-descent learning rate (in MAD-scaled space).
    pub learning_rate: f64,
    /// Target output margin beyond 0.5.
    pub margin: f64,
}

impl Default for WachterConfig {
    fn default() -> Self {
        Self {
            steps_per_stage: 200,
            stages: 5,
            initial_lambda: 0.1,
            learning_rate: 0.05,
            margin: 0.05,
        }
    }
}

/// Runs the Wachter optimization. Distance is MAD-weighted; a smooth
/// L1 surrogate (`√(u²+ε)`) keeps it differentiable. Returns `None` when
/// no stage crosses the boundary.
pub fn wachter_counterfactual<M: GradientModel>(
    model: &M,
    data: &Dataset,
    instance: &[f64],
    config: WachterConfig,
) -> Option<Counterfactual> {
    let scales = FeatureScales::fit(data);
    let original_output = model.output(instance);
    let want_positive = original_output < 0.5;
    let target = if want_positive { 0.5 + config.margin } else { 0.5 - config.margin };
    let d = instance.len();
    let eps = 1e-8;

    let mut x = instance.to_vec();
    let mut best: Option<(Vec<f64>, f64)> = None;
    let mut lambda = config.initial_lambda;
    for _ in 0..config.stages {
        for _ in 0..config.steps_per_stage {
            let out = model.output(&x);
            let g_model = model.gradient(&x);
            for j in 0..d {
                // ∂/∂x_j [ λ(f−t)² + Σ √(((x_j−x0_j)/mad)² + ε) ]
                let u = (x[j] - instance[j]) / scales.mad[j];
                let d_dist = u / (u * u + eps).sqrt() / scales.mad[j];
                let grad = 2.0 * lambda * (out - target) * g_model[j] + d_dist;
                // Step size scaled per-feature by MAD so all features move
                // at comparable rates.
                x[j] -= config.learning_rate * scales.mad[j] * grad;
            }
            let out_now = model.output(&x);
            let valid = (out_now >= 0.5) == want_positive;
            if valid {
                let dist = scales.l1(instance, &x);
                if best.as_ref().is_none_or(|(_, bd)| dist < *bd) {
                    best = Some((x.clone(), dist));
                }
            }
        }
        lambda *= 10.0;
    }
    best.map(|(cf, dist)| {
        let out = model.output(&cf);
        Counterfactual::new(instance.to_vec(), cf, original_output, out, dist)
    })
}

/// Fallible twin of [`wachter_counterfactual`]: non-finite inputs yield
/// [`XaiError::NonFiniteInput`], a model that panics or scores the
/// original instance non-finite yields [`XaiError::ModelFault`], and a
/// search that never crosses the boundary reports
/// [`XaiError::ConvergenceFailure`] (the plain API returns `None` there).
/// A returned counterfactual is guaranteed finite and valid.
pub fn try_wachter_counterfactual<M: GradientModel>(
    model: &M,
    data: &Dataset,
    instance: &[f64],
    config: WachterConfig,
) -> XaiResult<Counterfactual> {
    validate::finite_matrix("Wachter training data", data.x())?;
    validate::finite_slice("Wachter instance", instance)?;
    let original_output = catch_model("Wachter original prediction", || model.output(instance))?;
    if !original_output.is_finite() {
        return Err(XaiError::ModelFault {
            context: format!("Wachter: model scored the instance {original_output}"),
        });
    }
    let found = catch_model("Wachter gradient search", || {
        wachter_counterfactual(model, data, instance, config)
    })?;
    let Some(cf) = found else {
        return Err(XaiError::ConvergenceFailure {
            context: "Wachter search never crossed the decision boundary".into(),
            iterations: config.stages * config.steps_per_stage,
        });
    };
    if !cf.counterfactual_output.is_finite()
        || !cf.distance.is_finite()
        || cf.counterfactual.iter().any(|v| !v.is_finite())
    {
        return Err(XaiError::ModelFault {
            context: "Wachter search produced a non-finite counterfactual".into(),
        });
    }
    Ok(cf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::{circles, german_credit};
    use xai_models::{LogisticConfig, LogisticRegression, Mlp, MlpConfig};

    #[test]
    fn flips_a_logistic_decision_with_small_distance() {
        let data = german_credit(700, 5);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let idx = (0..data.n_rows()).find(|&i| model.output(data.row(i)) < 0.35).unwrap();
        let cf = wachter_counterfactual(&model, &data, data.row(idx), WachterConfig::default())
            .expect("wachter finds a counterfactual on a linear model");
        assert!(cf.is_valid());
        // The optimizer should stop near the boundary, not overshoot.
        assert!(cf.counterfactual_output < 0.75, "output {}", cf.counterfactual_output);
        assert!(cf.distance > 0.0);
    }

    #[test]
    fn counterfactual_moves_along_the_model_gradient() {
        let data = german_credit(500, 7);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let idx = (0..data.n_rows()).find(|&i| model.output(data.row(i)) < 0.35).unwrap();
        let cf = wachter_counterfactual(&model, &data, data.row(idx), WachterConfig::default()).unwrap();
        // The aggregate movement must push the margin toward approval…
        let margin_gain: f64 = cf
            .changed_features
            .iter()
            .map(|&j| model.coef()[j] * (cf.counterfactual[j] - cf.original[j]))
            .sum();
        assert!(margin_gain > 0.0, "total margin gain {margin_gain}");
        // …and the single most impactful change must agree in sign with
        // its coefficient (tiny-coefficient features may wiggle either way
        // under the distance penalty).
        let dominant = cf
            .changed_features
            .iter()
            .max_by(|&&a, &&b| {
                let ia = (model.coef()[a] * (cf.counterfactual[a] - cf.original[a])).abs();
                let ib = (model.coef()[b] * (cf.counterfactual[b] - cf.original[b])).abs();
                ia.total_cmp(&ib)
            })
            .copied()
            .expect("something changed");
        let delta = cf.counterfactual[dominant] - cf.original[dominant];
        assert!(
            delta * model.coef()[dominant] > 0.0,
            "dominant feature {dominant} moved against its coefficient"
        );
    }

    #[test]
    fn works_on_a_nonlinear_mlp() {
        let data = circles(600, 9, 0.1);
        let mlp = Mlp::fit(
            data.x(),
            data.y(),
            MlpConfig { hidden: 24, epochs: 150, learning_rate: 0.1, ..MlpConfig::default() },
        );
        let idx = (0..data.n_rows()).find(|&i| mlp.output(data.row(i)) < 0.3).unwrap();
        let cf = wachter_counterfactual(&mlp, &data, data.row(idx), WachterConfig::default())
            .expect("wachter should cross the ring boundary");
        assert!(cf.is_valid());
    }

    #[test]
    fn approved_instances_flip_downward() {
        let data = german_credit(500, 11);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let idx = (0..data.n_rows()).find(|&i| model.output(data.row(i)) > 0.7).unwrap();
        let cf = wachter_counterfactual(&model, &data, data.row(idx), WachterConfig::default()).unwrap();
        assert!(cf.original_output >= 0.5 && cf.counterfactual_output < 0.5);
    }
}
