//! DiCE-style diverse counterfactual explanations
//! (Mothilal, Sharma & Tan, §2.1.4 \[51\]).
//!
//! Generates a *set* of `k` counterfactuals jointly optimizing validity
//! (cross the decision boundary), proximity (MAD-L1 to the instance),
//! sparsity, and diversity (mean pairwise distance within the set), under
//! the schema's feasibility metadata: immutable features never move,
//! monotone features move only in their allowed direction, and all values
//! respect schema bounds.
//!
//! The optimizer is gradient-free (the model is a black box): random
//! restarts of a local search that perturbs one feature at a time,
//! accepting changes that improve the joint loss — the same search shape
//! DiCE uses for non-differentiable models.

use crate::distance::{diversity, FeatureScales};
use xai_rand::rngs::StdRng;
use xai_rand::{Rng, SeedableRng};
use xai_core::{catch_model, validate, Counterfactual, XaiError, XaiResult};
use xai_data::{Dataset, FeatureKind, Mutability};

/// Configuration for [`DiceExplainer::generate`].
#[derive(Clone, Copy, Debug)]
pub struct DiceConfig {
    /// Number of counterfactuals to produce.
    pub k: usize,
    /// Weight of the proximity term.
    pub proximity_weight: f64,
    /// Weight of the (negated) diversity term.
    pub diversity_weight: f64,
    /// Weight of the sparsity term.
    pub sparsity_weight: f64,
    /// Local-search iterations per counterfactual.
    pub iterations: usize,
    /// Random restarts per counterfactual slot.
    pub restarts: usize,
}

impl Default for DiceConfig {
    fn default() -> Self {
        Self {
            k: 3,
            proximity_weight: 0.5,
            diversity_weight: 1.0,
            sparsity_weight: 0.1,
            iterations: 300,
            restarts: 3,
        }
    }
}

/// A fitted DiCE generator (feature scales, bounds and mutability).
#[derive(Clone, Debug)]
pub struct DiceExplainer {
    scales: FeatureScales,
    bounds: Vec<(f64, f64)>,
    mutability: Vec<Mutability>,
    categorical: Vec<Option<usize>>,
}

impl DiceExplainer {
    /// Captures feasibility metadata from the dataset schema.
    pub fn fit(data: &Dataset) -> Self {
        let scales = FeatureScales::fit(data);
        let mut bounds = Vec::new();
        let mut mutability = Vec::new();
        let mut categorical = Vec::new();
        for f in data.schema().features() {
            match &f.kind {
                FeatureKind::Numeric { min, max } => {
                    bounds.push((*min, *max));
                    categorical.push(None);
                }
                FeatureKind::Categorical { categories } => {
                    bounds.push((0.0, (categories.len() - 1) as f64));
                    categorical.push(Some(categories.len()));
                }
            }
            mutability.push(f.mutability);
        }
        Self { scales, bounds, mutability, categorical }
    }

    /// MAD-scaled L1 distance under the fitted feature scales — the
    /// `distance` field of every counterfactual this generator reports.
    pub(crate) fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        self.scales.l1(a, b)
    }

    /// Whether a move of feature `j` from `from` to `to` is feasible.
    fn feasible(&self, j: usize, from: f64, to: f64) -> bool {
        if to < self.bounds[j].0 || to > self.bounds[j].1 {
            return false;
        }
        match self.mutability[j] {
            Mutability::Free => true,
            Mutability::Immutable => (to - from).abs() < 1e-12,
            Mutability::IncreaseOnly => to >= from - 1e-12,
            Mutability::DecreaseOnly => to <= from + 1e-12,
        }
    }

    /// Proposes a feasible random move of feature `j` away from the
    /// current candidate value.
    fn propose(&self, j: usize, instance_value: f64, current: f64, rng: &mut StdRng) -> Option<f64> {
        let candidate = match self.categorical[j] {
            Some(k) => rng.gen_range(0..k) as f64,
            None => {
                let step = self.scales.mad[j] * (rng.gen::<f64>() * 2.0 - 1.0) * 2.0;
                (current + step).clamp(self.bounds[j].0, self.bounds[j].1)
            }
        };
        self.feasible(j, instance_value, candidate).then_some(candidate)
    }

    fn loss(
        &self,
        model: &dyn Fn(&[f64]) -> f64,
        instance: &[f64],
        target_positive: bool,
        candidate: &[f64],
        others: &[Vec<f64>],
        config: DiceConfig,
    ) -> f64 {
        let out = model(candidate);
        // Hinge validity loss toward the opposite class.
        let validity = if target_positive {
            (0.55 - out).max(0.0)
        } else {
            (out - 0.45).max(0.0)
        };
        let proximity = self.scales.l1(instance, candidate);
        let sparsity = self.scales.l0(instance, candidate) as f64;
        let mut all: Vec<Vec<f64>> = others.to_vec();
        all.push(candidate.to_vec());
        let div = diversity(&self.scales, &all);
        10.0 * validity + config.proximity_weight * proximity + config.sparsity_weight * sparsity
            - config.diversity_weight * div
    }

    /// Generates up to `k` diverse, feasible counterfactuals. Returns fewer
    /// when the search cannot flip the prediction within budget.
    pub fn generate(
        &self,
        model: &dyn Fn(&[f64]) -> f64,
        instance: &[f64],
        config: DiceConfig,
        seed: u64,
    ) -> Vec<Counterfactual> {
        assert_eq!(instance.len(), self.bounds.len(), "instance arity mismatch");
        let original_output = model(instance);
        let target_positive = original_output < 0.5; // we want the flip
        let mut rng = StdRng::seed_from_u64(seed);
        let d = instance.len();
        let mut found: Vec<Vec<f64>> = Vec::new();
        let mut results = Vec::new();

        for _slot in 0..config.k {
            let mut best: Option<(Vec<f64>, f64)> = None;
            for _restart in 0..config.restarts.max(1) {
                let mut current = instance.to_vec();
                let mut current_loss =
                    self.loss(model, instance, target_positive, &current, &found, config);
                for _ in 0..config.iterations {
                    let j = rng.gen_range(0..d);
                    let Some(v) = self.propose(j, instance[j], current[j], &mut rng) else {
                        continue;
                    };
                    let old = current[j];
                    current[j] = v;
                    let l = self.loss(model, instance, target_positive, &current, &found, config);
                    if l < current_loss {
                        current_loss = l;
                    } else {
                        current[j] = old;
                    }
                }
                let valid = (model(&current) >= 0.5) == target_positive;
                if valid && best.as_ref().is_none_or(|(_, bl)| current_loss < *bl) {
                    best = Some((current.clone(), current_loss));
                }
            }
            if let Some((cf, _)) = best {
                let cf_output = model(&cf);
                results.push(Counterfactual::new(
                    instance.to_vec(),
                    cf.clone(),
                    original_output,
                    cf_output,
                    self.scales.l1(instance, &cf),
                ));
                found.push(cf);
            }
        }
        results
    }

    /// Parallel variant of [`DiceExplainer::generate`]: the random restarts
    /// of each counterfactual slot run concurrently on the `xai_rand`
    /// executor.
    ///
    /// Slot `s` restart `t` searches with the stream
    /// `child_seed(child_seed(seed, s), t)`; the winning restart is chosen
    /// by loss with ties broken in restart order. The output is therefore a
    /// pure function of `(seed, config)` — bit-identical across worker
    /// counts. The draws differ from the sequential `generate` (one stream
    /// per restart instead of one shared stream); both explore the same
    /// search space.
    #[deprecated(note = "superseded by the unified explainer layer: use DiceMethod with a RunConfig (DESIGN.md §9)")]
    #[allow(deprecated)] // the twins forward to each other until removal
    pub fn generate_parallel(
        &self,
        model: &(dyn Fn(&[f64]) -> f64 + Sync),
        instance: &[f64],
        config: DiceConfig,
        seed: u64,
        workers: usize,
    ) -> Vec<Counterfactual> {
        assert_eq!(instance.len(), self.bounds.len(), "instance arity mismatch");
        let original_output = model(instance);
        let target_positive = original_output < 0.5;
        let d = instance.len();
        let mut found: Vec<Vec<f64>> = Vec::new();
        let mut results = Vec::new();

        for slot in 0..config.k {
            let found_ref = &found;
            let attempts = xai_rand::parallel::par_map_seeded(
                config.restarts.max(1),
                xai_rand::child_seed(seed, slot as u64),
                workers,
                |_t, rng| {
                    let mut current = instance.to_vec();
                    let mut current_loss =
                        self.loss(model, instance, target_positive, &current, found_ref, config);
                    for _ in 0..config.iterations {
                        let j = rng.gen_range(0..d);
                        let Some(v) = self.propose(j, instance[j], current[j], rng) else {
                            continue;
                        };
                        let old = current[j];
                        current[j] = v;
                        let l =
                            self.loss(model, instance, target_positive, &current, found_ref, config);
                        if l < current_loss {
                            current_loss = l;
                        } else {
                            current[j] = old;
                        }
                    }
                    let valid = (model(&current) >= 0.5) == target_positive;
                    valid.then_some((current, current_loss))
                },
            );
            let best = attempts
                .into_iter()
                .flatten()
                .min_by(|a, b| a.1.total_cmp(&b.1));
            if let Some((cf, _)) = best {
                let cf_output = model(&cf);
                results.push(Counterfactual::new(
                    instance.to_vec(),
                    cf.clone(),
                    original_output,
                    cf_output,
                    self.scales.l1(instance, &cf),
                ));
                found.push(cf);
            }
        }
        results
    }

    /// One candidate of the pooled search: an independent local search
    /// against the *core* loss (validity, proximity, sparsity — diversity
    /// enters at selection time, so candidates need no view of each
    /// other). Returns the candidate and its core loss when the search
    /// crossed the boundary, `None` otherwise.
    ///
    /// This is the unit the parallel and sharded DiCE paths tile:
    /// candidate `c` runs this body with an RNG seeded
    /// `child_seed(seed, c)`, so in-process fork-join execution and
    /// cross-process shards reproduce each other bit for bit.
    pub(crate) fn pool_candidate(
        &self,
        model: &dyn Fn(&[f64]) -> f64,
        instance: &[f64],
        target_positive: bool,
        config: DiceConfig,
        rng: &mut StdRng,
    ) -> Option<(Vec<f64>, f64)> {
        let d = instance.len();
        let mut current = instance.to_vec();
        let mut current_loss = self.loss(model, instance, target_positive, &current, &[], config);
        for _ in 0..config.iterations {
            let j = rng.gen_range(0..d);
            let Some(v) = self.propose(j, instance[j], current[j], rng) else {
                continue;
            };
            let old = current[j];
            current[j] = v;
            let l = self.loss(model, instance, target_positive, &current, &[], config);
            if l < current_loss {
                current_loss = l;
            } else {
                current[j] = old;
            }
        }
        let valid = (model(&current) >= 0.5) == target_positive;
        valid.then_some((current, current_loss))
    }

    /// The pool merge: greedily picks up to `k` valid candidates, each
    /// round taking the one minimizing
    /// `core_loss − diversity_weight · diversity(chosen ∪ {candidate})`.
    /// Strict comparison breaks ties toward the lowest pool index, so the
    /// selection is independent of evaluation order.
    pub(crate) fn select_diverse(
        &self,
        candidates: &[Option<(Vec<f64>, f64)>],
        config: DiceConfig,
    ) -> Vec<Vec<f64>> {
        let mut chosen: Vec<Vec<f64>> = Vec::new();
        let mut used = vec![false; candidates.len()];
        for _slot in 0..config.k {
            let mut best: Option<(usize, f64)> = None;
            for (i, cand) in candidates.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let Some((cf, core_loss)) = cand else {
                    continue;
                };
                let mut set = chosen.clone();
                set.push(cf.clone());
                let score = core_loss - config.diversity_weight * diversity(&self.scales, &set);
                if best.is_none_or(|(_, b)| score < b) {
                    best = Some((i, score));
                }
            }
            let Some((i, _)) = best else { break };
            used[i] = true;
            chosen.push(candidates[i].as_ref().expect("selected candidate exists").0.clone());
        }
        chosen
    }

    /// Pooled twin of [`DiceExplainer::try_generate`], used by the
    /// unified parallel dispatch and the shard layer: `k · restarts`
    /// independent candidates (candidate `c` at `child_seed(seed, c)`)
    /// followed by the greedy diverse selection of `k`. The output is a
    /// pure function of `(seed, config)` — bit-identical across worker
    /// counts and shard splits. The draws differ from the sequential
    /// `try_generate` (one stream per candidate, diversity applied at
    /// selection instead of during search); both explore the same space.
    pub fn try_generate_pool(
        &self,
        model: &(dyn Fn(&[f64]) -> f64 + Sync),
        instance: &[f64],
        config: DiceConfig,
        seed: u64,
        workers: usize,
    ) -> XaiResult<Vec<Counterfactual>> {
        validate::finite_slice("DiCE instance", instance)?;
        assert_eq!(instance.len(), self.bounds.len(), "instance arity mismatch");
        let original_output = catch_model("DiCE original prediction", || model(instance))?;
        let target_positive = original_output < 0.5;
        let pool = (config.k * config.restarts.max(1)).max(1);
        let candidates = xai_rand::parallel::try_par_map_seeded(pool, seed, workers, |_c, rng| {
            self.pool_candidate(model, instance, target_positive, config, rng)
        })
        .map_err(XaiError::from)?;
        let chosen = self.select_diverse(&candidates, config);
        let results = catch_model("DiCE counterfactual certification", || {
            chosen
                .into_iter()
                .map(|cf| {
                    let cf_output = model(&cf);
                    Counterfactual::new(
                        instance.to_vec(),
                        cf.clone(),
                        original_output,
                        cf_output,
                        self.scales.l1(instance, &cf),
                    )
                })
                .collect::<Vec<_>>()
        })?;
        certify_set(results, "pooled DiCE search", config)
    }

    /// Fallible twin of [`DiceExplainer::generate`]: non-finite inputs
    /// yield [`XaiError::NonFiniteInput`], a panicking model or non-finite
    /// counterfactuals yield [`XaiError::ModelFault`], and an empty result
    /// set reports [`XaiError::ConvergenceFailure`]. A partial set
    /// (fewer than `k`) is still `Ok` — best-effort, like the plain API.
    pub fn try_generate(
        &self,
        model: &dyn Fn(&[f64]) -> f64,
        instance: &[f64],
        config: DiceConfig,
        seed: u64,
    ) -> XaiResult<Vec<Counterfactual>> {
        validate::finite_slice("DiCE instance", instance)?;
        let cfs = catch_model("DiCE local search", || self.generate(model, instance, config, seed))?;
        certify_set(cfs, "DiCE local search", config)
    }

    /// Fallible twin of [`DiceExplainer::generate_parallel`]: a panic
    /// inside one restart yields [`XaiError::WorkerPanic`] naming the
    /// lowest-indexed panicking restart; other failures as in
    /// [`DiceExplainer::try_generate`].
    #[deprecated(note = "superseded by the unified explainer layer: use DiceMethod with a RunConfig (DESIGN.md §9)")]
    #[allow(deprecated)] // the twins forward to each other until removal
    pub fn try_generate_parallel(
        &self,
        model: &(dyn Fn(&[f64]) -> f64 + Sync),
        instance: &[f64],
        config: DiceConfig,
        seed: u64,
        workers: usize,
    ) -> XaiResult<Vec<Counterfactual>> {
        validate::finite_slice("DiCE instance", instance)?;
        assert_eq!(instance.len(), self.bounds.len(), "instance arity mismatch");
        let original_output =
            catch_model("DiCE original prediction", || model(instance))?;
        let target_positive = original_output < 0.5;
        let d = instance.len();
        let mut found: Vec<Vec<f64>> = Vec::new();
        let mut results = Vec::new();

        for slot in 0..config.k {
            let found_ref = &found;
            let attempts = xai_rand::parallel::try_par_map_seeded(
                config.restarts.max(1),
                xai_rand::child_seed(seed, slot as u64),
                workers,
                |_t, rng| {
                    let mut current = instance.to_vec();
                    let mut current_loss =
                        self.loss(model, instance, target_positive, &current, found_ref, config);
                    for _ in 0..config.iterations {
                        let j = rng.gen_range(0..d);
                        let Some(v) = self.propose(j, instance[j], current[j], rng) else {
                            continue;
                        };
                        let old = current[j];
                        current[j] = v;
                        let l =
                            self.loss(model, instance, target_positive, &current, found_ref, config);
                        if l < current_loss {
                            current_loss = l;
                        } else {
                            current[j] = old;
                        }
                    }
                    let valid = (model(&current) >= 0.5) == target_positive;
                    valid.then_some((current, current_loss))
                },
            )
            .map_err(XaiError::from)?;
            let best = attempts
                .into_iter()
                .flatten()
                .min_by(|a, b| a.1.total_cmp(&b.1));
            if let Some((cf, _)) = best {
                let cf_output = model(&cf);
                results.push(Counterfactual::new(
                    instance.to_vec(),
                    cf.clone(),
                    original_output,
                    cf_output,
                    self.scales.l1(instance, &cf),
                ));
                found.push(cf);
            }
        }
        certify_set(results, "parallel DiCE search", config)
    }
}

/// Shared certification epilogue of the fallible DiCE paths: an empty set
/// is a convergence failure, a non-finite member is a model fault.
pub(crate) fn certify_set(
    cfs: Vec<Counterfactual>,
    what: &str,
    config: DiceConfig,
) -> XaiResult<Vec<Counterfactual>> {
    if cfs.is_empty() {
        return Err(XaiError::ConvergenceFailure {
            context: format!("{what} found no valid counterfactual"),
            iterations: config.k * config.restarts.max(1) * config.iterations,
        });
    }
    for cf in &cfs {
        if !cf.counterfactual_output.is_finite()
            || !cf.original_output.is_finite()
            || !cf.distance.is_finite()
            || cf.counterfactual.iter().any(|v| !v.is_finite())
        {
            return Err(XaiError::ModelFault {
                context: format!("{what} produced a non-finite counterfactual"),
            });
        }
    }
    Ok(cfs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::german_credit;
    use xai_models::{proba_fn, Gbdt, GbdtConfig, LogisticConfig, LogisticRegression};

    fn setup() -> (xai_data::Dataset, LogisticRegression, DiceExplainer) {
        let data = german_credit(800, 5);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        let dice = DiceExplainer::fit(&data);
        (data, model, dice)
    }

    fn rejected_index(data: &xai_data::Dataset, model: &LogisticRegression) -> usize {
        use xai_models::Classifier;
        (0..data.n_rows())
            .find(|&i| model.proba_one(data.row(i)) < 0.4)
            .expect("some rejected applicant exists")
    }

    #[test]
    fn counterfactuals_are_valid_and_feasible() {
        let (data, model, dice) = setup();
        let i = rejected_index(&data, &model);
        let f = proba_fn(&model);
        let cfs = dice.generate(&f, data.row(i), DiceConfig::default(), 7);
        assert!(!cfs.is_empty(), "should find at least one counterfactual");
        for cf in &cfs {
            assert!(cf.is_valid(), "must cross the boundary");
            // Schema validity of the produced row.
            data.schema().validate_row(&cf.counterfactual).unwrap();
            // Protected feature (sex, idx 8) must never change.
            assert_eq!(cf.original[8], cf.counterfactual[8], "immutable feature moved");
            // Age (idx 0) may only increase.
            assert!(cf.counterfactual[0] >= cf.original[0] - 1e-9, "age decreased");
            // n_defaults (idx 6) may only decrease.
            assert!(cf.counterfactual[6] <= cf.original[6] + 1e-9, "defaults increased");
        }
    }

    #[test]
    fn diversity_weight_spreads_the_set() {
        let (data, model, dice) = setup();
        let i = rejected_index(&data, &model);
        let f = proba_fn(&model);
        let diverse = dice.generate(
            &f,
            data.row(i),
            DiceConfig { k: 3, diversity_weight: 3.0, ..DiceConfig::default() },
            11,
        );
        let plain = dice.generate(
            &f,
            data.row(i),
            DiceConfig { k: 3, diversity_weight: 0.0, ..DiceConfig::default() },
            11,
        );
        if diverse.len() >= 2 && plain.len() >= 2 {
            let div = |cfs: &[Counterfactual]| {
                let set: Vec<Vec<f64>> = cfs.iter().map(|c| c.counterfactual.clone()).collect();
                diversity(&dice.scales, &set)
            };
            assert!(
                div(&diverse) >= div(&plain) * 0.8,
                "diversity weight should not reduce spread dramatically: {} vs {}",
                div(&diverse),
                div(&plain)
            );
        }
    }

    #[test]
    fn works_on_tree_ensembles_too() {
        let data = german_credit(600, 9);
        let model = Gbdt::fit(data.x(), data.y(), GbdtConfig { n_rounds: 30, ..GbdtConfig::default() });
        let dice = DiceExplainer::fit(&data);
        let f = proba_fn(&model);
        let i = (0..data.n_rows()).find(|&i| f(data.row(i)) < 0.4).unwrap();
        let cfs = dice.generate(&f, data.row(i), DiceConfig { k: 2, ..DiceConfig::default() }, 3);
        assert!(!cfs.is_empty());
        for cf in &cfs {
            assert!(cf.is_valid());
            assert!(cf.sparsity() > 0);
            assert!(cf.distance > 0.0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (data, model, dice) = setup();
        let i = rejected_index(&data, &model);
        let f = proba_fn(&model);
        let a = dice.generate(&f, data.row(i), DiceConfig::default(), 21);
        let b = dice.generate(&f, data.row(i), DiceConfig::default(), 21);
        assert_eq!(a, b);
    }
}
