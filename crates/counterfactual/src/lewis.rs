//! LEWIS: probabilistic contrastive counterfactuals over a causal model
//! (Galhotra, Pradhan & Salimi, §2.1.4 \[20, 21\]).
//!
//! LEWIS scores features by Pearl-style probabilities of causation,
//! computed on an SCM with the ML model mounted on top:
//!
//! - **necessity** `PN(i → v')`: among individuals who currently receive
//!   the positive outcome *with* their actual `X_i`, how many would lose
//!   it had `X_i` been `v'`? (abduction → action → prediction);
//! - **sufficiency** `PS(i → v')`: among individuals currently receiving
//!   the negative outcome, how many would gain the positive one under
//!   `do(X_i = v')`?
//!
//! Downstream features respond to interventions through the SCM — this is
//! what distinguishes LEWIS recourse from model-only counterfactuals.

use xai_rand::rngs::StdRng;
use xai_rand::SeedableRng;
use xai_data::scm::{Intervention, LabeledScm};

/// Necessity/sufficiency scores for one candidate intervention.
#[derive(Clone, Debug)]
pub struct CausationScores {
    /// The feature intervened on (feature-index space).
    pub feature: usize,
    /// The intervention value.
    pub value: f64,
    /// Probability of necessity.
    pub necessity: f64,
    /// Probability of sufficiency.
    pub sufficiency: f64,
}

/// The LEWIS engine: a model mounted on a feature SCM.
pub struct Lewis<'a> {
    model: &'a dyn Fn(&[f64]) -> f64,
    labeled: &'a LabeledScm,
}

impl<'a> Lewis<'a> {
    /// Builds the engine.
    pub fn new(model: &'a dyn Fn(&[f64]) -> f64, labeled: &'a LabeledScm) -> Self {
        Self { model, labeled }
    }

    fn features_of(&self, world: &[f64]) -> Vec<f64> {
        self.labeled.feature_nodes.iter().map(|&n| world[n]).collect()
    }

    fn positive(&self, world: &[f64]) -> bool {
        (self.model)(&self.features_of(world)) >= 0.5
    }

    /// Population-level PN and PS for intervening `do(X_feature = value)`,
    /// estimated from `n_samples` sampled individuals.
    pub fn causation_scores(
        &self,
        feature: usize,
        value: f64,
        n_samples: usize,
        seed: u64,
    ) -> CausationScores {
        assert!(feature < self.labeled.feature_nodes.len());
        assert!(n_samples > 0);
        let node = self.labeled.feature_nodes[feature];
        let mut rng = StdRng::seed_from_u64(seed);
        let iv = [Intervention { node, value }];
        let mut pos_total = 0.0;
        let mut pos_flipped = 0.0;
        let mut neg_total = 0.0;
        let mut neg_flipped = 0.0;
        for _ in 0..n_samples {
            let noise = self.labeled.scm.sample_noise(&mut rng);
            let world = self.labeled.scm.evaluate(&noise, &[]);
            // Counterfactual world shares the same exogenous noise
            // (abduction is trivial: we *know* the noise we sampled).
            let cf_world = self.labeled.scm.evaluate(&noise, &iv);
            let factual_pos = self.positive(&world);
            let cf_pos = self.positive(&cf_world);
            if factual_pos {
                pos_total += 1.0;
                if !cf_pos {
                    pos_flipped += 1.0;
                }
            } else {
                neg_total += 1.0;
                if cf_pos {
                    neg_flipped += 1.0;
                }
            }
        }
        CausationScores {
            feature,
            value,
            necessity: if pos_total > 0.0 { pos_flipped / pos_total } else { 0.0 },
            sufficiency: if neg_total > 0.0 { neg_flipped / neg_total } else { 0.0 },
        }
    }

    /// Individual-level counterfactual for a fully-observed instance
    /// (continuous SCMs: exact abduction). Returns the counterfactual
    /// feature vector and model output under `do(X_feature = value)`.
    pub fn individual_counterfactual(
        &self,
        observed_features: &[f64],
        feature: usize,
        value: f64,
        seed: u64,
    ) -> Result<(Vec<f64>, f64), String> {
        assert_eq!(observed_features.len(), self.labeled.feature_nodes.len());
        // Reconstruct a full-node observation; feature nodes must cover all
        // ancestors of each other for exact abduction, which holds when the
        // feature nodes are a prefix of the topological order.
        let n_nodes = self.labeled.scm.n_nodes();
        let mut observed = vec![0.0; n_nodes];
        for (f, &node) in self.labeled.feature_nodes.iter().enumerate() {
            observed[node] = observed_features[f];
        }
        // Label node value is irrelevant for feature abduction when the
        // label is a sink; fill with a mechanism-consistent draw.
        let mut rng = StdRng::seed_from_u64(seed);
        let noise0 = self.labeled.scm.sample_noise(&mut rng);
        observed[self.labeled.label_node] = self.labeled.scm.evaluate(&noise0, &[])[self.labeled.label_node];

        let noise = self.labeled.scm.abduct(&observed, &mut rng)?;
        let iv = [Intervention { node: self.labeled.feature_nodes[feature], value }];
        let cf_world = self.labeled.scm.evaluate(&noise, &iv);
        let cf_features = self.features_of(&cf_world);
        let out = (self.model)(&cf_features);
        Ok((cf_features, out))
    }

    /// LEWIS recourse: among candidate interventions (feature, value),
    /// returns those ranked by sufficiency for the negative population.
    pub fn rank_recourse(
        &self,
        candidates: &[(usize, f64)],
        n_samples: usize,
        seed: u64,
    ) -> Vec<CausationScores> {
        let mut scored: Vec<CausationScores> = candidates
            .iter()
            .enumerate()
            .map(|(k, &(f, v))| self.causation_scores(f, v, n_samples, seed.wrapping_add(k as u64)))
            .collect();
        scored.sort_by(|a, b| {
            b.sufficiency
                .partial_cmp(&a.sufficiency)
                .expect("NaN sufficiency")
        });
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::sigmoid;
    use xai_data::synth::credit_scm;

    /// The model used throughout: approves on income + savings.
    fn model() -> impl Fn(&[f64]) -> f64 {
        |x: &[f64]| sigmoid(0.6 * x[1] + 0.8 * x[2] - 7.5)
    }

    #[test]
    fn intervening_on_a_cause_moves_both_scores() {
        let labeled = credit_scm();
        let m = model();
        let lewis = Lewis::new(&m, &labeled);
        // do(income = very high) should be sufficient for many negatives.
        let high = lewis.causation_scores(1, 9.0, 4000, 3);
        assert!(high.sufficiency > 0.5, "high income PS {}", high.sufficiency);
        // do(income = very low) should be necessary for many positives.
        let low = lewis.causation_scores(1, 0.0, 4000, 3);
        assert!(low.necessity > 0.5, "low income PN {}", low.necessity);
    }

    #[test]
    fn upstream_interventions_propagate() {
        let labeled = credit_scm();
        let m = model();
        let lewis = Lewis::new(&m, &labeled);
        // Education does not appear in the model, yet do(education = 20)
        // raises savings/income and thus approval: PS > 0.
        let edu = lewis.causation_scores(0, 20.0, 4000, 5);
        assert!(
            edu.sufficiency > 0.1,
            "education must act through mediators, PS {}",
            edu.sufficiency
        );
    }

    #[test]
    fn null_intervention_scores_zero() {
        let labeled = credit_scm();
        let m = model();
        let lewis = Lewis::new(&m, &labeled);
        // Intervening on savings with a mid value barely flips anyone
        // relative to extreme interventions.
        let extreme = lewis.causation_scores(2, 12.0, 3000, 7);
        let mild = lewis.causation_scores(2, 2.0, 3000, 7);
        assert!(extreme.sufficiency > mild.sufficiency);
    }

    #[test]
    fn recourse_ranking_prefers_sufficient_actions() {
        let labeled = credit_scm();
        let m = model();
        let lewis = Lewis::new(&m, &labeled);
        let candidates = [(1usize, 9.0), (1usize, 2.0), (2usize, 12.0), (0usize, 20.0)];
        let ranked = lewis.rank_recourse(&candidates, 2000, 11);
        assert_eq!(ranked.len(), 4);
        for w in ranked.windows(2) {
            assert!(w[0].sufficiency >= w[1].sufficiency);
        }
        // The weak action (income = 2.0) must not rank first.
        assert!(!(ranked[0].feature == 1 && (ranked[0].value - 2.0).abs() < 1e-9));
    }

    #[test]
    fn individual_counterfactual_is_consistent() {
        let labeled = credit_scm();
        let m = model();
        let lewis = Lewis::new(&m, &labeled);
        let mut rng = StdRng::seed_from_u64(13);
        let (xs, _) = labeled.sample_examples(&mut rng, 1);
        let x = &xs[0];
        let (cf, out) = lewis.individual_counterfactual(x, 0, x[0] + 4.0, 1).unwrap();
        // Education pinned at +4; income/savings respond positively.
        assert!((cf[0] - (x[0] + 4.0)).abs() < 1e-9);
        assert!(cf[1] > x[1], "income must rise with education");
        assert!(cf[2] > x[2], "savings must rise with education");
        assert!((0.0..=1.0).contains(&out));
    }
}
