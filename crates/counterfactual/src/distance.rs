//! Distance and quality metrics for counterfactual explanations (§2.1.4).
//!
//! The standard bookkeeping of the counterfactual literature: MAD-weighted
//! L1 proximity (Wachter et al.), L0 sparsity, diversity of a set of
//! counterfactuals (DiCE's determinant-free mean-pairwise form), and a
//! k-NN–based plausibility score measuring how far off the data manifold a
//! candidate lies — the "unrealistic and impossible counterfactual
//! instances" critique \[5\].

use xai_data::Dataset;
use xai_linalg::stats::mad;

/// Per-feature scales for distance normalization.
#[derive(Clone, Debug)]
pub struct FeatureScales {
    /// Median absolute deviation per feature, floored to a small positive
    /// value so constant features do not blow distances up.
    pub mad: Vec<f64>,
}

impl FeatureScales {
    /// Measures MAD scales from training data.
    pub fn fit(data: &Dataset) -> Self {
        let mad = (0..data.n_features())
            .map(|j| {
                let m = mad(&data.x().col(j));
                if m > 1e-9 {
                    m
                } else {
                    1.0
                }
            })
            .collect();
        Self { mad }
    }

    /// MAD-weighted L1 distance.
    pub fn l1(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), self.mad.len());
        a.iter()
            .zip(b)
            .zip(&self.mad)
            .map(|((x, y), m)| (x - y).abs() / m)
            .sum()
    }

    /// Number of changed features (L0).
    pub fn l0(&self, a: &[f64], b: &[f64]) -> usize {
        a.iter().zip(b).filter(|(x, y)| (*x - *y).abs() > 1e-9).count()
    }
}

/// Mean pairwise MAD-L1 distance among a set of counterfactuals — DiCE's
/// diversity objective in its pairwise form.
pub fn diversity(scales: &FeatureScales, set: &[Vec<f64>]) -> f64 {
    if set.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0.0;
    for i in 0..set.len() {
        for j in i + 1..set.len() {
            total += scales.l1(&set[i], &set[j]);
            pairs += 1.0;
        }
    }
    total / pairs
}

/// Plausibility of a candidate: the MAD-L1 distance to its nearest
/// neighbour in the training data (lower = more on-manifold).
pub fn implausibility(scales: &FeatureScales, data: &Dataset, candidate: &[f64]) -> f64 {
    (0..data.n_rows())
        .map(|i| scales.l1(data.row(i), candidate))
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::german_credit;

    #[test]
    fn mad_scaling_makes_features_comparable() {
        let data = german_credit(500, 3);
        let scales = FeatureScales::fit(&data);
        // One MAD of movement in any numeric feature costs exactly 1.
        let a = data.row(0).to_vec();
        for j in [0usize, 1, 3] {
            let mut b = a.clone();
            b[j] += scales.mad[j];
            assert!((scales.l1(&a, &b) - 1.0).abs() < 1e-9, "feature {j}");
        }
    }

    #[test]
    fn l0_counts_changes() {
        let data = german_credit(100, 5);
        let scales = FeatureScales::fit(&data);
        let a = data.row(0).to_vec();
        let mut b = a.clone();
        assert_eq!(scales.l0(&a, &b), 0);
        b[0] += 1.0;
        b[4] += 2.0;
        assert_eq!(scales.l0(&a, &b), 2);
    }

    #[test]
    fn diversity_zero_for_singletons_and_duplicates() {
        let data = german_credit(100, 7);
        let scales = FeatureScales::fit(&data);
        let a = data.row(0).to_vec();
        assert_eq!(diversity(&scales, &[a.clone()]), 0.0);
        assert_eq!(diversity(&scales, &[a.clone(), a.clone()]), 0.0);
        let b = data.row(1).to_vec();
        assert!(diversity(&scales, &[a, b]) > 0.0);
    }

    #[test]
    fn training_points_are_perfectly_plausible() {
        let data = german_credit(200, 9);
        let scales = FeatureScales::fit(&data);
        assert_eq!(implausibility(&scales, &data, data.row(5)), 0.0);
        // A wildly out-of-range candidate is implausible.
        let mut crazy = data.row(5).to_vec();
        crazy[1] = 1e6;
        assert!(implausibility(&scales, &data, &crazy) > 10.0);
    }
}
