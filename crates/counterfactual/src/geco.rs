//! GeCo-lite: real-time quality counterfactuals via genetic search with
//! plausibility/feasibility constraints (Schleich et al., §2.1.4/§3 \[60\]).
//!
//! GeCo's ingredients, reproduced at library scale:
//!
//! - a **PLAF-style constraint language** ([`Plaf`]) declaring which
//!   feature changes are admissible, over and above schema mutability;
//! - **plausibility by construction**: candidate feature values are drawn
//!   from the observed data distribution, not from thin air;
//! - a **genetic loop** (selection → crossover → mutation) over a
//!   population seeded with the instance, with fitness ordered
//!   lexicographically: validity, then changed-feature count, then
//!   MAD-L1 distance — mirroring GeCo's preference for few-feature,
//!   near-boundary counterfactuals delivered quickly.

use crate::distance::FeatureScales;
use xai_rand::rngs::StdRng;
use xai_rand::{Rng, SeedableRng};
use xai_core::{catch_model, validate, Counterfactual, XaiError, XaiResult};
use xai_data::{Dataset, Mutability};

/// One PLAF constraint.
#[derive(Clone, Debug)]
pub enum PlafRule {
    /// Feature may not change at all.
    Freeze {
        /// Feature index.
        feature: usize,
    },
    /// Feature may only increase.
    OnlyIncrease {
        /// Feature index.
        feature: usize,
    },
    /// Feature may only decrease.
    OnlyDecrease {
        /// Feature index.
        feature: usize,
    },
    /// If `feature` changes, `implied` must also have changed (GeCo's
    /// conditional PLAF clauses, e.g. "changing education forces age up").
    RequiresChange {
        /// The guarded feature.
        feature: usize,
        /// The feature that must move with it.
        implied: usize,
    },
}

/// A PLAF program: a set of rules checked against (instance, candidate).
#[derive(Clone, Debug, Default)]
pub struct Plaf {
    rules: Vec<PlafRule>,
}

impl Plaf {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule.
    pub fn rule(mut self, r: PlafRule) -> Self {
        self.rules.push(r);
        self
    }

    /// Derives the baseline program from schema mutability metadata.
    pub fn from_schema(data: &Dataset) -> Self {
        let mut plaf = Self::new();
        for (j, f) in data.schema().features().iter().enumerate() {
            plaf = match f.mutability {
                Mutability::Immutable => plaf.rule(PlafRule::Freeze { feature: j }),
                Mutability::IncreaseOnly => plaf.rule(PlafRule::OnlyIncrease { feature: j }),
                Mutability::DecreaseOnly => plaf.rule(PlafRule::OnlyDecrease { feature: j }),
                Mutability::Free => plaf,
            };
        }
        plaf
    }

    /// Checks a candidate against every rule.
    pub fn admissible(&self, instance: &[f64], candidate: &[f64]) -> bool {
        self.rules.iter().all(|r| match *r {
            PlafRule::Freeze { feature } => (candidate[feature] - instance[feature]).abs() < 1e-12,
            PlafRule::OnlyIncrease { feature } => candidate[feature] >= instance[feature] - 1e-12,
            PlafRule::OnlyDecrease { feature } => candidate[feature] <= instance[feature] + 1e-12,
            PlafRule::RequiresChange { feature, implied } => {
                let changed = (candidate[feature] - instance[feature]).abs() > 1e-12;
                let implied_changed = (candidate[implied] - instance[implied]).abs() > 1e-12;
                !changed || implied_changed
            }
        })
    }
}

/// Configuration for [`geco`].
#[derive(Clone, Copy, Debug)]
pub struct GecoConfig {
    /// Population size.
    pub population: usize,
    /// Generations to run.
    pub generations: usize,
    /// Fraction of the population kept as parents each generation.
    pub elite_fraction: f64,
    /// Per-feature mutation probability.
    pub mutation_rate: f64,
}

impl Default for GecoConfig {
    fn default() -> Self {
        Self { population: 60, generations: 25, elite_fraction: 0.3, mutation_rate: 0.3 }
    }
}

/// Lexicographic fitness: valid first, then fewer changes, then closer.
fn fitness(
    model: &dyn Fn(&[f64]) -> f64,
    scales: &FeatureScales,
    instance: &[f64],
    want_positive: bool,
    candidate: &[f64],
) -> (bool, usize, f64) {
    let out = model(candidate);
    let valid = (out >= 0.5) == want_positive;
    (valid, scales.l0(instance, candidate), scales.l1(instance, candidate))
}

/// Runs the genetic counterfactual search. Returns the best valid
/// counterfactual found, or `None` when none crossed the boundary.
pub fn geco(
    model: &dyn Fn(&[f64]) -> f64,
    data: &Dataset,
    instance: &[f64],
    plaf: &Plaf,
    config: GecoConfig,
    seed: u64,
) -> Option<Counterfactual> {
    assert_eq!(instance.len(), data.n_features());
    let scales = FeatureScales::fit(data);
    let original_output = model(instance);
    let want_positive = original_output < 0.5;
    let d = instance.len();
    let mut rng = StdRng::seed_from_u64(seed);

    // Value pools: the observed values per feature (plausibility source).
    let pools: Vec<Vec<f64>> = (0..d).map(|j| data.x().col(j)).collect();
    let sample_value =
        |j: usize, rng: &mut StdRng| -> f64 { pools[j][rng.gen_range(0..pools[j].len())] };

    // Seed population: copies of the instance with one plausible change.
    let mut population: Vec<Vec<f64>> = Vec::with_capacity(config.population);
    let mut guard = 0;
    while population.len() < config.population && guard < config.population * 50 {
        guard += 1;
        let mut cand = instance.to_vec();
        let j = rng.gen_range(0..d);
        cand[j] = sample_value(j, &mut rng);
        if plaf.admissible(instance, &cand) {
            population.push(cand);
        }
    }
    if population.is_empty() {
        return None;
    }

    for _ in 0..config.generations {
        // Rank by fitness.
        let mut scored: Vec<(Vec<f64>, (bool, usize, f64))> = population
            .drain(..)
            .map(|c| {
                let f = fitness(model, &scales, instance, want_positive, &c);
                (c, f)
            })
            .collect();
        scored.sort_by(|a, b| {
            // valid first, then fewer changes, then smaller distance
            b.1 .0
                .cmp(&a.1 .0)
                .then(a.1 .1.cmp(&b.1 .1))
                .then(a.1 .2.total_cmp(&b.1 .2))
        });
        let n_elite = ((config.population as f64) * config.elite_fraction).ceil() as usize;
        let elites: Vec<Vec<f64>> = scored.iter().take(n_elite.max(2)).map(|(c, _)| c.clone()).collect();

        // Refill with crossover + mutation.
        population = elites.clone();
        while population.len() < config.population {
            let a = &elites[rng.gen_range(0..elites.len())];
            let b = &elites[rng.gen_range(0..elites.len())];
            let mut child: Vec<f64> = (0..d)
                .map(|j| if rng.gen::<bool>() { a[j] } else { b[j] })
                .collect();
            for j in 0..d {
                if rng.gen::<f64>() < config.mutation_rate {
                    // Mutate toward either a fresh plausible value or back
                    // to the instance (encourages sparsity).
                    child[j] = if rng.gen::<bool>() { sample_value(j, &mut rng) } else { instance[j] };
                }
            }
            if plaf.admissible(instance, &child) {
                population.push(child);
            }
        }
    }

    // Best valid individual.
    let best = population
        .into_iter()
        .map(|c| {
            let f = fitness(model, &scales, instance, want_positive, &c);
            (c, f)
        })
        .filter(|(_, f)| f.0)
        .min_by(|a, b| {
            a.1 .1
                .cmp(&b.1 .1)
                .then(a.1 .2.total_cmp(&b.1 .2))
        })?;
    let (cf, _) = best;
    let cf_output = model(&cf);
    Some(Counterfactual::new(
        instance.to_vec(),
        cf.clone(),
        original_output,
        cf_output,
        scales.l1(instance, &cf),
    ))
}

/// Certifies a search outcome: maps "no counterfactual found" to
/// [`XaiError::ConvergenceFailure`] and a non-finite result (a NaN model
/// can score garbage candidates "valid") to [`XaiError::ModelFault`].
fn certify_counterfactual(
    found: Option<Counterfactual>,
    what: &str,
    iterations: usize,
) -> XaiResult<Counterfactual> {
    let Some(cf) = found else {
        return Err(XaiError::ConvergenceFailure {
            context: format!("{what} found no valid counterfactual"),
            iterations,
        });
    };
    if !cf.counterfactual_output.is_finite()
        || !cf.distance.is_finite()
        || !cf.original_output.is_finite()
        || cf.counterfactual.iter().any(|v| !v.is_finite())
    {
        return Err(XaiError::ModelFault {
            context: format!("{what} produced a non-finite counterfactual"),
        });
    }
    Ok(cf)
}

/// Fallible twin of [`geco`]: non-finite inputs yield
/// [`XaiError::NonFiniteInput`], a panicking model or a non-finite result
/// yields [`XaiError::ModelFault`], and an empty-handed search reports
/// [`XaiError::ConvergenceFailure`] (the plain API returns `None` there).
pub fn try_geco(
    model: &dyn Fn(&[f64]) -> f64,
    data: &Dataset,
    instance: &[f64],
    plaf: &Plaf,
    config: GecoConfig,
    seed: u64,
) -> XaiResult<Counterfactual> {
    validate::finite_matrix("GeCo training data", data.x())?;
    validate::finite_slice("GeCo instance", instance)?;
    let found =
        catch_model("GeCo genetic search", || geco(model, data, instance, plaf, config, seed))?;
    certify_counterfactual(found, "GeCo genetic search", config.generations)
}

/// Parallel multi-start GeCo on the `xai_rand` executor.
///
/// Runs `starts` independent genetic searches, start `t` seeded with
/// `child_seed(seed, t)`, and keeps the best valid counterfactual under
/// GeCo's lexicographic criterion (fewest changes, then closest). Results
/// are compared in start order, so the output is a pure function of
/// `(seed, starts)` — bit-identical across worker counts.
#[deprecated(note = "superseded by the unified explainer layer: use GecoMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn geco_parallel(
    model: &(dyn Fn(&[f64]) -> f64 + Sync),
    data: &Dataset,
    instance: &[f64],
    plaf: &Plaf,
    config: GecoConfig,
    seed: u64,
    starts: usize,
    workers: usize,
) -> Option<Counterfactual> {
    assert!(starts >= 1, "need at least one start");
    let scales = FeatureScales::fit(data);
    let candidates = xai_rand::parallel::par_map_seeded(starts, seed, workers, |t, _rng| {
        geco(model, data, instance, plaf, config, xai_rand::child_seed(seed, t as u64 + 1))
    });
    candidates
        .into_iter()
        .flatten()
        .min_by(|a, b| {
            a.sparsity()
                .cmp(&b.sparsity())
                .then(
                    scales
                        .l1(instance, &a.counterfactual)
                        .total_cmp(&scales.l1(instance, &b.counterfactual)),
                )
        })
}

/// Fallible twin of [`geco_parallel`]: a panic inside one search start
/// yields [`XaiError::WorkerPanic`] naming the lowest-indexed panicking
/// start; other failures as in [`try_geco`].
#[deprecated(note = "superseded by the unified explainer layer: use GecoMethod with a RunConfig (DESIGN.md §9)")]
#[allow(deprecated)] // the twins forward to each other until removal
pub fn try_geco_parallel(
    model: &(dyn Fn(&[f64]) -> f64 + Sync),
    data: &Dataset,
    instance: &[f64],
    plaf: &Plaf,
    config: GecoConfig,
    seed: u64,
    starts: usize,
    workers: usize,
) -> XaiResult<Counterfactual> {
    assert!(starts >= 1, "need at least one start");
    validate::finite_matrix("GeCo training data", data.x())?;
    validate::finite_slice("GeCo instance", instance)?;
    let scales = FeatureScales::fit(data);
    let candidates =
        xai_rand::parallel::try_par_map_seeded(starts, seed, workers, |t, _rng| {
            geco(model, data, instance, plaf, config, xai_rand::child_seed(seed, t as u64 + 1))
        })
        .map_err(XaiError::from)?;
    let found = candidates.into_iter().flatten().min_by(|a, b| {
        a.sparsity().cmp(&b.sparsity()).then(
            scales
                .l1(instance, &a.counterfactual)
                .total_cmp(&scales.l1(instance, &b.counterfactual)),
        )
    });
    certify_counterfactual(found, "parallel GeCo search", starts * config.generations)
}

/// Baseline for experiment E10: pure random search over plausible values
/// with the same admissibility checks and evaluation budget.
pub fn random_search_counterfactual(
    model: &dyn Fn(&[f64]) -> f64,
    data: &Dataset,
    instance: &[f64],
    plaf: &Plaf,
    budget: usize,
    seed: u64,
) -> Option<Counterfactual> {
    let scales = FeatureScales::fit(data);
    let original_output = model(instance);
    let want_positive = original_output < 0.5;
    let d = instance.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let pools: Vec<Vec<f64>> = (0..d).map(|j| data.x().col(j)).collect();
    let mut best: Option<(Vec<f64>, usize, f64)> = None;
    for _ in 0..budget {
        let mut cand = instance.to_vec();
        // Change a random subset of features to random plausible values.
        let n_changes = rng.gen_range(1..=d);
        for _ in 0..n_changes {
            let j = rng.gen_range(0..d);
            cand[j] = pools[j][rng.gen_range(0..pools[j].len())];
        }
        if !plaf.admissible(instance, &cand) {
            continue;
        }
        if (model(&cand) >= 0.5) == want_positive {
            let l0 = scales.l0(instance, &cand);
            let l1 = scales.l1(instance, &cand);
            if best
                .as_ref()
                .is_none_or(|(_, b0, b1)| l0 < *b0 || (l0 == *b0 && l1 < *b1))
            {
                best = Some((cand.clone(), l0, l1));
            }
        }
    }
    best.map(|(cf, _, l1)| {
        let out = model(&cf);
        Counterfactual::new(instance.to_vec(), cf, original_output, out, l1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xai_data::synth::german_credit;
    use xai_models::{proba_fn, LogisticConfig, LogisticRegression};

    fn setup() -> (Dataset, LogisticRegression) {
        let data = german_credit(700, 13);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        (data, model)
    }

    fn rejected(data: &Dataset, f: &dyn Fn(&[f64]) -> f64) -> usize {
        (0..data.n_rows()).find(|&i| f(data.row(i)) < 0.4).expect("a rejection exists")
    }

    #[test]
    fn finds_valid_sparse_counterfactual() {
        let (data, model) = setup();
        let f = proba_fn(&model);
        let i = rejected(&data, &f);
        let plaf = Plaf::from_schema(&data);
        let cf = geco(&f, &data, data.row(i), &plaf, GecoConfig::default(), 5)
            .expect("geco should find a counterfactual");
        assert!(cf.is_valid());
        assert!(cf.sparsity() <= 4, "geco prefers few changes, got {}", cf.sparsity());
        data.schema().validate_row(&cf.counterfactual).unwrap();
    }

    #[test]
    fn respects_schema_plaf() {
        let (data, model) = setup();
        let f = proba_fn(&model);
        let i = rejected(&data, &f);
        let plaf = Plaf::from_schema(&data);
        for seed in 0..3 {
            if let Some(cf) = geco(&f, &data, data.row(i), &plaf, GecoConfig::default(), seed) {
                assert_eq!(cf.original[8], cf.counterfactual[8], "sex frozen");
                assert!(cf.counterfactual[0] >= cf.original[0] - 1e-9, "age up only");
                assert!(cf.counterfactual[6] <= cf.original[6] + 1e-9, "defaults down only");
            }
        }
    }

    #[test]
    fn requires_change_rule_enforced() {
        let (data, model) = setup();
        let f = proba_fn(&model);
        let i = rejected(&data, &f);
        // Changing employment_years (5) requires age (0) to change too.
        let plaf = Plaf::from_schema(&data)
            .rule(PlafRule::RequiresChange { feature: 5, implied: 0 });
        if let Some(cf) = geco(&f, &data, data.row(i), &plaf, GecoConfig::default(), 9) {
            let emp_changed = (cf.counterfactual[5] - cf.original[5]).abs() > 1e-12;
            let age_changed = (cf.counterfactual[0] - cf.original[0]).abs() > 1e-12;
            assert!(!emp_changed || age_changed, "PLAF implication violated");
        }
    }

    #[test]
    fn geco_beats_random_search_on_quality() {
        let (data, model) = setup();
        let f = proba_fn(&model);
        let i = rejected(&data, &f);
        let plaf = Plaf::from_schema(&data);
        let g = geco(&f, &data, data.row(i), &plaf, GecoConfig::default(), 3);
        let r = random_search_counterfactual(&f, &data, data.row(i), &plaf, 1500, 3);
        let (g, r) = (g.expect("geco finds"), r.expect("random finds"));
        assert!(
            g.sparsity() <= r.sparsity(),
            "geco should change no more features: {} vs {}",
            g.sparsity(),
            r.sparsity()
        );
    }

    #[test]
    fn counterfactual_values_come_from_data_pools() {
        let (data, model) = setup();
        let f = proba_fn(&model);
        let i = rejected(&data, &f);
        let plaf = Plaf::from_schema(&data);
        let cf = geco(&f, &data, data.row(i), &plaf, GecoConfig::default(), 17).unwrap();
        for (j, &v) in cf.counterfactual.iter().enumerate() {
            if (v - cf.original[j]).abs() > 1e-12 {
                let pool = data.x().col(j);
                assert!(
                    pool.iter().any(|&p| (p - v).abs() < 1e-12),
                    "changed value {v} for feature {j} must be an observed value"
                );
            }
        }
    }
}
