//! Property-based tests: feasibility of counterfactuals is an invariant,
//! not a tendency — whatever instance and seed, immutable features never
//! move and monotone features never move the wrong way. Run as
//! deterministic seeded loops over `xai_rand`.

use xai_counterfactual::{geco, DiceConfig, DiceExplainer, GecoConfig, Plaf};
use xai_data::synth::german_credit;
use xai_data::Mutability;
use xai_models::{proba_fn, LogisticConfig, LogisticRegression};
use xai_rand::property::cases;
use xai_rand::Rng;

fn check_feasible(data: &xai_data::Dataset, original: &[f64], counterfactual: &[f64]) {
    for (j, f) in data.schema().features().iter().enumerate() {
        let delta = counterfactual[j] - original[j];
        match f.mutability {
            Mutability::Immutable => assert!(delta.abs() < 1e-9, "immutable {} moved", f.name),
            Mutability::IncreaseOnly => assert!(delta >= -1e-9, "{} decreased", f.name),
            Mutability::DecreaseOnly => assert!(delta <= 1e-9, "{} increased", f.name),
            Mutability::Free => {}
        }
        assert!(f.is_valid(counterfactual[j]), "{} out of bounds: {}", f.name, counterfactual[j]);
    }
}

#[test]
fn dice_outputs_are_always_feasible() {
    let data = german_credit(200, 13);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let f = proba_fn(&model);
    let dice = DiceExplainer::fit(&data);
    cases(8, 201, |rng| {
        let row = rng.gen_range(0..60);
        let seed = rng.gen_range(0u64..1000);
        let cfs = dice.generate(
            &f,
            data.row(row),
            DiceConfig { k: 2, iterations: 120, restarts: 1, ..DiceConfig::default() },
            seed,
        );
        for cf in &cfs {
            check_feasible(&data, &cf.original, &cf.counterfactual);
            // Bookkeeping invariants.
            assert_eq!(cf.original.len(), cf.counterfactual.len());
            assert!(cf.distance >= 0.0);
            assert!(cf.sparsity() <= data.n_features());
        }
    });
}

#[test]
fn geco_outputs_are_always_feasible() {
    let data = german_credit(200, 17);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let f = proba_fn(&model);
    let plaf = Plaf::from_schema(&data);
    cases(8, 202, |rng| {
        let row = rng.gen_range(0..60);
        let seed = rng.gen_range(0u64..1000);
        let config = GecoConfig { population: 30, generations: 8, ..GecoConfig::default() };
        if let Some(cf) = geco(&f, &data, data.row(row), &plaf, config, seed) {
            check_feasible(&data, &cf.original, &cf.counterfactual);
            assert!(cf.is_valid(), "geco only returns boundary-crossing candidates");
        }
    });
}
