//! Fault injection for the shard process pool (DESIGN.md §11): worker
//! panics, garbage output, abnormal exits and hangs must each surface
//! as the matching typed `XaiError` — never as a hang or a crash of the
//! coordinating process. Faults are injected through the worker's
//! `XAI_SHARD_FAULT` environment hook, so the real binary and the real
//! wire path are exercised end to end.

use std::time::{Duration, Instant};

use xai::prelude::*;
use xai::shard::{explain_process_pool, PoolConfig};

fn fixture() -> (Dataset, LogisticRegression) {
    let data = xai::data::synth::german_credit(12, 41);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    (data, model)
}

fn faulty_pool(mode: &str) -> PoolConfig {
    let mut pool = PoolConfig::new(env!("CARGO_BIN_EXE_xai-shard-worker"));
    pool.env.push(("XAI_SHARD_FAULT".into(), mode.into()));
    pool
}

fn run(pool: &PoolConfig) -> XaiResult<Explanation> {
    let (data, model) = fixture();
    let req = ExplainRequest::new(&data).plan(RunConfig::seeded(19).with_workers(2));
    explain_process_pool(&LooMethod, &model, &req, 3, pool)
}

#[test]
fn a_panicking_worker_is_a_typed_worker_panic() {
    match run(&faulty_pool("panic")) {
        Err(XaiError::WorkerPanic { task, message }) => {
            assert!(task < 3, "task should be the shard index, got {task}");
            assert!(
                message.contains("injected shard worker fault"),
                "panic payload should survive the wire: {message}"
            );
        }
        other => panic!("expected XaiError::WorkerPanic, got {other:?}"),
    }
}

#[test]
fn garbage_worker_output_is_a_typed_parse_error() {
    match run(&faulty_pool("garbage")) {
        Err(XaiError::Parse { context }) => {
            assert!(
                context.contains("unparseable"),
                "context should say the output was unparseable: {context}"
            );
        }
        other => panic!("expected XaiError::Parse, got {other:?}"),
    }
}

#[test]
fn an_abnormal_worker_exit_is_a_typed_model_fault() {
    match run(&faulty_pool("exit")) {
        Err(XaiError::ModelFault { context }) => {
            assert!(
                context.contains("exited abnormally"),
                "context should carry the exit status: {context}"
            );
        }
        other => panic!("expected XaiError::ModelFault, got {other:?}"),
    }
}

#[test]
fn a_hung_worker_is_killed_at_the_deadline_not_awaited_forever() {
    let mut pool = faulty_pool("hang");
    pool.deadline = Some(Duration::from_millis(300));
    let started = Instant::now();
    match run(&pool) {
        Err(XaiError::BudgetExceeded { context, completed }) => {
            assert!(context.contains("deadline"), "context should name the deadline: {context}");
            assert_eq!(completed, 0, "no hung shard should count as completed");
        }
        other => panic!("expected XaiError::BudgetExceeded, got {other:?}"),
    }
    // The coordinator must abort stragglers promptly rather than wait
    // out the children; well under the test harness timeout.
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "deadline abort took {:?}",
        started.elapsed()
    );
}

#[test]
fn a_missing_worker_binary_is_a_typed_io_error() {
    let pool = PoolConfig::new("/nonexistent/xai-shard-worker");
    assert!(matches!(run(&pool), Err(XaiError::Io { .. })));
}

#[test]
fn a_healthy_pool_still_matches_the_unsharded_run() {
    // Guard: the fault hook must be inert when the variable is unset.
    let (data, model) = fixture();
    let req = ExplainRequest::new(&data).plan(RunConfig::seeded(19).with_workers(2));
    let reference = LooMethod.explain(&model, &req).unwrap().to_json_string();
    let pool = PoolConfig::new(env!("CARGO_BIN_EXE_xai-shard-worker"));
    let pooled = run(&pool).unwrap().to_json_string();
    assert_eq!(pooled, reference);
}
