//! Cross-method consistency: different estimators of the same quantity
//! must agree, and causal/marginal methods must coincide exactly when the
//! causal structure is trivial.

use xai::prelude::*;
use xai::shapley::{
    asymmetric_shapley_exact, causal_shapley, permutation_shapley, shapley_qii,
};

#[test]
fn four_estimators_agree_on_one_prediction_game() {
    let data = xai::data::synth::german_credit(300, 9);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let f = proba_fn(&model);
    let background = data.x().select_rows(&(0..40).collect::<Vec<_>>());
    let instance = data.row(50);
    let game = PredictionGame::new(&f, instance, &background);

    let exact = exact_shapley(&game);
    let kernel = kernel_shap(&game, KernelShapConfig::default());
    let perms = permutation_shapley(&game, 6000, 3);
    let qii = shapley_qii(&f, instance, &background, 6000, 3);

    for j in 0..instance.len() {
        assert!(
            (kernel.phi[j] - exact[j]).abs() < 1e-6,
            "kernel vs exact at {j}: {} vs {}",
            kernel.phi[j],
            exact[j]
        );
        assert!(
            (perms.phi[j] - exact[j]).abs() < 0.02,
            "permutation vs exact at {j}: {} vs {}",
            perms.phi[j],
            exact[j]
        );
        assert!(
            (qii.phi[j] - exact[j]).abs() < 0.02,
            "QII vs exact at {j}: {} vs {}",
            qii.phi[j],
            exact[j]
        );
    }
}

#[test]
fn causal_equals_marginal_when_features_are_independent() {
    use xai::data::{Mechanism, Node, Scm, LabeledScm};
    // Three independent exogenous features + a Bernoulli label.
    let scm = Scm::new(vec![
        Node { name: "a".into(), mechanism: Mechanism::Exogenous { mean: 0.0, std: 1.0 } },
        Node { name: "b".into(), mechanism: Mechanism::Exogenous { mean: 1.0, std: 0.5 } },
        Node { name: "c".into(), mechanism: Mechanism::Exogenous { mean: -1.0, std: 2.0 } },
        Node {
            name: "y".into(),
            mechanism: Mechanism::Bernoulli { parents: vec![0, 1, 2], weights: vec![1.0, -1.0, 0.5], bias: 0.0 },
        },
    ])
    .unwrap();
    let labeled = LabeledScm { scm, feature_nodes: vec![0, 1, 2], label_node: 3 };
    let model = |x: &[f64]| xai::data::sigmoid(1.0 * x[0] - 1.0 * x[1] + 0.5 * x[2]);
    let instance = [1.5, 0.5, -2.0];

    // Causal (interventional) Shapley on the SCM.
    let causal = causal_shapley(&model, &labeled, &instance, 3000, 5);

    // Marginal Shapley with an SCM-sampled background.
    use xai_rand::SeedableRng;
    let mut rng = xai_rand::rngs::StdRng::seed_from_u64(6);
    let (xs, _) = labeled.sample_examples(&mut rng, 3000);
    let background = xai::linalg::Matrix::from_rows(&xs);
    let game = PredictionGame::new(&model, &instance, &background);
    let marginal = exact_shapley(&game);

    // With no causal edges among the features, do(X_S = x_S) and
    // replacement sampling coincide — the values must match.
    for j in 0..3 {
        assert!(
            (causal[j] - marginal[j]).abs() < 0.03,
            "independent features: causal {} vs marginal {} at {j}",
            causal[j],
            marginal[j]
        );
    }
}

#[test]
fn asymmetric_with_empty_order_is_plain_shapley_on_models_too() {
    // A 4-feature model keeps the n!-ordering enumeration cheap.
    let data = xai::data::synth::linear_gaussian(200, &[1.5, -1.0, 0.5, 0.0], 0.2, 17);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let f = proba_fn(&model);
    let background = data.x().select_rows(&(0..25).collect::<Vec<_>>());
    let instance = data.row(3);
    let game = PredictionGame::new(&f, instance, &background);
    let asv = asymmetric_shapley_exact(&game, &[]);
    let exact = exact_shapley(&game);
    for (a, b) in asv.iter().zip(&exact) {
        assert!((a - b).abs() < 1e-9);
    }
}

#[test]
fn treeshap_matches_kernel_shap_on_the_same_conditional_game() {
    // TreeSHAP plays the path-dependent game; Kernel SHAP run *on that
    // same game* must agree (they differ only in estimator).
    use xai::shapley::{kernel_shap, PathDependentGame};
    let data = xai::data::synth::friedman1(400, 21, 0.2);
    let tree = DecisionTree::fit(
        data.x(),
        data.y(),
        TreeConfig {
            max_depth: 4,
            criterion: xai::models::SplitCriterion::Variance,
            min_samples_leaf: 5,
            ..TreeConfig::default()
        },
    );
    let x = data.row(0);
    let fast = xai::shapley::tree_shap(&tree, x);
    let game = PathDependentGame::new(&tree, x);
    let ks = kernel_shap(&game, KernelShapConfig { max_coalitions: 1 << 12, ..Default::default() });
    for (a, b) in fast.iter().zip(&ks.phi) {
        assert!((a - b).abs() < 1e-5, "treeshap {a} vs kernel {b}");
    }
}
