//! Registry-completeness audit (DESIGN.md §9): every `Explainer` in the
//! workspace is attached to its taxonomy card, every runnable card is
//! reachable through `Registry::resolve`, cards agree bit-for-bit with
//! the static catalogue (no metadata drift), and every runnable method
//! actually produces an explanation of the form its card advertises.

use xai::prelude::*;
use xai::unified::runnable_registry;
use xai_core::taxonomy::method_card;

/// The complete set of methods the unified layer must make runnable.
const RUNNABLE: [&str; 17] = [
    "Exact Shapley",
    "Permutation sampling Shapley",
    "Kernel SHAP",
    "TreeSHAP",
    "LIME",
    "SP-LIME",
    "Partial dependence / ICE",
    "Integrated gradients",
    "Wachter counterfactuals",
    "GeCo",
    "DiCE",
    "Anchors",
    "Interpretable decision sets",
    "Leave-one-out",
    "Data Shapley (TMC)",
    "Data Banzhaf",
    "Complaint-driven debugging",
];

#[test]
fn every_expected_method_is_registered_and_no_extras() {
    let registry = runnable_registry();
    let names = registry.runnable_names();
    for name in RUNNABLE {
        assert!(names.contains(&name), "'{name}' is not runnable in the registry");
        assert!(registry.is_runnable(name), "is_runnable('{name}') disagrees");
    }
    assert_eq!(names.len(), RUNNABLE.len(), "unexpected runnable methods: {names:?}");
}

#[test]
fn attached_cards_agree_with_the_static_catalogue() {
    let registry = runnable_registry();
    for explainer in registry.runnable() {
        let card = explainer.card();
        assert_eq!(
            card,
            method_card(card.name),
            "metadata drift between the Explainer impl and WORKSPACE_CARDS for '{}'",
            card.name
        );
    }
}

#[test]
fn resolve_returns_each_runnable_method_at_its_own_coordinates() {
    let registry = runnable_registry();
    for name in RUNNABLE {
        let card = method_card(name);
        let resolved = registry.resolve(card.scope, card.access);
        assert!(
            resolved.iter().any(|e| e.card().name == name),
            "resolve({:?}, {:?}) does not return '{name}'",
            card.scope,
            card.access
        );
    }
}

#[test]
fn survey_only_cards_stay_resolvable_as_metadata() {
    let registry = runnable_registry();
    let total = registry.cards().len();
    assert!(
        total > RUNNABLE.len(),
        "the registry should keep survey-only cards alongside runnable ones"
    );
    for card in registry.cards() {
        if !registry.is_runnable(card.name) {
            assert!(registry.get_explainer(card.name).is_none());
        }
    }
}

#[test]
fn every_runnable_method_explains_and_matches_its_advertised_form() {
    let data = xai::data::synth::german_credit(60, 91);
    let logit = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let gbdt = Gbdt::fit(data.x(), data.y(), GbdtConfig::default());
    // A rejected instance, so the counterfactual searches have a
    // decision to flip.
    let row = {
        use xai_models::Classifier;
        (0..data.n_rows())
            .map(|i| data.row(i))
            .find(|r| logit.proba_one(r) < 0.5)
            .expect("a rejected applicant exists")
            .to_vec()
    };
    // A cheap additive utility keeps the valuation methods from
    // retraining models inside this audit.
    let utility =
        xai::datavalue::FnUtility::new(data.n_rows(), |s: &[usize]| s.len() as f64);

    let registry = runnable_registry();
    for explainer in registry.runnable() {
        let card = explainer.card();
        let req = ExplainRequest::new(&data)
            .instance(&row)
            .feature(1)
            .utility(&utility)
            .plan(RunConfig::seeded(5));
        // TreeSHAP walks tree internals; everything else runs on the
        // logistic model (which also serves the gradient-based and
        // model-specific methods).
        let model: &dyn ModelOracle = if card.name == "TreeSHAP" { &gbdt } else { &logit };
        let explanation = explainer
            .explain(model, &req)
            .unwrap_or_else(|e| panic!("'{}' failed to explain: {e}", card.name));
        assert_eq!(
            explanation.form(),
            card.form,
            "'{}' produced a {:?} but its card advertises {:?}",
            card.name,
            explanation.form(),
            card.form
        );
    }
}
