//! End-to-end determinism guarantees.
//!
//! Every sampling-based explainer in the workspace must be a pure function
//! of its seed: run twice with the same seed, it produces bit-identical
//! output. The parallel estimators carry a stronger guarantee — their
//! output is also independent of the worker count, because work is split
//! into a fixed chunk grid with `child_seed`-derived streams and reduced
//! in chunk order (see `xai_rand::parallel`).
// The legacy twin entry points stay under test until removal: this file
// is their bit-identity oracle against the unified layer.
#![allow(deprecated)]

use xai_counterfactual::{geco, geco_parallel, DiceConfig, DiceExplainer, GecoConfig, Plaf};
use xai_data::synth::german_credit;
use xai_datavalue::{
    data_banzhaf, data_banzhaf_parallel, tmc_shapley, tmc_shapley_parallel, BanzhafConfig,
    FnUtility, TmcConfig,
};
use xai_models::{proba_fn, LogisticConfig, LogisticRegression};
use xai_shapley::{
    kernel_shap, kernel_shap_parallel, permutation_shapley, permutation_shapley_parallel,
    KernelShapConfig, PredictionGame, TableGame,
};

fn model_game() -> (xai_data::Dataset, LogisticRegression) {
    let data = german_credit(150, 5);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    (data, model)
}

#[test]
fn permutation_shapley_is_seed_stable() {
    let (data, model) = model_game();
    let f = proba_fn(&model);
    let background = xai_linalg::Matrix::from_fn(8, data.n_features(), |i, j| data.x()[(i, j)]);
    let instance: Vec<f64> = data.row(11).to_vec();
    let game = PredictionGame::new(&f, &instance, &background);
    let a = permutation_shapley(&game, 60, 5);
    let b = permutation_shapley(&game, 60, 5);
    assert_eq!(a.phi, b.phi);
    assert_eq!(a.std_err, b.std_err);
}

#[test]
fn parallel_shapley_estimators_are_worker_count_invariant() {
    let (data, model) = model_game();
    let f = proba_fn(&model);
    let background = xai_linalg::Matrix::from_fn(8, data.n_features(), |i, j| data.x()[(i, j)]);
    let instance: Vec<f64> = data.row(11).to_vec();
    let game = PredictionGame::new(&f, &instance, &background);

    let p1 = permutation_shapley_parallel(&game, 80, 5, 1);
    let p4 = permutation_shapley_parallel(&game, 80, 5, 4);
    assert_eq!(p1.phi, p4.phi, "permutation sampling must not depend on workers");
    assert_eq!(p1.std_err, p4.std_err);

    let big = TableGame::new(
        12,
        (0..1usize << 12).map(|m| (m.count_ones() as f64).sqrt()).collect(),
    );
    let cfg = KernelShapConfig { max_coalitions: 256, ..Default::default() };
    let k1 = kernel_shap_parallel(&big, cfg, 1);
    let k4 = kernel_shap_parallel(&big, cfg, 4);
    assert!(!k1.exact, "budget forces sampling mode");
    assert_eq!(k1.phi, k4.phi, "kernel SHAP sampling must not depend on workers");
}

#[test]
fn sequential_kernel_shap_is_seed_stable() {
    let game = TableGame::new(
        12,
        (0..1usize << 12).map(|m| f64::from(m.count_ones() >= 6)).collect(),
    );
    let cfg = KernelShapConfig { max_coalitions: 200, ..Default::default() };
    let a = kernel_shap(&game, cfg);
    let b = kernel_shap(&game, cfg);
    assert_eq!(a.phi, b.phi);
}

fn utility() -> FnUtility<impl Fn(&[usize]) -> f64> {
    FnUtility::new(9, |s: &[usize]| {
        s.iter().map(|&i| (i + 1) as f64 * 0.07).sum::<f64>()
            + f64::from(s.contains(&2) && s.contains(&7)) * 0.3
    })
}

#[test]
fn data_shapley_and_banzhaf_are_seed_stable() {
    let u = utility();
    let cfg = TmcConfig { permutations: 40, truncation_tolerance: 0.0, seed: 13 };
    assert_eq!(tmc_shapley(&u, cfg).attribution.values, tmc_shapley(&u, cfg).attribution.values);
    let bcfg = BanzhafConfig { samples_per_point: 50, seed: 13 };
    assert_eq!(data_banzhaf(&u, bcfg).values, data_banzhaf(&u, bcfg).values);
}

#[test]
fn parallel_valuation_is_worker_count_invariant() {
    let u = utility();
    let cfg = TmcConfig { permutations: 48, truncation_tolerance: 0.0, seed: 17 };
    let t1 = tmc_shapley_parallel(&u, cfg, 1);
    let t4 = tmc_shapley_parallel(&u, cfg, 4);
    assert_eq!(t1.values, t4.values, "TMC Shapley must not depend on workers");

    let bcfg = BanzhafConfig { samples_per_point: 40, seed: 17 };
    let b1 = data_banzhaf_parallel(&u, bcfg, 1);
    let b4 = data_banzhaf_parallel(&u, bcfg, 4);
    assert_eq!(b1.values, b4.values, "Banzhaf must not depend on workers");
}

#[test]
fn geco_is_seed_stable_and_parallel_geco_worker_invariant() {
    let data = german_credit(200, 23);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let f = proba_fn(&model);
    let plaf = Plaf::from_schema(&data);
    let config = GecoConfig { population: 24, generations: 6, ..GecoConfig::default() };
    let instance = data.row(7);

    let a = geco(&f, &data, instance, &plaf, config, 31);
    let b = geco(&f, &data, instance, &plaf, config, 31);
    assert_eq!(
        a.as_ref().map(|c| c.counterfactual.clone()),
        b.as_ref().map(|c| c.counterfactual.clone()),
        "same seed, same counterfactual"
    );

    let p1 = geco_parallel(&f, &data, instance, &plaf, config, 31, 3, 1);
    let p4 = geco_parallel(&f, &data, instance, &plaf, config, 31, 3, 4);
    assert_eq!(
        p1.map(|c| c.counterfactual),
        p4.map(|c| c.counterfactual),
        "multi-start GeCo must not depend on workers"
    );
}

#[test]
fn dice_parallel_restarts_are_worker_count_invariant() {
    let data = german_credit(200, 29);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let f = proba_fn(&model);
    let dice = DiceExplainer::fit(&data);
    let config = DiceConfig { k: 2, iterations: 60, restarts: 3, ..DiceConfig::default() };

    let w1 = dice.generate_parallel(&f, data.row(5), config, 41, 1);
    let w4 = dice.generate_parallel(&f, data.row(5), config, 41, 4);
    let rows = |cfs: &[xai_core::Counterfactual]| -> Vec<Vec<f64>> {
        cfs.iter().map(|c| c.counterfactual.clone()).collect()
    };
    assert_eq!(rows(&w1), rows(&w4), "DiCE restarts must not depend on workers");

    let again = dice.generate_parallel(&f, data.row(5), config, 41, 4);
    assert_eq!(rows(&w4), rows(&again), "same seed, same counterfactual set");
}
