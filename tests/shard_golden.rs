//! Golden-file serde suite for the shard wire format (DESIGN.md §11).
//!
//! The fixtures under `tests/fixtures/shard_*.json` are checked-in
//! bytes: the canonical `ShardDescriptor` and `ShardResult` forms are
//! pinned exactly (a formatting change breaks cross-process merges and
//! must show up in review), and each malformed fixture maps to its
//! typed error.
//!
//! Regenerate the canonical fixtures after an intentional wire change:
//!
//! ```sh
//! XAI_REGEN_GOLDEN=1 cargo test --test shard_golden -- --test-threads=1
//! ```

use std::path::{Path, PathBuf};

use xai::data::{Feature, FeatureKind, Mutability, Schema, Task};
use xai::linalg::Matrix;
use xai::prelude::*;
use xai::shard::{
    dataset_to_json, execute_descriptor, fingerprint_hex, ShardDescriptor, ShardResult,
};
use xai_models::Persist;

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(format!("{name}.json"))
}

fn read_fixture(name: &str) -> String {
    let path = fixture_path(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}; regenerate with \
             XAI_REGEN_GOLDEN=1 cargo test --test shard_golden -- --test-threads=1",
            path.display()
        )
    });
    text.trim_end().to_string()
}

/// A tiny fully-pinned dataset: exact binary fractions so the wire
/// bytes are stable.
fn golden_dataset() -> Dataset {
    let features = vec![
        Feature {
            name: "age".into(),
            kind: FeatureKind::Numeric { min: 0.0, max: 1.0 },
            mutability: Mutability::Free,
            protected: false,
        },
        Feature {
            name: "income".into(),
            kind: FeatureKind::Numeric { min: 0.0, max: 1.0 },
            mutability: Mutability::Free,
            protected: false,
        },
    ];
    let x = Matrix::from_rows(&[
        vec![0.25, 0.5],
        vec![0.75, 0.25],
        vec![0.5, 0.875],
        vec![0.125, 0.625],
    ]);
    let y = vec![0.0, 1.0, 1.0, 0.0];
    Dataset::new(Schema::new(features, "default"), x, y, Task::BinaryClassification)
}

/// A model with hand-pinned parameters — no fitting, so the persisted
/// bytes (and hence the fingerprint) never drift.
fn golden_model() -> LogisticRegression {
    LogisticRegression::from_parameters(-0.5, &[1.25, -0.75], 1e-3)
}

/// The fully-populated descriptor the canonical fixture pins: shard 0
/// of a 2-shard data-Banzhaf plan over the golden dataset.
fn golden_descriptor() -> ShardDescriptor {
    let model_json = golden_model().save();
    let fingerprint = fingerprint_hex(model_json.to_json().as_bytes());
    ShardDescriptor {
        method: "Data Banzhaf".into(),
        config: Json::obj(vec![("samples_per_point", Json::Num(4.0))]),
        fingerprint,
        shard: 0,
        n_shards: 2,
        chunk_start: 0,
        chunk_end: 2,
        total_draws: 4,
        chunk_size: 1,
        model: model_json,
        dataset: dataset_to_json(&golden_dataset()),
        instance: Some(vec![0.25, 0.5]),
        feature: None,
        plan: RunConfig::seeded(7).with_workers(2),
    }
}

/// Executes the golden descriptor, producing the result the result
/// fixture pins.
fn golden_result() -> ShardResult {
    let desc = golden_descriptor();
    let method = BanzhafMethod {
        config: xai::datavalue::BanzhafConfig { samples_per_point: 4, seed: 0 },
    };
    execute_descriptor(&desc, &method, &golden_model()).unwrap()
}

const VALID_PREFIX: &str = r#""kind": "shard_descriptor", "method": "Data Banzhaf", "config": {}, "fingerprint": "00000000000000ab", "shard": 0, "n_shards": 2"#;

/// Malformed descriptors that must parse to `XaiError::Parse`.
const MALFORMED_DESCRIPTORS: &[(&str, &str)] = &[
    ("shard_descriptor_bad_kind", r#"{"kind": "shard_plan"}"#),
    (
        "shard_descriptor_bad_unknown_field",
        r#"{"kind": "shard_descriptor", "surprise": 1}"#,
    ),
    (
        "shard_descriptor_bad_fingerprint",
        r#"{"kind": "shard_descriptor", "method": "Data Banzhaf", "config": {}, "fingerprint": "abc"}"#,
    ),
    (
        "shard_descriptor_bad_shard_index",
        r#"{"kind": "shard_descriptor", "method": "Data Banzhaf", "config": {}, "fingerprint": "00000000000000ab", "shard": 2, "n_shards": 2}"#,
    ),
    (
        "shard_descriptor_bad_chunk_range",
        r#"{"kind": "shard_descriptor", "method": "Data Banzhaf", "config": {}, "fingerprint": "00000000000000ab", "shard": 0, "n_shards": 2, "chunk_start": 5, "chunk_end": 2, "total_draws": 4, "chunk_size": 1}"#,
    ),
    (
        "shard_descriptor_bad_missing_plan",
        r#"{"kind": "shard_descriptor", "method": "Data Banzhaf", "config": {}, "fingerprint": "00000000000000ab", "shard": 0, "n_shards": 2, "chunk_start": 0, "chunk_end": 2, "total_draws": 4, "chunk_size": 1, "model": {}, "dataset": {}, "instance": null, "feature": null}"#,
    ),
];

/// A descriptor whose instance overflows f64 decimal parsing (`1e999`
/// is +Inf) — the typed error is `NonFiniteInput`, not `Parse`.
const NON_FINITE_DESCRIPTOR: (&str, &str) = (
    "shard_descriptor_bad_nonfinite_instance",
    r#"{"kind": "shard_descriptor", "method": "Data Banzhaf", "config": {}, "fingerprint": "00000000000000ab", "shard": 0, "n_shards": 2, "chunk_start": 0, "chunk_end": 2, "total_draws": 4, "chunk_size": 1, "model": {}, "dataset": {}, "instance": [1.0, 1e999], "feature": null}"#,
);

/// A malformed result payload: `partial` must be an object.
const MALFORMED_RESULT: (&str, &str) = (
    "shard_result_bad_partial",
    r#"{"kind": "shard_result", "method": "Data Banzhaf", "fingerprint": "00000000000000ab", "shard": 0, "n_shards": 2, "partial": []}"#,
);

#[test]
fn regenerate_fixtures_when_asked() {
    if std::env::var_os("XAI_REGEN_GOLDEN").is_none() {
        return;
    }
    // Sanity: the hand-written malformed fixtures share one valid
    // prefix, so a future field rename invalidates them loudly here.
    assert!(MALFORMED_DESCRIPTORS[4].1.contains(VALID_PREFIX));
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::create_dir_all(&dir).unwrap();
    let mut files: Vec<(&str, String)> = vec![
        ("shard_descriptor_full", golden_descriptor().to_json_string()),
        ("shard_result_full", golden_result().to_json_string()),
    ];
    for (name, text) in
        MALFORMED_DESCRIPTORS.iter().chain([NON_FINITE_DESCRIPTOR, MALFORMED_RESULT].iter())
    {
        files.push((name, (*text).to_string()));
    }
    for (name, text) in files {
        std::fs::write(fixture_path(name), text + "\n").unwrap();
    }
}

#[test]
fn canonical_descriptor_bytes_are_pinned() {
    let fixture = read_fixture("shard_descriptor_full");
    assert_eq!(
        golden_descriptor().to_json_string(),
        fixture,
        "the canonical descriptor wire form changed — cross-process shard \
         merges changed with it; regenerate only if the change is intentional"
    );
}

#[test]
fn canonical_descriptor_fixture_parses_back_losslessly() {
    let fixture = read_fixture("shard_descriptor_full");
    let parsed = ShardDescriptor::from_json_str(&fixture).unwrap();
    assert_eq!(parsed, golden_descriptor());
    assert_eq!(parsed.to_json_string(), fixture, "canonical text must be a fixed point");
}

#[test]
fn canonical_result_bytes_are_pinned_and_parse_back() {
    let fixture = read_fixture("shard_result_full");
    assert_eq!(
        golden_result().to_json_string(),
        fixture,
        "the canonical result wire form (or the Banzhaf draw itself) changed"
    );
    let parsed = ShardResult::from_json_str(&fixture).unwrap();
    assert_eq!(parsed, golden_result());
    assert_eq!(parsed.to_json_string(), fixture);
}

#[test]
fn malformed_descriptor_fixtures_map_to_typed_parse_errors() {
    for (name, _) in MALFORMED_DESCRIPTORS {
        let fixture = read_fixture(name);
        match ShardDescriptor::from_json_str(&fixture) {
            Err(XaiError::Parse { .. }) => {}
            other => panic!("{name}: expected XaiError::Parse, got {other:?}"),
        }
    }
}

#[test]
fn non_finite_instance_fixture_is_a_typed_non_finite_error() {
    let fixture = read_fixture(NON_FINITE_DESCRIPTOR.0);
    match ShardDescriptor::from_json_str(&fixture) {
        Err(XaiError::NonFiniteInput { context }) => {
            assert!(context.contains("instance"), "context should name the field: {context}")
        }
        other => panic!("expected XaiError::NonFiniteInput, got {other:?}"),
    }
}

#[test]
fn malformed_result_fixture_is_a_typed_parse_error() {
    let fixture = read_fixture(MALFORMED_RESULT.0);
    assert!(matches!(ShardResult::from_json_str(&fixture), Err(XaiError::Parse { .. })));
}

#[test]
fn the_dataset_wire_form_round_trips_the_golden_dataset() {
    let data = golden_dataset();
    let json = dataset_to_json(&data);
    let back = xai::shard::dataset_from_json(&json).unwrap();
    assert_eq!(back.n_rows(), data.n_rows());
    for i in 0..data.n_rows() {
        assert_eq!(back.row(i), data.row(i));
    }
    assert_eq!(back.y(), data.y());
    assert_eq!(dataset_to_json(&back).to_json(), json.to_json());
}
