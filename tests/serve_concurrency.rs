//! Concurrency soak for the explanation-serving engine (DESIGN.md §10).
//!
//! Many client threads hammer one service with a mixed request set, the
//! pool size sweeps 1/2/4, and three things must hold with **no**
//! tolerance: every response is byte-identical to the precomputed direct
//! result (scheduling is invisible in the bytes), the counters balance
//! exactly (`hits + misses == submitted == completed`, nothing rejected,
//! nothing failed), and the run terminates (no deadlock between the
//! bounded queue, the cache and the pool).

mod common;

use common::{direct_payload, fixture_with, request_for, Fixture};
use xai::prelude::*;

/// The mixed traffic: cheap methods across models, seeds and plans so
/// the cache sees both repeats and distinct canonical forms.
fn traffic(fx: &Fixture) -> Vec<ServeRequest> {
    vec![
        request_for(fx, "Kernel SHAP", RunConfig::seeded(1)),
        request_for(fx, "Kernel SHAP", RunConfig::seeded(2)),
        request_for(fx, "Kernel SHAP", RunConfig::seeded(1).with_workers(2)),
        request_for(fx, "LIME", RunConfig::seeded(3)),
        request_for(fx, "Permutation sampling Shapley", RunConfig::seeded(4)),
        request_for(fx, "Integrated gradients", RunConfig::seeded(5)),
        request_for(fx, "Partial dependence / ICE", RunConfig::seeded(6)),
        request_for(fx, "TreeSHAP", RunConfig::seeded(7)),
        request_for(fx, "Wachter counterfactuals", RunConfig::seeded(8)),
    ]
}

#[test]
fn concurrent_clients_get_deterministic_bytes_and_balanced_counters() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 4;

    for pool_workers in [2, 4] {
        let fx = fixture_with(ServiceConfig {
            workers: pool_workers,
            queue_capacity: 1024,
            cache_capacity: 256,
            memo_capacity: 4096,
        });
        let requests = traffic(&fx);
        let expected: Vec<String> =
            requests.iter().map(|r| direct_payload(&fx, r)).collect();

        std::thread::scope(|scope| {
            for client in 0..CLIENTS {
                let fx = &fx;
                let requests = &requests;
                let expected = &expected;
                scope.spawn(move || {
                    for round in 0..ROUNDS {
                        // Each client walks the set at its own offset so
                        // duplicates collide in-flight from round one.
                        for i in 0..requests.len() {
                            let k = (i + client + round) % requests.len();
                            let response = fx.service.submit(&requests[k]).unwrap();
                            assert_eq!(
                                response.payload, expected[k],
                                "{} diverged under pool={pool_workers} client={client}",
                                requests[k].method
                            );
                        }
                    }
                });
            }
        });

        let submitted = (CLIENTS * ROUNDS * requests.len()) as u64;
        let stats = fx.service.stats();
        assert_eq!(stats.submitted, submitted, "pool={pool_workers}");
        assert_eq!(stats.rejected, 0, "pool={pool_workers}: queue was large enough");
        assert_eq!(stats.failed, 0, "pool={pool_workers}");
        assert_eq!(stats.completed, submitted, "pool={pool_workers}: every job answered");
        assert_eq!(
            stats.cache_hits + stats.cache_misses,
            submitted,
            "pool={pool_workers}: the cache is consulted exactly once per job"
        );
        // Every distinct request misses at least once; concurrent
        // duplicates may race past the insert, so misses is a range.
        assert!(
            stats.cache_misses >= requests.len() as u64,
            "pool={pool_workers}: {} misses for {} distinct requests",
            stats.cache_misses,
            requests.len()
        );
        assert_eq!(stats.cache_evictions, 0, "pool={pool_workers}: capacity was never hit");
        assert_eq!(fx.service.cache_len(), requests.len(), "pool={pool_workers}");
    }
}

#[test]
fn served_bytes_are_invariant_to_the_pool_size() {
    // The same request set served by pools of 1, 2 and 4 workers must
    // produce identical bytes: the pool schedules, it never perturbs.
    let mut baselines: Option<Vec<String>> = None;
    for pool_workers in [1, 2, 4] {
        let fx = fixture_with(ServiceConfig {
            workers: pool_workers,
            queue_capacity: 64,
            cache_capacity: 64,
            memo_capacity: 4096,
        });
        let payloads: Vec<String> = traffic(&fx)
            .iter()
            .map(|r| fx.service.submit(r).unwrap().payload)
            .collect();
        match &baselines {
            None => baselines = Some(payloads),
            Some(first) => {
                assert_eq!(first, &payloads, "pool size {pool_workers} changed served bytes")
            }
        }
    }
}

#[test]
fn memo_eviction_soak_keeps_bytes_and_counters_exact() {
    // Hammer a service whose coalition memo is far too small for the
    // traffic, forcing constant concurrent evictions, and hold the memo
    // to its contract: it is *transparent* (every payload byte-identical
    // to the direct run) and its counters balance exactly.
    //
    // The traffic is Kernel SHAP on the batched path (the only path that
    // consults the memo) at many distinct seeds: distinct seeds defeat
    // the result cache (every submission reaches the explainer) while
    // still sharing memo keys, because coalition values are
    // seed-independent. Each request's lookup count is deterministic, so
    // summed over the whole set:
    //   hits + misses (soak)  ==  hits + misses (unpressured baseline).
    const CLIENTS: usize = 8;
    const DISTINCT_SEEDS: u64 = 48;

    let requests = |fx: &Fixture| -> Vec<ServeRequest> {
        (0..DISTINCT_SEEDS)
            .map(|seed| {
                request_for(fx, "Kernel SHAP", RunConfig::seeded(seed).with_batched(true))
            })
            .collect()
    };

    // Baseline: a memo big enough to never evict, served sequentially —
    // its hits + misses is the request set's total lookup count.
    let baseline_fx = fixture_with(ServiceConfig {
        workers: 1,
        queue_capacity: 64,
        cache_capacity: 256,
        memo_capacity: 1 << 20,
    });
    let baseline_requests = requests(&baseline_fx);
    let expected: Vec<String> =
        baseline_requests.iter().map(|r| direct_payload(&baseline_fx, r)).collect();
    for (request, payload) in baseline_requests.iter().zip(&expected) {
        assert_eq!(&baseline_fx.service.submit(request).unwrap().payload, payload);
    }
    let baseline = baseline_fx.service.stats();
    let total_lookups = baseline.memo_hits + baseline.memo_misses;
    assert!(total_lookups > 0, "the batched path must consult the memo");
    assert_eq!(baseline.memo_evictions, 0, "the baseline memo must never evict");

    // Soak: a memo much smaller than the working set, hammered from
    // eight threads, every distinct request served exactly once.
    const MEMO_CAPACITY: usize = 256;
    let fx = fixture_with(ServiceConfig {
        workers: 4,
        queue_capacity: 256,
        cache_capacity: 256,
        memo_capacity: MEMO_CAPACITY,
    });
    let soak_requests = requests(&fx);
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let fx = &fx;
            let soak_requests = &soak_requests;
            let expected = &expected;
            scope.spawn(move || {
                for (i, request) in soak_requests.iter().enumerate() {
                    if i % CLIENTS != client {
                        continue;
                    }
                    let response = fx.service.submit(request).unwrap();
                    assert_eq!(
                        response.payload, expected[i],
                        "seed {i}: eviction pressure changed served bytes"
                    );
                }
            });
        }
    });

    let stats = fx.service.stats();
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.completed, DISTINCT_SEEDS);
    // The memo's lookup stream is a deterministic function of the request
    // set: under any interleaving the hit/miss *split* may move, but the
    // total must balance against the disabled-memo baseline exactly.
    assert_eq!(
        stats.memo_hits + stats.memo_misses,
        total_lookups,
        "memo lookups leaked or vanished under eviction pressure"
    );
    assert!(
        stats.memo_evictions > 0,
        "a {MEMO_CAPACITY}-entry memo under {total_lookups} lookups must evict"
    );
    assert!(
        fx.service.memo_len() <= MEMO_CAPACITY,
        "memo grew past capacity: {} > {MEMO_CAPACITY}",
        fx.service.memo_len()
    );
}

#[test]
fn a_dropped_service_answers_in_flight_work_before_joining() {
    // Submissions racing a drop either complete normally or see the
    // typed shutdown error — never a hang, never a poisoned panic.
    let fx = fixture_with(ServiceConfig { workers: 2, queue_capacity: 64, cache_capacity: 64, memo_capacity: 4096 });
    let requests = traffic(&fx);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|client: usize| {
                let fx = &fx;
                let requests = &requests;
                scope.spawn(move || {
                    let request = &requests[client % requests.len()];
                    fx.service.submit(request)
                })
            })
            .collect();
        for handle in handles {
            let outcome = handle.join().expect("client threads never panic");
            assert!(outcome.is_ok(), "in-flight work must be answered: {outcome:?}");
        }
    });
    let stats = fx.service.stats();
    assert_eq!(stats.completed, 4);
    drop(fx); // joins the pool; returning from the test proves no deadlock
}
