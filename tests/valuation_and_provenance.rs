//! Integration: data-valuation methods against their ground truths, and
//! the §3 provenance workflow end to end.

use xai::datavalue::{
    exact_data_shapley, influence_on_test_loss, leave_one_out, retraining_ground_truth,
    tmc_shapley, LogisticUtility, Solver, TmcConfig, Utility,
};
use xai::prelude::*;
use xai::provenance::{tuple_shapley_exact, IncrementalRidge, Polynomial, Relation, Value};

#[test]
fn tmc_approaches_exact_shapley_on_real_utilities() {
    // Tiny training set so the 2^n exact computation is feasible.
    let train = xai::data::synth::linear_gaussian(10, &[2.0], 0.0, 71);
    let test = xai::data::synth::linear_gaussian(120, &[2.0], 0.0, 72);
    let u = LogisticUtility::new(&train, &test, LogisticConfig::default());
    let exact = exact_data_shapley(&u);
    let tmc = tmc_shapley(&u, TmcConfig { permutations: 800, truncation_tolerance: 0.0, seed: 3 });
    for (a, b) in tmc.attribution.values.iter().zip(&exact.values) {
        assert!((a - b).abs() < 0.05, "{a} vs {b}");
    }
    // Spearman agreement of rankings.
    let rho = xai::linalg::stats::spearman(&tmc.attribution.values, &exact.values);
    assert!(rho > 0.8, "rank agreement {rho}");
}

#[test]
fn loo_and_influence_agree_on_who_is_harmful() {
    let mut train = xai::data::synth::linear_gaussian(70, &[2.5, -1.0], 0.0, 81);
    let test = xai::data::synth::linear_gaussian(200, &[2.5, -1.0], 0.0, 82);
    let flipped = xai::data::inject_label_noise(&mut train, 0.1, 5);
    let config = LogisticConfig { l2: 1e-2, ..LogisticConfig::default() };
    let model = LogisticRegression::fit(train.x(), train.y(), config);

    let inf = influence_on_test_loss(&model, &train, &test, Solver::Cholesky);
    let truth = retraining_ground_truth(&model, &train, &test, config);
    let rho = xai::linalg::stats::spearman(&inf.values, &truth.values);
    assert!(rho > 0.75, "influence/retraining agreement {rho}");

    // Both should nominate the flipped points as harmful.
    let inf_p = inf.precision_at_k(&flipped, flipped.len());
    assert!(inf_p > 0.4, "influence precision {inf_p}");
    let _ = leave_one_out(&LogisticUtility::new(&train, &test, config));
}

#[test]
fn utility_interface_is_consistent_across_methods() {
    let train = xai::data::synth::linear_gaussian(40, &[2.0], 0.0, 91);
    let test = xai::data::synth::linear_gaussian(100, &[2.0], 0.0, 92);
    let u = LogisticUtility::new(&train, &test, LogisticConfig::default());
    let all: Vec<usize> = (0..train.n_rows()).collect();
    let full = u.eval(&all);
    // Efficiency of TMC: values sum to U(D) − U(∅) up to truncation.
    let tmc = tmc_shapley(&u, TmcConfig { permutations: 150, truncation_tolerance: 0.0, seed: 7 });
    let total: f64 = tmc.attribution.values.iter().sum();
    assert!(
        (total - (full - u.base_score())).abs() < 0.05,
        "TMC efficiency: {total} vs {}",
        full - u.base_score()
    );
}

#[test]
fn provenance_lineage_equals_shapley_support() {
    // Tuples with zero Shapley value are exactly those outside the lineage.
    let p = Polynomial::var(0)
        .times(&Polynomial::var(1))
        .plus(&Polynomial::var(2));
    let endo = [0, 1, 2, 3, 4];
    let phi = tuple_shapley_exact(&p, &endo);
    for (i, &v) in endo.iter().enumerate() {
        let in_lineage = p.lineage().contains(&v);
        assert_eq!(
            phi[i].abs() > 1e-12,
            in_lineage,
            "tuple {v}: shapley {} vs lineage {in_lineage}",
            phi[i]
        );
    }
}

#[test]
fn query_then_explain_then_delete_workflow() {
    // Build a relation, run a query, explain an answer, delete the most
    // responsible tuple, and verify the answer disappears.
    let (r, _) = Relation::base(
        "events",
        &["user", "kind"],
        vec![
            vec![Value::Str("u1".into()), Value::Str("click".into())],
            vec![Value::Str("u1".into()), Value::Str("buy".into())],
            vec![Value::Str("u2".into()), Value::Str("click".into())],
        ],
        0,
    );
    let buyers = r.select(|v| v[1] == Value::Str("buy".into())).project(&["user"]);
    assert_eq!(buyers.len(), 1);
    let u1 = &buyers.tuples[0];
    let endo = u1.provenance.lineage();
    let phi = tuple_shapley_exact(&u1.provenance, &endo);
    let top = endo[phi
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0];
    // Deleting the top-responsibility tuple kills the answer.
    assert!(!u1.provenance.present(&|v| v != top));
}

#[test]
fn priu_supports_the_unlearning_workflow() {
    // GDPR-style deletion: remove a user's rows incrementally, match the
    // full retrain.
    let data = xai::data::synth::linear_gaussian(150, &[1.0, -2.0, 0.5], 0.0, 99);
    let x = data.x().with_intercept();
    let y: Vec<f64> = data.y().to_vec();
    let mut inc = IncrementalRidge::fit(&x, &y, 1e-3);
    let forget: Vec<usize> = vec![3, 77, 120, 121];
    for &i in &forget {
        inc.remove_row(x.row(i), y[i]);
    }
    let keep: Vec<usize> = (0..150).filter(|i| !forget.contains(i)).collect();
    let xk = x.select_rows(&keep);
    let yk: Vec<f64> = keep.iter().map(|&i| y[i]).collect();
    let truth = xai::provenance::retrain_ridge(&xk, &yk, 1e-3);
    for (a, b) in inc.coef().iter().zip(&truth) {
        assert!((a - b).abs() < 1e-7);
    }
}
