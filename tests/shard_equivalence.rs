//! The shard equivalence matrix (DESIGN.md §11): every shardable method
//! × shard counts {1, 2, 4, 7} × in-process vs process-pool execution,
//! asserted **bit-identical** (byte-compared canonical JSON) against the
//! unsharded `Explainer::explain` run at the same seed. Budgeted runs
//! shard too: a `SampleBudget` resolves into the draw grid, so the
//! sharded budgeted run reproduces the explicit smaller configuration.

use xai::datavalue::BanzhafConfig;
use xai::prelude::*;
use xai::shard::{explain_process_pool, explain_sharded, PoolConfig, ShardableExplainer};
use xai_rules::AnchorsConfig;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn worker_pool() -> PoolConfig {
    PoolConfig::new(env!("CARGO_BIN_EXE_xai-shard-worker"))
}

/// A classification fixture sized for debug-mode test runs.
fn fixture(rows: usize, seed: u64) -> (Dataset, LogisticRegression) {
    let data = xai::data::synth::german_credit(rows, seed);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    (data, model)
}

/// The core assertion: the unsharded parallel run, the in-process
/// sharded run and the process-pool sharded run all produce the same
/// bytes, at every shard count.
fn assert_shard_equivalence(
    method: &dyn ShardableExplainer,
    model: &LogisticRegression,
    req: &ExplainRequest<'_>,
    label: &str,
) {
    let reference = method
        .explain(model, req)
        .unwrap_or_else(|e| panic!("{label}: unsharded explain failed: {e:?}"))
        .to_json_string();
    let pool = worker_pool();
    for n_shards in SHARD_COUNTS {
        let in_process = explain_sharded(method, model, req, n_shards)
            .unwrap_or_else(|e| panic!("{label}: in-process n_shards={n_shards} failed: {e:?}"))
            .to_json_string();
        assert_eq!(in_process, reference, "{label}: in-process diverged at n_shards={n_shards}");

        let pooled = explain_process_pool(method, model, req, n_shards, &pool)
            .unwrap_or_else(|e| panic!("{label}: process pool n_shards={n_shards} failed: {e:?}"))
            .to_json_string();
        assert_eq!(pooled, reference, "{label}: process pool diverged at n_shards={n_shards}");
    }
}

#[test]
fn kernel_shap_shards_in_both_exact_and_sampled_mode() {
    let (data, model) = fixture(60, 7);
    let row = data.row(0).to_vec();
    let req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(11).with_workers(2));
    // Default budget covers 2^7 coalitions: exact enumeration.
    let exact = KernelShapMethod::default();
    assert_shard_equivalence(&exact, &model, &req, "kernel SHAP (exact)");
    // A tight coalition budget forces the sampled estimator.
    let sampled = KernelShapMethod {
        config: KernelShapConfig { max_coalitions: 96, ..KernelShapConfig::default() },
    };
    assert_shard_equivalence(&sampled, &model, &req, "kernel SHAP (sampled)");
}

#[test]
fn permutation_shapley_shards() {
    let (data, model) = fixture(60, 8);
    let row = data.row(3).to_vec();
    let req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(23).with_workers(2));
    let method = PermutationShapleyMethod { permutations: 40 };
    assert_shard_equivalence(&method, &model, &req, "permutation Shapley");
}

#[test]
fn lime_shards() {
    let (data, model) = fixture(60, 9);
    let row = data.row(5).to_vec();
    let req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(31).with_workers(2));
    let method =
        LimeMethod { config: LimeConfig { n_samples: 96, ..LimeConfig::default() } };
    assert_shard_equivalence(&method, &model, &req, "LIME");
}

#[test]
fn sp_lime_shards() {
    let (data, model) = fixture(50, 10);
    let req = ExplainRequest::new(&data).plan(RunConfig::seeded(13).with_workers(2));
    let method = SpLimeMethod {
        n_candidates: 10,
        picks: 3,
        config: LimeConfig { n_samples: 64, ..LimeConfig::default() },
    };
    assert_shard_equivalence(&method, &model, &req, "SP-LIME");
}

#[test]
fn anchors_shards() {
    let (data, model) = fixture(60, 12);
    let row = data.row(0).to_vec();
    let req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(17).with_workers(2));
    let method = AnchorsMethod {
        config: AnchorsConfig {
            precision_target: 0.9,
            max_samples_per_round: 600,
            ..AnchorsConfig::default()
        },
        pool: 4,
    };
    assert_shard_equivalence(&method, &model, &req, "Anchors");
}

#[test]
fn dice_shards() {
    let (data, model) = fixture(60, 14);
    let row = data.row(2).to_vec();
    let req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(6).with_workers(2));
    let method = DiceMethod {
        config: DiceConfig { k: 2, iterations: 60, restarts: 2, ..DiceConfig::default() },
    };
    assert_shard_equivalence(&method, &model, &req, "DiCE");
}

#[test]
fn leave_one_out_shards() {
    let (data, model) = fixture(20, 21);
    let req = ExplainRequest::new(&data).plan(RunConfig::seeded(19).with_workers(2));
    assert_shard_equivalence(&LooMethod, &model, &req, "leave-one-out");
}

#[test]
fn tmc_data_shapley_shards() {
    let (data, model) = fixture(10, 22);
    let req = ExplainRequest::new(&data).plan(RunConfig::seeded(19).with_workers(2));
    let method =
        TmcMethod { config: TmcConfig { permutations: 20, ..TmcConfig::default() } };
    assert_shard_equivalence(&method, &model, &req, "TMC data Shapley");
}

#[test]
fn data_banzhaf_shards() {
    let (data, model) = fixture(10, 24);
    let req = ExplainRequest::new(&data).plan(RunConfig::seeded(19).with_workers(2));
    let method =
        BanzhafMethod { config: BanzhafConfig { samples_per_point: 6, seed: 0 } };
    assert_shard_equivalence(&method, &model, &req, "data Banzhaf");
}

#[test]
fn budgeted_kernel_shap_shards_like_the_explicit_config() {
    let (data, model) = fixture(60, 25);
    let row = data.row(1).to_vec();
    // A budget of 64 evals on a 96-coalition config resolves the draw
    // grid to 64 coalitions — the same grid the explicit 64-coalition
    // config produces, so the two runs are bit-identical.
    let budgeted = KernelShapMethod {
        config: KernelShapConfig { max_coalitions: 96, ..KernelShapConfig::default() },
    };
    let explicit = KernelShapMethod {
        config: KernelShapConfig { max_coalitions: 64, ..KernelShapConfig::default() },
    };
    let budgeted_req = ExplainRequest::new(&data).instance(&row).plan(
        RunConfig::seeded(11)
            .with_workers(2)
            .with_budget(SampleBudget::with_max_evals(64)),
    );
    let explicit_req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(11).with_workers(2));
    let reference = explicit.explain(&model, &explicit_req).unwrap().to_json_string();
    let pool = worker_pool();
    for n_shards in SHARD_COUNTS {
        let sharded = explain_sharded(&budgeted, &model, &budgeted_req, n_shards)
            .unwrap()
            .to_json_string();
        assert_eq!(sharded, reference, "budgeted kernel SHAP diverged at n_shards={n_shards}");
        let pooled =
            explain_process_pool(&budgeted, &model, &budgeted_req, n_shards, &pool)
                .unwrap()
                .to_json_string();
        assert_eq!(pooled, reference, "budgeted pool kernel SHAP at n_shards={n_shards}");
    }
}

#[test]
fn budgeted_lime_shards_like_the_explicit_config() {
    let (data, model) = fixture(60, 26);
    let row = data.row(4).to_vec();
    let budgeted =
        LimeMethod { config: LimeConfig { n_samples: 96, ..LimeConfig::default() } };
    let explicit =
        LimeMethod { config: LimeConfig { n_samples: 64, ..LimeConfig::default() } };
    let budgeted_req = ExplainRequest::new(&data).instance(&row).plan(
        RunConfig::seeded(31)
            .with_workers(2)
            .with_budget(SampleBudget::with_max_evals(64)),
    );
    let explicit_req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(31).with_workers(2));
    let reference = explicit.explain(&model, &explicit_req).unwrap().to_json_string();
    let pool = worker_pool();
    for n_shards in SHARD_COUNTS {
        let sharded = explain_sharded(&budgeted, &model, &budgeted_req, n_shards)
            .unwrap()
            .to_json_string();
        assert_eq!(sharded, reference, "budgeted LIME diverged at n_shards={n_shards}");
        let pooled =
            explain_process_pool(&budgeted, &model, &budgeted_req, n_shards, &pool)
                .unwrap()
                .to_json_string();
        assert_eq!(pooled, reference, "budgeted pool LIME at n_shards={n_shards}");
    }
}
