//! Zero-copy masked-evaluation equivalence harness (DESIGN.md §12).
//!
//! The masked coalition path (`ModelOracle::predict_masked` →
//! `MaskedPredictionGame`, optionally wrapped in the cross-request
//! `MemoGame`) is a *performance* feature: it must change wall-clock time
//! and nothing else. This suite pins that contract:
//!
//! - for every model family and every mask pattern (empty, full, each
//!   singleton, seeded random coalitions), the masked game's values are
//!   **bit-identical** to the materializing `BatchPredictionGame` and to
//!   the scalar `PredictionGame`;
//! - the shared `CoalitionMemo` is invisible: memo-on equals memo-off
//!   bitwise through the unified explainers, cold and warm, and the
//!   counters prove the warm run was actually served from the memo;
//! - under serve concurrency, repeated traffic against a memo-enabled
//!   service stays byte-identical to a memo-disabled service and to the
//!   direct `Explainer::explain` twin.

mod common;

use std::sync::Arc;

use xai::core::memo::{CoalitionMemo, GameKey, MemoHandle};
use xai::core::{ExplainRequest, Explainer, ModelOracle, RunConfig};
use xai::prelude::*;
use xai_linalg::Matrix;
use xai_models::{
    persisted_bytes, proba_fn, regress_fn, DecisionTree, ForestConfig, GaussianNb, Gbdt,
    GbdtConfig, GbdtLoss, Knn, LinearConfig, LinearRegression, LogisticConfig, LogisticRegression,
    Mlp, MlpConfig, MlpTask, RandomForest, TreeConfig,
};
use xai_rand::rngs::StdRng;
use xai_rand::{Rng, SeedableRng};
use xai_shapley::{
    BatchGame, BatchPredictionGame, MaskedPredictionGame, MemoGame, PredictionGame,
};

fn credit() -> Dataset {
    xai::data::synth::german_credit(90, 5)
}

fn background(data: &Dataset) -> Matrix {
    Matrix::from_fn(6, data.n_features(), |i, j| data.x()[(i, (i + j) % data.n_features())])
}

/// Empty, grand, every singleton, and eight seeded random coalitions.
fn mask_patterns(d: usize) -> Vec<Vec<bool>> {
    let mut coalitions = vec![vec![false; d], vec![true; d]];
    for i in 0..d {
        let mut c = vec![false; d];
        c[i] = true;
        coalitions.push(c);
    }
    let mut rng = StdRng::seed_from_u64(0xC0A1);
    for _ in 0..8 {
        coalitions.push((0..d).map(|_| rng.gen::<bool>()).collect());
    }
    coalitions
}

/// The core property: for one model, masked evaluation equals the
/// materialized batch game and the scalar game bit-for-bit on every mask
/// pattern, with and without the cross-request memo (cold and warm).
fn assert_masked_bit_identical<F>(name: &str, oracle: &dyn ModelOracle, f: &F, data: &Dataset)
where
    F: Fn(&[f64]) -> f64,
{
    let bg = background(data);
    let instance = data.row(11);
    let coalitions = mask_patterns(instance.len());

    let scalar_game = PredictionGame::new(f, instance, &bg);
    let bf = |m: &Matrix| oracle.predict_batch(m);
    let batch_game = BatchPredictionGame::new(&bf, instance, &bg);
    let masked_game = MaskedPredictionGame::new(oracle, instance, &bg);

    let scalar: Vec<f64> = coalitions.iter().map(|c| scalar_game.value(c)).collect();
    let batched = batch_game.values(&coalitions);
    let masked = masked_game.values(&coalitions);
    assert_eq!(masked, batched, "{name}: masked diverged from materialized batch");
    assert_eq!(masked, scalar, "{name}: masked diverged from scalar");

    // Memo wrap: cold pass computes, warm pass is served entirely from
    // the memo — both bit-identical to the unwrapped game.
    let memo = CoalitionMemo::new(1 << 14);
    let key = GameKey::derive(7, &bg, instance);
    let memoized = MemoGame::new(&masked_game, &memo, key);
    let cold = memoized.values(&coalitions);
    assert_eq!(cold, masked, "{name}: cold memo pass diverged");
    let before = memo.stats();
    let warm = memoized.values(&coalitions);
    assert_eq!(warm, masked, "{name}: warm memo pass diverged");
    let after = memo.stats();
    assert_eq!(
        after.hits - before.hits,
        coalitions.len() as u64,
        "{name}: warm pass must be all memo hits"
    );
}

#[test]
fn linear_and_logistic_masked_paths_are_bit_identical() {
    let data = credit();
    let linear = LinearRegression::fit(data.x(), data.y(), LinearConfig::default()).unwrap();
    assert_masked_bit_identical("linear", &linear, &regress_fn(&linear), &data);

    let logistic = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    assert_masked_bit_identical("logistic", &logistic, &proba_fn(&logistic), &data);
}

#[test]
fn tree_ensemble_masked_paths_are_bit_identical() {
    let data = credit();
    let tree =
        DecisionTree::fit(data.x(), data.y(), TreeConfig { max_depth: 5, ..Default::default() });
    assert_masked_bit_identical("tree", &tree, &proba_fn(&tree), &data);

    let forest = RandomForest::fit(
        data.x(),
        data.y(),
        ForestConfig { n_trees: 8, seed: 2, ..Default::default() },
    );
    assert_masked_bit_identical("forest", &forest, &proba_fn(&forest), &data);

    for loss in [GbdtLoss::Logistic, GbdtLoss::Squared] {
        let gbdt =
            Gbdt::fit(data.x(), data.y(), GbdtConfig { n_rounds: 10, loss, ..Default::default() });
        assert_masked_bit_identical("gbdt", &gbdt, &proba_fn(&gbdt), &data);
    }
}

#[test]
fn knn_naive_bayes_mlp_and_closure_masked_paths_are_bit_identical() {
    let data = credit();
    // k-NN and naive Bayes ride the default gather-into-scratch path.
    let knn = Knn::fit(data.x(), data.y(), 3);
    assert_masked_bit_identical("knn", &knn, &proba_fn(&knn), &data);

    let nb = GaussianNb::fit(data.x(), data.y());
    assert_masked_bit_identical("naive_bayes", &nb, &proba_fn(&nb), &data);

    for task in [MlpTask::Classification, MlpTask::Regression] {
        let mlp = Mlp::fit(
            data.x(),
            data.y(),
            MlpConfig { hidden: 6, epochs: 3, task, seed: 4, ..Default::default() },
        );
        assert_masked_bit_identical("mlp", &mlp, &proba_fn(&mlp), &data);
    }

    // A pure-closure oracle has no masked kernel at all: the blanket
    // default must still be bit-identical.
    let f = |x: &[f64]| (x[0] * 0.01 - x[3] * 0.0002).tanh() + x[6] * 0.1;
    let oracle = xai::core::FnOracle::new(data.n_features(), f);
    assert_masked_bit_identical("closure", &oracle, &f, &data);
}

/// Memo-on vs memo-off through the unified explainers: attaching a
/// `MemoHandle` to the request must not change a single bit of the
/// attribution, cold or warm, sequential or parallel.
#[test]
fn unified_dispatch_is_memo_invariant() {
    let data = credit();
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let row = data.row(0).to_vec();
    let memo = CoalitionMemo::new(1 << 14);
    let handle = MemoHandle { memo: &memo, model_fingerprint: 42 };

    for workers in [1usize, 2, 4] {
        let plan = RunConfig::seeded(9).with_workers(workers).with_batched(true);
        for method in [
            &KernelShapMethod::default() as &dyn Explainer,
            &PermutationShapleyMethod { permutations: 16 },
        ] {
            let req = ExplainRequest::new(&data).instance(&row).plan(plan);
            let plain = method.explain(&model, &req).unwrap();
            let cold = method.explain(&model, &req.memo(handle)).unwrap();
            let req = ExplainRequest::new(&data).instance(&row).plan(plan);
            let warm = method.explain(&model, &req.memo(handle)).unwrap();
            let plain = plain.as_attribution().unwrap();
            assert_eq!(plain.values, cold.as_attribution().unwrap().values);
            assert_eq!(plain.values, warm.as_attribution().unwrap().values);
        }
    }
    let stats = memo.stats();
    assert!(stats.hits > 0, "warm unified runs must hit the shared memo");
    assert!(stats.entries > 0, "unified runs must populate the shared memo");
}

/// Serve concurrency soak: hammer a memo-enabled service with repeated
/// batched coalition traffic across a worker pool and demand every
/// payload stays byte-identical to (a) the direct explain twin, and
/// (b) a memo-disabled service — while the stats prove the memo worked.
#[test]
fn serve_soak_is_memo_invariant_and_hits_the_memo() {
    let credit = xai::data::synth::german_credit(60, 77);
    let model =
        Arc::new(LogisticRegression::fit(credit.x(), credit.y(), LogisticConfig::default()));
    let instance = credit.row(7).to_vec();

    let build = |memo_capacity: usize| {
        let service = ExplanationService::new(
            common::cheap_registry(),
            ServiceConfig { workers: 4, queue_capacity: 256, cache_capacity: 0, memo_capacity },
        );
        service.register_model("credit", model.clone(), credit.clone(), &persisted_bytes(&*model));
        service
    };
    let memoized = build(1 << 14);
    let plain = build(0);

    let mut requests = Vec::new();
    for seed in 0..4u64 {
        for method in ["Kernel SHAP", "Permutation sampling Shapley"] {
            requests.push(
                ServeRequest::new(method, "credit")
                    .with_instance(&instance)
                    .with_plan(RunConfig::seeded(seed).with_batched(true)),
            );
        }
    }

    // Three rounds of identical traffic: with the result cache disabled,
    // every submission re-executes, so rounds 2 and 3 replay the same
    // coalitions straight into the shared memo.
    for round in 0..3 {
        for request in &requests {
            let a = memoized.submit(request).unwrap().payload;
            let b = plain.submit(request).unwrap().payload;
            assert_eq!(a, b, "round {round}: memo-enabled service diverged");
        }
    }

    let stats = memoized.stats();
    assert_eq!(stats.memo_hits + stats.memo_misses > 0, true, "memo was consulted");
    assert!(stats.memo_hits > 0, "repeat traffic must hit the memo: {stats:?}");
    assert!(memoized.memo_len() > 0, "memo must hold coalition values");
    let plain_stats = plain.stats();
    assert_eq!(plain_stats.memo_hits, 0, "capacity-0 memo must never hit");
    assert_eq!(plain_stats.memo_evictions, 0);
}
