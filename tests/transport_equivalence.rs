//! The transport equivalence matrix (DESIGN.md §13): every shardable
//! method × shard counts {1, 2, 4, 7}, executed over two real loopback
//! `xai-shard-worker --listen` daemons, asserted **bit-identical**
//! (byte-compared canonical JSON) against the unsharded
//! `Explainer::explain` run at the same seed. Fallback is disabled
//! (`FallbackPolicy::Fail`) so any transport problem fails the test
//! loudly instead of silently degrading to the in-process runner; every
//! run additionally asserts `degraded == false`.

use std::time::Duration;

use xai::datavalue::BanzhafConfig;
use xai::models::Persist;
use xai::prelude::*;
use xai::shard::ShardableExplainer;
use xai::transport::DaemonHandle;
use xai_rules::AnchorsConfig;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn worker_exe() -> &'static str {
    env!("CARGO_BIN_EXE_xai-shard-worker")
}

/// Two healthy daemons and a fail-fast cluster config over them.
fn cluster() -> (Vec<DaemonHandle>, ClusterConfig) {
    let daemons: Vec<DaemonHandle> = (0..2)
        .map(|_| DaemonHandle::spawn(worker_exe(), &[]).expect("spawn daemon"))
        .collect();
    let mut config =
        ClusterConfig::new(daemons.iter().map(|d| d.addr().to_string()));
    config.connect_timeout = Duration::from_secs(5);
    config.io_timeout = Duration::from_secs(120);
    config.fallback = FallbackPolicy::Fail;
    (daemons, config)
}

/// A classification fixture sized for debug-mode test runs.
fn fixture(rows: usize, seed: u64) -> (Dataset, LogisticRegression) {
    let data = xai::data::synth::german_credit(rows, seed);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    (data, model)
}

/// The core assertion: the cluster-transported run produces the same
/// bytes as the unsharded run, at every shard count, without degrading.
fn assert_transport_equivalence(
    method: &dyn ShardableExplainer,
    model: &LogisticRegression,
    req: &ExplainRequest<'_>,
    label: &str,
) {
    let reference = method
        .explain(model, req)
        .unwrap_or_else(|e| panic!("{label}: unsharded explain failed: {e:?}"))
        .to_json_string();
    let (_daemons, config) = cluster();
    let runner = ClusterRunner::new(config).expect("cluster runner");
    for n_shards in SHARD_COUNTS {
        let outcome = runner
            .explain(method, model, req, model.save(), n_shards)
            .unwrap_or_else(|e| panic!("{label}: cluster n_shards={n_shards} failed: {e:?}"));
        assert!(!outcome.degraded, "{label}: degraded at n_shards={n_shards}");
        assert_eq!(
            outcome.explanation.to_json_string(),
            reference,
            "{label}: cluster transport diverged at n_shards={n_shards}"
        );
    }
}

#[test]
fn kernel_shap_transports() {
    let (data, model) = fixture(60, 7);
    let row = data.row(0).to_vec();
    let req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(11).with_workers(2));
    let sampled = KernelShapMethod {
        config: KernelShapConfig { max_coalitions: 64, ..KernelShapConfig::default() },
    };
    assert_transport_equivalence(&sampled, &model, &req, "kernel SHAP (sampled)");
}

#[test]
fn permutation_shapley_transports() {
    let (data, model) = fixture(60, 8);
    let row = data.row(3).to_vec();
    let req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(23).with_workers(2));
    let method = PermutationShapleyMethod { permutations: 40 };
    assert_transport_equivalence(&method, &model, &req, "permutation Shapley");
}

#[test]
fn lime_transports() {
    let (data, model) = fixture(60, 9);
    let row = data.row(5).to_vec();
    let req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(31).with_workers(2));
    let method =
        LimeMethod { config: LimeConfig { n_samples: 96, ..LimeConfig::default() } };
    assert_transport_equivalence(&method, &model, &req, "LIME");
}

#[test]
fn sp_lime_transports() {
    let (data, model) = fixture(50, 10);
    let req = ExplainRequest::new(&data).plan(RunConfig::seeded(13).with_workers(2));
    let method = SpLimeMethod {
        n_candidates: 10,
        picks: 3,
        config: LimeConfig { n_samples: 64, ..LimeConfig::default() },
    };
    assert_transport_equivalence(&method, &model, &req, "SP-LIME");
}

#[test]
fn anchors_transports() {
    let (data, model) = fixture(60, 12);
    let row = data.row(0).to_vec();
    let req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(17).with_workers(2));
    let method = AnchorsMethod {
        config: AnchorsConfig {
            precision_target: 0.9,
            max_samples_per_round: 600,
            ..AnchorsConfig::default()
        },
        pool: 4,
    };
    assert_transport_equivalence(&method, &model, &req, "Anchors");
}

#[test]
fn dice_transports() {
    let (data, model) = fixture(60, 14);
    let row = data.row(2).to_vec();
    let req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(6).with_workers(2));
    let method = DiceMethod {
        config: DiceConfig { k: 2, iterations: 60, restarts: 2, ..DiceConfig::default() },
    };
    assert_transport_equivalence(&method, &model, &req, "DiCE");
}

#[test]
fn leave_one_out_transports() {
    let (data, model) = fixture(20, 21);
    let req = ExplainRequest::new(&data).plan(RunConfig::seeded(19).with_workers(2));
    assert_transport_equivalence(&LooMethod, &model, &req, "leave-one-out");
}

#[test]
fn tmc_data_shapley_transports() {
    let (data, model) = fixture(10, 22);
    let req = ExplainRequest::new(&data).plan(RunConfig::seeded(19).with_workers(2));
    let method =
        TmcMethod { config: TmcConfig { permutations: 20, ..TmcConfig::default() } };
    assert_transport_equivalence(&method, &model, &req, "TMC data Shapley");
}

#[test]
fn data_banzhaf_transports() {
    let (data, model) = fixture(10, 24);
    let req = ExplainRequest::new(&data).plan(RunConfig::seeded(19).with_workers(2));
    let method =
        BanzhafMethod { config: BanzhafConfig { samples_per_point: 6, seed: 0 } };
    assert_transport_equivalence(&method, &model, &req, "data Banzhaf");
}

#[test]
fn one_shot_explain_cluster_matches_and_reports_health() {
    let (data, model) = fixture(60, 7);
    let row = data.row(0).to_vec();
    let req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(11).with_workers(2));
    let method = KernelShapMethod {
        config: KernelShapConfig { max_coalitions: 64, ..KernelShapConfig::default() },
    };
    let reference = method.explain(&model, &req).unwrap().to_json_string();
    let (_daemons, config) = cluster();
    let outcome = xai::transport::explain_cluster(&method, &model, &req, 4, &config).unwrap();
    assert!(!outcome.degraded);
    assert_eq!(outcome.explanation.to_json_string(), reference);
    assert_eq!(outcome.stats.transport_failures, 0, "healthy cluster saw failures");
    assert!(outcome.stats.attempts >= 4, "four shards need at least four dispatches");
}
