//! End-to-end suite for the explanation-serving engine (DESIGN.md §10).
//!
//! Every runnable method is submitted through `ExplanationService` as a
//! JSON request, and the served payload is compared **bit-for-bit**
//! against a direct `Explainer::explain` call with the same plan: the
//! queue, the worker pool and the cache must be invisible in the bytes.
//! Admission control (`QueueFull`), validation (`Parse` /
//! `NonFiniteInput`) and budget exhaustion (`BudgetExceeded`) all
//! surface as typed errors, never as strings or panics.

mod common;

use std::sync::{Arc, Condvar, Mutex};

use common::{direct_payload, fixture_with, request_for};
use xai::prelude::*;

/// Per-request plan workers — the *inner* deterministic parallelism of
/// each method, independent of the service's pool size.
const PLAN_WORKERS: [usize; 3] = [1, 2, 4];

#[test]
fn every_runnable_method_serves_bit_identically_to_direct_explain() {
    let fx = fixture_with(ServiceConfig { workers: 2, queue_capacity: 64, cache_capacity: 256, memo_capacity: 4096 });
    let names = fx.service.registry().runnable_names();
    assert_eq!(names.len(), 17, "the sweep must cover every runnable method");

    for name in names {
        for workers in PLAN_WORKERS {
            let plan = RunConfig::seeded(7).with_workers(workers);
            let request = request_for(&fx, name, plan);

            // Serve what the wire carries: the request round-trips
            // through JSON before submission.
            let wire = ServeRequest::from_json_str(&request.to_json_string()).unwrap();
            assert_eq!(wire, request, "{name}: JSON round-trip must be lossless");

            let response = fx
                .service
                .submit(&wire)
                .unwrap_or_else(|e| panic!("{name} (plan workers={workers}): {e}"));
            assert!(!response.cached, "{name}: distinct plans must be cold misses");
            assert_eq!(
                response.payload,
                direct_payload(&fx, &request),
                "{name} diverged from direct explain at plan workers={workers}"
            );

            // The payload is itself canonical: it parses back and
            // re-serializes to the same bytes.
            let explanation = response.explanation().unwrap();
            assert_eq!(explanation.to_json_string(), response.payload);
        }
    }

    let stats = fx.service.stats();
    assert_eq!(stats.submitted, 17 * PLAN_WORKERS.len() as u64);
    assert_eq!(stats.completed, stats.submitted);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.cache_misses, stats.submitted);
    assert_eq!(stats.cache_hits, 0);
}

#[test]
fn cache_hits_are_byte_equal_to_their_cold_miss() {
    let fx = fixture_with(ServiceConfig { workers: 2, queue_capacity: 64, cache_capacity: 64, memo_capacity: 4096 });
    let methods = [
        "Kernel SHAP",
        "LIME",
        "Wachter counterfactuals",
        "Partial dependence / ICE",
        "Leave-one-out",
    ];
    for name in methods {
        let request = request_for(&fx, name, RunConfig::seeded(5));
        let cold = fx.service.submit(&request).unwrap();
        let warm = fx.service.submit(&request).unwrap();
        assert!(!cold.cached, "{name}: first submission must compute");
        assert!(warm.cached, "{name}: second submission must hit the cache");
        assert_eq!(warm.payload, cold.payload, "{name}: hit must be byte-equal to the miss");
        assert_eq!(warm.fingerprint, cold.fingerprint);
    }
    let stats = fx.service.stats();
    assert_eq!(stats.cache_hits, methods.len() as u64);
    assert_eq!(stats.cache_misses, methods.len() as u64);
    assert_eq!(stats.completed, 2 * methods.len() as u64);
    assert_eq!(stats.failed, 0);
}

#[test]
fn sparse_wire_requests_hit_the_cache_of_their_canonical_twin() {
    let fx = fixture_with(ServiceConfig::default());
    let request = request_for(&fx, "Kernel SHAP", RunConfig::default());
    let cold = fx.service.submit(&request).unwrap();

    // A hand-written sparse request — no feature, no plan — parses to
    // the same canonical form and must be served from the cache.
    let sparse = format!(
        r#"{{"method": "Kernel SHAP", "model": "credit", "instance": {:?}}}"#,
        fx.rejected
    );
    let wire = ServeRequest::from_json_str(&sparse).unwrap();
    assert_eq!(wire.canonical_hash(), request.canonical_hash());
    let warm = fx.service.submit(&wire).unwrap();
    assert!(warm.cached, "sparse and canonical forms must share a cache entry");
    assert_eq!(warm.payload, cold.payload);
}

#[test]
fn validation_errors_are_typed_and_never_consume_queue_capacity() {
    let fx = fixture_with(ServiceConfig::default());

    let unknown_method = ServeRequest::new("Oracle SHAP", "credit");
    assert!(matches!(fx.service.submit(&unknown_method), Err(XaiError::Parse { .. })));

    // Catalogued in the taxonomy, but no runnable explainer attached.
    let survey_only = ServeRequest::new("Global surrogate", "credit");
    assert!(matches!(fx.service.submit(&survey_only), Err(XaiError::Unsupported { .. })));

    let unknown_model = ServeRequest::new("Kernel SHAP", "nope");
    assert!(matches!(fx.service.submit(&unknown_model), Err(XaiError::Parse { .. })));

    let bad_arity =
        ServeRequest::new("Kernel SHAP", "credit").with_instance(&[1.0, 2.0, 3.0]);
    assert!(matches!(fx.service.submit(&bad_arity), Err(XaiError::Parse { .. })));

    let mut poisoned = fx.rejected.clone();
    poisoned[2] = f64::NAN;
    let non_finite = ServeRequest::new("Kernel SHAP", "credit").with_instance(&poisoned);
    assert!(matches!(fx.service.submit(&non_finite), Err(XaiError::NonFiniteInput { .. })));

    let bad_feature =
        ServeRequest::new("Partial dependence / ICE", "credit").with_feature(99);
    assert!(matches!(fx.service.submit(&bad_feature), Err(XaiError::Parse { .. })));

    // None of the rejected requests was admitted, executed or counted
    // against the queue/cache.
    let stats = fx.service.stats();
    assert_eq!(stats.submitted, 0);
    assert_eq!(stats.completed + stats.failed, 0);
    assert_eq!(stats.cache_hits + stats.cache_misses, 0);
}

#[test]
fn budgeted_requests_serve_partial_results_or_typed_exhaustion() {
    let fx = fixture_with(ServiceConfig { workers: 1, queue_capacity: 16, cache_capacity: 16, memo_capacity: 4096 });

    // A budgeted Kernel SHAP request truncates the coalition stream and
    // still matches the direct budgeted call byte-for-byte.
    let plan = RunConfig::seeded(11).with_budget(SampleBudget::with_max_evals(24));
    let request = request_for(&fx, "Kernel SHAP", plan);
    let response = fx.service.submit(&request).unwrap();
    assert_eq!(response.payload, direct_payload(&fx, &request));

    // Same for LIME, whose budget meters neighbourhood probes.
    let plan = RunConfig::seeded(11).with_budget(SampleBudget::with_max_evals(40));
    let request = request_for(&fx, "LIME", plan);
    let response = fx.service.submit(&request).unwrap();
    assert_eq!(response.payload, direct_payload(&fx, &request));

    // A starved budget surfaces as a typed BudgetExceeded, not a panic.
    let starved =
        request_for(&fx, "Kernel SHAP", RunConfig::seeded(11).with_budget(SampleBudget::with_max_evals(0)));
    match fx.service.submit(&starved) {
        Err(XaiError::BudgetExceeded { completed, .. }) => assert_eq!(completed, 0),
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }

    // LIME reports how many probes it completed before starving.
    let starved =
        request_for(&fx, "LIME", RunConfig::seeded(11).with_budget(SampleBudget::with_max_evals(5)));
    match fx.service.submit(&starved) {
        Err(XaiError::BudgetExceeded { completed, .. }) => assert_eq!(completed, 5),
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }

    // Budget + parallel plan is a typed Unsupported (budgets meter the
    // sequential scalar path only).
    let bad = request_for(
        &fx,
        "Kernel SHAP",
        RunConfig::seeded(1).with_workers(2).with_budget(SampleBudget::with_max_evals(10)),
    );
    assert!(matches!(fx.service.submit(&bad), Err(XaiError::Unsupported { .. })));

    // Failures were admitted and executed: the counters must balance.
    let stats = fx.service.stats();
    assert_eq!(stats.failed, 3);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.cache_hits + stats.cache_misses, stats.completed + stats.failed);
}

#[test]
fn queue_full_is_typed_admission_control() {
    // One worker, queue capacity 1. The worker is parked inside a gated
    // oracle, a second request fills the queue, and the third must be
    // rejected with the typed QueueFull error — no sleeps, no races.
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let entered = Arc::new((Mutex::new(0usize), Condvar::new()));
    let oracle = {
        let gate = Arc::clone(&gate);
        let entered = Arc::clone(&entered);
        FnOracle::new(9, move |x: &[f64]| {
            {
                let (count, cond) = &*entered;
                *count.lock().unwrap() += 1;
                cond.notify_all();
            }
            let (open, cond) = &*gate;
            let mut open = open.lock().unwrap();
            while !*open {
                open = cond.wait(open).unwrap();
            }
            x.iter().sum()
        })
    };

    let data = xai::data::synth::german_credit(8, 1);
    let service = Arc::new(ExplanationService::new(
        common::cheap_registry(),
        ServiceConfig { workers: 1, queue_capacity: 1, cache_capacity: 8, memo_capacity: 0 },
    ));
    service.register_model("gated", Arc::new(oracle), data.clone(), b"gated-model-v1");

    let row = data.row(0).to_vec();
    let request =
        |seed: u64| ServeRequest::new("Kernel SHAP", "gated").with_instance(&row).with_plan(RunConfig::seeded(seed));

    let first = {
        let service = Arc::clone(&service);
        let request = request(1);
        std::thread::spawn(move || service.submit(&request))
    };
    // Wait until the worker is provably parked inside the model.
    {
        let (count, cond) = &*entered;
        let mut count = count.lock().unwrap();
        while *count == 0 {
            count = cond.wait(count).unwrap();
        }
    }

    let second = {
        let service = Arc::clone(&service);
        let request = request(2);
        std::thread::spawn(move || service.submit(&request))
    };
    // Wait until the second request occupies the queue slot.
    while service.stats().submitted < 2 {
        std::thread::yield_now();
    }

    match service.submit(&request(3)) {
        Err(XaiError::QueueFull { capacity }) => assert_eq!(capacity, 1),
        other => panic!("expected QueueFull, got {other:?}"),
    }
    assert_eq!(service.stats().rejected, 1);

    // Open the gate: both admitted requests complete normally.
    {
        let (open, cond) = &*gate;
        *open.lock().unwrap() = true;
        cond.notify_all();
    }
    assert!(first.join().unwrap().is_ok());
    assert!(second.join().unwrap().is_ok());
    let stats = service.stats();
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.completed, 2);
}

#[test]
fn submit_json_answers_with_the_response_envelope() {
    let fx = fixture_with(ServiceConfig::default());
    let request = request_for(&fx, "Integrated gradients", RunConfig::seeded(3));
    let envelope = fx.service.submit_json(&request.to_json_string()).unwrap();

    // The envelope carries the same payload a struct-level submit returns:
    // the embedded explanation re-serializes to the exact cached bytes.
    let response = fx.service.submit(&request).unwrap();
    assert!(response.cached, "the JSON submission must have warmed the cache");
    assert!(envelope.contains("\"cached\":false"));
    assert!(envelope.contains(&format!("\"{:016x}\"", response.fingerprint)));
    assert!(envelope.contains(&response.payload));
}

#[test]
fn model_replacement_invalidates_cached_results() {
    let fx = fixture_with(ServiceConfig::default());
    let request = request_for(&fx, "Kernel SHAP", RunConfig::seeded(9));
    let cold = fx.service.submit(&request).unwrap();
    assert!(fx.service.submit(&request).unwrap().cached);

    // Re-register the same name with a different model: the fingerprint
    // changes, so the old cache entry can never be served again.
    let retrained = Arc::new(LogisticRegression::fit(
        fx.tiny.x(),
        fx.tiny.y(),
        LogisticConfig::default(),
    ));
    let bytes = xai_models::persisted_bytes(&*retrained);
    let new_fp = fx.service.register_model("credit", retrained, fx.credit.clone(), &bytes);
    assert_ne!(new_fp, cold.fingerprint);

    let fresh = fx.service.submit(&request).unwrap();
    assert!(!fresh.cached, "a replaced model must not serve stale cached bytes");
    assert_eq!(fresh.fingerprint, new_fp);
}
