//! End-to-end integration: the full credit-scoring workflow across every
//! method crate, exercised exactly as the examples do.

use xai::prelude::*;
use xai::surrogate::{LimeConfig as LC, LimeExplainer};

fn credit() -> (Dataset, Gbdt, Dataset) {
    let data = xai::data::synth::german_credit(900, 42);
    let (train, test) = data.train_test_split(0.25, 1);
    let model = Gbdt::fit(train.x(), train.y(), GbdtConfig { n_rounds: 40, ..GbdtConfig::default() });
    (train, model, test)
}

#[test]
fn model_is_worth_explaining() {
    let (_, model, test) = credit();
    let auc = xai::data::metrics::auc_roc(test.y(), &model.proba(test.x()));
    assert!(auc > 0.65, "AUC {auc}");
}

#[test]
fn treeshap_and_lime_tell_a_consistent_story() {
    let (train, model, test) = credit();
    let names = train.schema().names();
    let f = proba_fn(&model);
    let lime = LimeExplainer::fit(&train);
    let mut agreements = 0usize;
    let rows = 8;
    for i in 0..rows {
        let x = test.row(i);
        let shap = tree_shap_attribution(&model, x, &names);
        let lime_exp = lime.explain(&f, x, LC { n_samples: 1500, ..LC::default() }, i as u64);
        // The top-3 sets of two very different methods should overlap.
        let top = |fa: &FeatureAttribution| -> std::collections::HashSet<usize> {
            fa.ranking().into_iter().take(3).collect()
        };
        let overlap = top(&shap).intersection(&top(&lime_exp.attribution)).count();
        if overlap >= 1 {
            agreements += 1;
        }
    }
    assert!(
        agreements >= rows - 2,
        "methods should agree on at least one top-3 feature almost always: {agreements}/{rows}"
    );
}

#[test]
fn faithfulness_protocol_ranks_shap_above_random_attribution() {
    let (train, model, test) = credit();
    let names = train.schema().names();
    let baseline: Vec<f64> = (0..train.n_features())
        .map(|j| xai::linalg::stats::mean(&train.x().col(j)))
        .collect();
    let f = |x: &[f64]| model.proba_one(x);
    let base_pred = f(&baseline);
    let mut shap_auc = 0.0;
    let mut junk_auc = 0.0;
    let mut rows = 0;
    // Deletion curves are only directional for predictions clearly above
    // the baseline output (they decay toward it).
    for i in (0..test.n_rows()).filter(|&i| f(test.row(i)) > base_pred + 0.1).take(10) {
        rows += 1;
        let x = test.row(i).to_vec();
        let shap = tree_shap_attribution(&model, &x, &names);
        let junk = FeatureAttribution::new(
            names.iter().map(|s| s.to_string()).collect(),
            // Adversarially wrong attribution: reversed ranking.
            shap.values.iter().map(|v| 1.0 / (1.0 + v.abs())).collect(),
            shap.baseline,
            shap.prediction,
        );
        shap_auc += xai::core::eval::deletion_curve(&f, &x, &baseline, &shap).auc;
        junk_auc += xai::core::eval::deletion_curve(&f, &x, &baseline, &junk).auc;
    }
    // Deleting truly-important features first collapses predictions sooner.
    assert!(rows >= 3, "need enough above-baseline rows, got {rows}");
    assert!(
        shap_auc < junk_auc,
        "faithful attributions should have lower deletion AUC: {shap_auc} vs {junk_auc}"
    );
}

#[test]
fn counterfactual_and_anchor_are_mutually_consistent() {
    let (train, model, _) = credit();
    let f = proba_fn(&model);
    let idx = (0..train.n_rows()).find(|&i| f(train.row(i)) < 0.4).unwrap();
    let x = train.row(idx);

    // The anchor pins the *current* (negative) prediction…
    let anchors = AnchorsExplainer::fit(&train);
    let rule = anchors.explain(&f, x, AnchorsConfig::default(), 3);
    assert_eq!(rule.prediction, 0.0);
    assert!(rule.matches(x));

    // …while a valid counterfactual must escape the anchor's region or at
    // least flip the model.
    let dice = DiceExplainer::fit(&train);
    let cfs = dice.generate(&f, x, DiceConfig { k: 1, ..DiceConfig::default() }, 5);
    if let Some(cf) = cfs.first() {
        assert!(cf.is_valid());
    }
}

#[test]
fn json_reports_serialize_every_explanation_kind() {
    let (train, model, test) = credit();
    let names = train.schema().names();
    let shap = tree_shap_attribution(&model, test.row(0), &names);
    let s = shap.to_report().to_json();
    assert!(s.starts_with('{') && s.ends_with('}'));
    assert!(s.contains("feature_attribution"));

    let f = proba_fn(&model);
    let anchors = AnchorsExplainer::fit(&train);
    let rule = anchors.explain(&f, test.row(0), AnchorsConfig::default(), 1);
    assert!(rule.to_report().to_json().contains("\"kind\":\"rule\""));

    let values = knn_shapley(&train, &test, 5);
    assert!(values.to_report().to_json().contains("data_attribution"));
}

#[test]
fn registry_covers_every_implemented_family() {
    let r = workspace_registry();
    for name in [
        "LIME",
        "Kernel SHAP",
        "TreeSHAP",
        "Causal Shapley values",
        "DiCE",
        "GeCo",
        "LEWIS",
        "Anchors",
        "Interpretable decision sets",
        "Sufficient reasons",
        "Data Shapley (TMC)",
        "KNN-Shapley",
        "Influence functions",
        "Tuple Shapley",
        "PrIU incremental updates",
        "Complaint-driven debugging",
    ] {
        assert!(r.get(name).is_some(), "missing card: {name}");
    }
}
