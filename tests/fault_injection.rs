//! Fault-injection harness for the fallible (`try_*`) explanation
//! pipeline.
//!
//! Every test wraps a model, game, or utility in a fault injector — NaN
//! outputs after the k-th call, a panic on a chosen evaluation, constant
//! predictions, degenerate inputs — and proves that the `try_*` twin of
//! each entry point returns the *right* [`XaiError`] variant (or an `Ok`
//! result flagged `degraded`) instead of panicking or leaking NaN. The
//! final section pins the determinism contract: on fault-free inputs the
//! `try_*` parallel paths are bit-identical to their panicking twins for
//! every worker count.
// The legacy twin entry points stay under test until removal: this file
// is their bit-identity oracle against the unified layer.
#![allow(deprecated)]

use std::sync::atomic::{AtomicUsize, Ordering};

use xai::core::{SampleBudget, XaiError};
use xai::counterfactual::wachter::GradientModel;
use xai::counterfactual::{
    try_geco, try_geco_parallel, try_wachter_counterfactual, DiceConfig, DiceExplainer,
    GecoConfig, Plaf, WachterConfig,
};
use xai::data::synth::linear_gaussian;
use xai::data::Dataset;
use xai::datavalue::{
    data_banzhaf_parallel, leave_one_out_parallel, tmc_shapley_parallel, try_data_banzhaf,
    try_data_banzhaf_parallel, try_leave_one_out, try_leave_one_out_parallel, try_tmc_shapley,
    try_tmc_shapley_budgeted, try_tmc_shapley_parallel, BanzhafConfig, FnUtility, TmcConfig,
};
use xai::linalg::Matrix;
use xai::models::{LogisticConfig, LogisticRegression, Mlp, MlpConfig};
use xai::shapley::{
    kernel_shap, kernel_shap_parallel, permutation_shapley, permutation_shapley_parallel,
    try_antithetic_permutation_shapley, try_kernel_shap, try_kernel_shap_attribution,
    try_kernel_shap_batched, try_kernel_shap_batched_parallel, try_kernel_shap_parallel,
    try_permutation_shapley, try_permutation_shapley_batched,
    try_permutation_shapley_batched_parallel, try_permutation_shapley_budgeted,
    try_permutation_shapley_parallel, BatchGame, CooperativeGame, KernelShapConfig,
};
use xai::surrogate::{
    partial_dependence, try_partial_dependence, try_partial_dependence_batched, LimeConfig,
    LimeExplainer,
};
use xai_rand::parallel::{par_map_seeded, try_par_map_seeded};

// ---------------------------------------------------------------------------
// Fault injectors
// ---------------------------------------------------------------------------

/// How a [`FaultyGame`] misbehaves.
#[derive(Clone, Copy)]
enum Fault {
    /// Honest weighted-sum game.
    Clean,
    /// Returns NaN from the k-th evaluation onwards (0-based).
    NanAfter(usize),
    /// Panics on the k-th evaluation (0-based).
    PanicAt(usize),
}

/// A cooperative game with an injectable fault and a call counter.
struct FaultyGame {
    n: usize,
    fault: Fault,
    calls: AtomicUsize,
}

impl FaultyGame {
    fn new(n: usize, fault: Fault) -> Self {
        Self { n, fault, calls: AtomicUsize::new(0) }
    }

    fn clean_value(&self, coalition: &[bool]) -> f64 {
        coalition
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| (i + 1) as f64 * 0.1)
            .sum::<f64>()
            + f64::from(coalition.first().copied().unwrap_or(false)
                && coalition.last().copied().unwrap_or(false))
                * 0.3
    }
}

impl CooperativeGame for FaultyGame {
    fn n_players(&self) -> usize {
        self.n
    }

    fn value(&self, coalition: &[bool]) -> f64 {
        let k = self.calls.fetch_add(1, Ordering::Relaxed);
        match self.fault {
            Fault::Clean => self.clean_value(coalition),
            Fault::NanAfter(t) if k >= t => f64::NAN,
            Fault::NanAfter(_) => self.clean_value(coalition),
            Fault::PanicAt(t) if k == t => panic!("injected game fault at call {k}"),
            Fault::PanicAt(_) => self.clean_value(coalition),
        }
    }
}

impl BatchGame for FaultyGame {}

/// A small two-feature dataset shared by the model-level fixtures.
fn fixture_data() -> Dataset {
    linear_gaussian(120, &[2.0, -1.0], 0.0, 7)
}

/// The honest model the faulty closures impersonate.
fn clean_model(x: &[f64]) -> f64 {
    let z = 2.0 * x[0] - x[1];
    1.0 / (1.0 + (-z).exp())
}

/// A gradient model with a constant output that never crosses 0.5.
struct StuckModel(f64);

impl GradientModel for StuckModel {
    fn output(&self, _x: &[f64]) -> f64 {
        self.0
    }
    fn gradient(&self, x: &[f64]) -> Vec<f64> {
        vec![0.0; x.len()]
    }
}

/// A gradient model that panics on first contact.
struct ExplodingModel;

impl GradientModel for ExplodingModel {
    fn output(&self, _x: &[f64]) -> f64 {
        panic!("injected gradient-model fault")
    }
    fn gradient(&self, _x: &[f64]) -> Vec<f64> {
        panic!("injected gradient-model fault")
    }
}

// ---------------------------------------------------------------------------
// Kernel SHAP
// ---------------------------------------------------------------------------

#[test]
fn kernel_shap_nan_endpoint_is_a_model_fault() {
    // Call 0 is v(∅): the endpoint check fires before any regression.
    let game = FaultyGame::new(4, Fault::NanAfter(0));
    let err = try_kernel_shap(&game, KernelShapConfig::default()).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");
    assert!(err.to_string().contains("endpoint"), "{err}");
}

#[test]
fn kernel_shap_endpoint_panic_is_a_model_fault() {
    // A model that panics on the very first (empty-coalition) evaluation
    // must be caught by the endpoint preamble, not unwind to the caller.
    let game = FaultyGame::new(4, Fault::PanicAt(0));
    let err = try_kernel_shap(&game, KernelShapConfig::default()).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");
    assert!(err.to_string().contains("endpoint"), "{err}");
}

#[test]
fn kernel_shap_nan_coalition_is_a_model_fault() {
    // Endpoints pass; the NaN lands inside the coalition sweep.
    let game = FaultyGame::new(4, Fault::NanAfter(5));
    let err = try_kernel_shap(&game, KernelShapConfig::default()).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");
}

#[test]
fn kernel_shap_panicking_game_is_caught_sequentially() {
    let game = FaultyGame::new(4, Fault::PanicAt(5));
    let err = try_kernel_shap(&game, KernelShapConfig::default()).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");
    assert!(err.to_string().contains("injected game fault"), "{err}");

    let game = FaultyGame::new(4, Fault::PanicAt(5));
    let err = try_kernel_shap_batched(&game, KernelShapConfig::default()).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");
}

#[test]
fn parallel_kernel_shap_panic_is_a_worker_panic() {
    for workers in [1, 2, 4] {
        let game = FaultyGame::new(5, Fault::PanicAt(7));
        let err =
            try_kernel_shap_parallel(&game, KernelShapConfig::default(), workers).unwrap_err();
        assert!(matches!(err, XaiError::WorkerPanic { .. }), "workers={workers}: {err}");

        let game = FaultyGame::new(5, Fault::PanicAt(7));
        let err = try_kernel_shap_batched_parallel(&game, KernelShapConfig::default(), workers)
            .unwrap_err();
        assert!(matches!(err, XaiError::WorkerPanic { .. }), "workers={workers}: {err}");
    }
}

#[test]
fn parallel_kernel_shap_nan_is_a_model_fault_not_a_worker_panic() {
    // NaN values inside worker chunks must keep their ModelFault identity.
    let game = FaultyGame::new(5, Fault::NanAfter(9));
    let err = try_kernel_shap_parallel(&game, KernelShapConfig::default(), 3).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");
}

#[test]
fn kernel_shap_ridge_escalation_flags_degraded() {
    // One sampled coalition for three players: the 1×2 design has an
    // exactly rank-deficient Gram (integer entries), so ridge 0.0 is
    // singular by construction and the ladder must take over.
    let game = FaultyGame::new(3, Fault::Clean);
    let config = KernelShapConfig { max_coalitions: 1, ridge: 0.0, seed: 0 };
    let ks = try_kernel_shap(&game, config).expect("ladder recovers the solve");
    assert!(ks.degraded, "escalated solve must be flagged");
    assert!(ks.phi.iter().all(|p| p.is_finite()));
    // Efficiency holds even for degraded estimates (tail by construction).
    let total: f64 = ks.phi.iter().sum();
    let expected = game.clean_value(&[true; 3]) - game.clean_value(&[false; 3]);
    assert!((total - expected).abs() < 1e-9);
}

#[test]
fn clean_kernel_shap_try_twin_is_bit_identical_and_not_degraded() {
    let config = KernelShapConfig::default();
    let plain = kernel_shap(&FaultyGame::new(4, Fault::Clean), config);
    let tried = try_kernel_shap(&FaultyGame::new(4, Fault::Clean), config).unwrap();
    assert_eq!(plain.phi, tried.phi);
    assert!(!tried.degraded);
}

#[test]
fn kernel_shap_attribution_validates_instance_and_background() {
    let model = |x: &[f64]| clean_model(x);
    let names = ["a", "b"];
    let bg = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);

    let err = try_kernel_shap_attribution(
        &model,
        &[f64::NAN, 1.0],
        &bg,
        &names,
        KernelShapConfig::default(),
    )
    .unwrap_err();
    assert!(matches!(err, XaiError::NonFiniteInput { .. }), "{err}");

    // Every background row equal to the instance: the induced game is
    // constant and must be rejected up front, not solved into garbage.
    let degenerate = Matrix::from_rows(&[vec![1.0, 2.0], vec![1.0, 2.0]]);
    let err = try_kernel_shap_attribution(
        &model,
        &[1.0, 2.0],
        &degenerate,
        &names,
        KernelShapConfig::default(),
    )
    .unwrap_err();
    assert!(matches!(err, XaiError::NonFiniteInput { .. }), "{err}");
    assert!(err.to_string().contains("degenerate"), "{err}");

    // A healthy pair still explains.
    let ok = try_kernel_shap_attribution(
        &model,
        &[1.0, 2.0],
        &bg,
        &names,
        KernelShapConfig::default(),
    )
    .unwrap();
    assert!(ok.values.iter().all(|p| p.is_finite()));
}

// ---------------------------------------------------------------------------
// Permutation Shapley
// ---------------------------------------------------------------------------

#[test]
fn permutation_shapley_nan_game_is_a_model_fault() {
    let game = FaultyGame::new(4, Fault::NanAfter(3));
    let err = try_permutation_shapley(&game, 8, 0).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");

    let game = FaultyGame::new(4, Fault::NanAfter(3));
    let err = try_permutation_shapley_batched(&game, 8, 0).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");

    let game = FaultyGame::new(4, Fault::NanAfter(3));
    let err = try_antithetic_permutation_shapley(&game, 8, 0).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");
}

#[test]
fn permutation_shapley_panicking_game_is_caught_sequentially() {
    let game = FaultyGame::new(4, Fault::PanicAt(6));
    let err = try_permutation_shapley(&game, 8, 0).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");
}

#[test]
fn parallel_permutation_shapley_separates_panics_from_nan() {
    for workers in [1, 2, 4] {
        let game = FaultyGame::new(4, Fault::PanicAt(6));
        let err = try_permutation_shapley_parallel(&game, 16, 0, workers).unwrap_err();
        assert!(matches!(err, XaiError::WorkerPanic { .. }), "workers={workers}: {err}");

        let game = FaultyGame::new(4, Fault::NanAfter(6));
        let err = try_permutation_shapley_parallel(&game, 16, 0, workers).unwrap_err();
        assert!(matches!(err, XaiError::ModelFault { .. }), "workers={workers}: {err}");

        let game = FaultyGame::new(4, Fault::PanicAt(6));
        let err = try_permutation_shapley_batched_parallel(&game, 16, 0, workers).unwrap_err();
        assert!(matches!(err, XaiError::WorkerPanic { .. }), "workers={workers}: {err}");
    }
}

#[test]
fn permutation_budget_returns_partial_estimates() {
    let n = 4;
    let game = FaultyGame::new(n, Fault::Clean);
    // Two walks of n + 1 evaluations fit exactly; the third must not start.
    let budget = SampleBudget::with_max_evals(2 * (n + 1));
    let partial = try_permutation_shapley_budgeted(&game, 10, 0, budget).unwrap();
    assert_eq!(partial.permutations, 2, "partial estimate reports its sample count");
    assert!(partial.phi.iter().all(|p| p.is_finite()));

    // An unlimited budget reproduces the plain estimator bit-for-bit.
    let full = try_permutation_shapley_budgeted(&game, 10, 0, SampleBudget::unlimited()).unwrap();
    let plain = permutation_shapley(&game, 10, 0);
    assert_eq!(full.phi, plain.phi);
    assert_eq!(full.permutations, 10);
}

#[test]
fn permutation_budget_expiring_before_first_walk_is_an_error() {
    let game = FaultyGame::new(4, Fault::Clean);
    let budget = SampleBudget::with_deadline(std::time::Duration::ZERO);
    let err = try_permutation_shapley_budgeted(&game, 10, 0, budget).unwrap_err();
    assert!(matches!(err, XaiError::BudgetExceeded { completed: 0, .. }), "{err}");
}

// ---------------------------------------------------------------------------
// LIME and PDP
// ---------------------------------------------------------------------------

#[test]
fn lime_rejects_non_finite_instances_up_front() {
    let data = fixture_data();
    let explainer = LimeExplainer::fit(&data);
    let model = |x: &[f64]| clean_model(x);
    let err = explainer
        .try_explain(&model, &[1.0, f64::INFINITY], LimeConfig::default(), 0)
        .unwrap_err();
    assert!(matches!(err, XaiError::NonFiniteInput { .. }), "{err}");
}

#[test]
fn lime_model_faults_are_typed() {
    let data = fixture_data();
    let explainer = LimeExplainer::fit(&data);
    let instance = data.row(0);

    let nan_model = |_x: &[f64]| f64::NAN;
    let err = explainer.try_explain(&nan_model, instance, LimeConfig::default(), 0).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");

    let calls = AtomicUsize::new(0);
    let panic_model = |x: &[f64]| {
        if calls.fetch_add(1, Ordering::Relaxed) == 17 {
            panic!("injected LIME model fault");
        }
        clean_model(x)
    };
    let err = explainer.try_explain(&panic_model, instance, LimeConfig::default(), 0).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");

    // A batched model returning the wrong arity is also a model fault.
    let short_model = |_m: &Matrix| vec![0.5; 3];
    let err =
        explainer.try_explain_batched(&short_model, instance, LimeConfig::default(), 0).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");
}

#[test]
fn lime_ridge_escalation_flags_degraded() {
    // A sub-nano kernel width underflows every locality weight to exactly
    // 0.0, so the weighted Gram is exactly singular at ridge 0.0 and the
    // ladder must recover the solve.
    let data = fixture_data();
    let explainer = LimeExplainer::fit(&data);
    let model = |x: &[f64]| clean_model(x);
    let config = LimeConfig {
        n_samples: 64,
        kernel_width: Some(1e-300),
        ridge: 0.0,
        max_features: None,
    };
    let exp = explainer.try_explain(&model, data.row(0), config, 0).expect("ladder recovers");
    assert!(exp.degraded, "escalated surrogate solve must be flagged");
    assert!(exp.attribution.values.iter().all(|p| p.is_finite()));
}

#[test]
fn clean_lime_try_twin_matches_and_is_not_degraded() {
    let data = fixture_data();
    let explainer = LimeExplainer::fit(&data);
    let model = |x: &[f64]| clean_model(x);
    let plain = explainer.explain(&model, data.row(0), LimeConfig::default(), 3);
    let tried = explainer.try_explain(&model, data.row(0), LimeConfig::default(), 3).unwrap();
    assert_eq!(plain.attribution.values, tried.attribution.values);
    assert!(!tried.degraded);
}

#[test]
fn pdp_validates_inputs_and_types_model_faults() {
    let data = fixture_data();
    let model = |x: &[f64]| clean_model(x);

    let err = try_partial_dependence(&model, &data, 0, &[0.0, f64::NAN], 40, false).unwrap_err();
    assert!(matches!(err, XaiError::NonFiniteInput { .. }), "{err}");

    let nan_model = |_x: &[f64]| f64::NAN;
    let err = try_partial_dependence(&nan_model, &data, 0, &[0.0, 1.0], 40, false).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");

    let panic_model = |_m: &Matrix| -> Vec<f64> { panic!("injected PDP model fault") };
    let err =
        try_partial_dependence_batched(&panic_model, &data, 0, &[0.0, 1.0], 40, true).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");

    // Clean twin agreement.
    let plain = partial_dependence(&model, &data, 0, &[0.0, 0.5, 1.0], 40, true);
    let tried = try_partial_dependence(&model, &data, 0, &[0.0, 0.5, 1.0], 40, true).unwrap();
    assert_eq!(plain.pdp, tried.pdp);
    assert_eq!(plain.ice, tried.ice);
}

// ---------------------------------------------------------------------------
// Counterfactuals
// ---------------------------------------------------------------------------

#[test]
fn wachter_reports_non_convergence_and_model_faults() {
    let data = fixture_data();
    let instance = data.row(0);

    let err =
        try_wachter_counterfactual(&StuckModel(0.2), &data, instance, WachterConfig::default())
            .unwrap_err();
    assert!(matches!(err, XaiError::ConvergenceFailure { .. }), "{err}");

    let err =
        try_wachter_counterfactual(&ExplodingModel, &data, instance, WachterConfig::default())
            .unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");

    let err = try_wachter_counterfactual(
        &StuckModel(f64::NAN),
        &data,
        instance,
        WachterConfig::default(),
    )
    .unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");
}

#[test]
fn geco_certifies_its_search() {
    let data = fixture_data();
    let instance = data.row(0);
    let plaf = Plaf::from_schema(&data);
    let config = GecoConfig { population: 16, generations: 4, ..GecoConfig::default() };

    // A model stuck on one side of the boundary can never produce a valid
    // counterfactual: certified non-convergence, not a silent None.
    let stuck = |_x: &[f64]| 0.2;
    let err = try_geco(&stuck, &data, instance, &plaf, config, 0).unwrap_err();
    assert!(matches!(err, XaiError::ConvergenceFailure { .. }), "{err}");

    let panicky = |_x: &[f64]| -> f64 { panic!("injected GeCo model fault") };
    let err = try_geco(&panicky, &data, instance, &plaf, config, 0).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");

    // In the multi-start parallel driver the same panic is a worker panic.
    let panicky = |_x: &[f64]| -> f64 { panic!("injected GeCo model fault") };
    let err = try_geco_parallel(&panicky, &data, instance, &plaf, config, 0, 4, 2).unwrap_err();
    assert!(matches!(err, XaiError::WorkerPanic { .. }), "{err}");

    let err = try_geco(&stuck, &data, &[f64::NAN, 0.0], &plaf, config, 0).unwrap_err();
    assert!(matches!(err, XaiError::NonFiniteInput { .. }), "{err}");
}

#[test]
fn dice_certifies_its_search() {
    let data = fixture_data();
    let explainer = DiceExplainer::fit(&data);
    let instance = data.row(0);
    let config = DiceConfig { k: 2, iterations: 40, restarts: 2, ..DiceConfig::default() };

    let stuck = |_x: &[f64]| 0.2;
    let err = explainer.try_generate(&stuck, instance, config, 0).unwrap_err();
    assert!(matches!(err, XaiError::ConvergenceFailure { .. }), "{err}");

    let err = explainer.try_generate(&stuck, &[f64::NAN, 0.0], config, 0).unwrap_err();
    assert!(matches!(err, XaiError::NonFiniteInput { .. }), "{err}");

    // A healthy model produces a certified-finite set through both paths.
    let model = |x: &[f64]| clean_model(x);
    let cfs = explainer.try_generate(&model, instance, config, 0).unwrap();
    assert!(!cfs.is_empty());
    assert!(cfs.iter().all(|c| c.counterfactual.iter().all(|v| v.is_finite())));
    let par = explainer.try_generate_parallel(&model, instance, config, 0, 2).unwrap();
    assert!(!par.is_empty());
}

// ---------------------------------------------------------------------------
// Data valuation
// ---------------------------------------------------------------------------

#[test]
fn loo_typed_errors_and_parallel_bit_identity() {
    let nan_u = FnUtility::new(6, |s: &[usize]| {
        if s.len() == 5 {
            f64::NAN
        } else {
            s.len() as f64
        }
    });
    let err = try_leave_one_out(&nan_u).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");
    let err = try_leave_one_out_parallel(&nan_u, 2).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");

    let panic_u = FnUtility::new(6, |s: &[usize]| {
        if s.contains(&3) && s.len() == 5 {
            panic!("injected utility fault");
        }
        s.len() as f64
    });
    let err = try_leave_one_out(&panic_u).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");
    let err = try_leave_one_out_parallel(&panic_u, 2).unwrap_err();
    assert!(matches!(err, XaiError::WorkerPanic { .. }), "{err}");

    // Fault-free: the try twin is bit-identical across worker counts.
    let u = FnUtility::new(20, |s: &[usize]| {
        s.iter().map(|&i| ((i * i) as f64).sqrt()).sum::<f64>().sin()
    });
    let plain = leave_one_out_parallel(&u, 1);
    for workers in [1, 2, 4] {
        let tried = try_leave_one_out_parallel(&u, workers).unwrap();
        assert_eq!(plain.values, tried.values, "workers={workers} diverged");
    }
}

#[test]
fn tmc_shapley_typed_errors_and_budgets() {
    // NaN on mid-size prefixes: endpoints pass, the walk check fires.
    let nan_u = FnUtility::new(6, |s: &[usize]| {
        if s.len() == 2 {
            f64::NAN
        } else {
            s.len() as f64
        }
    });
    let config = TmcConfig { permutations: 4, truncation_tolerance: 0.0, seed: 0 };
    let err = try_tmc_shapley(&nan_u, config).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");

    let panic_u = FnUtility::new(6, |s: &[usize]| {
        if s.len() == 2 {
            panic!("injected utility fault");
        }
        s.len() as f64
    });
    let err = try_tmc_shapley(&panic_u, config).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");

    // NaN endpoints are caught before any walk.
    let nan_full = FnUtility::new(6, |s: &[usize]| if s.len() == 6 { f64::NAN } else { 0.0 });
    let err = try_tmc_shapley(&nan_full, config).unwrap_err();
    assert!(err.to_string().contains("endpoint"), "{err}");

    // Budgets: a zero deadline fails, an eval cap returns a partial
    // estimate built from the walks that completed.
    let u = FnUtility::new(6, |s: &[usize]| s.len() as f64);
    let err = try_tmc_shapley_budgeted(
        &u,
        config,
        SampleBudget::with_deadline(std::time::Duration::ZERO),
    )
    .unwrap_err();
    assert!(matches!(err, XaiError::BudgetExceeded { completed: 0, .. }), "{err}");

    // 2 endpoint evals + one full walk of 6 exhausts an 8-eval budget.
    let partial =
        try_tmc_shapley_budgeted(&u, config, SampleBudget::with_max_evals(8)).unwrap();
    assert!(partial.attribution.values.iter().all(|v| v.is_finite()));
    assert_eq!(partial.utility_calls, 8);
}

#[test]
fn parallel_valuation_separates_panics_from_nan_and_stays_deterministic() {
    let config = TmcConfig { permutations: 32, truncation_tolerance: 0.0, seed: 5 };
    let panic_u = FnUtility::new(6, |s: &[usize]| {
        if s.len() == 3 {
            panic!("injected utility fault");
        }
        s.len() as f64
    });
    let err = try_tmc_shapley_parallel(&panic_u, config, 2).unwrap_err();
    assert!(matches!(err, XaiError::WorkerPanic { .. }), "{err}");

    let nan_u = FnUtility::new(6, |s: &[usize]| {
        if s.len() == 3 {
            f64::NAN
        } else {
            s.len() as f64
        }
    });
    let err = try_tmc_shapley_parallel(&nan_u, config, 2).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");

    let bz = BanzhafConfig { samples_per_point: 40, seed: 3 };
    let err = try_data_banzhaf(&nan_u, bz).unwrap_err();
    assert!(matches!(err, XaiError::ModelFault { .. }), "{err}");
    let err = try_data_banzhaf_parallel(&panic_u, bz, 2).unwrap_err();
    assert!(matches!(err, XaiError::WorkerPanic { .. }), "{err}");

    // Fault-free parallel twins are bit-identical across worker counts.
    let u = FnUtility::new(8, |s: &[usize]| {
        s.iter().map(|&i| (i + 1) as f64 * 0.1).sum::<f64>()
            + f64::from(s.contains(&1) && s.contains(&6)) * 0.4
    });
    let plain_tmc = tmc_shapley_parallel(&u, config, 1);
    let plain_bz = data_banzhaf_parallel(&u, bz, 1);
    for workers in [1, 2, 4] {
        let tried = try_tmc_shapley_parallel(&u, config, workers).unwrap();
        assert_eq!(plain_tmc.values, tried.values, "TMC workers={workers} diverged");
        let tried = try_data_banzhaf_parallel(&u, bz, workers).unwrap();
        assert_eq!(plain_bz.values, tried.values, "Banzhaf workers={workers} diverged");
    }
}

// ---------------------------------------------------------------------------
// Model fitting
// ---------------------------------------------------------------------------

#[test]
fn fitters_reject_bad_inputs_and_certify_non_convergence() {
    let data = fixture_data();

    let mut poisoned = data.x().clone();
    poisoned.row_mut(0)[1] = f64::NAN;
    let err = LogisticRegression::try_fit(&poisoned, data.y(), LogisticConfig::default())
        .unwrap_err();
    assert!(matches!(err, XaiError::NonFiniteInput { .. }), "{err}");

    let strict = LogisticConfig { max_iter: 1, tol: 1e-14, ..LogisticConfig::default() };
    let err = LogisticRegression::try_fit(data.x(), data.y(), strict).unwrap_err();
    assert!(matches!(err, XaiError::ConvergenceFailure { iterations: 1, .. }), "{err}");

    let err = Mlp::try_fit(&poisoned, data.y(), MlpConfig::default()).unwrap_err();
    assert!(matches!(err, XaiError::NonFiniteInput { .. }), "{err}");

    // An exploding learning rate diverges to non-finite weights; the
    // fallible fit withholds the garbage network.
    let hot = MlpConfig { learning_rate: 1e9, epochs: 10, ..MlpConfig::default() };
    match Mlp::try_fit(data.x(), data.y(), hot) {
        Err(XaiError::ConvergenceFailure { .. }) => {}
        Err(other) => panic!("wrong error: {other}"),
        // Bounded activations can survive even this; a returned model must
        // then be fully finite, which try_fit certifies.
        Ok(_) => {}
    }
}

#[test]
fn persistence_and_csv_io_errors_are_typed() {
    let err = xai::models::load_from_file::<LogisticRegression>("/nonexistent/model.json")
        .unwrap_err();
    assert!(matches!(err, XaiError::Io { .. }), "{err}");

    let data = fixture_data();
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let err = xai::models::save_to_file(&model, "/nonexistent/dir/model.json").unwrap_err();
    assert!(matches!(err, XaiError::Io { .. }), "{err}");

    let err: XaiError = xai::data::csv::load_csv_file(
        "/nonexistent/data.csv",
        "label",
        xai::data::Task::BinaryClassification,
    )
    .unwrap_err()
    .into();
    assert!(matches!(err, XaiError::Io { .. }), "{err}");
}

// ---------------------------------------------------------------------------
// Executor determinism under faults
// ---------------------------------------------------------------------------

#[test]
fn try_par_map_seeded_is_bit_identical_to_the_panicking_twin() {
    use xai_rand::Rng;
    let f = |i: usize, rng: &mut xai_rand::rngs::StdRng| rng.gen::<f64>() + i as f64;
    let reference: Vec<f64> = par_map_seeded(24, 42, 1, f);
    for workers in [1, 2, 4] {
        let plain = par_map_seeded(24, 42, workers, f);
        let tried = try_par_map_seeded(24, 42, workers, f).unwrap();
        assert_eq!(reference, plain, "plain workers={workers} diverged");
        assert_eq!(reference, tried, "try workers={workers} diverged");
    }
}

#[test]
fn lowest_indexed_panicking_task_wins_regardless_of_workers() {
    for workers in [1, 2, 4] {
        let err = try_par_map_seeded(16, 0, workers, |i, _rng| {
            if i == 3 || i == 11 {
                panic!("task {i} down");
            }
            i
        })
        .unwrap_err();
        assert_eq!(err.task, 3, "workers={workers} reported the wrong task");
        assert!(err.message.contains("task 3 down"), "workers={workers}: {}", err.message);
    }
}

#[test]
fn fault_free_parallel_explainers_are_worker_invariant() {
    // The acceptance bar for the whole error layer: on clean inputs the
    // try twins reproduce the plain parallel paths bit-for-bit at every
    // worker count.
    let config = KernelShapConfig::default();
    let ks_ref = kernel_shap_parallel(&FaultyGame::new(6, Fault::Clean), config, 1);
    let ps_ref = permutation_shapley_parallel(&FaultyGame::new(6, Fault::Clean), 32, 9, 1);
    for workers in [1, 2, 4] {
        let ks = try_kernel_shap_parallel(&FaultyGame::new(6, Fault::Clean), config, workers)
            .unwrap();
        assert_eq!(ks_ref.phi, ks.phi, "kernel workers={workers} diverged");
        let ps = try_permutation_shapley_parallel(
            &FaultyGame::new(6, Fault::Clean),
            32,
            9,
            workers,
        )
        .unwrap();
        assert_eq!(ps_ref.phi, ps.phi, "permutation workers={workers} diverged");
    }
}
