//! Integration tests for the extension waves: persistence, conditional
//! SHAP, Owen values, unlearning, ROAR, rule lists, CSV, and the JSON
//! round trip — exercised together as a user would.

use xai::core::parse_json;
use xai::data::{load_csv, Task};
use xai::models::Persist;
use xai::prelude::*;
use xai::provenance::LogisticUnlearner;

#[test]
fn persisted_model_explains_identically() {
    let data = xai::data::synth::german_credit(400, 7);
    let model = Gbdt::fit(data.x(), data.y(), GbdtConfig { n_rounds: 20, ..GbdtConfig::default() });
    let restored = Gbdt::load(&parse_json(&model.save().to_json()).unwrap()).unwrap();
    // TreeSHAP of the restored model is bit-identical.
    let names = data.schema().names();
    for i in 0..10 {
        let a = tree_shap_attribution(&model, data.row(i), &names);
        let b = tree_shap_attribution(&restored, data.row(i), &names);
        assert_eq!(a.values, b.values);
    }
}

#[test]
fn csv_to_counterfactual_pipeline() {
    let csv = "\
x0,x1,y
1.2,0.3,1
-0.8,1.1,0
2.1,-0.4,1
-1.5,0.9,0
0.9,0.2,1
-0.7,1.4,0
1.8,-0.1,1
-1.1,0.8,0
1.4,0.5,1
-0.9,1.2,0
1.1,0.1,1
-1.3,0.7,0
";
    let data = load_csv(csv, "y", Task::BinaryClassification).unwrap();
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let f = proba_fn(&model);
    let idx = (0..data.n_rows()).find(|&i| f(data.row(i)) < 0.5).unwrap();
    let dice = DiceExplainer::fit(&data);
    let cfs = dice.generate(&f, data.row(idx), DiceConfig { k: 1, ..DiceConfig::default() }, 3);
    assert!(!cfs.is_empty() && cfs[0].is_valid());
}

#[test]
fn unlearning_changes_downstream_explanations() {
    let mut train = xai::data::synth::linear_gaussian(400, &[3.0, 0.0], 0.0, 31);
    let flipped = xai::data::inject_label_noise(&mut train, 0.2, 9);
    let config = LogisticConfig { l2: 1e-2, ..LogisticConfig::default() };
    let mut unlearner = LogisticUnlearner::fit(&train, config);
    let x = [1.0, 0.0];
    let before = unlearner.model().proba_one(&x);
    unlearner.forget(&flipped);
    let after = unlearner.model().proba_one(&x);
    // Removing upward-flipped noise sharpens the signal feature.
    assert!(after > before, "{before} -> {after}");
    // The unlearned model matches a fresh retrain.
    let truth = unlearner.retrain_ground_truth();
    for (a, b) in unlearner.model().weights().iter().zip(truth.weights()) {
        assert!((a - b).abs() < 1e-2);
    }
}

#[test]
fn owen_and_interactions_agree_with_shapley_totals() {
    use xai::shapley::{exact_interactions, exact_shapley, owen_values, PredictionGame};
    let data = xai::data::synth::linear_gaussian(300, &[1.0, -2.0, 0.5, 0.0], 0.1, 41);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let f = proba_fn(&model);
    let background = data.x().select_rows(&(0..30).collect::<Vec<_>>());
    let instance = data.row(9);
    let game = PredictionGame::new(&f, instance, &background);
    let phi = exact_shapley(&game);

    // Interactions: rows sum to phi.
    let im = exact_interactions(&game);
    for i in 0..4 {
        let row: f64 = (0..4).map(|j| im.matrix[(i, j)]).sum();
        assert!((row - phi[i]).abs() < 1e-9);
    }
    // Owen with pairs: group totals partition the same total.
    let owen = owen_values(&game, &[vec![0, 1], vec![2, 3]], 800, 3);
    let grand = phi.iter().sum::<f64>();
    assert!((owen.group_values.iter().sum::<f64>() - grand).abs() < 1e-9);
}

#[test]
fn rule_list_and_decision_set_tell_consistent_stories() {
    use xai::rules::{RuleList, RuleListConfig};
    let data = xai::data::synth::german_credit(700, 51);
    let gbdt = Gbdt::fit(data.x(), data.y(), GbdtConfig { n_rounds: 30, ..GbdtConfig::default() });
    let preds = Classifier::predict(&gbdt, data.x());
    let list = RuleList::fit(&data, &preds, RuleListConfig::default());
    let set = DecisionSet::fit(&data, &preds, IdsConfig::default());
    // Both distillations agree with the model on a solid majority of rows.
    let agree = |p: &dyn Fn(&[f64]) -> f64| -> f64 {
        let hits = (0..data.n_rows())
            .filter(|&i| (p(data.row(i)) >= 0.5) == (preds[i] >= 0.5))
            .count();
        hits as f64 / data.n_rows() as f64
    };
    assert!(agree(&|r| list.predict_one(r)) > 0.65);
    assert!(agree(&|r| set.predict_one(r)) > 0.65);
}

#[test]
fn roar_validates_the_workspace_attributions() {
    use xai::surrogate::{random_ranking, roar_curve};
    let train = xai::data::synth::linear_gaussian(700, &[2.5, -2.0, 0.0, 0.0], 0.0, 61);
    let test = xai::data::synth::linear_gaussian(400, &[2.5, -2.0, 0.0, 0.0], 0.0, 62);
    let model = Gbdt::fit(train.x(), train.y(), GbdtConfig { n_rounds: 30, ..GbdtConfig::default() });
    let gi = xai::shapley::gbdt_global_importance(&model, &train, 100);
    let cfg = LogisticConfig::default();
    let shap = roar_curve(&train, &test, &gi.ranking(), 4, cfg);
    let anti: Vec<usize> = gi.ranking().into_iter().rev().collect();
    let anti_curve = roar_curve(&train, &test, &anti, 4, cfg);
    assert!(
        shap.auc() < anti_curve.auc(),
        "informed {} vs anti-informed {}",
        shap.auc(),
        anti_curve.auc()
    );
    let _ = random_ranking(4, 1);
}
