//! Fault injection for the cluster transport (DESIGN.md §13): every
//! failure class a daemon can exhibit — connection refused, process
//! killed mid-stream, hung socket, garbage frames, partial writes,
//! worker panics — must terminate in bounded time with either a
//! successful re-dispatch (bit-identical bytes) or a *typed* `XaiError`
//! that names the failure class. Never a hang, never a wrong byte.
//!
//! Daemon-side faults are injected with `XAI_TRANSPORT_FAULT`
//! (`mode[:N]` faults the first `N` connections, then behaves); refused
//! connections use a loopback port with no listener. Everything is
//! offline and self-contained.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use xai::models::Persist;
use xai::prelude::*;
use xai::transport::DaemonHandle;
use xai_core::IoKind;

fn worker_exe() -> &'static str {
    env!("CARGO_BIN_EXE_xai-shard-worker")
}

/// A loopback address that refuses connections: bind an ephemeral port,
/// then drop the listener.
fn refused_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    listener.local_addr().expect("local addr").to_string()
}

/// A daemon with the given `XAI_TRANSPORT_FAULT` spec ("" for healthy).
fn daemon(fault: &str) -> DaemonHandle {
    let envs: Vec<(&str, &str)> =
        if fault.is_empty() { vec![] } else { vec![("XAI_TRANSPORT_FAULT", fault)] };
    DaemonHandle::spawn(worker_exe(), &envs).expect("spawn daemon")
}

/// A small fixture + request so fault tests spend their time in the
/// transport, not the estimator.
fn fixture() -> (Dataset, LogisticRegression) {
    let data = xai::data::synth::german_credit(12, 5);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    (data, model)
}

/// A config tuned for fast fault detection: short deadlines, quick
/// retries, no fallback unless the test opts in.
fn fast_config(endpoints: Vec<String>) -> ClusterConfig {
    let mut config = ClusterConfig::new(endpoints);
    config.connect_timeout = Duration::from_millis(1500);
    config.io_timeout = Duration::from_millis(1500);
    config.retry = RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(100),
        jitter_seed: 0,
    };
    config.fallback = FallbackPolicy::Fail;
    config
}

/// Runs leave-one-out over the cluster and returns (outcome, reference
/// bytes) — LOO is deterministic and cheap, so every fault test can
/// assert exact bytes.
fn run_loo(
    runner: &ClusterRunner,
    data: &Dataset,
    model: &LogisticRegression,
    n_shards: usize,
) -> XaiResult<(String, bool)> {
    let req = ExplainRequest::new(data).plan(RunConfig::seeded(19).with_workers(2));
    let reference = LooMethod.explain(model, &req).unwrap().to_json_string();
    let outcome = runner.explain(&LooMethod, model, &req, model.save(), n_shards)?;
    assert_eq!(
        outcome.explanation.to_json_string(),
        reference,
        "fault recovery changed the bytes"
    );
    Ok((reference, outcome.degraded))
}

#[test]
fn refused_endpoint_reroutes_to_the_survivor() {
    let (data, model) = fixture();
    let live = daemon("");
    let runner =
        ClusterRunner::new(fast_config(vec![refused_addr(), live.addr().to_string()]))
            .unwrap();
    let (_bytes, degraded) = run_loo(&runner, &data, &model, 4).expect("survivor must carry");
    assert!(!degraded);
    let stats = runner.stats();
    assert!(stats.transport_failures >= 1, "the refused endpoint was never touched: {stats:?}");
}

#[test]
fn all_refused_is_a_typed_refusal_in_bounded_time() {
    let (data, model) = fixture();
    let runner =
        ClusterRunner::new(fast_config(vec![refused_addr(), refused_addr()])).unwrap();
    let started = Instant::now();
    let err = run_loo(&runner, &data, &model, 2).expect_err("nothing was listening");
    assert!(
        matches!(err, XaiError::Io { kind: IoKind::Refused, .. }),
        "wanted a typed refusal, got {err:?}"
    );
    assert!(started.elapsed() < Duration::from_secs(30), "took {:?}", started.elapsed());
}

#[test]
fn all_refused_degrades_to_in_process_with_identical_bytes() {
    let (data, model) = fixture();
    let mut config = fast_config(vec![refused_addr(), refused_addr()]);
    config.fallback = FallbackPolicy::InProcess;
    let runner = ClusterRunner::new(config).unwrap();
    // run_loo asserts the bytes against the unsharded reference; the
    // fallback must be marked.
    let (_bytes, degraded) = run_loo(&runner, &data, &model, 4).expect("fallback must carry");
    assert!(degraded, "in-process fallback must set the degraded marker");
    assert!(runner.stats().degraded);
}

#[test]
fn killed_daemon_reroutes_to_the_survivor() {
    let (data, model) = fixture();
    let doomed = daemon("kill");
    let live = daemon("");
    let runner = ClusterRunner::new(fast_config(vec![
        doomed.addr().to_string(),
        live.addr().to_string(),
    ]))
    .unwrap();
    let (_bytes, degraded) = run_loo(&runner, &data, &model, 4).expect("survivor must carry");
    assert!(!degraded);
    assert!(runner.stats().transport_failures >= 1);
}

#[test]
fn hung_daemon_times_out_and_redispatches() {
    let (data, model) = fixture();
    let stuck = daemon("hang");
    let live = daemon("");
    let runner = ClusterRunner::new(fast_config(vec![
        stuck.addr().to_string(),
        live.addr().to_string(),
    ]))
    .unwrap();
    let started = Instant::now();
    let (_bytes, degraded) = run_loo(&runner, &data, &model, 2).expect("survivor must carry");
    assert!(!degraded);
    assert!(runner.stats().transport_failures >= 1, "the hang was never noticed");
    assert!(started.elapsed() < Duration::from_secs(30), "took {:?}", started.elapsed());
}

#[test]
fn all_hung_is_a_typed_deadline_in_bounded_time() {
    let (data, model) = fixture();
    let a = daemon("hang");
    let b = daemon("hang");
    let mut config = fast_config(vec![a.addr().to_string(), b.addr().to_string()]);
    config.retry.max_attempts = 2;
    let runner = ClusterRunner::new(config).unwrap();
    let started = Instant::now();
    let err = run_loo(&runner, &data, &model, 2).expect_err("every worker hung");
    assert!(
        matches!(err, XaiError::BudgetExceeded { .. }),
        "a blown response deadline must be BudgetExceeded, got {err:?}"
    );
    assert!(started.elapsed() < Duration::from_secs(60), "took {:?}", started.elapsed());
}

#[test]
fn one_garbage_frame_is_retried_to_success() {
    let (data, model) = fixture();
    let flaky = daemon("garbage:1");
    let runner = ClusterRunner::new(fast_config(vec![flaky.addr().to_string()])).unwrap();
    let (_bytes, degraded) = run_loo(&runner, &data, &model, 2).expect("retry must succeed");
    assert!(!degraded);
    let stats = runner.stats();
    assert!(stats.retries >= 1, "the garbage frame was never retried: {stats:?}");
    assert!(stats.transport_failures >= 1);
}

#[test]
fn persistent_garbage_is_a_typed_parse_error() {
    let (data, model) = fixture();
    let liar = daemon("garbage");
    let runner = ClusterRunner::new(fast_config(vec![liar.addr().to_string()])).unwrap();
    let err = run_loo(&runner, &data, &model, 2).expect_err("the daemon only lies");
    assert!(
        matches!(err, XaiError::Parse { .. }),
        "garbage frames must be Parse errors, got {err:?}"
    );
}

#[test]
fn one_partial_write_is_retried_to_success() {
    let (data, model) = fixture();
    let flaky = daemon("partial:1");
    let runner = ClusterRunner::new(fast_config(vec![flaky.addr().to_string()])).unwrap();
    let (_bytes, degraded) = run_loo(&runner, &data, &model, 2).expect("retry must succeed");
    assert!(!degraded);
    assert!(runner.stats().transport_failures >= 1);
}

#[test]
fn persistent_partial_writes_are_short_reads() {
    let (data, model) = fixture();
    let truncator = daemon("partial");
    let runner = ClusterRunner::new(fast_config(vec![truncator.addr().to_string()])).unwrap();
    let err = run_loo(&runner, &data, &model, 2).expect_err("every frame is truncated");
    assert!(
        matches!(
            err,
            XaiError::Io { kind: IoKind::ShortRead, .. }
                | XaiError::Io { kind: IoKind::Reset, .. }
        ),
        "a truncated frame must be a short read (or reset at the cut), got {err:?}"
    );
}

#[test]
fn breaker_trips_open_and_shortcircuits_dead_endpoints() {
    let (data, model) = fixture();
    let mut config = fast_config(vec![refused_addr()]);
    config.breaker_threshold = 2;
    config.breaker_cooldown = Duration::from_secs(300); // no half-open during the test
    config.retry.max_attempts = 5;
    let runner = ClusterRunner::new(config).unwrap();
    let err = run_loo(&runner, &data, &model, 3).expect_err("nothing was listening");
    assert!(matches!(err, XaiError::Io { .. }), "{err:?}");
    let health = runner.health();
    assert_eq!(health[0].state, xai::transport::BreakerState::Open, "{health:?}");
    assert!(health[0].trips >= 1);
    // Once open, attempts are short-circuited before touching the socket:
    // far fewer real failures than shards × attempts.
    assert!(
        health[0].failures < 3 * 5,
        "breaker did not short-circuit: {} socket-level failures",
        health[0].failures
    );
}

#[test]
fn hedging_rescues_a_straggler() {
    let (data, model) = fixture();
    let stuck = daemon("hang");
    let live = daemon("");
    let mut config =
        ClusterConfig::new([stuck.addr().to_string(), live.addr().to_string()]);
    config.connect_timeout = Duration::from_secs(2);
    config.io_timeout = Duration::from_secs(30);
    config.retry.max_attempts = 1; // the hedge, not a retry, must save the run
    config.hedge_after = Some(Duration::from_millis(300));
    config.fallback = FallbackPolicy::Fail;
    let runner = ClusterRunner::new(config).unwrap();
    // One shard: its primary is the hung endpoint, the hedge goes to the
    // healthy one.
    let started = Instant::now();
    let (_bytes, degraded) = run_loo(&runner, &data, &model, 1).expect("the hedge must win");
    assert!(!degraded);
    let stats = runner.stats();
    assert!(stats.hedges >= 1, "no hedge was launched: {stats:?}");
    assert!(stats.hedge_wins >= 1, "the hedge never won: {stats:?}");
    assert_eq!(stats.retries, 0, "hedging must not consume retry budget: {stats:?}");
    assert!(started.elapsed() < Duration::from_secs(20), "took {:?}", started.elapsed());
}

#[test]
fn worker_panic_is_typed_never_retried_and_never_fallen_back() {
    let (data, model) = fixture();
    let poisoned = daemon("panic");
    let mut config = fast_config(vec![poisoned.addr().to_string()]);
    // Even a permissive fallback policy must NOT mask an execution
    // error: the panic is a property of the shard, not the transport.
    config.fallback = FallbackPolicy::InProcess;
    let runner = ClusterRunner::new(config).unwrap();
    let err = run_loo(&runner, &data, &model, 2).expect_err("the worker panics");
    match err {
        XaiError::WorkerPanic { task, message } => {
            assert_eq!(task, 0, "the lowest-indexed failing shard must win");
            assert!(message.contains("injected"), "panic message lost: {message}");
        }
        other => panic!("a worker panic must stay WorkerPanic, got {other:?}"),
    }
    let stats = runner.stats();
    assert_eq!(stats.retries, 0, "execution errors must not be retried: {stats:?}");
    assert!(!stats.degraded, "execution errors must not trigger fallback: {stats:?}");
}
