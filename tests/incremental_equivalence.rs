//! Incremental-engine equivalence harness.
//!
//! The incremental-training utility engine is a *performance* feature: it
//! must change wall-clock time and nothing else the estimators can
//! observe. This suite pins that contract with a **checking utility** — a
//! wrapper that evaluates every subset through both the
//! retrain-from-scratch path and the incremental path and asserts they
//! agree to ≤ 1e-8 *on every visited subset*, not just on the final
//! attribution — across LOO, TMC Shapley, and Banzhaf drivers, at multiple
//! seeds and worker counts.
// The legacy twin entry points stay under test until removal: this file
// is their bit-identity oracle against the unified layer.
#![allow(deprecated)]

use xai_data::synth::linear_gaussian;
use xai_data::Dataset;
use xai_datavalue::{
    data_banzhaf, data_banzhaf_incremental, data_banzhaf_parallel, leave_one_out,
    leave_one_out_incremental, leave_one_out_parallel, tmc_shapley, tmc_shapley_incremental,
    tmc_shapley_parallel, BanzhafConfig, FnUtility, IncrementalUtility, LogisticUtility,
    RidgeUtility, RidgeValuationModel, TmcConfig, Utility, WarmLogisticModel,
};
use xai_models::LogisticConfig;

const TOL: f64 = 1e-8;
const LAMBDA: f64 = 1e-3;

fn ridge_data(n: usize, seed: u64) -> (Dataset, Dataset) {
    let train = linear_gaussian(n, &[2.0, -1.0, 0.5], 0.0, seed);
    let test = linear_gaussian(60, &[2.0, -1.0, 0.5], 0.0, seed + 1000);
    (train, test)
}

/// Wraps a scratch/incremental pair so that *every* evaluation any driver
/// issues is cross-checked to the tolerance before being returned.
fn checking<'a>(
    scratch: &'a RidgeUtility<'a>,
    inc: &'a IncrementalUtility<RidgeValuationModel<'a>>,
) -> FnUtility<impl Fn(&[usize]) -> f64 + 'a> {
    FnUtility::new(scratch.n_train(), move |s: &[usize]| {
        let a = scratch.eval(s);
        let b = inc.eval(s);
        assert!(
            (a - b).abs() <= TOL,
            "subset of size {}: scratch {a} vs incremental {b} (diff {})",
            s.len(),
            (a - b).abs()
        );
        b
    })
}

#[test]
fn every_visited_subset_agrees_across_loo_tmc_and_banzhaf_at_multiple_seeds() {
    for seed in [1u64, 9, 33] {
        let (train, test) = ridge_data(24, seed);
        let scratch = RidgeUtility::new(&train, &test, LAMBDA);
        let inc = IncrementalUtility::new(RidgeValuationModel::new(&train, &test, LAMBDA));
        let check = checking(&scratch, &inc);

        let loo = leave_one_out(&check);
        assert_eq!(loo.values.len(), 24);

        for tmc_seed in [seed, seed + 7] {
            let cfg = TmcConfig { permutations: 6, truncation_tolerance: 0.0, seed: tmc_seed };
            let r = tmc_shapley(&check, cfg);
            assert!(r.utility_calls > 0);
        }

        let bz = data_banzhaf(&check, BanzhafConfig { samples_per_point: 5, seed: seed + 2 });
        assert_eq!(bz.values.len(), 24);

        let stats = inc.stats();
        assert!(stats.evals > 24, "the harness must actually exercise the engine: {stats:?}");
        assert!(
            stats.adds + stats.removes > stats.rebuilds,
            "delta path must carry most of the load: {stats:?}"
        );
    }
}

#[test]
fn parallel_drivers_hold_the_per_subset_bound_at_every_worker_count() {
    let (train, test) = ridge_data(20, 5);
    let scratch = RidgeUtility::new(&train, &test, LAMBDA);
    // Scratch baselines are worker-invariant, so compute them once.
    let cfg = TmcConfig { permutations: 8, truncation_tolerance: 0.0, seed: 17 };
    let bz_cfg = BanzhafConfig { samples_per_point: 4, seed: 19 };
    let tmc_base = tmc_shapley_parallel(&scratch, cfg, 1);
    let bz_base = data_banzhaf_parallel(&scratch, bz_cfg, 1);
    let loo_base = leave_one_out(&scratch);

    for workers in [1usize, 2, 4] {
        let inc = IncrementalUtility::new(RidgeValuationModel::new(&train, &test, LAMBDA));
        let check = checking(&scratch, &inc);

        // The checking utility asserts the ≤1e-8 bound inside the worker
        // threads; the aggregate must then track the scratch baseline to
        // the accumulated tolerance.
        let tmc = tmc_shapley_parallel(&check, cfg, workers);
        for (a, b) in tmc.values.iter().zip(&tmc_base.values) {
            assert!((a - b).abs() < 1e-6, "workers={workers}: TMC {a} vs {b}");
        }
        let bz = data_banzhaf_parallel(&check, bz_cfg, workers);
        for (a, b) in bz.values.iter().zip(&bz_base.values) {
            assert!((a - b).abs() < 1e-6, "workers={workers}: Banzhaf {a} vs {b}");
        }
        let loo = leave_one_out_parallel(&check, workers);
        for (a, b) in loo.values.iter().zip(&loo_base.values) {
            assert!((a - b).abs() < 1e-6, "workers={workers}: LOO {a} vs {b}");
        }
    }
}

#[test]
fn incremental_drivers_match_their_scratch_counterparts_end_to_end() {
    let (train, test) = ridge_data(18, 3);
    let scratch = RidgeUtility::new(&train, &test, LAMBDA);

    let inc = IncrementalUtility::new(RidgeValuationModel::new(&train, &test, LAMBDA));
    let a = leave_one_out(&scratch);
    let b = leave_one_out_incremental(&inc);
    for (x, y) in a.values.iter().zip(&b.values) {
        assert!((x - y).abs() <= 2.0 * TOL, "LOO: {x} vs {y}");
    }

    let cfg = TmcConfig { permutations: 10, truncation_tolerance: 0.0, seed: 4 };
    let inc = IncrementalUtility::new(RidgeValuationModel::new(&train, &test, LAMBDA));
    let a = tmc_shapley(&scratch, cfg);
    let b = tmc_shapley_incremental(&inc, cfg);
    assert_eq!(a.utility_calls, b.utility_calls, "same walks, same call count");
    for (x, y) in a.attribution.values.iter().zip(&b.attribution.values) {
        assert!((x - y).abs() < 1e-6, "TMC: {x} vs {y}");
    }

    let bz_cfg = BanzhafConfig { samples_per_point: 6, seed: 11 };
    let inc = IncrementalUtility::new(RidgeValuationModel::new(&train, &test, LAMBDA));
    let a = data_banzhaf(&scratch, bz_cfg);
    let b = data_banzhaf_incremental(&inc, bz_cfg);
    for (x, y) in a.values.iter().zip(&b.values) {
        assert!((x - y).abs() < 1e-6, "Banzhaf: {x} vs {y}");
    }
    // n ≤ 64, so the driver layers the memo cache: the engine only ever
    // sees cache misses, bounded by the number of *distinct* coalitions.
    // On a 6-point set 360 driver queries can hit at most 2⁶ subsets, so
    // repeats are guaranteed and the engine must see far fewer evals.
    let (small_train, small_test) = ridge_data(6, 23);
    let inc = IncrementalUtility::new(RidgeValuationModel::new(&small_train, &small_test, LAMBDA));
    let dense_cfg = BanzhafConfig { samples_per_point: 30, seed: 29 };
    data_banzhaf_incremental(&inc, dense_cfg);
    let queries = 2 * 30 * 6;
    let stats = inc.stats();
    assert!(
        stats.evals <= 64 && stats.evals < queries,
        "memo cache must absorb repeat coalitions: {} of {queries}",
        stats.evals
    );
}

#[test]
fn warm_logistic_engine_matches_scratch_logistic_across_drivers() {
    let train = linear_gaussian(22, &[2.0, -1.0], 0.0, 71);
    let test = linear_gaussian(100, &[2.0, -1.0], 0.0, 72);
    let config = LogisticConfig { l2: 1e-2, ..LogisticConfig::default() };
    let scratch = LogisticUtility::new(&train, &test, config);

    for seed in [2u64, 13] {
        let inc = IncrementalUtility::new(WarmLogisticModel::new(&train, &test, config));
        let check = FnUtility::new(scratch.n_train(), |s: &[usize]| {
            let a = scratch.eval(s);
            let b = inc.eval(s);
            // Both paths Newton-converge to the same optimum (or the warm
            // path certifies failure and refits cold), so the accuracy —
            // a step function of the weights — must agree exactly.
            assert!((a - b).abs() < 1e-9, "size {}: scratch {a} vs warm {b}", s.len());
            b
        });
        let cfg = TmcConfig { permutations: 4, truncation_tolerance: 0.0, seed };
        tmc_shapley(&check, cfg);
        leave_one_out(&check);
        let (warm, cold) = inc.inspect(|m| (m.warm_fits(), m.cold_refits()));
        assert!(
            warm > cold,
            "warm starts must dominate over certified fallbacks: warm={warm} cold={cold}"
        );
    }
}
