//! Golden-file serde suite for the serving wire format (DESIGN.md §10).
//!
//! The fixtures under `tests/fixtures/` are checked-in bytes: the
//! canonical `ServeRequest` form is pinned exactly (a formatting change
//! is a cache-key change and must show up in review), every
//! `Explanation` kind round-trips byte-for-byte through its fixture,
//! and each malformed fixture maps to its typed error.
//!
//! Regenerate the canonical fixtures after an intentional wire change:
//!
//! ```sh
//! XAI_REGEN_GOLDEN=1 cargo test --test serve_golden -- --test-threads=1
//! ```
//!
//! (single-threaded so the rewrite lands before the pinning tests read).

use std::path::{Path, PathBuf};
use std::time::Duration;

use xai::core::{Condition, CurveExplanation, Op};
use xai::prelude::*;

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(format!("{name}.json"))
}

fn read_fixture(name: &str) -> String {
    let path = fixture_path(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}; regenerate with \
             XAI_REGEN_GOLDEN=1 cargo test --test serve_golden -- --test-threads=1",
            path.display()
        )
    });
    text.trim_end().to_string()
}

/// The fully-populated request the canonical fixture pins.
fn golden_request() -> ServeRequest {
    ServeRequest::new("Kernel SHAP", "credit")
        .with_instance(&[1.5, -2.0, 0.25])
        .with_feature(1)
        .with_plan(RunConfig {
            seed: 7,
            workers: 2,
            batched: true,
            budget: SampleBudget {
                max_evals: Some(500),
                max_duration: Some(Duration::from_millis(250)),
            },
            degradation: DegradationPolicy::Strict,
            backend: BackendChoice::Local,
        })
}

/// One golden instance of every `Explanation` kind, with values chosen
/// to be exactly representable so the fixtures are stable bytes.
fn golden_explanations() -> Vec<(&'static str, Explanation)> {
    vec![
        (
            "explanation_attribution",
            Explanation::Attribution(FeatureAttribution::new(
                vec!["age".into(), "income".into()],
                vec![0.25, -0.5],
                0.5,
                0.25,
            )),
        ),
        (
            "explanation_rules",
            Explanation::Rules(vec![RuleExplanation {
                conditions: vec![
                    Condition { feature: 0, feature_name: "age".into(), op: Op::Le, value: 40.0 },
                    Condition {
                        feature: 3,
                        feature_name: "savings".into(),
                        op: Op::Gt,
                        value: 2.5,
                    },
                ],
                prediction: 1.0,
                precision: 0.96875,
                coverage: 0.125,
            }]),
        ),
        (
            "explanation_counterfactuals",
            Explanation::Counterfactuals(vec![Counterfactual {
                original: vec![1.0, 2.0, 3.0],
                counterfactual: vec![1.0, 3.5, 3.0],
                original_output: 0.25,
                counterfactual_output: 0.75,
                changed_features: vec![1],
                distance: 1.5,
            }]),
        ),
        (
            "explanation_valuation",
            Explanation::DataValuation(DataAttribution {
                values: vec![0.5, -0.25, 0.125],
                measure: "leave-one-out".into(),
            }),
        ),
        (
            "explanation_curve",
            Explanation::Curve(CurveExplanation {
                feature: 1,
                grid: vec![0.0, 0.5, 1.0],
                values: vec![0.25, 0.5, 0.75],
                ice: Some(vec![vec![0.0, 0.5, 1.0], vec![0.5, 0.5, 0.5]]),
            }),
        ),
    ]
}

/// A sparse hand-written request: only the required fields on the wire.
const SPARSE_REQUEST: (&str, &str) = ("serve_request_sparse", r#"{"method": "LIME", "model": "credit"}"#);

/// Malformed requests that must parse to `XaiError::Parse`.
const MALFORMED_PARSE: &[(&str, &str)] = &[
    ("bad_unknown_field", r#"{"method": "LIME", "model": "credit", "surprise": 1}"#),
    ("bad_workers_zero", r#"{"method": "LIME", "model": "credit", "plan": {"workers": 0}}"#),
    ("bad_seed_overflow", r#"{"method": "LIME", "model": "credit", "plan": {"seed": 1e300}}"#),
    ("bad_method_type", r#"{"method": 42, "model": "credit"}"#),
];

/// A request whose instance overflows f64 decimal parsing (`1e999` is
/// +Inf) — the typed error is `NonFiniteInput`, not `Parse`.
const NON_FINITE_REQUEST: (&str, &str) =
    ("bad_non_finite_instance", r#"{"method": "LIME", "model": "credit", "instance": [1.0, 1e999]}"#);

/// Malformed explanation payloads that must parse to `XaiError::Parse`.
const MALFORMED_EXPLANATIONS: &[(&str, &str)] = &[
    ("bad_explanation_kind", r#"{"kind": "sorcery"}"#),
    (
        "bad_attribution_arity",
        r#"{"kind": "feature_attribution", "feature_names": ["a", "b"], "values": [1.0, 2.0, 3.0], "baseline": 0.0, "prediction": 0.0}"#,
    ),
];

#[test]
fn regenerate_fixtures_when_asked() {
    if std::env::var_os("XAI_REGEN_GOLDEN").is_none() {
        return;
    }
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::create_dir_all(&dir).unwrap();
    let mut files: Vec<(&str, String)> =
        vec![("serve_request_full", golden_request().to_json_string())];
    for (name, explanation) in golden_explanations() {
        files.push((name, explanation.to_json_string()));
    }
    for (name, text) in [SPARSE_REQUEST, NON_FINITE_REQUEST]
        .iter()
        .chain(MALFORMED_PARSE)
        .chain(MALFORMED_EXPLANATIONS)
    {
        files.push((name, (*text).to_string()));
    }
    for (name, text) in files {
        std::fs::write(fixture_path(name), text + "\n").unwrap();
    }
}

#[test]
fn canonical_request_bytes_are_pinned() {
    let fixture = read_fixture("serve_request_full");
    assert_eq!(
        golden_request().to_json_string(),
        fixture,
        "the canonical wire form changed — cache keys changed with it; \
         regenerate the fixture only if the change is intentional"
    );
}

#[test]
fn canonical_request_fixture_parses_back_losslessly() {
    let fixture = read_fixture("serve_request_full");
    let parsed = ServeRequest::from_json_str(&fixture).unwrap();
    assert_eq!(parsed, golden_request());
    assert_eq!(parsed.canonical_hash(), golden_request().canonical_hash());
}

#[test]
fn sparse_request_fixture_defaults_and_hashes_canonically() {
    let parsed = ServeRequest::from_json_str(&read_fixture(SPARSE_REQUEST.0)).unwrap();
    let canonical = ServeRequest::new("LIME", "credit");
    assert_eq!(parsed, canonical);
    assert_eq!(parsed.canonical_hash(), canonical.canonical_hash());
    assert_eq!(parsed.plan, RunConfig::default());
}

#[test]
fn every_explanation_kind_round_trips_through_its_fixture_byte_exactly() {
    for (name, explanation) in golden_explanations() {
        let fixture = read_fixture(name);
        assert_eq!(explanation.to_json_string(), fixture, "{name}: serialization drifted");
        let parsed = Explanation::from_json_str(&fixture).unwrap();
        assert_eq!(parsed.to_json_string(), fixture, "{name}: round-trip is not byte-exact");
    }
}

#[test]
fn malformed_request_fixtures_map_to_typed_errors() {
    for (name, _) in MALFORMED_PARSE {
        match ServeRequest::from_json_str(&read_fixture(name)) {
            Err(XaiError::Parse { .. }) => {}
            other => panic!("{name}: expected Parse, got {other:?}"),
        }
    }
    match ServeRequest::from_json_str(&read_fixture(NON_FINITE_REQUEST.0)) {
        Err(XaiError::NonFiniteInput { .. }) => {}
        other => panic!("non-finite instance: expected NonFiniteInput, got {other:?}"),
    }
}

#[test]
fn malformed_explanation_fixtures_map_to_typed_errors() {
    for (name, _) in MALFORMED_EXPLANATIONS {
        match Explanation::from_json_str(&read_fixture(name)) {
            Err(XaiError::Parse { .. }) => {}
            other => panic!("{name}: expected Parse, got {other:?}"),
        }
    }
}
