//! The execution-backend equivalence matrix (DESIGN.md §14): every
//! shardable method × backends {Local, ProcessPool, Cluster} × shard
//! counts {1, 2, 4}, byte-compared against the direct
//! `Explainer::explain` run at the same seed — one contract, three
//! substrates, zero byte drift. On top of the matrix: serve-path
//! requests routed through each backend match serve-local bytes, a
//! dead-cluster fault schedule degrades in-process with the `degraded`
//! marker set and identical bytes, cluster runs reuse endpoint sessions
//! (connection-count instrumentation), and shard-cache hits show up in
//! both `ClusterStats` and `ServeStats`.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use xai::datavalue::BanzhafConfig;
use xai::models::Persist;
use xai::prelude::*;
use xai::serve::{register_persist, workspace_service};
use xai::transport::DaemonHandle;
use xai_rules::AnchorsConfig;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn worker_exe() -> &'static str {
    env!("CARGO_BIN_EXE_xai-shard-worker")
}

fn spawn_daemons(n: usize) -> Vec<DaemonHandle> {
    (0..n).map(|_| DaemonHandle::spawn(worker_exe(), &[]).expect("spawn daemon")).collect()
}

/// A fail-fast cluster config over live daemons: any transport problem
/// fails the test loudly instead of silently degrading.
fn cluster_config(daemons: &[DaemonHandle]) -> ClusterConfig {
    let mut config = ClusterConfig::new(daemons.iter().map(|d| d.addr().to_string()));
    config.connect_timeout = Duration::from_secs(5);
    config.io_timeout = Duration::from_secs(120);
    config.hedge_after = None;
    config.fallback = FallbackPolicy::Fail;
    config
}

/// A loopback address that refuses connections: bind an ephemeral port,
/// then drop the listener.
fn refused_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    listener.local_addr().expect("local addr").to_string()
}

/// A classification fixture sized for debug-mode test runs.
fn fixture(rows: usize, seed: u64) -> (Dataset, LogisticRegression) {
    let data = xai::data::synth::german_credit(rows, seed);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    (data, model)
}

/// The core assertion: all three backends produce the same bytes as the
/// direct `Explainer::explain` run, at every shard count, without
/// degrading.
fn assert_backend_equivalence(
    method: &dyn ShardableExplainer,
    model: &LogisticRegression,
    req: &ExplainRequest<'_>,
    label: &str,
) {
    let reference = method
        .explain(model, req)
        .unwrap_or_else(|e| panic!("{label}: direct explain failed: {e:?}"))
        .to_json_string();
    let daemons = spawn_daemons(2);
    let local = LocalBackend;
    let pool = ProcessPoolBackend::new(PoolConfig::new(worker_exe()));
    let cluster = ClusterBackend::from_config(cluster_config(&daemons)).expect("cluster backend");
    let backends: [&dyn ExecutionBackend; 3] = [&local, &pool, &cluster];
    for backend in backends {
        let name = backend.kind().as_str();
        for n_shards in SHARD_COUNTS {
            let job =
                BackendJob::new(method, model, req, n_shards).with_model_json(model.save());
            let outcome = backend
                .execute(&job)
                .unwrap_or_else(|e| panic!("{label}: {name} n_shards={n_shards} failed: {e:?}"));
            assert!(!outcome.degraded, "{label}: {name} degraded at n_shards={n_shards}");
            assert_eq!(
                outcome.explanation.to_json_string(),
                reference,
                "{label}: {name} diverged at n_shards={n_shards}"
            );
        }
    }
}

#[test]
fn kernel_shap_runs_on_every_backend() {
    let (data, model) = fixture(60, 7);
    let row = data.row(0).to_vec();
    let req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(11).with_workers(2));
    let sampled = KernelShapMethod {
        config: KernelShapConfig { max_coalitions: 64, ..KernelShapConfig::default() },
    };
    assert_backend_equivalence(&sampled, &model, &req, "kernel SHAP (sampled)");
}

#[test]
fn permutation_shapley_runs_on_every_backend() {
    let (data, model) = fixture(60, 8);
    let row = data.row(3).to_vec();
    let req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(23).with_workers(2));
    let method = PermutationShapleyMethod { permutations: 40 };
    assert_backend_equivalence(&method, &model, &req, "permutation Shapley");
}

#[test]
fn lime_runs_on_every_backend() {
    let (data, model) = fixture(60, 9);
    let row = data.row(5).to_vec();
    let req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(31).with_workers(2));
    let method = LimeMethod { config: LimeConfig { n_samples: 96, ..LimeConfig::default() } };
    assert_backend_equivalence(&method, &model, &req, "LIME");
}

#[test]
fn sp_lime_runs_on_every_backend() {
    let (data, model) = fixture(50, 10);
    let req = ExplainRequest::new(&data).plan(RunConfig::seeded(13).with_workers(2));
    let method = SpLimeMethod {
        n_candidates: 10,
        picks: 3,
        config: LimeConfig { n_samples: 64, ..LimeConfig::default() },
    };
    assert_backend_equivalence(&method, &model, &req, "SP-LIME");
}

#[test]
fn anchors_runs_on_every_backend() {
    let (data, model) = fixture(60, 12);
    let row = data.row(0).to_vec();
    let req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(17).with_workers(2));
    let method = AnchorsMethod {
        config: AnchorsConfig {
            precision_target: 0.9,
            max_samples_per_round: 600,
            ..AnchorsConfig::default()
        },
        pool: 4,
    };
    assert_backend_equivalence(&method, &model, &req, "Anchors");
}

#[test]
fn dice_runs_on_every_backend() {
    let (data, model) = fixture(60, 14);
    let row = data.row(2).to_vec();
    let req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(6).with_workers(2));
    let method = DiceMethod {
        config: DiceConfig { k: 2, iterations: 60, restarts: 2, ..DiceConfig::default() },
    };
    assert_backend_equivalence(&method, &model, &req, "DiCE");
}

#[test]
fn leave_one_out_runs_on_every_backend() {
    let (data, model) = fixture(20, 21);
    let req = ExplainRequest::new(&data).plan(RunConfig::seeded(19).with_workers(2));
    assert_backend_equivalence(&LooMethod, &model, &req, "leave-one-out");
}

#[test]
fn tmc_data_shapley_runs_on_every_backend() {
    let (data, model) = fixture(10, 22);
    let req = ExplainRequest::new(&data).plan(RunConfig::seeded(19).with_workers(2));
    let method = TmcMethod { config: TmcConfig { permutations: 20, ..TmcConfig::default() } };
    assert_backend_equivalence(&method, &model, &req, "TMC data Shapley");
}

#[test]
fn data_banzhaf_runs_on_every_backend() {
    let (data, model) = fixture(10, 24);
    let req = ExplainRequest::new(&data).plan(RunConfig::seeded(19).with_workers(2));
    let method = BanzhafMethod { config: BanzhafConfig { samples_per_point: 6, seed: 0 } };
    assert_backend_equivalence(&method, &model, &req, "data Banzhaf");
}

// ---------------------------------------------------------------------------
// Serve-path routing
// ---------------------------------------------------------------------------

#[test]
fn serve_requests_match_bytes_across_all_three_backends() {
    let (data, model) = fixture(60, 7);
    let service = workspace_service(ServiceConfig::default());
    register_persist(&service, "credit", model, data.clone());

    let daemons = spawn_daemons(2);
    let runner = Arc::new(ClusterRunner::new(cluster_config(&daemons)).expect("runner"));
    service.set_backend(Arc::new(ClusterBackend::new(Arc::clone(&runner))));
    service.set_backend(Arc::new(ProcessPoolBackend::new(PoolConfig::new(worker_exe()))));
    assert_eq!(service.backend_kinds().len(), 2);

    let plan = RunConfig::seeded(11).with_workers(2);
    let request = |backend: BackendChoice| {
        ServeRequest::new("Kernel SHAP", "credit")
            .with_instance(data.row(0))
            .with_plan(plan.with_backend(backend))
    };
    let local = service.submit(&request(BackendChoice::Local)).expect("serve local");
    let pooled =
        service.submit(&request(BackendChoice::process_pool(2))).expect("serve process pool");
    let clustered = service.submit(&request(BackendChoice::cluster(4))).expect("serve cluster");

    assert_eq!(pooled.payload, local.payload, "process-pool serve diverged from local");
    assert_eq!(clustered.payload, local.payload, "cluster serve diverged from local");
    assert!(!local.degraded && !pooled.degraded && !clustered.degraded);

    let stats = service.stats();
    assert_eq!(stats.local_completed, 1);
    assert_eq!(stats.pool_completed, 1);
    assert_eq!(stats.cluster_completed, 1);
    assert_eq!(stats.degraded, 0);
    assert_eq!(stats.failed, 0);
}

#[test]
fn serve_rejects_backends_that_are_not_registered() {
    let (data, model) = fixture(30, 4);
    let service = workspace_service(ServiceConfig::default());
    register_persist(&service, "credit", model, data.clone());
    let request = ServeRequest::new("Kernel SHAP", "credit")
        .with_instance(data.row(0))
        .with_plan(RunConfig::seeded(3).with_workers(2).with_backend(BackendChoice::cluster(2)));
    let err = service.submit(&request).expect_err("no cluster backend is registered");
    assert!(
        matches!(err, XaiError::Unsupported { .. }),
        "expected a typed Unsupported rejection, got {err:?}"
    );
}

// ---------------------------------------------------------------------------
// Degraded fallback
// ---------------------------------------------------------------------------

#[test]
fn dead_cluster_degrades_in_process_with_identical_bytes() {
    let (data, model) = fixture(30, 9);
    let method = KernelShapMethod {
        config: KernelShapConfig { max_coalitions: 48, ..KernelShapConfig::default() },
    };
    let row = data.row(1).to_vec();
    let req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(5).with_workers(2));
    let reference = method.explain(&model, &req).unwrap().to_json_string();

    let mut config = ClusterConfig::new(vec![refused_addr(), refused_addr()]);
    config.connect_timeout = Duration::from_millis(500);
    config.io_timeout = Duration::from_millis(500);
    config.retry = RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        jitter_seed: 0,
    };
    config.fallback = FallbackPolicy::InProcess;
    let backend = ClusterBackend::from_config(config).expect("cluster backend");
    let job = BackendJob::new(&method, &model, &req, 2).with_model_json(model.save());
    let outcome = backend.execute(&job).expect("fallback must carry the job");
    assert!(outcome.degraded, "a dead cluster must set the degraded marker");
    assert_eq!(
        outcome.explanation.to_json_string(),
        reference,
        "degraded fallback changed the bytes"
    );
}

#[test]
fn serve_surfaces_the_degraded_marker_and_counter() {
    let (data, model) = fixture(30, 9);
    let service = workspace_service(ServiceConfig::default());
    register_persist(&service, "credit", model, data.clone());

    let mut config = ClusterConfig::new(vec![refused_addr()]);
    config.connect_timeout = Duration::from_millis(500);
    config.io_timeout = Duration::from_millis(500);
    config.retry = RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        jitter_seed: 0,
    };
    config.fallback = FallbackPolicy::InProcess;
    service.set_backend(Arc::new(ClusterBackend::from_config(config).expect("backend")));

    let plan = RunConfig::seeded(11).with_workers(2);
    let local = ServeRequest::new("Kernel SHAP", "credit")
        .with_instance(data.row(0))
        .with_plan(plan);
    let clustered = ServeRequest::new("Kernel SHAP", "credit")
        .with_instance(data.row(0))
        .with_plan(plan.with_backend(BackendChoice::cluster(2)));

    let reference = service.submit(&local).expect("serve local");
    let degraded = service.submit(&clustered).expect("fallback must carry the request");
    assert!(degraded.degraded, "the response must carry the degraded marker");
    assert!(!degraded.cached);
    assert_eq!(degraded.payload, reference.payload, "degraded serve changed the bytes");

    let stats = service.stats();
    assert_eq!(stats.degraded, 1);
    assert_eq!(stats.cluster_completed, 1, "a degraded run still completes");
    assert_eq!(stats.cluster_failed, 0);
}

// ---------------------------------------------------------------------------
// Session reuse and the shard cache
// ---------------------------------------------------------------------------

#[test]
fn cluster_runs_reuse_endpoint_sessions() {
    let (data, model) = fixture(20, 21);
    let req = ExplainRequest::new(&data).plan(RunConfig::seeded(19).with_workers(2));
    let daemons = spawn_daemons(2);
    let mut config = cluster_config(&daemons);
    // Disable the shard cache so the second run must touch the network.
    config.shard_cache_capacity = 0;
    let runner = ClusterRunner::new(config).expect("runner");
    // One shard per endpoint: connection counts are deterministic because
    // no two shards ever contend for the same endpoint's session pool.
    let n_shards = 2;

    let first = runner.explain(&LooMethod, &model, &req, model.save(), n_shards).expect("run 1");
    let after_first = runner.stats();
    assert_eq!(after_first.connections_opened, 2, "first run opens one connection per shard");
    assert_eq!(after_first.sessions_reused, 0, "nothing to reuse on a cold pool");
    assert_eq!(after_first.shard_cache_hits, 0, "cache is disabled");

    let second = runner.explain(&LooMethod, &model, &req, model.save(), n_shards).expect("run 2");
    let after_second = runner.stats();
    assert_eq!(
        second.explanation.to_json_string(),
        first.explanation.to_json_string(),
        "session reuse changed the bytes"
    );
    assert_eq!(
        after_second.connections_opened, after_first.connections_opened,
        "the second run must ride the pooled sessions, not reconnect"
    );
    assert_eq!(
        after_second.sessions_reused, n_shards as u64,
        "every shard of the second run should reuse a session: {after_second:?}"
    );
}

#[test]
fn shard_cache_answers_repeated_cluster_runs() {
    let (data, model) = fixture(20, 21);
    let req = ExplainRequest::new(&data).plan(RunConfig::seeded(19).with_workers(2));
    let daemons = spawn_daemons(2);
    let runner = ClusterRunner::new(cluster_config(&daemons)).expect("runner");
    let n_shards = 4;

    let first = runner.explain(&LooMethod, &model, &req, model.save(), n_shards).expect("run 1");
    let after_first = runner.stats();
    assert_eq!(after_first.shard_cache_hits, 0);
    assert_eq!(after_first.shard_cache_misses, n_shards as u64);

    let second = runner.explain(&LooMethod, &model, &req, model.save(), n_shards).expect("run 2");
    let after_second = runner.stats();
    assert_eq!(
        after_second.shard_cache_hits,
        n_shards as u64,
        "the identical second run must be answered from the shard cache"
    );
    assert_eq!(after_second.shard_cache_misses, n_shards as u64, "no new misses");
    assert_eq!(
        second.explanation.to_json_string(),
        first.explanation.to_json_string(),
        "shard-cache hits changed the bytes"
    );
}

#[test]
fn serve_counts_shard_cache_hits() {
    let (data, model) = fixture(20, 21);
    // Disable the serve-level result cache so the second submit actually
    // reaches the backend (and its shard cache) again.
    let service =
        workspace_service(ServiceConfig { cache_capacity: 0, ..ServiceConfig::default() });
    register_persist(&service, "credit", model, data.clone());
    let daemons = spawn_daemons(2);
    service.set_backend(Arc::new(
        ClusterBackend::from_config(cluster_config(&daemons)).expect("backend"),
    ));

    let request = ServeRequest::new("Leave-one-out", "credit").with_plan(
        RunConfig::seeded(19).with_workers(2).with_backend(BackendChoice::cluster(2)),
    );
    let cold = service.submit(&request).expect("cold submit");
    let warm = service.submit(&request).expect("warm submit");
    assert!(!warm.cached, "the result cache is disabled; this hit the backend");
    assert_eq!(warm.payload, cold.payload);

    let stats = service.stats();
    assert_eq!(stats.shard_cache_misses, 2, "cold run misses once per shard");
    assert_eq!(stats.shard_cache_hits, 2, "warm run hits once per shard");
    assert_eq!(stats.cluster_completed, 2);
}
