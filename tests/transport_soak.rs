//! Transport soak (DESIGN.md §13): one shared `ClusterRunner` over two
//! loopback daemons, hammered by concurrent client threads running
//! different methods at different shard counts, every single result
//! byte-compared against its unsharded reference. Sustained concurrent
//! load must never corrupt a byte, leak a failure, or degrade endpoint
//! health.

use std::time::Duration;

use xai::models::Persist;
use xai::prelude::*;
use xai::shard::ShardableExplainer;
use xai::transport::{BreakerState, DaemonHandle};

const CLIENT_THREADS: usize = 4;
const ROUNDS: usize = 3;

fn worker_exe() -> &'static str {
    env!("CARGO_BIN_EXE_xai-shard-worker")
}

/// One soak workload: a method, its request plan seed, and a fixture.
struct Workload {
    label: &'static str,
    method: Box<dyn ShardableExplainer + Send + Sync>,
    data: Dataset,
    model: LogisticRegression,
    instance: Option<usize>,
    seed: u64,
}

fn workloads() -> Vec<Workload> {
    let classify = |rows: usize, seed: u64| {
        let data = xai::data::synth::german_credit(rows, seed);
        let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
        (data, model)
    };
    let (kernel_data, kernel_model) = classify(40, 7);
    let (lime_data, lime_model) = classify(40, 9);
    let (loo_data, loo_model) = classify(12, 21);
    vec![
        Workload {
            label: "kernel SHAP",
            method: Box::new(KernelShapMethod {
                config: KernelShapConfig { max_coalitions: 48, ..KernelShapConfig::default() },
            }),
            data: kernel_data,
            model: kernel_model,
            instance: Some(0),
            seed: 11,
        },
        Workload {
            label: "LIME",
            method: Box::new(LimeMethod {
                config: LimeConfig { n_samples: 64, ..LimeConfig::default() },
            }),
            data: lime_data,
            model: lime_model,
            instance: Some(5),
            seed: 31,
        },
        Workload {
            label: "leave-one-out",
            method: Box::new(LooMethod),
            data: loo_data,
            model: loo_model,
            instance: None,
            seed: 19,
        },
    ]
}

#[test]
fn concurrent_soak_is_byte_stable_and_keeps_endpoints_healthy() {
    let daemons: Vec<DaemonHandle> = (0..2)
        .map(|_| DaemonHandle::spawn(worker_exe(), &[]).expect("spawn daemon"))
        .collect();
    let mut config = ClusterConfig::new(daemons.iter().map(|d| d.addr().to_string()));
    config.connect_timeout = Duration::from_secs(5);
    config.io_timeout = Duration::from_secs(120);
    config.fallback = FallbackPolicy::Fail;
    let runner = ClusterRunner::new(config).expect("cluster runner");

    let loads = workloads();
    // Pre-compute each workload's unsharded reference bytes once.
    let references: Vec<(String, Vec<f64>)> = loads
        .iter()
        .map(|w| {
            let row = w.instance.map(|i| w.data.row(i).to_vec()).unwrap_or_default();
            let mut req =
                ExplainRequest::new(&w.data).plan(RunConfig::seeded(w.seed).with_workers(2));
            if w.instance.is_some() {
                req = req.instance(&row);
            }
            (w.method.explain(&w.model, &req).unwrap().to_json_string(), row)
        })
        .collect();

    std::thread::scope(|scope| {
        for thread in 0..CLIENT_THREADS {
            let runner = &runner;
            let loads = &loads;
            let references = &references;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    for (i, w) in loads.iter().enumerate() {
                        // Spread shard counts across threads and rounds.
                        let n_shards = [1, 2, 4, 7][(thread + round + i) % 4];
                        let (reference, row) = &references[i];
                        let mut req = ExplainRequest::new(&w.data)
                            .plan(RunConfig::seeded(w.seed).with_workers(2));
                        if w.instance.is_some() {
                            req = req.instance(row);
                        }
                        let outcome = runner
                            .explain(w.method.as_ref(), &w.model, &req, w.model.save(), n_shards)
                            .unwrap_or_else(|e| {
                                panic!(
                                    "{}: thread {thread} round {round} n_shards={n_shards}: {e:?}",
                                    w.label
                                )
                            });
                        assert!(!outcome.degraded, "{}: degraded under soak", w.label);
                        assert_eq!(
                            outcome.explanation.to_json_string(),
                            *reference,
                            "{}: bytes diverged at thread {thread} round {round} n_shards={n_shards}",
                            w.label
                        );
                    }
                }
            });
        }
    });

    let stats = runner.stats();
    assert_eq!(stats.transport_failures, 0, "healthy soak saw failures: {stats:?}");
    assert_eq!(stats.hedges, 0, "no hedging was configured: {stats:?}");
    for health in runner.health() {
        assert_eq!(health.state, BreakerState::Closed, "{health:?}");
        assert_eq!(health.failures, 0, "{health:?}");
        assert!(health.successes > 0, "{health:?}");
    }
}
