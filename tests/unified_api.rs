//! Bit-identity harness for the unified explainer layer (DESIGN.md §9).
//!
//! Every `Explainer` implementation is driven through
//! `Explainer::explain` with a `RunConfig` sweeping workers ∈ {1, 2, 4}
//! and batched ∈ {off, on}, and the output is compared **bit-for-bit**
//! (`==` on `f64`s, no tolerance) against the legacy free function that
//! previously served that exact combination at the same seed. This is
//! the contract that lets the twin explosion be deprecated: the single
//! dispatch path must reproduce every old entry point exactly.
// The legacy twins are the oracles this file compares against.
#![allow(deprecated)]

use xai::prelude::*;
use xai::shapley::{
    exact_shapley, forest_shap, gbdt_shap, tree_expected_value, tree_shap, BatchPredictionGame,
    PredictionGame,
};
use xai_linalg::Matrix;

const WORKER_GRID: [usize; 3] = [1, 2, 4];

fn fixture() -> (Dataset, LogisticRegression) {
    let data = xai::data::synth::german_credit(120, 77);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    (data, model)
}

/// Small background matrix so the coalition sweeps stay fast.
fn background(data: &Dataset, rows: usize) -> Matrix {
    let rows: Vec<Vec<f64>> =
        (0..rows.min(data.n_rows())).map(|i| data.row(i).to_vec()).collect();
    Matrix::from_rows(&rows)
}

fn attribution(e: Explanation) -> FeatureAttribution {
    match e {
        Explanation::Attribution(a) => a,
        other => panic!("expected an attribution, got {other:?}"),
    }
}

#[test]
fn kernel_shap_matrix_is_bit_identical_to_every_legacy_twin() {
    let (data, model) = fixture();
    let bg = background(&data, 30);
    let row = data.row(3).to_vec();
    let f = proba_fn(&model);
    let fb = |m: &Matrix| {
        use xai_models::Classifier;
        model.proba_batch(m)
    };
    let cfg = KernelShapConfig { seed: 11, ..KernelShapConfig::default() };
    let method = KernelShapMethod { config: cfg };

    for workers in WORKER_GRID {
        for batched in [false, true] {
            let legacy = match (workers > 1, batched) {
                (false, false) => {
                    let game = PredictionGame::new(&f, &row, &bg);
                    xai::shapley::kernel_shap(&game, cfg)
                }
                (false, true) => {
                    let game = BatchPredictionGame::new(&fb, &row, &bg);
                    xai::shapley::kernel_shap_batched(&game, cfg)
                }
                (true, false) => {
                    let game = PredictionGame::new(&f, &row, &bg);
                    xai::shapley::kernel_shap_parallel(&game, cfg, workers)
                }
                (true, true) => {
                    let game = BatchPredictionGame::new(&fb, &row, &bg);
                    xai::shapley::kernel_shap_batched_parallel(&game, cfg, workers)
                }
            };
            let req = ExplainRequest::new(&data)
                .instance(&row)
                .background(&bg)
                .plan(RunConfig::seeded(11).with_workers(workers).with_batched(batched));
            let got = attribution(method.explain(&model, &req).unwrap());
            assert_eq!(
                got.values, legacy.phi,
                "kernel SHAP diverged at workers={workers} batched={batched}"
            );
            assert_eq!(got.baseline, legacy.base_value);
        }
    }
}

#[test]
fn permutation_shapley_matrix_and_budget_are_bit_identical() {
    let (data, model) = fixture();
    let bg = background(&data, 20);
    let row = data.row(5).to_vec();
    let f = proba_fn(&model);
    let fb = |m: &Matrix| {
        use xai_models::Classifier;
        model.proba_batch(m)
    };
    let perms = 24;
    let method = PermutationShapleyMethod { permutations: perms };

    for workers in WORKER_GRID {
        for batched in [false, true] {
            let legacy = match (workers > 1, batched) {
                (false, false) => {
                    let game = PredictionGame::new(&f, &row, &bg);
                    xai::shapley::permutation_shapley(&game, perms, 23)
                }
                (false, true) => {
                    let game = BatchPredictionGame::new(&fb, &row, &bg);
                    xai::shapley::permutation_shapley_batched(&game, perms, 23)
                }
                (true, false) => {
                    let game = PredictionGame::new(&f, &row, &bg);
                    xai::shapley::permutation_shapley_parallel(&game, perms, 23, workers)
                }
                (true, true) => {
                    let game = BatchPredictionGame::new(&fb, &row, &bg);
                    xai::shapley::permutation_shapley_batched_parallel(&game, perms, 23, workers)
                }
            };
            let req = ExplainRequest::new(&data)
                .instance(&row)
                .background(&bg)
                .plan(RunConfig::seeded(23).with_workers(workers).with_batched(batched));
            let got = attribution(method.explain(&model, &req).unwrap());
            assert_eq!(
                got.values, legacy.phi,
                "permutation Shapley diverged at workers={workers} batched={batched}"
            );
        }
    }

    // The budgeted path maps onto the budgeted legacy twin (sequential
    // scalar only).
    let budget = SampleBudget::with_max_evals(60);
    let game = PredictionGame::new(&f, &row, &bg);
    let legacy =
        xai::shapley::try_permutation_shapley_budgeted(&game, perms, 23, budget).unwrap();
    let req = ExplainRequest::new(&data)
        .instance(&row)
        .background(&bg)
        .plan(RunConfig::seeded(23).with_budget(budget));
    let got = attribution(method.explain(&model, &req).unwrap());
    assert_eq!(got.values, legacy.phi);
}

#[test]
fn exact_shapley_is_plan_invariant_and_matches_enumeration() {
    let (data, model) = fixture();
    let bg = background(&data, 12);
    let row = data.row(2).to_vec();
    let f = proba_fn(&model);
    let game = PredictionGame::new(&f, &row, &bg);
    let legacy = exact_shapley(&game);

    for workers in WORKER_GRID {
        for batched in [false, true] {
            let req = ExplainRequest::new(&data)
                .instance(&row)
                .background(&bg)
                .plan(RunConfig::seeded(1).with_workers(workers).with_batched(batched));
            let got = attribution(ExactShapleyMethod.explain(&model, &req).unwrap());
            assert_eq!(got.values, legacy, "exact Shapley must ignore the execution plan");
        }
    }
}

#[test]
fn tree_shap_matches_the_structural_walk_for_all_three_model_shapes() {
    let (data, _) = fixture();
    let row = data.row(7).to_vec();
    let req = ExplainRequest::new(&data).instance(&row).plan(RunConfig::seeded(3));

    let tree = DecisionTree::fit(data.x(), data.y(), TreeConfig::default());
    let got = attribution(TreeShapMethod.explain(&tree, &req).unwrap());
    assert_eq!(got.values, tree_shap(&tree, &row));
    assert_eq!(got.baseline, tree_expected_value(&tree));

    let forest = RandomForest::fit(data.x(), data.y(), Default::default());
    let got = attribution(TreeShapMethod.explain(&forest, &req).unwrap());
    let legacy = forest_shap(&forest, &row);
    assert_eq!(got.values, legacy.phi);

    let gbdt = Gbdt::fit(data.x(), data.y(), GbdtConfig::default());
    let got = attribution(TreeShapMethod.explain(&gbdt, &req).unwrap());
    let legacy = gbdt_shap(&gbdt, &row);
    assert_eq!(got.values, legacy.phi);
    assert_eq!(got.baseline, legacy.expected_value);
}

#[test]
fn lime_and_sp_lime_match_their_legacy_entry_points() {
    let (data, model) = fixture();
    let row = data.row(9).to_vec();
    let cfg = LimeConfig { n_samples: 120, ..LimeConfig::default() };
    let explainer = LimeExplainer::fit(&data);
    let f = proba_fn(&model);
    let fb = |m: &Matrix| {
        use xai_models::Classifier;
        model.proba_batch(m)
    };

    for batched in [false, true] {
        let legacy = if batched {
            explainer.try_explain_batched(&fb, &row, cfg, 31).unwrap()
        } else {
            explainer.try_explain(&f, &row, cfg, 31).unwrap()
        };
        // Batched runs and single-worker scalar runs reproduce the legacy
        // draw exactly; `workers > 1` on the scalar path takes the chunked
        // parallel neighbourhood (a different draw schedule), which must be
        // worker-count invariant.
        let mut parallel_runs = Vec::new();
        for workers in WORKER_GRID {
            let req = ExplainRequest::new(&data)
                .instance(&row)
                .plan(RunConfig::seeded(31).with_workers(workers).with_batched(batched));
            let got =
                attribution(LimeMethod { config: cfg }.explain(&model, &req).unwrap());
            if batched || workers == 1 {
                assert_eq!(got.values, legacy.attribution.values, "batched={batched}");
            } else {
                parallel_runs.push(got.values);
            }
        }
        for w in parallel_runs.windows(2) {
            assert_eq!(w[0], w[1], "parallel LIME must be worker-count invariant");
        }
    }

    let pick = xai::surrogate::sp_lime(&explainer, &f, &data, 20, 4, cfg, 31);
    let method = SpLimeMethod { n_candidates: 20, picks: 4, config: cfg };
    let req = ExplainRequest::new(&data).plan(RunConfig::seeded(31));
    let got = attribution(method.explain(&model, &req).unwrap());
    assert_eq!(got.values, pick.feature_importance);
}

#[test]
fn pdp_curves_match_the_legacy_functions_in_both_modes() {
    let (data, model) = fixture();
    let f = proba_fn(&model);
    let fb = |m: &Matrix| {
        use xai_models::Classifier;
        model.proba_batch(m)
    };
    let method = PdpMethod { points: 8, max_rows: 60, keep_ice: true };
    let grid = xai::surrogate::feature_grid(&data, 1, 8);

    for batched in [false, true] {
        let legacy = if batched {
            xai::surrogate::try_partial_dependence_batched(&fb, &data, 1, &grid, 60, true)
        } else {
            xai::surrogate::try_partial_dependence(&f, &data, 1, &grid, 60, true)
        }
        .unwrap();
        let req = ExplainRequest::new(&data)
            .feature(1)
            .plan(RunConfig::seeded(0).with_batched(batched));
        let got = method.explain(&model, &req).unwrap();
        let curve = match got {
            Explanation::Curve(c) => c,
            other => panic!("expected a curve, got {other:?}"),
        };
        assert_eq!(curve.grid, legacy.grid, "batched={batched}");
        assert_eq!(curve.values, legacy.pdp, "batched={batched}");
        assert_eq!(curve.ice, legacy.ice, "batched={batched}");
    }
}

#[test]
fn integrated_gradients_matches_the_saliency_path_integral() {
    let (data, model) = fixture();
    let row = data.row(4).to_vec();

    struct Adapter<'a>(&'a LogisticRegression);
    impl xai::surrogate::Differentiable for Adapter<'_> {
        fn output(&self, x: &[f64]) -> f64 {
            ModelOracle::predict(self.0, x)
        }
        fn input_gradient(&self, x: &[f64]) -> Vec<f64> {
            ModelOracle::gradient(self.0, x).unwrap()
        }
    }

    let baseline: Vec<f64> = (0..data.x().cols())
        .map(|j| {
            let col = data.x().col(j);
            col.iter().sum::<f64>() / col.len() as f64
        })
        .collect();
    let legacy =
        xai::surrogate::integrated_gradients(&Adapter(&model), &row, &baseline, 32);
    for workers in WORKER_GRID {
        let req = ExplainRequest::new(&data)
            .instance(&row)
            .plan(RunConfig::seeded(0).with_workers(workers));
        let got = attribution(
            IntegratedGradientsMethod { steps: 32 }.explain(&model, &req).unwrap(),
        );
        assert_eq!(got.values, legacy.values, "IG must ignore the worker count");
    }
}

#[test]
fn counterfactual_searches_match_their_legacy_twins_across_workers() {
    let (data, model) = fixture();
    use xai_models::Classifier;
    let row = (0..data.n_rows())
        .map(|i| data.row(i))
        .find(|r| model.proba_one(r) < 0.5)
        .expect("a rejected applicant exists")
        .to_vec();
    let f = proba_fn(&model);

    // Wachter: deterministic descent, plan-invariant.
    let w = xai::counterfactual::try_wachter_counterfactual(
        &model,
        &data,
        &row,
        Default::default(),
    )
    .unwrap();
    for workers in WORKER_GRID {
        let req = ExplainRequest::new(&data)
            .instance(&row)
            .plan(RunConfig::seeded(2).with_workers(workers));
        let got = WachterMethod::default().explain(&model, &req).unwrap();
        assert_eq!(got.as_counterfactuals().unwrap()[0].counterfactual, w.counterfactual);
    }

    // GeCo and DiCE: workers > 1 maps onto the parallel multi-start twins.
    let plaf = Plaf::from_schema(&data);
    let dice = DiceExplainer::fit(&data);
    for workers in WORKER_GRID {
        let geco_legacy = if workers > 1 {
            xai::counterfactual::try_geco_parallel(
                &f,
                &data,
                &row,
                &plaf,
                GecoConfig::default(),
                6,
                4,
                workers,
            )
            .unwrap()
        } else {
            xai::counterfactual::try_geco(&f, &data, &row, &plaf, GecoConfig::default(), 6)
                .unwrap()
        };
        let req = ExplainRequest::new(&data)
            .instance(&row)
            .plan(RunConfig::seeded(6).with_workers(workers));
        let got = GecoMethod::default().explain(&model, &req).unwrap();
        assert_eq!(
            got.as_counterfactuals().unwrap()[0].counterfactual,
            geco_legacy.counterfactual,
            "GeCo diverged at workers={workers}"
        );

        // workers > 1 now dispatches to the shardable pooled search.
        let dice_legacy = if workers > 1 {
            dice.try_generate_pool(&f, &row, DiceConfig::default(), 6, workers).unwrap()
        } else {
            dice.try_generate(&f, &row, DiceConfig::default(), 6).unwrap()
        };
        let got = DiceMethod::default().explain(&model, &req).unwrap();
        let got_cfs = got.as_counterfactuals().unwrap();
        assert_eq!(got_cfs.len(), dice_legacy.len(), "DiCE diverged at workers={workers}");
        for (a, b) in got_cfs.iter().zip(&dice_legacy) {
            assert_eq!(a.counterfactual, b.counterfactual);
        }
    }
}

#[test]
fn rule_methods_match_their_legacy_entry_points() {
    let (data, model) = fixture();
    let row = data.row(0).to_vec();
    let f = proba_fn(&model);

    let anchors = AnchorsExplainer::fit(&data);
    let legacy = anchors.explain(&f, &row, AnchorsConfig::default(), 13);
    let req = ExplainRequest::new(&data).instance(&row).plan(RunConfig::seeded(13));
    let got = AnchorsMethod::default().explain(&model, &req).unwrap();
    let rule = &got.as_rules().unwrap()[0];
    assert_eq!(rule.conditions.len(), legacy.conditions.len());
    assert_eq!(rule.prediction, legacy.prediction);

    use xai_models::Classifier;
    let labels: Vec<f64> = (0..data.n_rows())
        .map(|i| f64::from(model.proba_one(data.row(i)) >= 0.5))
        .collect();
    let ds = DecisionSet::fit(&data, &labels, IdsConfig::default());
    let got = DecisionSetMethod::default().explain(&model, &req).unwrap();
    assert_eq!(got.as_rules().unwrap().len(), ds.rules().len());
}

#[test]
fn valuation_methods_match_their_legacy_twins_across_workers() {
    let data = xai::data::synth::german_credit(40, 77);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let test = xai::data::synth::german_credit(20, 78);
    let utility = xai::datavalue::KnnUtility::new(&data, &test, 3);

    for workers in WORKER_GRID {
        let req = ExplainRequest::new(&data)
            .utility(&utility)
            .plan(RunConfig::seeded(19).with_workers(workers));

        let legacy = if workers > 1 {
            xai::datavalue::leave_one_out_parallel(&utility, workers)
        } else {
            xai::datavalue::leave_one_out(&utility)
        };
        let got = LooMethod.explain(&model, &req).unwrap();
        assert_eq!(got.as_valuation().unwrap().values, legacy.values);

        let tmc_cfg = TmcConfig { permutations: 6, seed: 19, ..TmcConfig::default() };
        let legacy = if workers > 1 {
            xai::datavalue::tmc_shapley_parallel(&utility, tmc_cfg, workers)
        } else {
            tmc_shapley(&utility, tmc_cfg).attribution
        };
        let got = TmcMethod { config: tmc_cfg }.explain(&model, &req).unwrap();
        assert_eq!(
            got.as_valuation().unwrap().values,
            legacy.values,
            "TMC diverged at workers={workers}"
        );

        let bz_cfg = xai::datavalue::BanzhafConfig { samples_per_point: 8, seed: 19 };
        let legacy = if workers > 1 {
            xai::datavalue::data_banzhaf_parallel(&utility, bz_cfg, workers)
        } else {
            xai::datavalue::data_banzhaf(&utility, bz_cfg)
        };
        let got = BanzhafMethod { config: bz_cfg }.explain(&model, &req).unwrap();
        assert_eq!(
            got.as_valuation().unwrap().values,
            legacy.values,
            "Banzhaf diverged at workers={workers}"
        );
    }
}

#[test]
fn complaint_debugging_matches_the_legacy_influence_ranking() {
    let (data, model) = fixture();
    let query = xai::provenance::PredicateCountQuery::new(&data, |_| true);
    let legacy = xai::provenance::complaint_influence(
        &model,
        &data,
        &query,
        xai::provenance::Complaint::TooHigh,
    );
    for workers in WORKER_GRID {
        let req = ExplainRequest::new(&data).plan(RunConfig::seeded(0).with_workers(workers));
        let got = ComplaintMethod::default().explain(&model, &req).unwrap();
        assert_eq!(got.as_valuation().unwrap().values, legacy.values);
    }
}
