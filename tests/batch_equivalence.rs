//! Batched-path equivalence harness.
//!
//! The batched inference path (`predict_batch` → `BatchPredictionGame` /
//! `explain_batched` / `partial_dependence_batched`) is a *performance*
//! feature: it must change wall-clock time and nothing else. This suite
//! pins that contract for every model family × Monte-Carlo explainer
//! pair — the batched estimate is **bit-identical** to the scalar one at
//! the same seed and at every worker count, with and without the
//! coalition memo cache.
// The legacy twin entry points stay under test until removal: this file
// is their bit-identity oracle against the unified layer.
#![allow(deprecated)]

use xai_data::synth::german_credit;
use xai_data::Dataset;
use xai_datavalue::{
    data_banzhaf, data_banzhaf_parallel, tmc_shapley, tmc_shapley_parallel, BanzhafConfig,
    CachedUtility, FnUtility, TmcConfig,
};
use xai_linalg::Matrix;
use xai_models::{
    batch_from_scalar, batch_proba_fn, batch_regress_fn, proba_fn, regress_fn, DecisionTree,
    ForestConfig, GaussianNb, Gbdt, GbdtConfig, GbdtLoss, Knn, LinearConfig, LinearRegression,
    LogisticConfig, LogisticRegression, Mlp, MlpConfig, MlpTask, RandomForest, TreeConfig,
};
use xai_shapley::{
    kernel_shap, kernel_shap_batched, kernel_shap_batched_parallel, kernel_shap_parallel,
    permutation_shapley, permutation_shapley_batched, permutation_shapley_batched_parallel,
    permutation_shapley_parallel, BatchPredictionGame, CachedGame, KernelShapConfig,
    PredictionGame,
};
use xai_surrogate::{
    feature_grid, partial_dependence, partial_dependence_batched, LimeConfig, LimeExplainer,
};

fn credit() -> Dataset {
    german_credit(90, 5)
}

fn background(data: &Dataset) -> Matrix {
    Matrix::from_fn(6, data.n_features(), |i, j| data.x()[(i, (i + j) % data.n_features())])
}

/// Runs every Shapley Monte-Carlo estimator against one model through the
/// scalar and the batched game and demands bitwise equality: sequential
/// and parallel, exact and sampling kernel modes, with and without the
/// coalition memo cache, across worker counts.
fn assert_explainers_bit_identical<F, B>(name: &str, f: &F, bf: &B, instance: &[f64], bg: &Matrix)
where
    F: Fn(&[f64]) -> f64 + Sync,
    B: Fn(&Matrix) -> Vec<f64> + Sync,
{
    let scalar_game = PredictionGame::new(f, instance, bg);
    let batch_game = BatchPredictionGame::new(bf, instance, bg);
    let cached = CachedGame::new(&batch_game);

    // Kernel SHAP, exact mode (n = 9 → 510 coalitions) and sampling mode.
    for cfg in [
        KernelShapConfig { seed: 3, ..KernelShapConfig::default() },
        KernelShapConfig { max_coalitions: 48, seed: 3, ..KernelShapConfig::default() },
    ] {
        let a = kernel_shap(&scalar_game, cfg);
        let b = kernel_shap_batched(&batch_game, cfg);
        assert_eq!(a.phi, b.phi, "{name}: batched kernel SHAP diverged");
        assert_eq!(a.base_value, b.base_value, "{name}: base value diverged");
        let c = kernel_shap_batched(&cached, cfg);
        assert_eq!(a.phi, c.phi, "{name}: cached kernel SHAP diverged");
        let reference = kernel_shap_parallel(&scalar_game, cfg, 1);
        for workers in [1, 2, 4] {
            let p = kernel_shap_batched_parallel(&batch_game, cfg, workers);
            assert_eq!(
                reference.phi, p.phi,
                "{name}: parallel batched kernel SHAP diverged at {workers} workers"
            );
        }
    }

    // Permutation Shapley, sequential and parallel.
    let a = permutation_shapley(&scalar_game, 20, 7);
    let b = permutation_shapley_batched(&batch_game, 20, 7);
    assert_eq!(a.phi, b.phi, "{name}: batched permutation Shapley diverged");
    assert_eq!(a.std_err, b.std_err, "{name}: std_err diverged");
    let c = permutation_shapley_batched(&cached, 20, 7);
    assert_eq!(a.phi, c.phi, "{name}: cached permutation Shapley diverged");
    let reference = permutation_shapley_parallel(&scalar_game, 24, 7, 1);
    for workers in [1, 2, 4] {
        let p = permutation_shapley_batched_parallel(&batch_game, 24, 7, workers);
        assert_eq!(
            reference.phi, p.phi,
            "{name}: parallel batched permutation Shapley diverged at {workers} workers"
        );
        assert_eq!(reference.std_err, p.std_err, "{name}: parallel std_err diverged");
    }

    // Every permutation walk revisits ∅ and N, so the memo must have hit.
    let (hits, _) = cached.stats();
    assert!(hits > 0, "{name}: memo cache never hit");
}

/// LIME and PDP through the batched model surface, bit-identical to the
/// scalar loops.
fn assert_surrogates_bit_identical<F, B>(name: &str, f: &F, bf: &B, data: &Dataset)
where
    F: Fn(&[f64]) -> f64,
    B: Fn(&Matrix) -> Vec<f64>,
{
    let lime = LimeExplainer::fit(data);
    let cfg = LimeConfig { n_samples: 120, ..LimeConfig::default() };
    let a = lime.explain(f, data.row(4), cfg, 13);
    let b = lime.explain_batched(bf, data.row(4), cfg, 13);
    assert_eq!(a.attribution.values, b.attribution.values, "{name}: batched LIME diverged");
    assert_eq!(a.attribution.prediction, b.attribution.prediction, "{name}: LIME prediction");
    assert_eq!(a.local_fidelity, b.local_fidelity, "{name}: LIME fidelity diverged");

    let grid = feature_grid(data, 1, 5);
    let pa = partial_dependence(f, data, 1, &grid, 40, true);
    let pb = partial_dependence_batched(bf, data, 1, &grid, 40, true);
    assert_eq!(pa.pdp, pb.pdp, "{name}: batched PDP diverged");
    assert_eq!(pa.ice, pb.ice, "{name}: batched ICE diverged");
}

#[test]
fn linear_and_logistic_batched_explainers_are_bit_identical() {
    let data = credit();
    let bg = background(&data);
    let instance = data.row(11);

    let linear = LinearRegression::fit(data.x(), data.y(), LinearConfig::default()).unwrap();
    let f = regress_fn(&linear);
    let bf = batch_regress_fn(&linear);
    assert_explainers_bit_identical("linear", &f, &bf, instance, &bg);
    assert_surrogates_bit_identical("linear", &f, &bf, &data);

    let logistic = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let f = proba_fn(&logistic);
    let bf = batch_proba_fn(&logistic);
    assert_explainers_bit_identical("logistic", &f, &bf, instance, &bg);
    assert_surrogates_bit_identical("logistic", &f, &bf, &data);
}

#[test]
fn tree_ensemble_batched_explainers_are_bit_identical() {
    let data = credit();
    let bg = background(&data);
    let instance = data.row(11);

    let tree = DecisionTree::fit(data.x(), data.y(), TreeConfig { max_depth: 5, ..Default::default() });
    let f = proba_fn(&tree);
    let bf = batch_proba_fn(&tree);
    assert_explainers_bit_identical("tree", &f, &bf, instance, &bg);

    let forest =
        RandomForest::fit(data.x(), data.y(), ForestConfig { n_trees: 8, seed: 2, ..Default::default() });
    let f = proba_fn(&forest);
    let bf = batch_proba_fn(&forest);
    assert_explainers_bit_identical("forest", &f, &bf, instance, &bg);
    assert_surrogates_bit_identical("forest", &f, &bf, &data);

    let gbdt = Gbdt::fit(
        data.x(),
        data.y(),
        GbdtConfig { n_rounds: 10, loss: GbdtLoss::Logistic, ..Default::default() },
    );
    let f = proba_fn(&gbdt);
    let bf = batch_proba_fn(&gbdt);
    assert_explainers_bit_identical("gbdt", &f, &bf, instance, &bg);
}

#[test]
fn knn_naive_bayes_and_mlp_batched_explainers_are_bit_identical() {
    let data = credit();
    let bg = background(&data);
    let instance = data.row(11);

    let knn = Knn::fit(data.x(), data.y(), 3);
    let f = proba_fn(&knn);
    let bf = batch_proba_fn(&knn);
    assert_explainers_bit_identical("knn", &f, &bf, instance, &bg);

    let nb = GaussianNb::fit(data.x(), data.y());
    let f = proba_fn(&nb);
    let bf = batch_proba_fn(&nb);
    assert_explainers_bit_identical("naive_bayes", &f, &bf, instance, &bg);

    let mlp = Mlp::fit(
        data.x(),
        data.y(),
        MlpConfig { hidden: 6, epochs: 3, task: MlpTask::Classification, seed: 4, ..Default::default() },
    );
    let f = proba_fn(&mlp);
    let bf = batch_proba_fn(&mlp);
    assert_explainers_bit_identical("mlp", &f, &bf, instance, &bg);
    assert_surrogates_bit_identical("mlp", &f, &bf, &data);
}

#[test]
fn scalar_fallback_adapter_is_equivalent_to_the_scalar_path() {
    // A model with no vectorized override still rides the batched
    // explainer entry points through `batch_from_scalar`.
    let data = credit();
    let bg = background(&data);
    let instance = data.row(3);
    let f = |x: &[f64]| (x[0] * 0.01 - x[3] * 0.0002).tanh() + x[6] * 0.1;
    let bf = batch_from_scalar(f);
    assert_explainers_bit_identical("closure", &f, &bf, instance, &bg);
}

#[test]
fn cached_utility_preserves_tmc_and_banzhaf_bits() {
    // The memoized utility must be invisible to the estimators. The inner
    // utility accumulates in integer arithmetic, so its score is exactly
    // permutation-invariant and the cache's canonical (sorted) evaluation
    // order cannot perturb bits.
    let n = 14;
    let utility = FnUtility::new(n, |s: &[usize]| {
        s.iter().map(|&i| (i * i + 3 * i + 1) as u64).sum::<u64>() as f64 / 64.0
    });
    let cached = CachedUtility::new(&utility);

    let tmc_cfg = TmcConfig { permutations: 30, truncation_tolerance: 0.0, seed: 5 };
    let plain = tmc_shapley(&utility, tmc_cfg);
    let memo = tmc_shapley(&cached, tmc_cfg);
    assert_eq!(plain.attribution.values, memo.attribution.values, "TMC diverged under memo");
    let (hits, misses) = cached.stats();
    assert!(hits > 0, "TMC revisits the empty/grand coalitions every walk");
    assert!(misses < plain.utility_calls, "memo must absorb repeat evaluations");

    let bz_cfg = BanzhafConfig { samples_per_point: 12, seed: 8 };
    let plain_bz = data_banzhaf(&utility, bz_cfg);
    let memo_bz = data_banzhaf(&cached, bz_cfg);
    assert_eq!(plain_bz.values, memo_bz.values, "Banzhaf diverged under memo");

    // Parallel estimators accept the cached wrapper too (Mutex ⇒ Sync) and
    // stay worker-invariant.
    let p1 = tmc_shapley_parallel(&cached, tmc_cfg, 1);
    let p4 = tmc_shapley_parallel(&cached, tmc_cfg, 4);
    assert_eq!(p1.values, p4.values, "parallel TMC not worker-invariant under memo");
    let b1 = data_banzhaf_parallel(&cached, bz_cfg, 1);
    let b4 = data_banzhaf_parallel(&cached, bz_cfg, 4);
    assert_eq!(b1.values, b4.values, "parallel Banzhaf not worker-invariant under memo");
}
