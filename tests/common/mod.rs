//! Shared fixtures for the serving-engine integration suites
//! (`serve_api`, `serve_concurrency`): a cheap-config registry covering
//! all 17 runnable methods, a service with three registered models, and
//! the direct `Explainer::explain` twin each served result is compared
//! against bit-for-bit.
#![allow(dead_code)]

use std::sync::Arc;

use xai::core::SharedExplainer;
use xai::datavalue::BanzhafConfig;
use xai::prelude::*;
use xai_models::{persisted_bytes, Classifier};

/// The same 17 cards as `xai::unified::all_explainers`, with sampling
/// budgets sized for debug-mode test runs.
pub fn cheap_explainers() -> Vec<SharedExplainer> {
    let lime = LimeConfig { n_samples: 80, ..LimeConfig::default() };
    vec![
        Arc::new(ExactShapleyMethod),
        Arc::new(PermutationShapleyMethod { permutations: 16 }),
        Arc::new(KernelShapMethod {
            config: KernelShapConfig { max_coalitions: 64, ..KernelShapConfig::default() },
        }),
        Arc::new(TreeShapMethod),
        Arc::new(LimeMethod { config: lime }),
        Arc::new(SpLimeMethod { n_candidates: 8, picks: 3, config: lime }),
        Arc::new(PdpMethod { points: 6, max_rows: 40, keep_ice: true }),
        Arc::new(IntegratedGradientsMethod { steps: 16 }),
        Arc::new(WachterMethod::default()),
        Arc::new(GecoMethod::default()),
        Arc::new(DiceMethod::default()),
        Arc::new(AnchorsMethod::default()),
        Arc::new(DecisionSetMethod::default()),
        Arc::new(LooMethod),
        Arc::new(TmcMethod { config: TmcConfig { permutations: 4, ..TmcConfig::default() } }),
        Arc::new(BanzhafMethod { config: BanzhafConfig { samples_per_point: 4, seed: 0 } }),
        Arc::new(ComplaintMethod::default()),
    ]
}

/// The full taxonomy with the cheap instances attached as runners.
pub fn cheap_registry() -> Registry {
    let mut registry = workspace_registry();
    for explainer in cheap_explainers() {
        registry.register_explainer(explainer).expect("cheap explainers attach to distinct cards");
    }
    registry
}

/// A service over [`cheap_registry`] plus everything needed to replay
/// any served request directly against `Explainer::explain`.
pub struct Fixture {
    pub service: ExplanationService,
    pub credit: Dataset,
    pub credit_model: Arc<LogisticRegression>,
    pub gbdt: Arc<Gbdt>,
    pub tiny: Dataset,
    pub tiny_model: Arc<LogisticRegression>,
    /// An applicant the logistic model rejects — counterfactual methods
    /// need a decision worth flipping.
    pub rejected: Vec<f64>,
}

pub fn fixture_with(config: ServiceConfig) -> Fixture {
    let credit = xai::data::synth::german_credit(60, 77);
    let credit_model =
        Arc::new(LogisticRegression::fit(credit.x(), credit.y(), LogisticConfig::default()));
    let gbdt = Arc::new(Gbdt::fit(credit.x(), credit.y(), GbdtConfig::default()));
    let tiny = xai::data::synth::german_credit(24, 78);
    let tiny_model =
        Arc::new(LogisticRegression::fit(tiny.x(), tiny.y(), LogisticConfig::default()));
    let rejected = (0..credit.n_rows())
        .map(|i| credit.row(i))
        .find(|r| credit_model.proba_one(r) < 0.5)
        .expect("a rejected applicant exists in the fixture data")
        .to_vec();

    let service = ExplanationService::new(cheap_registry(), config);
    service.register_model(
        "credit",
        credit_model.clone(),
        credit.clone(),
        &persisted_bytes(&*credit_model),
    );
    service.register_model("credit-gbdt", gbdt.clone(), credit.clone(), &persisted_bytes(&*gbdt));
    service.register_model("tiny", tiny_model.clone(), tiny.clone(), &persisted_bytes(&*tiny_model));
    Fixture { service, credit, credit_model, gbdt, tiny, tiny_model, rejected }
}

/// The request each method is served with: TreeSHAP goes to the GBDT,
/// valuation methods to the small training set (the default utility
/// refits a logistic model per subset), curve methods sweep feature 1,
/// local methods explain the rejected applicant.
pub fn request_for(fx: &Fixture, method: &str, plan: RunConfig) -> ServeRequest {
    match method {
        "TreeSHAP" => {
            ServeRequest::new(method, "credit-gbdt").with_instance(&fx.rejected).with_plan(plan)
        }
        "Leave-one-out" | "Data Shapley (TMC)" | "Data Banzhaf" => {
            ServeRequest::new(method, "tiny").with_plan(plan)
        }
        "Partial dependence / ICE" => {
            ServeRequest::new(method, "credit").with_feature(1).with_plan(plan)
        }
        "SP-LIME" | "Interpretable decision sets" | "Complaint-driven debugging" => {
            ServeRequest::new(method, "credit").with_plan(plan)
        }
        _ => ServeRequest::new(method, "credit").with_instance(&fx.rejected).with_plan(plan),
    }
}

/// The oracle and dataset a fixture model name resolves to.
pub fn oracle_for<'a>(fx: &'a Fixture, model: &str) -> (&'a dyn ModelOracle, &'a Dataset) {
    match model {
        "credit" => (fx.credit_model.as_ref(), &fx.credit),
        "credit-gbdt" => (fx.gbdt.as_ref(), &fx.credit),
        "tiny" => (fx.tiny_model.as_ref(), &fx.tiny),
        other => panic!("no fixture model named '{other}'"),
    }
}

/// Replays `request` directly through `Explainer::explain` — the same
/// method instance the service resolves, the same `ExplainRequest` its
/// workers build — and returns the canonical payload bytes.
pub fn direct_payload(fx: &Fixture, request: &ServeRequest) -> String {
    let (oracle, data) = oracle_for(fx, &request.model);
    let explainer =
        fx.service.registry().get_explainer(&request.method).expect("method is runnable");
    let mut req = ExplainRequest::new(data).plan(request.plan);
    if let Some(x) = &request.instance {
        req = req.instance(x);
    }
    if let Some(j) = request.feature {
        req = req.feature(j);
    }
    explainer
        .explain(oracle, &req)
        .unwrap_or_else(|e| panic!("direct {} failed: {e}", request.method))
        .to_json_string()
}
