//! Quickstart: one model, five kinds of explanation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use xai::prelude::*;
use xai::surrogate::lime::LimeExplainer as Lime;

fn main() {
    // 1. Data + model: a gradient-boosted classifier on synthetic German
    //    Credit.
    let data = xai::data::synth::german_credit(1200, 42);
    let (train, test) = data.train_test_split(0.25, 1);
    let model = Gbdt::fit(train.x(), train.y(), GbdtConfig { n_rounds: 60, ..GbdtConfig::default() });
    let auc = xai::data::metrics::auc_roc(test.y(), &model.proba(test.x()));
    println!("model: GBDT, test AUC = {auc:.3}\n");

    // The applicant we will explain.
    let applicant = test.row(0);
    println!("applicant: {}", test.render_row(0));
    println!("P(good credit) = {:.3}\n", model.proba_one(applicant));
    let names = data.schema().names();

    // 2. Feature attribution via TreeSHAP (model-specific, exact, fast).
    let shap = tree_shap_attribution(&model, applicant, &names);
    println!("— TreeSHAP (attributes the log-odds margin) —");
    for (name, value) in shap.top_k(4) {
        println!("  {name:>18}: {value:+.4}");
    }
    println!("  efficiency gap: {:.2e}\n", shap.efficiency_gap());

    // 3. Feature attribution via LIME (model-agnostic surrogate).
    let lime = Lime::fit(&train);
    let f = proba_fn(&model);
    let exp = lime.explain(&f, applicant, LimeConfig::default(), 7);
    println!("— LIME (local weighted-linear surrogate) —");
    for (name, value) in exp.attribution.top_k(4) {
        println!("  {name:>18}: {value:+.4}");
    }
    println!("  local fidelity R² = {:.3}\n", exp.local_fidelity);

    // 4. A high-precision rule via Anchors.
    let anchors = AnchorsExplainer::fit(&train);
    let rule = anchors.explain(&f, applicant, AnchorsConfig::default(), 7);
    println!("— Anchor rule —\n  {rule}\n");

    // 5. Counterfactuals via DiCE.
    let dice = DiceExplainer::fit(&train);
    let cfs = dice.generate(&f, applicant, DiceConfig { k: 2, ..DiceConfig::default() }, 7);
    println!("— Diverse counterfactuals —");
    for (i, cf) in cfs.iter().enumerate() {
        println!(
            "  cf#{i}: flips to {:.3} by changing {} feature(s), distance {:.2}",
            cf.counterfactual_output,
            cf.sparsity(),
            cf.distance
        );
        for &j in &cf.changed_features {
            println!(
                "       {} : {} -> {}",
                names[j],
                data.schema().feature(j).render(cf.original[j]),
                data.schema().feature(j).render(cf.counterfactual[j]),
            );
        }
    }
    println!();

    // 6. Which training points mattered? Exact KNN-Shapley valuation.
    let values = knn_shapley(&train, &test, 5);
    let best = values.ranking_desc();
    println!("— Training-data valuation (exact 5-NN Shapley) —");
    for &i in best.iter().take(3) {
        println!("  value {:+.5}  {}", values.values[i], train.render_row(i));
    }

    // 7. Everything exports as JSON for audit trails.
    println!("\n— JSON report of the TreeSHAP explanation —");
    println!("{}", shap.to_report().to_json());
}
