//! Quickstart: one model, one request, five kinds of explanation —
//! every method called through the unified `Explainer` trait with a
//! single `RunConfig` execution plan.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use xai::prelude::*;

fn main() {
    // 1. Data + model: a gradient-boosted classifier on synthetic German
    //    Credit.
    let data = xai::data::synth::german_credit(1200, 42);
    let (train, test) = data.train_test_split(0.25, 1);
    let model =
        Gbdt::fit(train.x(), train.y(), GbdtConfig { n_rounds: 60, ..GbdtConfig::default() });
    let auc = xai::data::metrics::auc_roc(test.y(), &model.proba(test.x()));
    println!("model: GBDT, test AUC = {auc:.3}\n");

    // The applicant we will explain.
    let applicant = test.row(0).to_vec();
    println!("applicant: {}", test.render_row(0));
    println!("P(good credit) = {:.3}\n", model.proba_one(&applicant));
    let names = data.schema().names();

    // One request + one execution plan serve every explainer below: the
    // seed, the worker count and the batched switch travel with the
    // request instead of selecting differently-named functions.
    let valuation = xai::datavalue::KnnUtility::new(&train, &test, 5);
    let req = ExplainRequest::new(&train)
        .instance(&applicant)
        .utility(&valuation)
        .plan(RunConfig::seeded(7).with_workers(2));

    // 2. Feature attribution via TreeSHAP (model-specific, exact, fast).
    let shap = TreeShapMethod.explain(&model, &req).unwrap();
    let shap = shap.as_attribution().unwrap();
    println!("— TreeSHAP (attributes the log-odds margin) —");
    for (name, value) in shap.top_k(4) {
        println!("  {name:>18}: {value:+.4}");
    }
    println!("  efficiency gap: {:.2e}\n", shap.efficiency_gap());

    // 3. Feature attribution via LIME (model-agnostic surrogate).
    let lime = LimeMethod::default().explain(&model, &req).unwrap();
    println!("— LIME (local weighted-linear surrogate) —");
    for (name, value) in lime.as_attribution().unwrap().top_k(4) {
        println!("  {name:>18}: {value:+.4}");
    }
    println!();

    // 4. A high-precision rule via Anchors.
    let rules = AnchorsMethod::default().explain(&model, &req).unwrap();
    println!("— Anchor rule —\n  {}\n", rules.as_rules().unwrap()[0]);

    // 5. Counterfactuals via DiCE.
    let dice = DiceMethod { config: DiceConfig { k: 2, ..DiceConfig::default() } };
    let cfs = dice.explain(&model, &req).unwrap();
    println!("— Diverse counterfactuals —");
    for (i, cf) in cfs.as_counterfactuals().unwrap().iter().enumerate() {
        println!(
            "  cf#{i}: flips to {:.3} by changing {} feature(s), distance {:.2}",
            cf.counterfactual_output,
            cf.sparsity(),
            cf.distance
        );
        for &j in &cf.changed_features {
            println!(
                "       {} : {} -> {}",
                names[j],
                data.schema().feature(j).render(cf.original[j]),
                data.schema().feature(j).render(cf.counterfactual[j]),
            );
        }
    }
    println!();

    // 6. Which training points mattered? Leave-one-out valuation through
    //    the same trait, scored by a 5-NN utility on the test split.
    let values = LooMethod.explain(&model, &req).unwrap();
    let values = values.as_valuation().unwrap();
    let best = values.ranking_desc();
    println!("— Training-data valuation (leave-one-out, 5-NN utility) —");
    for &i in best.iter().take(3) {
        println!("  value {:+.5}  {}", values.values[i], train.render_row(i));
    }

    // 7. Everything exports as JSON for audit trails.
    println!("\n— JSON report of the TreeSHAP explanation —");
    println!("{}", shap.to_report().to_json());
}
