//! A programmatic tour of the tutorial's taxonomy (§1–§2).
//!
//! The tutorial organizes XAI along three dimensions: intrinsic vs
//! post-hoc, model-agnostic vs model-specific, local vs global (vs
//! training-data). This workspace makes that organization executable:
//! every implemented method carries a `MethodCard`, and the registry
//! answers the tutorial's own classification questions.
//!
//! ```sh
//! cargo run --release --example taxonomy_tour
//! ```

use xai::core::{workspace_registry, Access, Scope, Stage};

fn main() {
    let registry = workspace_registry();
    println!("{} methods implemented across the tutorial's sections\n", registry.cards().len());

    // Walk the tutorial's structure section by section.
    for (section, title) in [
        ("2.1.1", "Surrogate explainability"),
        ("2.1.2", "Methods based on Shapley values"),
        ("2.1.3", "Causal approaches"),
        ("2.1.4", "Counterfactuals and algorithmic recourse"),
        ("2.2", "Rule-based explanations"),
        ("2.3.1", "Data valuation explanations"),
        ("2.3.2", "Influence-based explanations"),
        ("2.4", "Explanations for unstructured data (gradient methods)"),
        ("3", "Opportunities for data management research"),
    ] {
        let methods = registry.by_section(section);
        println!("§{section} {title}:");
        for card in methods {
            println!(
                "   {:<32} [{:?}/{:?}/{:?}]  — {}",
                card.name, card.stage, card.access, card.scope, card.citation
            );
        }
        println!();
    }

    // The tutorial's classification questions, answered by query.
    println!("Q: which methods work on ANY black box and explain ONE prediction?");
    for card in registry.query(None, Some(Access::ModelAgnostic), Some(Scope::Local)) {
        println!("   {}", card.name);
    }

    println!("\nQ: which methods are interpretable BY DESIGN (intrinsic)?");
    for card in registry.query(Some(Stage::Intrinsic), None, None) {
        println!("   {}", card.name);
    }

    println!("\nQ: which methods attribute to TRAINING DATA rather than features?");
    for card in registry.query(None, None, Some(Scope::TrainingData)) {
        println!("   {}", card.name);
    }
}
