//! A programmatic tour of the tutorial's taxonomy (§1–§2).
//!
//! The tutorial organizes XAI along three dimensions: intrinsic vs
//! post-hoc, model-agnostic vs model-specific, local vs global (vs
//! training-data). This workspace makes that organization executable
//! twice over: every implemented method carries a `MethodCard`, and the
//! runnable registry attaches a live `Explainer` to each card it has an
//! implementation for — `resolve` answers a classification question with
//! objects you can call `explain` on.
//!
//! ```sh
//! cargo run --release --example taxonomy_tour
//! ```

use xai::core::taxonomy::{Access, Scope, Stage};
use xai::prelude::*;

fn main() {
    let registry = runnable_registry();
    println!(
        "{} methods catalogued across the tutorial's sections, {} runnable (▶)\n",
        registry.cards().len(),
        registry.runnable_names().len()
    );

    // Walk the tutorial's structure section by section.
    for (section, title) in [
        ("2.1.1", "Surrogate explainability"),
        ("2.1.2", "Methods based on Shapley values"),
        ("2.1.3", "Causal approaches"),
        ("2.1.4", "Counterfactuals and algorithmic recourse"),
        ("2.2", "Rule-based explanations"),
        ("2.3.1", "Data valuation explanations"),
        ("2.3.2", "Influence-based explanations"),
        ("2.4", "Explanations for unstructured data (gradient methods)"),
        ("3", "Opportunities for data management research"),
    ] {
        let methods = registry.by_section(section);
        println!("§{section} {title}:");
        for card in methods {
            let marker = if registry.is_runnable(card.name) { "▶" } else { " " };
            println!(
                " {marker} {:<32} [{:?}/{:?}/{:?}]  — {}",
                card.name, card.stage, card.access, card.scope, card.citation
            );
        }
        println!();
    }

    // The tutorial's classification questions, answered by query.
    println!("Q: which methods work on ANY black box and explain ONE prediction?");
    for card in registry.query(None, Some(Access::ModelAgnostic), Some(Scope::Local)) {
        println!("   {}", card.name);
    }

    println!("\nQ: which methods are interpretable BY DESIGN (intrinsic)?");
    for card in registry.query(Some(Stage::Intrinsic), None, None) {
        println!("   {}", card.name);
    }

    println!("\nQ: which methods attribute to TRAINING DATA rather than features?");
    for card in registry.query(None, None, Some(Scope::TrainingData)) {
        println!("   {}", card.name);
    }

    // And because the registry is runnable, a classification answer is
    // something you can execute: explain one decision with every
    // model-agnostic local method.
    let data = xai::data::synth::german_credit(200, 3);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let row = {
        use xai_models::Classifier;
        (0..data.n_rows())
            .map(|i| data.row(i))
            .find(|r| model.proba_one(r) < 0.5)
            .expect("a rejected applicant exists")
            .to_vec()
    };
    let req = ExplainRequest::new(&data).instance(&row).plan(RunConfig::seeded(3));
    println!("\nrunning every (Local, ModelAgnostic) method on one applicant:");
    for method in registry.resolve(Scope::Local, Access::ModelAgnostic) {
        match method.explain(&model, &req) {
            Ok(e) => println!("   {:<30} ok ({:?})", method.card().name, e.form()),
            Err(err) => println!("   {:<30} {err}", method.card().name),
        }
    }
}
