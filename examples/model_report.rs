//! A global "model report": four complementary global explanations of one
//! model, cross-checked and exported as JSON.
//!
//! The tutorial's §2 opens with methods that summarize *overall* model
//! behaviour; this example assembles them into the kind of model card an
//! auditor would actually file:
//!
//! 1. global TreeSHAP importance (aggregated local attributions),
//! 2. permutation feature importance (score-drop semantics),
//! 3. partial-dependence ranges + ICE heterogeneity (interaction signal),
//! 4. an interpretable decision-set distillation of the model.
//!
//! ```sh
//! cargo run --release --example model_report
//! ```

use xai::core::{Json, ToReport};
use xai::prelude::*;
use xai::surrogate::{feature_grid, partial_dependence, permutation_importance};

fn main() {
    let data = xai::data::synth::adult_income(1500, 7);
    let (train, test) = data.train_test_split(0.3, 1);
    let model = Gbdt::fit(train.x(), train.y(), GbdtConfig { n_rounds: 80, ..GbdtConfig::default() });
    let f = proba_fn(&model);
    let names = data.schema().names();
    let acc = xai::data::metrics::accuracy(test.y(), &Classifier::predict(&model, test.x()));
    let auc = xai::data::metrics::auc_roc(test.y(), &model.proba(test.x()));
    println!("model: GBDT on synthetic adult-income | test acc {acc:.3}, AUC {auc:.3}\n");

    // 1. Global SHAP.
    let shap = xai::shapley::gbdt_global_importance(&model, &test, 250);
    println!("global TreeSHAP importance:");
    for (name, v) in shap.top_k(5) {
        println!("  {name:>18}: {v:.4}");
    }

    // 2. Permutation importance.
    let acc_score = |p: &[f64], y: &[f64]| xai::data::metrics::accuracy(y, p);
    let pi = permutation_importance(&f, &test, &acc_score, 3, 11);
    println!("\npermutation importance (accuracy drop):");
    for &j in pi.ranking().iter().take(5) {
        println!("  {:>18}: {:.4}", names[j], pi.importances[j]);
    }

    // Cross-check: the two global rankings should overlap heavily.
    let top = |r: Vec<usize>| -> std::collections::HashSet<usize> { r.into_iter().take(4).collect() };
    let overlap = top(shap.ranking()).intersection(&top(pi.ranking())).count();
    println!("\ntop-4 agreement between the two importance views: {overlap}/4");

    // 3. PDP / ICE per top feature.
    println!("\npartial dependence (range = effect size; ICE σ = interaction signal):");
    for &j in shap.ranking().iter().take(4) {
        let grid = feature_grid(&test, j, 9);
        let pd = partial_dependence(&f, &test, j, &grid, 200, true);
        println!(
            "  {:>18}: PDP range {:.3}, ICE heterogeneity {:.3}",
            names[j],
            pd.range(),
            pd.ice_heterogeneity().unwrap()
        );
    }

    // 4. Decision-set distillation.
    let preds = Classifier::predict(&model, train.x());
    let set = DecisionSet::fit(&train, &preds, IdsConfig::default());
    println!(
        "\ninterpretable decision set distilled from the model ({} rules, fidelity {:.3}):",
        set.n_rules(),
        set.train_accuracy
    );
    for rule in set.rules() {
        println!("  {rule}");
    }

    // Export the whole card as JSON.
    let card = Json::obj(vec![
        ("model", Json::str("gbdt-adult-income")),
        ("test_accuracy", Json::Num(acc)),
        ("test_auc", Json::Num(auc)),
        ("global_shap_mean_abs", Json::nums(&shap.mean_abs)),
        ("permutation_importance", Json::nums(&pi.importances)),
        (
            "decision_set",
            Json::Arr(set.rules().iter().map(|r| r.to_report()).collect()),
        ),
    ]);
    println!("\nJSON model card:\n{}", card.to_json());
}
