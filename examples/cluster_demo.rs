//! Cluster-transported explanation runs (DESIGN.md §13): two local
//! `xai-shard-worker --listen` daemons on loopback, a failure-first
//! `ClusterRunner` shipping shard descriptors to them over the
//! length-prefixed TCP protocol, and the merged explanation asserted
//! bit-identical to the single-machine run — then a demonstration of
//! graceful degradation when every endpoint is unreachable.
//!
//! ```sh
//! cargo build && cargo run --example cluster_demo
//! ```
//!
//! (A debug `cargo build` first, so the sibling `xai-shard-worker`
//! binary exists to spawn the daemons from.)

use std::time::Duration;

use xai::models::Persist;
use xai::prelude::*;
use xai::shard::sibling_worker_exe;
use xai::transport::DaemonHandle;

fn main() {
    let data = xai::data::synth::german_credit(80, 7);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let row = data.row(0).to_vec();
    let req = ExplainRequest::new(&data)
        .instance(&row)
        .plan(RunConfig::seeded(11).with_workers(2));
    let method = KernelShapMethod {
        config: KernelShapConfig { max_coalitions: 128, ..KernelShapConfig::default() },
    };

    // ── 1. The single-machine reference run ─────────────────────────
    let reference_bytes = method.explain(&model, &req).unwrap().to_json_string();
    println!("unsharded Kernel SHAP: {} bytes of canonical JSON", reference_bytes.len());

    let Some(worker) = sibling_worker_exe() else {
        println!("\nxai-shard-worker binary not found next to this example;");
        println!("run `cargo build` first to exercise the cluster leg.");
        return;
    };

    // ── 2. Two shard daemons on ephemeral loopback ports ────────────
    let daemons: Vec<DaemonHandle> = (0..2)
        .map(|_| DaemonHandle::spawn(&worker, &[]).expect("spawn daemon"))
        .collect();
    println!("\nshard daemons:");
    for d in &daemons {
        println!("  xai-shard-worker --listen {}", d.addr());
    }

    // ── 3. Cluster execution at several shard counts ────────────────
    let config = ClusterConfig::new(daemons.iter().map(|d| d.addr().to_string()));
    let runner = ClusterRunner::new(config).unwrap();
    for n_shards in [1usize, 2, 4, 7] {
        let outcome = runner.explain(&method, &model, &req, model.save(), n_shards).unwrap();
        assert_eq!(outcome.explanation.to_json_string(), reference_bytes);
        assert!(!outcome.degraded);
        println!("cluster n_shards = {n_shards}: bit-identical to the reference");
    }
    let stats = runner.stats();
    println!(
        "transport: {} dispatches, {} retries, {} transport failures",
        stats.attempts, stats.retries, stats.transport_failures
    );
    for h in runner.health() {
        println!("  endpoint {}: {:?}, {} ok / {} failed", h.addr, h.state, h.successes, h.failures);
    }

    // ── 4. Graceful degradation: kill the cluster, keep the bytes ───
    drop(daemons);
    let mut dead_config = ClusterConfig::new(runner.config().endpoints.clone());
    dead_config.connect_timeout = Duration::from_millis(500);
    dead_config.retry.max_attempts = 2;
    dead_config.fallback = FallbackPolicy::InProcess;
    let dead_runner = ClusterRunner::new(dead_config).unwrap();
    let outcome = dead_runner.explain(&method, &model, &req, model.save(), 4).unwrap();
    assert_eq!(outcome.explanation.to_json_string(), reference_bytes);
    assert!(outcome.degraded);
    println!(
        "\ncluster gone: degraded to the in-process runner ({} transport failures), \
         same bytes.",
        outcome.stats.transport_failures
    );
}
