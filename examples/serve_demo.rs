//! The explanation-serving engine, end to end: a worker pool behind a
//! bounded queue serves mixed JSON traffic from concurrent clients,
//! with an LRU result cache keyed by (model fingerprint, canonical
//! request hash) and typed admission control.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use std::sync::Arc;

use xai::prelude::*;
use xai_models::Classifier;

fn main() {
    // A service over the full workspace registry: 4 workers, a bounded
    // queue, and room for 64 cached results.
    let service = Arc::new(workspace_service(ServiceConfig {
        workers: 4,
        queue_capacity: 128,
        cache_capacity: 64,
        memo_capacity: 65_536,
    }));

    // Register two models over the same credit data. Fingerprints come
    // from the canonical persisted bytes, so a retrained model can never
    // serve stale cached results.
    let data = xai::data::synth::german_credit(200, 42);
    let logistic = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let gbdt = Gbdt::fit(data.x(), data.y(), GbdtConfig::default());
    let rejected = (0..data.n_rows())
        .map(|i| data.row(i))
        .find(|r| logistic.proba_one(r) < 0.5)
        .expect("a rejected applicant exists")
        .to_vec();
    let fp_logistic = register_persist(&service, "credit", logistic, data.clone());
    let fp_gbdt = register_persist(&service, "credit-gbdt", gbdt, data.clone());
    println!("registered models:");
    println!("  credit       {fp_logistic:016x}");
    println!("  credit-gbdt  {fp_gbdt:016x}\n");

    // Mixed traffic: local attributions, a curve, rules, recourse and a
    // (small) training-data valuation, several of them duplicated so the
    // cache has something to do.
    let mut requests = vec![
        ServeRequest::new("Kernel SHAP", "credit")
            .with_instance(&rejected)
            .with_plan(RunConfig::seeded(7)),
        ServeRequest::new("LIME", "credit")
            .with_instance(&rejected)
            .with_plan(RunConfig::seeded(7)),
        ServeRequest::new("TreeSHAP", "credit-gbdt")
            .with_instance(&rejected)
            .with_plan(RunConfig::seeded(7)),
        ServeRequest::new("Integrated gradients", "credit")
            .with_instance(&rejected)
            .with_plan(RunConfig::seeded(7)),
        ServeRequest::new("Partial dependence / ICE", "credit")
            .with_feature(1)
            .with_plan(RunConfig::seeded(7)),
        ServeRequest::new("Anchors", "credit")
            .with_instance(&rejected)
            .with_plan(RunConfig::seeded(7)),
        ServeRequest::new("Wachter counterfactuals", "credit")
            .with_instance(&rejected)
            .with_plan(RunConfig::seeded(7)),
        ServeRequest::new("GeCo", "credit")
            .with_instance(&rejected)
            .with_plan(RunConfig::seeded(7)),
        // A budgeted plan: the request carries its own sampling cap.
        ServeRequest::new("Kernel SHAP", "credit")
            .with_instance(&rejected)
            .with_plan(RunConfig::seeded(7).with_budget(SampleBudget::with_max_evals(64))),
    ];
    // Duplicate the whole set: the second wave should be all cache hits.
    requests.extend(requests.clone());

    // Four client threads submit the traffic concurrently as JSON.
    std::thread::scope(|scope| {
        for client in 0..4 {
            let service = Arc::clone(&service);
            let requests = &requests;
            scope.spawn(move || {
                for (i, request) in requests.iter().enumerate() {
                    if i % 4 != client {
                        continue;
                    }
                    let wire = request.to_json_string();
                    match service.submit_json(&wire) {
                        Ok(_) => {}
                        Err(e) => println!("  [client {client}] {} failed: {e}", request.method),
                    }
                }
            });
        }
    });

    // Replay one request: a warm hit, byte-equal to the cold result.
    let warm = service.submit(&requests[0]).unwrap();
    println!("warm replay of '{}': cached = {}", warm.method, warm.cached);
    let attribution = warm.explanation().unwrap();
    if let Some(a) = attribution.as_attribution() {
        let top = a
            .top_k(3)
            .into_iter()
            .map(|(n, v)| format!("{n} {v:+.3}"))
            .collect::<Vec<_>>()
            .join(", ");
        println!("  top features: {top}");
    }

    // Admission control and validation stay typed at the front door.
    let bad = ServeRequest::new("Kernel SHAP", "credit").with_instance(&[1.0, 2.0]);
    println!("\nbad arity   -> {}", service.submit(&bad).unwrap_err());
    let unknown = ServeRequest::new("Kernel SHAP", "no-such-model");
    println!("bad model   -> {}", service.submit(&unknown).unwrap_err());

    println!("\nservice counters: {}", service.stats().to_json().to_json());
}
