//! Credit scoring with actionable recourse (§2.1.4).
//!
//! A rejected loan applicant asks: *what can I actually do?* This example
//! contrasts three answers:
//!
//! 1. plain counterfactuals (GeCo-style genetic search under PLAF
//!    feasibility constraints),
//! 2. minimal-cost actionable recourse on a linear model (Ustun et al.),
//! 3. causally-grounded recourse with LEWIS, where acting on one feature
//!    drags its causal descendants along.
//!
//! ```sh
//! cargo run --release --example credit_recourse
//! ```

use xai::counterfactual::{
    geco, linear_recourse, GecoConfig, Lewis, Plaf, RecourseConfig,
};
use xai::prelude::*;

fn main() {
    let data = xai::data::synth::german_credit(1000, 11);
    let model = LogisticRegression::fit(data.x(), data.y(), LogisticConfig::default());
    let f = proba_fn(&model);

    // Find a clearly rejected applicant.
    let idx = (0..data.n_rows())
        .find(|&i| model.proba_one(data.row(i)) < 0.3)
        .expect("someone gets rejected");
    let applicant = data.row(idx);
    println!("rejected applicant #{idx}: {}", data.render_row(idx));
    println!("P(approve) = {:.3}\n", model.proba_one(applicant));

    // ── 1. GeCo-style counterfactual under feasibility constraints ──
    let plaf = Plaf::from_schema(&data);
    match geco(&f, &data, applicant, &plaf, GecoConfig::default(), 3) {
        Some(cf) => {
            println!("GeCo counterfactual (P → {:.3}):", cf.counterfactual_output);
            for &j in &cf.changed_features {
                let feat = data.schema().feature(j);
                println!(
                    "  change {:>18}: {} -> {}",
                    feat.name,
                    feat.render(cf.original[j]),
                    feat.render(cf.counterfactual[j])
                );
            }
        }
        None => println!("GeCo found no feasible counterfactual"),
    }
    println!();

    // ── 2. Minimal-cost recourse on the linear model ──
    match linear_recourse(&model, &data, applicant, RecourseConfig::default()) {
        Some(recourse) => {
            println!(
                "actionable recourse (total cost {:.2} MAD units, P → {:.3}):",
                recourse.total_cost, recourse.result.counterfactual_output
            );
            for a in &recourse.actions {
                println!(
                    "  {:>18}: {:.1} -> {:.1}  (cost {:.2})",
                    a.feature_name, a.from, a.to, a.cost
                );
            }
        }
        None => println!("no recourse within the feasible action space"),
    }
    println!();

    // ── 3. LEWIS: causal recourse on the credit SCM ──
    // A smaller causal world where education → income → savings → approval.
    let labeled = xai::data::synth::credit_scm();
    let scm_data = xai::data::synth::credit_scm_dataset(1500, 5);
    let scm_model = LogisticRegression::fit(scm_data.x(), scm_data.y(), LogisticConfig::default());
    let g = proba_fn(&scm_model);
    let lewis = Lewis::new(&g, &labeled);
    let candidates = [
        (0usize, 16.0), // go back to school
        (1usize, 6.0),  // raise income
        (2usize, 8.0),  // save more
    ];
    println!("LEWIS causal recourse ranking (population-level):");
    for s in lewis.rank_recourse(&candidates, 4000, 9) {
        let name = ["education", "income", "savings"][s.feature];
        println!(
            "  do({name} = {:.0}) : sufficiency {:.3}, necessity {:.3}",
            s.value, s.sufficiency, s.necessity
        );
    }
    println!(
        "\nNote: LEWIS propagates interventions through the SCM — raising\n\
         education also raises income and savings before the model is\n\
         re-evaluated, which model-only counterfactuals cannot express."
    );
}
